// Design-space exploration: for one circuit, sweep the low supply and
// report the saving each algorithm reaches, the delay penalty per gate,
// and how many converters Dscale pays for.  Shows why the paper's 4.3V
// (a mild 9% delay penalty) is a sweet spot when the circuit has little
// slack to spend.
//
//   $ ./voltage_exploration [circuit-name]   (default: term1)
#include <cstdio>
#include <string>

#include "benchgen/mcnc.hpp"
#include "core/dscale.hpp"
#include "core/gscale.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "term1";
  const dvs::McncDescriptor* descriptor = dvs::find_mcnc(name);
  if (descriptor == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", name.c_str());
    return 1;
  }

  std::printf("voltage exploration on %s (%d gates)\n",
              descriptor->name, descriptor->gates);
  std::printf("%5s | %12s %12s | %8s %8s %8s | %5s\n", "Vlow",
              "delay+%/gate", "energy-%", "CVS%", "Dscale%", "Gscale%",
              "LCs");

  for (double vlow = 4.7; vlow >= 3.29; vlow -= 0.2) {
    dvs::Library lib = dvs::build_compass_library();
    lib.set_supplies(5.0, vlow);
    dvs::Network net = dvs::build_mcnc_circuit(lib, *descriptor);

    dvs::Design baseline(net, lib);
    const double org = baseline.run_power().total();
    auto improvement = [&](dvs::Design& d) {
      return 100.0 * (org - d.run_power().total()) / org;
    };

    dvs::Design cvs(net, lib);
    dvs::run_cvs(cvs);
    dvs::Design dscale(net, lib);
    dvs::run_dscale(dscale);
    dvs::Design gscale(net, lib);
    dvs::run_gscale(gscale);

    const dvs::VoltageModel& vm = lib.voltage_model();
    std::printf("%5.1f | %11.1f%% %11.1f%% | %8.2f %8.2f %8.2f | %5d\n",
                vlow, 100.0 * (vm.delay_factor(vlow) - 1.0),
                100.0 * (1.0 - vm.energy_factor(vlow)),
                improvement(cvs), improvement(dscale),
                improvement(gscale), dscale.count_lcs());
  }
  std::printf("\n(the paper uses Vlow = 4.3V)\n");
  return 0;
}
