// Bring-your-own-library: defines a tiny 3.3V standard-cell library from
// scratch (the analytic equivalent of characterizing SPICE decks at both
// supplies), maps a BLIF netlist onto it, and runs the dual-Vdd flow at
// (3.3V, 2.7V).  Demonstrates every Library construction API.
#include <cstdio>

#include "core/flow.hpp"
#include "netlist/blif.hpp"
#include "synth/mapper.hpp"

namespace {

dvs::TimingArc make_arc(const dvs::TruthTable& tt, int pin,
                        double intrinsic, double resistance) {
  dvs::TimingArc arc;
  const bool pos = dvs::is_positive_unate(tt, pin);
  const bool neg = dvs::is_negative_unate(tt, pin);
  arc.sense = pos && !neg   ? dvs::ArcSense::kPositiveUnate
              : neg && !pos ? dvs::ArcSense::kNegativeUnate
                            : dvs::ArcSense::kNonUnate;
  arc.intrinsic_rise = intrinsic * 1.1;
  arc.intrinsic_fall = intrinsic * 0.9;
  arc.resistance_rise = resistance * 1.1;
  arc.resistance_fall = resistance * 0.9;
  return arc;
}

void add_cell(dvs::Library& lib, const char* base, int drive,
              dvs::TruthTable tt, double area, double cap,
              double intrinsic, double resistance) {
  dvs::Cell cell;
  cell.name = std::string(base) + "_x" + std::to_string(drive + 1);
  cell.base_name = base;
  cell.drive_index = drive;
  cell.function = tt;
  cell.area = area;
  cell.internal_cap = 0.3 * cap;
  cell.leakage = 0.002 * area;
  for (int pin = 0; pin < tt.num_vars; ++pin) {
    cell.input_cap.push_back(cap);
    cell.arcs.push_back(make_arc(tt, pin, intrinsic, resistance));
  }
  lib.add_cell(std::move(cell));
}

dvs::Library make_tiny_lib() {
  dvs::Library lib("tiny-3v3");
  // A 3.3V process: lower Vt, different alpha than the 0.6um default.
  lib.voltage_model() = dvs::VoltageModel{3.3, 0.55, 1.4};
  lib.set_supplies(3.3, 2.7);
  lib.wire_load() = dvs::WireLoadModel{0.8, 0.9};

  for (int drive = 0; drive < 2; ++drive) {
    const double r = drive == 0 ? 1.0 : 0.55;   // resistance scale
    const double c = drive == 0 ? 1.0 : 1.2;    // cap/area scale
    add_cell(lib, "inv", drive, dvs::tt_inv(), 12 * c, 4 * c, 0.08,
             0.005 * r);
    add_cell(lib, "nand2", drive, dvs::tt_nand(2), 20 * c, 4.4 * c, 0.11,
             0.0062 * r);
    add_cell(lib, "nor2", drive, dvs::tt_nor(2), 22 * c, 4.6 * c, 0.12,
             0.0068 * r);
    add_cell(lib, "and2", drive, dvs::tt_and(2), 26 * c, 4.0 * c, 0.19,
             0.0052 * r);
    add_cell(lib, "or2", drive, dvs::tt_or(2), 27 * c, 4.1 * c, 0.20,
             0.0054 * r);
    add_cell(lib, "xor2", drive, dvs::tt_xor(2), 40 * c, 6.0 * c, 0.21,
             0.0072 * r);
  }
  // The level converter for the (3.3, 2.7) pair.
  dvs::Cell lc;
  lc.name = "lvlconv";
  lc.base_name = "lvlconv";
  lc.function = dvs::tt_buf();
  lc.area = 24;
  lc.internal_cap = 0.8;
  lc.leakage = 0.008;
  lc.is_level_converter = true;
  lc.input_cap.push_back(1.6);
  lc.arcs.push_back(make_arc(dvs::tt_buf(), 0, 0.15, 0.006));
  lib.set_level_converter(lib.add_cell(std::move(lc)));
  return lib;
}

const char* kCircuit = R"(
.model alu_slice
.inputs a0 a1 b0 b1 cin sel
.outputs s0 s1 cout andor
.names a0 b0 p0
10 1
01 1
.names a0 b0 g0
11 1
.names p0 cin s0
10 1
01 1
.names g0 p0 cin c1
1-- 1
-11 1
.names a1 b1 p1
10 1
01 1
.names a1 b1 g1
11 1
.names p1 c1 s1
10 1
01 1
.names g1 p1 c1 cout
1-- 1
-11 1
.names a0 b0 sel andor
110 1
1-1 1
-11 1
.end
)";

}  // namespace

int main() {
  const dvs::Library lib = make_tiny_lib();
  std::printf("library '%s': %d cells at (%.1fV, %.1fV), delay penalty "
              "at Vlow %.1f%%\n",
              lib.name().c_str(), lib.num_cells(), lib.vdd_high(),
              lib.vdd_low(),
              100.0 * (lib.voltage_model().delay_factor(lib.vdd_low()) -
                       1.0));

  dvs::Network src = dvs::read_blif_string(kCircuit);
  const dvs::PaperSetupResult setup = dvs::map_paper_setup(src, lib, 0.2);
  std::printf("mapped %d gates, tspec %.3f ns\n",
              setup.mapped.num_gates(), setup.tspec);

  const dvs::CircuitRunResult row =
      dvs::run_paper_flow(setup.mapped, lib, {});
  std::printf("power %.3f uW | CVS -%.2f%% | Dscale -%.2f%% | Gscale "
              "-%.2f%% (resized %d)\n",
              row.org_power_uw, row.cvs_improve_pct,
              row.dscale_improve_pct, row.gscale_improve_pct,
              row.gscale_resized);
  return 0;
}
