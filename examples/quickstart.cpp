// Quickstart: build a circuit, run the paper's three algorithms, and
// print what each one achieved.
//
//   $ ./quickstart
//
// Walks the core API: Library -> Network -> Design -> run_cvs /
// run_dscale / run_gscale -> power and timing reports.
#include <cstdio>

#include "benchgen/structured.hpp"
#include "core/dscale.hpp"
#include "core/gscale.hpp"
#include "power/report.hpp"

int main() {
  // 1. The cell library: a 72-cell COMPASS-0.6um-like library with two
  //    operating supplies (5V / 4.3V, the paper's pair).
  const dvs::Library lib = dvs::build_compass_library();
  std::printf("library '%s': %d cells, supplies %.1fV / %.1fV\n",
              lib.name().c_str(), lib.num_cells(), lib.vdd_high(),
              lib.vdd_low());

  // 2. A mapped circuit: a 24-bit ripple-carry adder.  The carry chain is
  //    timing-critical; the sum gates have slack — exactly the structure
  //    dual-Vdd assignment exploits.
  dvs::Network net = dvs::build_ripple_adder(lib, 24, "adder24");
  std::printf("circuit '%s': %d gates, %zu inputs, %zu outputs\n\n",
              net.name().c_str(), net.num_gates(), net.inputs().size(),
              net.outputs().size());

  // 3. Baseline: everything at Vdd-high.  A Design freezes the timing
  //    constraint at the mapped delay (the paper's setup).
  dvs::Design baseline(net, lib);
  const double org_power = baseline.run_power().total();
  std::printf("single-supply power: %.2f uW (Tspec = %.2f ns)\n\n",
              org_power, baseline.tspec());

  auto report = [&](const char* name, dvs::Design& design) {
    const double power = design.run_power().total();
    std::printf("%-8s lowered %3d/%3d gates, %d converters, power "
                "%.2f uW (-%.2f%%), timing %s\n",
                name, design.count_low(), design.network().num_gates(),
                design.count_lcs(), power,
                100.0 * (org_power - power) / org_power,
                design.run_timing().meets_constraint() ? "met"
                                                       : "VIOLATED");
  };

  // 4. CVS: the clustered-voltage-scaling baseline.
  dvs::Design cvs_design(net, lib);
  dvs::run_cvs(cvs_design);
  report("CVS", cvs_design);

  // 5. Dscale: MWIS-based scaling of every slack region (converters
  //    inserted at the low->high boundaries automatically).
  dvs::Design dscale_design(net, lib);
  dvs::run_dscale(dscale_design);
  report("Dscale", dscale_design);

  // 6. Gscale: create new slack by separator-guided gate sizing.
  dvs::Design gscale_design(net, lib);
  const dvs::GscaleResult g = dvs::run_gscale(gscale_design);
  report("Gscale", gscale_design);
  std::printf("         (%d gates resized, area +%.1f%%)\n\n",
              g.num_resized, 100.0 * g.area_increase_ratio);

  // 7. Detailed power breakdown of the winner.
  std::fputs(dvs::format_power_report(gscale_design.network(),
                                      gscale_design.run_power())
                 .c_str(),
             stdout);
  return 0;
}
