// Command-line driver over the benchmark suite: run any of the paper's
// 39 circuits (or all of them) through a chosen algorithm with
// configurable supplies and budgets, and optionally export the optimized
// netlist as BLIF / structural Verilog / Graphviz.
//
//   $ ./suite_runner --circuit b9 --algo gscale --vlow 4.0 \
//         --verilog out.v --dot out.dot
//   $ ./suite_runner --all --algo cvs
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "benchgen/mcnc.hpp"
#include "core/boundary.hpp"
#include "core/dscale.hpp"
#include "core/gscale.hpp"
#include "netlist/blif.hpp"
#include "netlist/dot.hpp"
#include "netlist/verilog.hpp"

namespace {

struct Args {
  std::string circuit = "b9";
  bool all = false;
  std::string algo = "gscale";  // cvs | dscale | gscale
  double vhigh = 5.0;
  double vlow = 4.3;
  double area_budget = 0.10;
  std::string blif_out;
  std::string verilog_out;
  std::string dot_out;
};

bool parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--circuit")
      args->circuit = value();
    else if (flag == "--all")
      args->all = true;
    else if (flag == "--algo")
      args->algo = value();
    else if (flag == "--vhigh")
      args->vhigh = std::atof(value());
    else if (flag == "--vlow")
      args->vlow = std::atof(value());
    else if (flag == "--area")
      args->area_budget = std::atof(value());
    else if (flag == "--blif")
      args->blif_out = value();
    else if (flag == "--verilog")
      args->verilog_out = value();
    else if (flag == "--dot")
      args->dot_out = value();
    else {
      std::fprintf(stderr,
                   "usage: suite_runner [--circuit NAME | --all] "
                   "[--algo cvs|dscale|gscale] [--vhigh V] [--vlow V] "
                   "[--area RATIO] [--blif F] [--verilog F] [--dot F]\n");
      return false;
    }
  }
  return true;
}

void run_one(const dvs::Library& lib, const dvs::McncDescriptor& d,
             const Args& args) {
  dvs::Network net = dvs::build_mcnc_circuit(lib, d);
  dvs::Design baseline(net, lib);
  const double org = baseline.run_power().total();

  dvs::Design design(net, lib);
  if (args.algo == "cvs") {
    dvs::run_cvs(design);
  } else if (args.algo == "dscale") {
    dvs::run_dscale(design);
  } else {
    dvs::GscaleOptions options;
    options.area_budget_ratio = args.area_budget;
    dvs::run_gscale(design, options);
  }
  const double now = design.run_power().total();
  std::printf("%-10s %-7s: %4d/%4d gates low, %3d converters, "
              "%8.2f -> %8.2f uW (-%5.2f%%), timing %s\n",
              d.name, args.algo.c_str(), design.count_low(),
              design.network().num_gates(), design.count_lcs(), org, now,
              100.0 * (org - now) / org,
              design.run_timing().meets_constraint() ? "met" : "VIOLATED");

  if (!args.blif_out.empty() || !args.verilog_out.empty() ||
      !args.dot_out.empty()) {
    dvs::Network out =
        dvs::materialize_level_converters(design, nullptr);
    if (!args.blif_out.empty()) dvs::write_blif_file(out, args.blif_out);
    if (!args.verilog_out.empty())
      dvs::write_verilog_file(out, lib, args.verilog_out);
    if (!args.dot_out.empty()) {
      std::ofstream file(args.dot_out);
      file << dvs::write_dot(out, [&](const dvs::Node& n) {
        dvs::DotStyle style;
        if (n.is_gate() && n.id < design.network().size() &&
            design.level(n.id) != dvs::kTopRung) {
          style.fill_color = "lightblue";
          style.label_suffix = " (Vlow)";
        }
        return style;
      });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, &args)) return 1;

  dvs::Library lib = dvs::build_compass_library();
  lib.set_supplies(args.vhigh, args.vlow);

  if (args.all) {
    for (const dvs::McncDescriptor& d : dvs::mcnc_suite())
      run_one(lib, d, args);
    return 0;
  }
  const dvs::McncDescriptor* d = dvs::find_mcnc(args.circuit);
  if (d == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'; known:",
                 args.circuit.c_str());
    for (const dvs::McncDescriptor& entry : dvs::mcnc_suite())
      std::fprintf(stderr, " %s", entry.name);
    std::fprintf(stderr, "\n");
    return 1;
  }
  run_one(lib, *d, args);
  return 0;
}
