// The full SIS-style flow on a BLIF netlist: read -> cleanup -> map at
// minimum delay -> relax 20% -> area-recovery map -> dual-Vdd assignment
// -> write the optimized netlist (converters materialized) back out.
//
//   $ ./blif_flow [input.blif [output.blif]]
//
// Without arguments a small demonstration netlist is used and the result
// is printed instead of written.
#include <cstdio>
#include <fstream>

#include "core/boundary.hpp"
#include "core/flow.hpp"
#include "netlist/blif.hpp"
#include "netlist/stats.hpp"
#include "synth/mapper.hpp"
#include "synth/sweep.hpp"

namespace {

const char* kDemo = R"(
.model demo
.inputs a b c d e f
.outputs y z
.names a b t1
11 1
.names c d t2
1- 1
-1 1
.names t1 t2 t3
10 1
01 1
.names t3 e t4
11 1
.names t4 f y
1- 1
-1 1
.names t2 e z
11 1
.end
)";

}  // namespace

int main(int argc, char** argv) {
  const dvs::Library lib = dvs::build_compass_library();

  dvs::Network src = argc > 1 ? dvs::read_blif_file(argv[1])
                              : dvs::read_blif_string(kDemo);
  std::printf("read '%s': %s\n", src.name().c_str(),
              dvs::describe(dvs::network_stats(src)).c_str());

  // Technology-independent cleanup (script.rugged stand-in).
  const dvs::SweepStats swept = dvs::sweep_network(src);
  std::printf("sweep removed %d nodes\n", swept.total());

  // Map at minimum delay, relax 20%, re-map for area (the paper's setup).
  const dvs::PaperSetupResult setup = dvs::map_paper_setup(src, lib, 0.2);
  std::printf("mapped: %s\n",
              dvs::describe(dvs::network_stats(setup.mapped)).c_str());
  std::printf("tmin %.3f ns -> tspec %.3f ns\n", setup.tmin, setup.tspec);

  // Dual-Vdd flow (CVS baseline + Dscale + Gscale, each from scratch).
  const dvs::CircuitRunResult row =
      dvs::run_paper_flow(setup.mapped, lib, {});
  std::printf("original power %.2f uW | CVS -%.2f%% | Dscale -%.2f%% | "
              "Gscale -%.2f%%\n",
              row.org_power_uw, row.cvs_improve_pct,
              row.dscale_improve_pct, row.gscale_improve_pct);

  // Re-run the winner to materialize its converters and export.
  dvs::Design design(setup.mapped, lib, setup.tspec);
  dvs::run_gscale(design);
  dvs::Network out = dvs::materialize_level_converters(design, nullptr);
  const std::string blif = dvs::write_blif_string(out);
  if (argc > 2) {
    std::ofstream file(argv[2]);
    file << blif;
    std::printf("wrote %s (%d gates incl. converters)\n", argv[2],
                out.num_gates());
  } else {
    std::printf("\noptimized netlist (%d gates incl. converters):\n%s",
                out.num_gates(), blif.c_str());
  }
  return 0;
}
