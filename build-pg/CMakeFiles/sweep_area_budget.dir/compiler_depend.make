# Empty compiler generated dependencies file for sweep_area_budget.
# This may be replaced when dependencies are built.
