file(REMOVE_RECURSE
  "CMakeFiles/sweep_area_budget.dir/bench/sweep_area_budget.cpp.o"
  "CMakeFiles/sweep_area_budget.dir/bench/sweep_area_budget.cpp.o.d"
  "sweep_area_budget"
  "sweep_area_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_area_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
