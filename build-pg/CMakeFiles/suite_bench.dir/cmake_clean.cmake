file(REMOVE_RECURSE
  "CMakeFiles/suite_bench.dir/bench/suite_bench.cpp.o"
  "CMakeFiles/suite_bench.dir/bench/suite_bench.cpp.o.d"
  "suite_bench"
  "suite_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
