# Empty dependencies file for suite_bench.
# This may be replaced when dependencies are built.
