file(REMOVE_RECURSE
  "CMakeFiles/dvs_worker.dir/tools/dvs_worker.cpp.o"
  "CMakeFiles/dvs_worker.dir/tools/dvs_worker.cpp.o.d"
  "dvs-worker"
  "dvs-worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
