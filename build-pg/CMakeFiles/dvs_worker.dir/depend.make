# Empty dependencies file for dvs_worker.
# This may be replaced when dependencies are built.
