# Empty compiler generated dependencies file for ablation_mwis.
# This may be replaced when dependencies are built.
