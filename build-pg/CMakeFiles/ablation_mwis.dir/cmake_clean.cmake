file(REMOVE_RECURSE
  "CMakeFiles/ablation_mwis.dir/bench/ablation_mwis.cpp.o"
  "CMakeFiles/ablation_mwis.dir/bench/ablation_mwis.cpp.o.d"
  "ablation_mwis"
  "ablation_mwis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mwis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
