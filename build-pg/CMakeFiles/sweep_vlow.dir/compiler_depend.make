# Empty compiler generated dependencies file for sweep_vlow.
# This may be replaced when dependencies are built.
