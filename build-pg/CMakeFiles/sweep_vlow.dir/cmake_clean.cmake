file(REMOVE_RECURSE
  "CMakeFiles/sweep_vlow.dir/bench/sweep_vlow.cpp.o"
  "CMakeFiles/sweep_vlow.dir/bench/sweep_vlow.cpp.o.d"
  "sweep_vlow"
  "sweep_vlow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_vlow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
