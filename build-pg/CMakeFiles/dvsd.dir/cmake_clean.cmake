file(REMOVE_RECURSE
  "CMakeFiles/dvsd.dir/tools/dvsd.cpp.o"
  "CMakeFiles/dvsd.dir/tools/dvsd.cpp.o.d"
  "dvsd"
  "dvsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
