# Empty compiler generated dependencies file for dvsd.
# This may be replaced when dependencies are built.
