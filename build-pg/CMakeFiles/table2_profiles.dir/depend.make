# Empty dependencies file for table2_profiles.
# This may be replaced when dependencies are built.
