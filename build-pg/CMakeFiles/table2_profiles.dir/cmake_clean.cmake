file(REMOVE_RECURSE
  "CMakeFiles/table2_profiles.dir/bench/table2_profiles.cpp.o"
  "CMakeFiles/table2_profiles.dir/bench/table2_profiles.cpp.o.d"
  "table2_profiles"
  "table2_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
