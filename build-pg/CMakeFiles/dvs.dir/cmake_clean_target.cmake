file(REMOVE_RECURSE
  "libdvs.a"
)
