
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchgen/mcnc.cpp" "CMakeFiles/dvs.dir/src/benchgen/mcnc.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/benchgen/mcnc.cpp.o.d"
  "/root/repo/src/benchgen/random_dag.cpp" "CMakeFiles/dvs.dir/src/benchgen/random_dag.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/benchgen/random_dag.cpp.o.d"
  "/root/repo/src/benchgen/structured.cpp" "CMakeFiles/dvs.dir/src/benchgen/structured.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/benchgen/structured.cpp.o.d"
  "/root/repo/src/core/boundary.cpp" "CMakeFiles/dvs.dir/src/core/boundary.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/boundary.cpp.o.d"
  "/root/repo/src/core/cvs.cpp" "CMakeFiles/dvs.dir/src/core/cvs.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/cvs.cpp.o.d"
  "/root/repo/src/core/design.cpp" "CMakeFiles/dvs.dir/src/core/design.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/design.cpp.o.d"
  "/root/repo/src/core/dscale.cpp" "CMakeFiles/dvs.dir/src/core/dscale.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/dscale.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "CMakeFiles/dvs.dir/src/core/flow.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/flow.cpp.o.d"
  "/root/repo/src/core/gscale.cpp" "CMakeFiles/dvs.dir/src/core/gscale.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/gscale.cpp.o.d"
  "/root/repo/src/core/job.cpp" "CMakeFiles/dvs.dir/src/core/job.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/job.cpp.o.d"
  "/root/repo/src/core/report.cpp" "CMakeFiles/dvs.dir/src/core/report.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/report.cpp.o.d"
  "/root/repo/src/core/sizing.cpp" "CMakeFiles/dvs.dir/src/core/sizing.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/sizing.cpp.o.d"
  "/root/repo/src/core/suite.cpp" "CMakeFiles/dvs.dir/src/core/suite.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/suite.cpp.o.d"
  "/root/repo/src/core/sweep_matrix.cpp" "CMakeFiles/dvs.dir/src/core/sweep_matrix.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/core/sweep_matrix.cpp.o.d"
  "/root/repo/src/graph/antichain.cpp" "CMakeFiles/dvs.dir/src/graph/antichain.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/graph/antichain.cpp.o.d"
  "/root/repo/src/graph/dinic.cpp" "CMakeFiles/dvs.dir/src/graph/dinic.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/graph/dinic.cpp.o.d"
  "/root/repo/src/graph/edmonds_karp.cpp" "CMakeFiles/dvs.dir/src/graph/edmonds_karp.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/graph/edmonds_karp.cpp.o.d"
  "/root/repo/src/graph/flow_network.cpp" "CMakeFiles/dvs.dir/src/graph/flow_network.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/graph/flow_network.cpp.o.d"
  "/root/repo/src/graph/reachability.cpp" "CMakeFiles/dvs.dir/src/graph/reachability.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/graph/reachability.cpp.o.d"
  "/root/repo/src/graph/separator.cpp" "CMakeFiles/dvs.dir/src/graph/separator.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/graph/separator.cpp.o.d"
  "/root/repo/src/library/compass.cpp" "CMakeFiles/dvs.dir/src/library/compass.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/library/compass.cpp.o.d"
  "/root/repo/src/library/level_converter.cpp" "CMakeFiles/dvs.dir/src/library/level_converter.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/library/level_converter.cpp.o.d"
  "/root/repo/src/library/library.cpp" "CMakeFiles/dvs.dir/src/library/library.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/library/library.cpp.o.d"
  "/root/repo/src/library/supply.cpp" "CMakeFiles/dvs.dir/src/library/supply.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/library/supply.cpp.o.d"
  "/root/repo/src/library/voltage_model.cpp" "CMakeFiles/dvs.dir/src/library/voltage_model.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/library/voltage_model.cpp.o.d"
  "/root/repo/src/netlist/blif.cpp" "CMakeFiles/dvs.dir/src/netlist/blif.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/netlist/blif.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "CMakeFiles/dvs.dir/src/netlist/dot.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/netlist/dot.cpp.o.d"
  "/root/repo/src/netlist/network.cpp" "CMakeFiles/dvs.dir/src/netlist/network.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/netlist/network.cpp.o.d"
  "/root/repo/src/netlist/stats.cpp" "CMakeFiles/dvs.dir/src/netlist/stats.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/netlist/stats.cpp.o.d"
  "/root/repo/src/netlist/topo.cpp" "CMakeFiles/dvs.dir/src/netlist/topo.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/netlist/topo.cpp.o.d"
  "/root/repo/src/netlist/verilog.cpp" "CMakeFiles/dvs.dir/src/netlist/verilog.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/netlist/verilog.cpp.o.d"
  "/root/repo/src/opt/option_schema.cpp" "CMakeFiles/dvs.dir/src/opt/option_schema.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/opt/option_schema.cpp.o.d"
  "/root/repo/src/opt/passes.cpp" "CMakeFiles/dvs.dir/src/opt/passes.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/opt/passes.cpp.o.d"
  "/root/repo/src/opt/pipeline.cpp" "CMakeFiles/dvs.dir/src/opt/pipeline.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/opt/pipeline.cpp.o.d"
  "/root/repo/src/opt/registry.cpp" "CMakeFiles/dvs.dir/src/opt/registry.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/opt/registry.cpp.o.d"
  "/root/repo/src/power/activity.cpp" "CMakeFiles/dvs.dir/src/power/activity.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/power/activity.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "CMakeFiles/dvs.dir/src/power/power_model.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/power/power_model.cpp.o.d"
  "/root/repo/src/power/report.cpp" "CMakeFiles/dvs.dir/src/power/report.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/power/report.cpp.o.d"
  "/root/repo/src/service/cache.cpp" "CMakeFiles/dvs.dir/src/service/cache.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/cache.cpp.o.d"
  "/root/repo/src/service/design_session.cpp" "CMakeFiles/dvs.dir/src/service/design_session.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/design_session.cpp.o.d"
  "/root/repo/src/service/disk_cache.cpp" "CMakeFiles/dvs.dir/src/service/disk_cache.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/disk_cache.cpp.o.d"
  "/root/repo/src/service/lease.cpp" "CMakeFiles/dvs.dir/src/service/lease.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/lease.cpp.o.d"
  "/root/repo/src/service/protocol.cpp" "CMakeFiles/dvs.dir/src/service/protocol.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/protocol.cpp.o.d"
  "/root/repo/src/service/scheduler.cpp" "CMakeFiles/dvs.dir/src/service/scheduler.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/scheduler.cpp.o.d"
  "/root/repo/src/service/server.cpp" "CMakeFiles/dvs.dir/src/service/server.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/server.cpp.o.d"
  "/root/repo/src/service/session.cpp" "CMakeFiles/dvs.dir/src/service/session.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/session.cpp.o.d"
  "/root/repo/src/service/worker.cpp" "CMakeFiles/dvs.dir/src/service/worker.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/service/worker.cpp.o.d"
  "/root/repo/src/sim/bitsim.cpp" "CMakeFiles/dvs.dir/src/sim/bitsim.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/sim/bitsim.cpp.o.d"
  "/root/repo/src/support/backoff.cpp" "CMakeFiles/dvs.dir/src/support/backoff.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/backoff.cpp.o.d"
  "/root/repo/src/support/fault_inject.cpp" "CMakeFiles/dvs.dir/src/support/fault_inject.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/fault_inject.cpp.o.d"
  "/root/repo/src/support/json.cpp" "CMakeFiles/dvs.dir/src/support/json.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/json.cpp.o.d"
  "/root/repo/src/support/metrics.cpp" "CMakeFiles/dvs.dir/src/support/metrics.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/metrics.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "CMakeFiles/dvs.dir/src/support/rng.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/rng.cpp.o.d"
  "/root/repo/src/support/socket.cpp" "CMakeFiles/dvs.dir/src/support/socket.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/socket.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "CMakeFiles/dvs.dir/src/support/thread_pool.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/thread_pool.cpp.o.d"
  "/root/repo/src/support/trace.cpp" "CMakeFiles/dvs.dir/src/support/trace.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/trace.cpp.o.d"
  "/root/repo/src/support/units.cpp" "CMakeFiles/dvs.dir/src/support/units.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/support/units.cpp.o.d"
  "/root/repo/src/synth/decompose.cpp" "CMakeFiles/dvs.dir/src/synth/decompose.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/synth/decompose.cpp.o.d"
  "/root/repo/src/synth/mapper.cpp" "CMakeFiles/dvs.dir/src/synth/mapper.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/synth/mapper.cpp.o.d"
  "/root/repo/src/synth/sweep.cpp" "CMakeFiles/dvs.dir/src/synth/sweep.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/synth/sweep.cpp.o.d"
  "/root/repo/src/timing/cpn.cpp" "CMakeFiles/dvs.dir/src/timing/cpn.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/timing/cpn.cpp.o.d"
  "/root/repo/src/timing/graph.cpp" "CMakeFiles/dvs.dir/src/timing/graph.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/timing/graph.cpp.o.d"
  "/root/repo/src/timing/incremental.cpp" "CMakeFiles/dvs.dir/src/timing/incremental.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/timing/incremental.cpp.o.d"
  "/root/repo/src/timing/loads.cpp" "CMakeFiles/dvs.dir/src/timing/loads.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/timing/loads.cpp.o.d"
  "/root/repo/src/timing/reference.cpp" "CMakeFiles/dvs.dir/src/timing/reference.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/timing/reference.cpp.o.d"
  "/root/repo/src/timing/sta.cpp" "CMakeFiles/dvs.dir/src/timing/sta.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/timing/sta.cpp.o.d"
  "/root/repo/src/timing/tcb.cpp" "CMakeFiles/dvs.dir/src/timing/tcb.cpp.o" "gcc" "CMakeFiles/dvs.dir/src/timing/tcb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
