# Empty dependencies file for dvs.
# This may be replaced when dependencies are built.
