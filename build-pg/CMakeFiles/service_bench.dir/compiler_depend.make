# Empty compiler generated dependencies file for service_bench.
# This may be replaced when dependencies are built.
