file(REMOVE_RECURSE
  "CMakeFiles/service_bench.dir/bench/service_bench.cpp.o"
  "CMakeFiles/service_bench.dir/bench/service_bench.cpp.o.d"
  "service_bench"
  "service_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
