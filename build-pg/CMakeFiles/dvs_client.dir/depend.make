# Empty dependencies file for dvs_client.
# This may be replaced when dependencies are built.
