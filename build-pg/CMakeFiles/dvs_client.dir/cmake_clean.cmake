file(REMOVE_RECURSE
  "CMakeFiles/dvs_client.dir/tools/dvs_client.cpp.o"
  "CMakeFiles/dvs_client.dir/tools/dvs_client.cpp.o.d"
  "dvs-client"
  "dvs-client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
