# Empty dependencies file for perf_engines.
# This may be replaced when dependencies are built.
