file(REMOVE_RECURSE
  "CMakeFiles/perf_engines.dir/bench/perf_engines.cpp.o"
  "CMakeFiles/perf_engines.dir/bench/perf_engines.cpp.o.d"
  "perf_engines"
  "perf_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
