# Empty compiler generated dependencies file for table1_power.
# This may be replaced when dependencies are built.
