file(REMOVE_RECURSE
  "CMakeFiles/table1_power.dir/bench/table1_power.cpp.o"
  "CMakeFiles/table1_power.dir/bench/table1_power.cpp.o.d"
  "table1_power"
  "table1_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
