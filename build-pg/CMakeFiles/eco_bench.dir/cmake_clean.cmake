file(REMOVE_RECURSE
  "CMakeFiles/eco_bench.dir/bench/eco_bench.cpp.o"
  "CMakeFiles/eco_bench.dir/bench/eco_bench.cpp.o.d"
  "eco_bench"
  "eco_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eco_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
