# Empty compiler generated dependencies file for eco_bench.
# This may be replaced when dependencies are built.
