#include "sim/bitsim.hpp"

#include <gtest/gtest.h>

#include "library/library.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

/// Every library cell, simulated as a single-gate network, must agree
/// with its truth table on every input pattern.
class CellSimTest : public ::testing::TestWithParam<int> {};

TEST_P(CellSimTest, MatchesTruthTable) {
  static const Library lib = build_compass_library();
  const Cell& cell = lib.cell(GetParam());
  Network net("cell");
  std::vector<NodeId> pis;
  for (int i = 0; i < cell.num_inputs(); ++i)
    pis.push_back(net.add_input("i" + std::to_string(i)));
  const NodeId g = net.add_gate(cell.function, pis, GetParam());
  net.add_output("y", g);
  BitSimulator sim(net);
  for (std::uint32_t p = 0; p < (1u << cell.num_inputs()); ++p) {
    std::vector<bool> in;
    for (int i = 0; i < cell.num_inputs(); ++i)
      in.push_back((p >> i) & 1u);
    EXPECT_EQ(sim.evaluate(in)[0], cell.function.eval(p))
        << cell.name << " pattern " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellSimTest, ::testing::Range(0, 72));

TEST(BitSim, WordParallelMatchesScalar) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const NodeId g1 = net.add_gate(tt_xor(2), {a, b});
  const NodeId g2 = net.add_gate(tt_mux2(), {g1, a, c});
  net.add_output("y", g2);

  BitSimulator sim(net);
  Rng rng(42);
  const std::uint64_t wa = rng.next_u64(), wb = rng.next_u64(),
                      wc = rng.next_u64();
  const auto values = sim.simulate(std::vector<std::uint64_t>{wa, wb, wc});
  for (int bit = 0; bit < 64; ++bit) {
    const bool ea = (wa >> bit) & 1, eb = (wb >> bit) & 1,
               ec = (wc >> bit) & 1;
    const bool expected = ec ? ea : (ea ^ eb);
    EXPECT_EQ(((values[g2] >> bit) & 1) != 0, expected) << bit;
  }
}

TEST(BitSim, ConstantsSimulateToRails) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId k1 = net.add_constant(true);
  const NodeId g = net.add_gate(tt_and(2), {a, k1});
  net.add_output("y", g);
  BitSimulator sim(net);
  const auto values = sim.simulate(std::vector<std::uint64_t>{0xF0F0ULL});
  EXPECT_EQ(values[k1], ~0ULL);
  EXPECT_EQ(values[g], 0xF0F0ULL);
}

TEST(BitSim, ParityTreeComputesParity) {
  const Library lib = build_compass_library();
  Network net("p");
  std::vector<NodeId> pis;
  for (int i = 0; i < 8; ++i)
    pis.push_back(net.add_input("i" + std::to_string(i)));
  std::vector<NodeId> layer = pis;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(net.add_gate(tt_xor(2), {layer[i], layer[i + 1]}));
    layer = std::move(next);
  }
  net.add_output("p", layer[0]);
  BitSimulator sim(net);
  Rng rng(7);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<bool> in;
    int ones = 0;
    for (int i = 0; i < 8; ++i) {
      in.push_back(rng.next_bool());
      ones += in.back();
    }
    EXPECT_EQ(sim.evaluate(in)[0], (ones % 2) == 1);
  }
}

}  // namespace
}  // namespace dvs
