#include "timing/sta.hpp"

#include <gtest/gtest.h>

#include "timing/tcb.hpp"

namespace dvs {
namespace {

class StaTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  /// Chain of `n` inverters from one PI to one PO.
  Network inv_chain(int n) {
    Network net("chain");
    NodeId prev = net.add_input("a");
    const int inv = lib_.find("inv_d0");
    for (int i = 0; i < n; ++i)
      prev = net.add_gate(tt_inv(), {prev}, inv);
    net.add_output("y", prev);
    return net;
  }
};

TEST_F(StaTest, ChainDelayIsAdditive) {
  const StaResult s3 = run_sta(inv_chain(3), lib_, -1.0);
  const StaResult s6 = run_sta(inv_chain(6), lib_, -1.0);
  EXPECT_GT(s3.worst_arrival, 0.0);
  // Interior stages are identical; doubling the chain roughly doubles the
  // delay (the port-loaded last stage differs, hence the tolerance).
  EXPECT_NEAR(s6.worst_arrival / s3.worst_arrival, 2.0, 0.35);
}

TEST_F(StaTest, SlackZeroEverywhereOnSingleChain) {
  Network net = inv_chain(5);
  const StaResult sta = run_sta(net, lib_, -1.0);
  net.for_each_gate([&](const Node& g) {
    EXPECT_NEAR(sta.slack[g.id], 0.0, 1e-9);
  });
  EXPECT_TRUE(sta.meets_constraint());
  EXPECT_NEAR(sta.worst_slack(), 0.0, 1e-12);
}

TEST_F(StaTest, RelaxedTspecGivesUniformSlack) {
  Network net = inv_chain(5);
  const StaResult tight = run_sta(net, lib_, -1.0);
  const StaResult loose = run_sta(net, lib_, tight.worst_arrival * 1.2);
  net.for_each_gate([&](const Node& g) {
    EXPECT_NEAR(loose.slack[g.id], tight.worst_arrival * 0.2, 1e-9);
  });
}

TEST_F(StaTest, LowVoltageIncreasesArrival) {
  Network net = inv_chain(4);
  const StaResult high = run_sta(net, lib_, -1.0);
  std::vector<double> vdd(net.size(), lib_.vdd_low());
  TimingContext ctx;
  ctx.net = &net;
  ctx.lib = &lib_;
  ctx.node_vdd = vdd;
  const StaResult low = run_sta(ctx, -1.0);
  EXPECT_GT(low.worst_arrival, high.worst_arrival * 1.05);
}

TEST_F(StaTest, LevelConverterAddsArcDelay) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const int inv = lib_.find("inv_d0");
  const NodeId g1 = net.add_gate(tt_inv(), {a}, inv);
  const NodeId g2 = net.add_gate(tt_inv(), {g1}, inv);
  net.add_output("y", g2);

  std::vector<double> vdd(net.size(), lib_.vdd_high());
  vdd[g1] = lib_.vdd_low();
  std::vector<char> lc(net.size(), 0);
  TimingContext ctx;
  ctx.net = &net;
  ctx.lib = &lib_;
  ctx.node_vdd = vdd;
  ctx.lc_on_output = lc;
  const StaResult without = run_sta(ctx, -1.0);
  lc[g1] = 1;
  const StaResult with = run_sta(ctx, -1.0);
  EXPECT_GT(with.worst_arrival, without.worst_arrival + 0.05);
  EXPECT_GT(with.lc_load[g1], 0.0);
}

TEST_F(StaTest, NegativeUnateSwapsEdges) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_gate(tt_inv(), {a}, lib_.find("inv_d0"));
  net.add_output("y", g);
  const StaResult sta = run_sta(net, lib_, -1.0);
  // Output rise is driven by input fall: with zero input arrival both
  // edges are just the arc delays, rise slower than fall by construction.
  EXPECT_GT(sta.arrival[g].rise, sta.arrival[g].fall);
}

TEST_F(StaTest, WorstDelayIncreaseMatchesFactor) {
  const Cell& cell = lib_.cell(lib_.find("nand2_d0"));
  const double load = 10.0;
  const double inc = worst_delay_increase(lib_, cell, lib_.vdd_high(),
                                          lib_.vdd_low(), load);
  const double base = arc_delay(lib_, cell, 0, lib_.vdd_high(), load).max();
  const double scaled = arc_delay(lib_, cell, 0, lib_.vdd_low(), load).max();
  EXPECT_NEAR(inc, scaled - base, 1e-9);
  EXPECT_GT(inc, 0.0);
}

TEST_F(StaTest, TcbOfTightChainIsThePoDriver) {
  Network net = inv_chain(4);
  std::vector<double> vdd(net.size(), lib_.vdd_high());
  TimingContext ctx;
  ctx.net = &net;
  ctx.lib = &lib_;
  ctx.node_vdd = vdd;
  const StaResult sta = run_sta(ctx, -1.0);  // zero slack everywhere
  const std::vector<NodeId> tcb = compute_tcb(ctx, sta);
  ASSERT_EQ(tcb.size(), 1u);
  EXPECT_EQ(tcb[0], net.outputs()[0].driver);
}

TEST_F(StaTest, TcbEmptyWhenEverythingFits) {
  Network net = inv_chain(4);
  std::vector<double> vdd(net.size(), lib_.vdd_high());
  TimingContext ctx;
  ctx.net = &net;
  ctx.lib = &lib_;
  ctx.node_vdd = vdd;
  const StaResult tight = run_sta(ctx, -1.0);
  const StaResult loose = run_sta(ctx, tight.worst_arrival * 2.0);
  EXPECT_TRUE(compute_tcb(ctx, loose).empty());
}

}  // namespace
}  // namespace dvs
