#include "core/gscale.hpp"

#include <gtest/gtest.h>

#include "benchgen/structured.hpp"

namespace dvs {
namespace {

class GscaleTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  Network tight_grid(bool maxed = false, int gates = 100) {
    GridSpec spec;
    spec.gates = gates;
    spec.pis = 10;
    spec.pos = 4;
    spec.slack_branch_fraction = 0.08;
    spec.maxed_sizes = maxed;
    spec.seed = 9;
    return build_balanced_grid(lib_, spec, maxed ? "maxed" : "grid");
  }
};

TEST_F(GscaleTest, CreatesSlackWhereCvsFindsNone) {
  Network net = tight_grid();
  Design cvs_only(net, lib_);
  run_cvs(cvs_only);
  const int cvs_low = cvs_only.count_low();

  Design design(std::move(net), lib_);
  const GscaleResult r = run_gscale(design);
  EXPECT_GT(design.count_low(), cvs_low);
  EXPECT_GT(r.num_resized, 0);
  EXPECT_TRUE(design.run_timing().meets_constraint(1e-9));
}

TEST_F(GscaleTest, RespectsAreaBudget) {
  Network net = tight_grid();
  Design design(std::move(net), lib_);
  GscaleOptions options;
  options.area_budget_ratio = 0.05;
  const GscaleResult r = run_gscale(design, options);
  EXPECT_LE(r.area_increase_ratio, 0.05 + 1e-9);
  EXPECT_LE(design.total_area(),
            design.original_area() * 1.05 + 1e-6);
}

TEST_F(GscaleTest, ZeroBudgetMeansNoResizing) {
  Network net = tight_grid();
  Design design(std::move(net), lib_);
  GscaleOptions options;
  options.area_budget_ratio = 0.0;
  const GscaleResult r = run_gscale(design, options);
  EXPECT_EQ(r.num_resized, 0);
}

TEST_F(GscaleTest, MaxedCircuitCannotImprove) {
  Network net = tight_grid(/*maxed=*/true);
  Design design(std::move(net), lib_);
  const GscaleResult r = run_gscale(design);
  EXPECT_EQ(r.num_resized, 0);
  EXPECT_EQ(design.count_low(), 0);  // no slack was ever created
}

TEST_F(GscaleTest, SizingDisabledDegeneratesToCvs) {
  Network net = tight_grid();
  Design cvs_only(net, lib_);
  run_cvs(cvs_only);
  Design design(std::move(net), lib_);
  GscaleOptions options;
  options.enable_sizing = false;
  run_gscale(design, options);
  EXPECT_EQ(design.count_low(), cvs_only.count_low());
  EXPECT_EQ(design.count_resized(), 0);
}

TEST_F(GscaleTest, ImprovesPowerOnZeroSlackCircuit) {
  Network net = tight_grid();
  Design baseline(net, lib_);
  Design design(std::move(net), lib_);
  run_gscale(design);
  EXPECT_LT(design.run_power().total(),
            baseline.run_power().total());
}

TEST_F(GscaleTest, RandomCutSelectorIsSoundButWorse) {
  Network net = tight_grid();
  Design minsep(net, lib_);
  Design random(std::move(net), lib_);
  GscaleOptions options;
  options.selector = GscaleOptions::CutSelector::kRandomCut;
  run_gscale(minsep);
  run_gscale(random, options);
  EXPECT_TRUE(random.run_timing().meets_constraint(1e-9));
  // Min-weight cuts spend the area budget more efficiently; allow slack
  // for ties on small circuits.
  EXPECT_GE(minsep.count_low() + 8, random.count_low());
}

TEST_F(GscaleTest, ClusterInvariantStillHolds) {
  Network net = tight_grid();
  Design design(std::move(net), lib_);
  run_gscale(design);
  EXPECT_TRUE(cvs_cluster_invariant_holds(design));
  EXPECT_EQ(design.count_lcs(), 0);
}

}  // namespace
}  // namespace dvs
