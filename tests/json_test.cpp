// The dvsd wire format rests on support/json: exact integer round trips
// (seeds), canonical (sorted-key) serialization for cache hashing, and
// strict rejection of malformed documents.
#include <gtest/gtest.h>

#include <string>

#include "support/json.hpp"

namespace dvs {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null").dump(), "null");
  EXPECT_EQ(Json::parse("true").dump(), "true");
  EXPECT_EQ(Json::parse("false").dump(), "false");
  EXPECT_EQ(Json::parse("0").dump(), "0");
  EXPECT_EQ(Json::parse("-42").dump(), "-42");
  EXPECT_EQ(Json::parse("\"hi\"").dump(), "\"hi\"");
  EXPECT_DOUBLE_EQ(Json::parse("1.5e3").as_double(), 1500.0);
}

TEST(Json, SixtyFourBitIntegersAreExact) {
  // Would be mangled by a double: 2^64 - 1 and 2^63.
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint(),
            18446744073709551615ULL);
  EXPECT_EQ(Json::parse("18446744073709551615").dump(),
            "18446744073709551615");
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int(), INT64_MIN);
  EXPECT_EQ(Json(std::uint64_t{0x5eed}).dump(), "24301");
}

TEST(Json, ObjectKeysSerializeSorted) {
  const Json parsed = Json::parse(R"({"b":1,"a":2,"c":{"z":0,"y":1}})");
  EXPECT_EQ(parsed.dump(), R"({"a":2,"b":1,"c":{"y":1,"z":0}})");
  // Same logical value, different input order -> identical bytes: the
  // property the cache-key hashing relies on.
  EXPECT_EQ(Json::parse(R"({"a":2,"c":{"y":1,"z":0},"b":1})").dump(),
            parsed.dump());
}

TEST(Json, StringEscapes) {
  const Json parsed = Json::parse(R"("line\nfeed\t\"q\" \\ \u0041")");
  EXPECT_EQ(parsed.as_string(), "line\nfeed\t\"q\" \\ A");
  // Control characters re-escape on dump.
  EXPECT_EQ(Json(std::string("a\nb")).dump(), "\"a\\nb\"");
  // Surrogate pair -> UTF-8.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, Arrays) {
  const Json parsed = Json::parse("[1, [2, 3], {\"k\": []}]");
  ASSERT_TRUE(parsed.is_array());
  EXPECT_EQ(parsed.as_array().size(), 3u);
  EXPECT_EQ(parsed.dump(), R"([1,[2,3],{"k":[]}])");
}

TEST(Json, FindAndAccessors) {
  const Json parsed = Json::parse(R"({"seed": 7, "name": "b9"})");
  ASSERT_NE(parsed.find("seed"), nullptr);
  EXPECT_EQ(parsed.find("seed")->as_uint(), 7u);
  EXPECT_EQ(parsed.find("missing"), nullptr);
  EXPECT_THROW(parsed.find("name")->as_uint(), JsonError);
  EXPECT_THROW(parsed.as_array(), JsonError);
}

TEST(Json, MalformedDocumentsThrow) {
  const char* bad[] = {
      "",           "{",        "[1,",      "{\"a\":}",  "tru",
      "nul",        "01x",      "\"open",   "{\"a\" 1}", "[1 2]",
      "{}extra",    "\"\\q\"",  "\"\\u12\"", "-",        "1-2",
      "[1,2,,3]",   "{1: 2}",   "\"\\ud800\"",
      // RFC 8259 number strictness and duplicate-key rejection.
      "+5",         "01",       ".5",       "5.",        "1e",
      "1e+",        "--1",      "{\"a\":1,\"a\":2}",
  };
  for (const char* text : bad)
    EXPECT_THROW(Json::parse(text), JsonError) << "input: " << text;
}

TEST(Json, OutOfRangeDoubleToIntConversionsThrow) {
  // Casting an unrepresentable double would be UB; these arrive from
  // untrusted network input, so they must throw instead.
  EXPECT_THROW(Json::parse("1e300").as_int(), JsonError);
  EXPECT_THROW(Json::parse("2e19").as_int(), JsonError);
  EXPECT_THROW(Json::parse("1e300").as_uint(), JsonError);
  EXPECT_THROW(Json::parse("-1.5").as_uint(), JsonError);
  EXPECT_EQ(Json::parse("1e15").as_int(), 1000000000000000LL);
}

TEST(Json, NonFiniteNumbersAreRejectedBothWays) {
  // JSON has no inf/nan: overflowing literals must not parse to inf,
  // and non-finite doubles must refuse to serialize.
  EXPECT_THROW(Json::parse("1e400"), JsonError);
  EXPECT_THROW(Json::parse("-1e400"), JsonError);
  EXPECT_THROW(Json(1.0 / 0.0).dump(), JsonError);
  EXPECT_THROW(Json(0.0 / 0.0).dump(), JsonError);
}

TEST(Json, NestingDepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(Json, RawControlCharactersRejected) {
  EXPECT_THROW(Json::parse("\"a\nb\""), JsonError);
}

TEST(Json, Fnv1a64KnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("{\"a\":1}"), fnv1a64("{\"a\":2}"));
}

}  // namespace
}  // namespace dvs
