#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/json.hpp"
#include "support/trace.hpp"

namespace dvs {
namespace {

// ---- histogram bucket math ----------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1.0
  h.observe(1.0);  // le semantics: lands in the 1.0 bucket, not 2.0
  h.observe(1.5);  // <= 2.0
  h.observe(4.0);  // <= 4.0
  h.observe(9.0);  // +Inf overflow
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);  // + overflow slot
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(HistogramTest, MergeAddsBucketsCountsAndSums) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.observe(0.5);
  a.observe(5.0);
  b.observe(5.0);
  b.observe(50.0);
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 2u);
  EXPECT_EQ(merged.counts[2], 1u);
  EXPECT_EQ(merged.count, 4u);
  EXPECT_DOUBLE_EQ(merged.sum, 60.5);
}

TEST(HistogramTest, QuantileInterpolatesInsideTheBucket) {
  // 4 observations spread one per bucket of {1,2,3,4}: the empirical
  // distribution is uniform over the buckets, so the median rank (2 of 4)
  // is reached exactly at the end of the second bucket.
  Histogram h({1.0, 2.0, 3.0, 4.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(2.5);
  h.observe(3.5);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 2.0);
  // q=0.25 needs rank 1, reached at the end of bucket [0,1].
  EXPECT_DOUBLE_EQ(snap.quantile(0.25), 1.0);
  // q=0.375 is halfway into the second bucket (rank 1.5 of the 1
  // observation living in (1,2]): linear interpolation gives 1.5.
  EXPECT_DOUBLE_EQ(snap.quantile(0.375), 1.5);
  // Everything past the last finite bound clamps to it.
  Histogram overflow({1.0});
  overflow.observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.snapshot().quantile(0.99), 1.0);
  // Empty histogram reports 0.
  EXPECT_DOUBLE_EQ(Histogram({1.0}).snapshot().quantile(0.5), 0.0);
}

TEST(HistogramTest, ExponentialBoundsGrowGeometrically) {
  const std::vector<double> bounds =
      Histogram::exponential_bounds(0.5, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.5);
  EXPECT_DOUBLE_EQ(bounds[1], 1.0);
  EXPECT_DOUBLE_EQ(bounds[2], 2.0);
  EXPECT_DOUBLE_EQ(bounds[3], 4.0);
  const std::vector<double> defaults =
      MetricsRegistry::default_latency_bounds_ms();
  ASSERT_FALSE(defaults.empty());
  for (std::size_t i = 1; i < defaults.size(); ++i)
    EXPECT_GT(defaults[i], defaults[i - 1]);
}

// ---- exposition format ---------------------------------------------------

TEST(MetricsTest, EscapesLabelValues) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("line\nbreak"), "line\\nbreak");
}

TEST(MetricsTest, RendersLabelSetsSorted) {
  EXPECT_EQ(render_label_set({}), "");
  EXPECT_EQ(render_label_set({{"zeta", "1"}, {"alpha", "2"}}),
            "{alpha=\"2\",zeta=\"1\"}");
}

TEST(MetricsTest, CounterAndGaugeExposition) {
  MetricsRegistry registry;
  registry.counter("test_requests_total", "requests served").inc(3);
  registry.gauge("test_depth", "queue depth").set(2.5);
  registry
      .counter("test_requests_total", "requests served",
               {{"tier", "disk"}})
      .inc();
  const std::string text = registry.exposition();
  EXPECT_NE(text.find("# HELP test_requests_total requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("test_requests_total{tier=\"disk\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_depth 2.5\n"), std::string::npos);
}

TEST(MetricsTest, HistogramExpositionIsCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram& h =
      registry.histogram("test_lat_ms", "latency", {}, {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);
  const std::string text = registry.exposition();
  EXPECT_NE(text.find("# TYPE test_lat_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_ms_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_lat_ms_sum 12\n"), std::string::npos);
  EXPECT_NE(text.find("test_lat_ms_count 3\n"), std::string::npos);
}

TEST(MetricsTest, SameNameAndLabelsReturnTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("test_total", "help");
  Counter& b = registry.counter("test_total", "help");
  EXPECT_EQ(&a, &b);
  Counter& labeled =
      registry.counter("test_total", "help", {{"k", "v"}});
  EXPECT_NE(&a, &labeled);
  EXPECT_THROW(registry.gauge("test_total", "help"), std::logic_error);
}

TEST(MetricsTest, CollectorsRunBeforeExposition) {
  MetricsRegistry registry;
  Gauge& mirrored = registry.gauge("test_mirror", "mirrored value");
  int source = 0;
  registry.register_collector([&] {
    mirrored.set(static_cast<double>(source));
  });
  source = 41;
  EXPECT_NE(registry.exposition().find("test_mirror 41\n"),
            std::string::npos);
  source = 42;
  EXPECT_NE(registry.exposition().find("test_mirror 42\n"),
            std::string::npos);
}

TEST(MetricsTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test_conc_total", "x");
  Histogram& hist =
      registry.histogram("test_conc_ms", "x", {}, {1.0, 2.0, 4.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        counter.inc();
        hist.observe(static_cast<double>(i % 5));
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), 40000u);
  EXPECT_EQ(hist.snapshot().count, 40000u);
}

// ---- request traces ------------------------------------------------------

TEST(TraceTest, SpansSortByStartEvenWhenAddedOutOfOrder) {
  const auto epoch = RequestTrace::Clock::now();
  RequestTrace trace(epoch);
  using std::chrono::milliseconds;
  // Appended in completion order (out of order), as batch workers do.
  trace.add("execute", epoch + milliseconds(10), epoch + milliseconds(30));
  trace.add("queue_wait", epoch, epoch + milliseconds(10));
  trace.add("pass:cvs", epoch + milliseconds(12), epoch + milliseconds(20),
            1);
  trace.add("respond", epoch + milliseconds(30), epoch + milliseconds(31));
  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "queue_wait");
  EXPECT_EQ(spans[1].name, "execute");
  EXPECT_EQ(spans[2].name, "pass:cvs");
  EXPECT_EQ(spans[2].depth, 1);
  EXPECT_EQ(spans[3].name, "respond");
  // Depth-0 phases tile the request: their durations sum to the wall.
  EXPECT_NEAR(trace.phase_total_ms(), 31.0, 1e-6);
  const Json json = trace.json();
  ASSERT_EQ(json.as_array().size(), 4u);
  EXPECT_EQ(json.as_array()[0].find("name")->as_string(), "queue_wait");
  EXPECT_NEAR(json.as_array()[1].find("dur_ms")->as_double(), 20.0, 1e-6);
}

TEST(TraceTest, TraceLogWritesOneJsonRecordPerLine) {
  const std::string path = ::testing::TempDir() + "trace_log_test.ndjson";
  std::remove(path.c_str());
  {
    TraceLog log(path);
    Json::Object record;
    record["type"] = Json("optimize");
    record["wall_ms"] = Json(1.5);
    log.write(Json(std::move(record)));
    Json::Object second;
    second["type"] = Json("batch_item");
    log.write(Json(std::move(second)));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> types;
  while (std::getline(in, line))
    types.push_back(Json::parse(line).find("type")->as_string());
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], "optimize");
  EXPECT_EQ(types[1], "batch_item");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dvs
