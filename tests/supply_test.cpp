// The supply-ladder subsystem: validation and its schema-verbatim error
// texts, canonical spelling/fingerprint stability across input forms,
// the positional converter policy, per-rung factor tables, and the
// ladder's coupling into Library (threshold check, fingerprint) and
// Design (assignment, per-level stats, boundary flags).
#include "library/supply.hpp"

#include <gtest/gtest.h>

#include "core/boundary.hpp"
#include "core/cvs.hpp"
#include "core/design.hpp"

namespace dvs {
namespace {

// ---- validation -----------------------------------------------------------

TEST(SupplyLadder, DefaultIsThePaperOperatingPoint) {
  const SupplyLadder ladder;
  EXPECT_EQ(ladder.depth(), 2);
  EXPECT_DOUBLE_EQ(ladder.top(), 5.0);
  EXPECT_DOUBLE_EQ(ladder.bottom(), 4.3);
  EXPECT_EQ(ladder.deepest(), SupplyId{1});
}

TEST(SupplyLadder, RejectsBadShapesWithSchemaText) {
  const auto error_of = [](std::vector<double> voltages) {
    try {
      SupplyLadder ladder(std::move(voltages));
      return std::string("(accepted)");
    } catch (const SupplyError& e) {
      return std::string(e.what());
    }
  };
  EXPECT_EQ(error_of({5.0}), "supplies must list between 2 and 8 voltages");
  EXPECT_EQ(error_of({9, 8, 7, 6, 5, 4, 3, 2, 1.5}),
            "supplies must list between 2 and 8 voltages");
  EXPECT_EQ(error_of({4.3, 5.0}), "supplies must be strictly descending");
  EXPECT_EQ(error_of({5.0, 5.0}), "supplies must be strictly descending");
  EXPECT_EQ(error_of({5.0, 0.5}), "supplies out of range");
  EXPECT_EQ(error_of({12.0, 5.0}), "supplies out of range");
}

TEST(SupplyLadder, ParserAcceptsCsvAndRejectsJunk) {
  const SupplyLadder ladder = parse_supply_ladder(" 5.0, 4.3 ,3.6");
  EXPECT_EQ(ladder.depth(), 3);
  EXPECT_DOUBLE_EQ(ladder.voltage(SupplyId{2}), 3.6);
  EXPECT_THROW(parse_supply_ladder(""), SupplyError);
  EXPECT_THROW(parse_supply_ladder("5.0,"), SupplyError);
  EXPECT_THROW(parse_supply_ladder("5.0,4.3V"), SupplyError);
  EXPECT_THROW(parse_supply_ladder("5.0 4.3"), SupplyError);
}

// ---- canonical forms ------------------------------------------------------

TEST(SupplyLadder, CanonicalSpecIsAParseFixpoint) {
  for (const char* text : {"5,4.3", "5.0,4.30,3.600", "4.99,4.0,3.5,3.0"}) {
    const SupplyLadder ladder = parse_supply_ladder(text);
    EXPECT_EQ(parse_supply_ladder(ladder.spec()), ladder) << text;
    EXPECT_EQ(parse_supply_ladder(ladder.spec()).spec(), ladder.spec());
  }
  EXPECT_EQ(parse_supply_ladder("5.0,4.30").spec(), "5,4.3");
}

TEST(SupplyLadder, FingerprintTracksVoltagesNotSpelling) {
  const SupplyLadder a = parse_supply_ladder("5.0,4.3,3.6");
  const SupplyLadder b =
      supply_ladder_from_json(Json::parse("[5, 4.3, 3.6]"));
  const SupplyLadder c = supply_ladder_from_json(Json("5,4.30,3.60"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
  EXPECT_NE(a.fingerprint(), SupplyLadder({5.0, 4.3}).fingerprint());
  EXPECT_NE(a.fingerprint(), SupplyLadder({5.0, 4.3, 3.7}).fingerprint());
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

// ---- converter policy and factors -----------------------------------------

TEST(SupplyLadder, ConverterNeededOnlyOnUpwardBoundaries) {
  // driver deeper than sink (sink at higher voltage) => converter.
  EXPECT_TRUE(SupplyLadder::converter_needed(SupplyId{1}, SupplyId{0}));
  EXPECT_TRUE(SupplyLadder::converter_needed(SupplyId{2}, SupplyId{0}));
  EXPECT_TRUE(SupplyLadder::converter_needed(SupplyId{2}, SupplyId{1}));
  // Same rung or stepping down: never.
  EXPECT_FALSE(SupplyLadder::converter_needed(SupplyId{0}, SupplyId{0}));
  EXPECT_FALSE(SupplyLadder::converter_needed(SupplyId{0}, SupplyId{2}));
  EXPECT_FALSE(SupplyLadder::converter_needed(SupplyId{1}, SupplyId{2}));
}

TEST(SupplyLadder, FactorTablesMatchTheModelPerRung) {
  const SupplyLadder ladder({5.0, 4.3, 3.6});
  const VoltageModel vm;
  const std::vector<double> delay = ladder.delay_factors(vm);
  const std::vector<double> energy = ladder.energy_factors(vm);
  ASSERT_EQ(delay.size(), 3u);
  for (SupplyId r = 0; r < 3; ++r) {
    EXPECT_EQ(delay[r], vm.delay_factor(ladder.voltage(r)));
    EXPECT_EQ(energy[r], vm.energy_factor(ladder.voltage(r)));
  }
  // Deeper rungs are slower and cheaper, monotonically.
  EXPECT_LT(delay[0], delay[1]);
  EXPECT_LT(delay[1], delay[2]);
  EXPECT_GT(energy[0], energy[1]);
  EXPECT_GT(energy[1], energy[2]);
}

TEST(SupplyLadder, RungNamesAndCountsJson) {
  EXPECT_EQ(supply_rung_name(SupplyId{0}, 3), "high");
  EXPECT_EQ(supply_rung_name(SupplyId{1}, 3), "v1");
  EXPECT_EQ(supply_rung_name(SupplyId{2}, 3), "low");
  EXPECT_EQ(supply_rung_name(SupplyId{1}, 2), "low");
  EXPECT_EQ(supply_counts_json({7, 2, 1}).dump(), "[7,2,1]");
  EXPECT_EQ(std::string(kLowGatesKey), "low");
}

// ---- library / design coupling --------------------------------------------

TEST(SupplyLadder, LibraryRejectsLaddersBelowThreshold) {
  Library lib = build_compass_library();
  // Threshold is 0.8V for the compass model; parse-valid ladders whose
  // bottom clears it install fine.
  lib.set_supply_ladder(SupplyLadder({5.0, 4.3, 3.6}));
  EXPECT_EQ(lib.supplies().depth(), 3);
  EXPECT_DOUBLE_EQ(lib.vdd_high(), 5.0);
  EXPECT_DOUBLE_EQ(lib.vdd_low(), 3.6);
  // A model with a higher threshold rejects the same ladder verbatim.
  Library strict = build_compass_library();
  strict.voltage_model().vt = 3.8;
  EXPECT_THROW(strict.set_supply_ladder(SupplyLadder({5.0, 4.3, 3.6})),
               SupplyError);
}

TEST(SupplyLadder, DesignTracksRungsAndBoundaries) {
  Library lib = build_compass_library();
  lib.set_supply_ladder(SupplyLadder({5.0, 4.3, 3.6}));

  // chain: a -> g1 -> g2 -> po, plus g1 -> g3 -> po2.
  Network net("t");
  const NodeId a = net.add_input("a");
  const int inv = lib.find("inv_d0");
  const NodeId g1 = net.add_gate(tt_inv(), {a}, inv);
  const NodeId g2 = net.add_gate(tt_inv(), {g1}, inv);
  const NodeId g3 = net.add_gate(tt_inv(), {g1}, inv);
  net.add_output("y", g2);
  net.add_output("z", g3);
  Design design(std::move(net), lib);

  // Middle rung: node_vdd follows the ladder voltage exactly.
  design.set_level(g1, SupplyId{1});
  EXPECT_EQ(design.node_vdd()[g1], lib.supplies().voltage(SupplyId{1}));
  // g1 at rung 1 feeding rung-0 sinks: upward boundary, converter.
  EXPECT_TRUE(design.needs_lc(g1));
  // Sinks dropped to the same rung: boundary gone.
  design.set_level(g2, SupplyId{1});
  design.set_level(g3, SupplyId{1});
  EXPECT_FALSE(design.needs_lc(g1));
  // Sinks even deeper than the driver: still no converter (step-down).
  design.set_level(g2, SupplyId{2});
  design.set_level(g3, SupplyId{2});
  EXPECT_FALSE(design.needs_lc(g1));
  // But a deep driver under a shallower sink needs one again.
  design.set_level(g1, SupplyId{2});
  design.set_level(g2, SupplyId{1});
  EXPECT_TRUE(design.needs_lc(g1));

  // Per-level stats add up.
  const std::vector<int> counts = design.count_per_level();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 1);  // g2
  EXPECT_EQ(counts[2], 2);  // g1, g3
  EXPECT_EQ(design.count_low(), 3);
  EXPECT_EQ(design.count_at(SupplyId{2}), 2);

  // Materialization inserts real converters only on the upward edges.
  std::vector<char> low_mask;
  const Network out = materialize_level_converters(design, &low_mask);
  int converters = 0;
  out.for_each_gate([&](const Node& g) {
    if (g.cell >= 0 && lib.cell(g.cell).is_level_converter) ++converters;
  });
  EXPECT_EQ(converters, 1);
  EXPECT_TRUE(low_mask[g1]);
}

TEST(SupplyLadder, CvsOnThreeLevelsKeepsClusterInvariant) {
  Library lib = build_compass_library();
  lib.set_supply_ladder(SupplyLadder({5.0, 4.3, 3.6}));
  // A slack-rich chain lets CVS use the deepest rung; the cluster
  // invariant (no gate deeper than any of its fanouts, zero converters)
  // must hold rung-wise.
  Network net("chain");
  NodeId prev = net.add_input("a");
  const int inv = lib.find("inv_d0");
  for (int i = 0; i < 6; ++i)
    prev = net.add_gate(tt_inv(), {prev}, inv);
  net.add_output("y", prev);
  Design design(std::move(net), lib);
  design.set_tspec(design.tspec() * 2.0);  // generous slack
  const CvsResult result = run_cvs(design);
  EXPECT_GT(result.num_lowered, 0);
  EXPECT_TRUE(cvs_cluster_invariant_holds(design));
  EXPECT_EQ(design.count_lcs(), 0);
  // With that much slack the PO-side gates reach the deepest rung.
  EXPECT_GT(design.count_at(SupplyId{2}), 0);
  EXPECT_TRUE(design.run_timing().meets_constraint(1e-9));
}

}  // namespace
}  // namespace dvs
