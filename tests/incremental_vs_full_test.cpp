// Randomized property test for the incremental STA: commit hundreds of
// random supply / cell-size / level-converter flips on random-DAG
// circuits and require the event-driven state to match a from-scratch
// analysis after every single commit.  This is the contract the Dscale /
// Gscale hot loops (and CVS) lean on.
#include <gtest/gtest.h>

#include "dual_ladder.hpp"

#include <cmath>

#include "benchgen/random_dag.hpp"
#include "core/design.hpp"
#include "support/rng.hpp"
#include "timing/incremental.hpp"
#include "timing/reference.hpp"

namespace dvs {
namespace {

class IncrementalVsFullTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  Network random_circuit(std::uint64_t seed, double critical_fraction) {
    HybridSpec spec;
    spec.gates = 160;
    spec.pis = 16;
    spec.pos = 8;
    spec.critical_fraction = critical_fraction;
    spec.seed = seed;
    return build_hybrid_circuit(lib_, spec,
                                "rnd" + std::to_string(seed));
  }

  /// One random mutation: a supply flip (which also migrates the derived
  /// level-converter flags on the gate and its fanins) or a one-step
  /// resize.  Returns the changed node, or kNoNode if the draw found
  /// nothing applicable.
  NodeId random_flip(Design& design, Rng& rng) {
    const Network& net = design.network();
    std::vector<NodeId> gates;
    net.for_each_gate([&](const Node& g) {
      if (g.cell >= 0) gates.push_back(g.id);
    });
    if (gates.empty()) return kNoNode;
    const NodeId id = gates[rng.next_below(gates.size())];
    switch (rng.next_below(3)) {
      case 0:  // supply flip: low <-> high, LC flags follow
        design.set_level(id, design.level(id) == kTopRung
                                 ? kLowRung
                                 : kTopRung);
        return id;
      case 1: {  // upsize one drive step
        const int up = lib_.upsize(net.node(id).cell);
        if (up < 0) return kNoNode;
        design.network().set_cell(id, up);
        return id;
      }
      default: {  // downsize one drive step
        const int down = lib_.downsize(net.node(id).cell);
        if (down < 0) return kNoNode;
        design.network().set_cell(id, down);
        return id;
      }
    }
  }
};

TEST_F(IncrementalVsFullTest, TwoHundredRandomFlipsStayConsistent) {
  Rng rng(2024);
  Network net = random_circuit(77, 0.4);
  Design design(std::move(net), lib_);
  IncrementalSta timer(design.timing_context(), design.tspec());
  ASSERT_TRUE(timer.matches_full_sta());

  int committed = 0;
  while (committed < 200) {
    const NodeId id = random_flip(design, rng);
    if (id == kNoNode) continue;
    timer.on_node_changed(id);
    ++committed;
    ASSERT_TRUE(timer.matches_full_sta(1e-9))
        << "diverged after commit " << committed << " (node " << id << ")";
  }
}

TEST_F(IncrementalVsFullTest, HoldsAcrossCircuitShapes) {
  // Shallow slack-rich and deep critical circuits stress different event
  // fan-outs; 60 flips each.
  for (const double critical : {0.0, 0.5, 0.9}) {
    Rng rng(1234 + static_cast<std::uint64_t>(critical * 10));
    Network net = random_circuit(500 + static_cast<int>(critical * 10),
                                 critical);
    Design design(std::move(net), lib_);
    IncrementalSta timer(design.timing_context(), design.tspec());
    int committed = 0;
    while (committed < 60) {
      const NodeId id = random_flip(design, rng);
      if (id == kNoNode) continue;
      timer.on_node_changed(id);
      ++committed;
      ASSERT_TRUE(timer.matches_full_sta(1e-9))
          << "critical=" << critical << " commit=" << committed;
    }
  }
}

/// The compiled-graph STA and the seed reference oracle must agree to
/// the last bit — rise/fall arrivals, requireds, loads, slacks.
void expect_exactly_reference(const Design& design) {
  const TimingContext ctx = design.timing_context();
  const StaResult flat = run_sta(ctx, design.tspec());
  const StaResult oracle = run_sta_reference(ctx, design.tspec());
  ASSERT_EQ(flat.worst_arrival, oracle.worst_arrival);
  design.network().for_each_node([&](const Node& n) {
    const NodeId i = n.id;
    ASSERT_EQ(flat.arrival[i].rise, oracle.arrival[i].rise) << i;
    ASSERT_EQ(flat.arrival[i].fall, oracle.arrival[i].fall) << i;
    ASSERT_EQ(flat.lc_arrival[i].rise, oracle.lc_arrival[i].rise) << i;
    ASSERT_EQ(flat.load[i], oracle.load[i]) << i;
    ASSERT_EQ(flat.lc_load[i], oracle.lc_load[i]) << i;
    if (!std::isinf(oracle.required[i].rise))
      ASSERT_EQ(flat.required[i].rise, oracle.required[i].rise) << i;
    if (!std::isinf(oracle.slack[i]))
      ASSERT_EQ(flat.slack[i], oracle.slack[i]) << i;
  });
}

TEST_F(IncrementalVsFullTest, ThreeLevelRandomFlipsMatchReferenceExactly) {
  // N-level ladders put converters on arbitrary upward rung boundaries
  // (rung 2 -> rung 1, rung 1 -> rung 0, rung 2 -> rung 0); every one of
  // them must time identically in the incremental engine, the flat
  // graph STA, and the seed reference oracle.
  Library lib3 = build_compass_library();
  lib3.set_supply_ladder(SupplyLadder({5.0, 4.3, 3.6}));
  HybridSpec spec;
  spec.gates = 160;
  spec.pis = 16;
  spec.pos = 8;
  spec.critical_fraction = 0.4;
  spec.seed = 314;
  Network net = build_hybrid_circuit(lib3, spec, "rnd3");
  Design design(std::move(net), lib3);
  IncrementalSta timer(design.timing_context(), design.tspec());
  ASSERT_TRUE(timer.matches_full_sta());
  expect_exactly_reference(design);

  std::vector<NodeId> gates;
  design.network().for_each_gate([&](const Node& g) {
    if (g.cell >= 0) gates.push_back(g.id);
  });
  ASSERT_FALSE(gates.empty());

  Rng rng(777);
  const SupplyId depth = static_cast<SupplyId>(lib3.supplies().depth());
  for (int committed = 0; committed < 120; ++committed) {
    const NodeId id = gates[rng.next_below(gates.size())];
    // Uniform re-draw over all three rungs, biased to actually move.
    SupplyId target = static_cast<SupplyId>(rng.next_below(depth));
    if (target == design.level(id))
      target = static_cast<SupplyId>((target + 1) % depth);
    design.set_level(id, target);
    timer.on_node_changed(id);
    ASSERT_TRUE(timer.matches_full_sta(1e-9))
        << "diverged after commit " << committed << " (node " << id << ")";
    if (committed % 10 == 0) expect_exactly_reference(design);
  }
  expect_exactly_reference(design);
  // The run exercised real multi-rung boundaries.
  EXPECT_GT(design.count_at(1) + design.count_at(2), 0);
}

TEST_F(IncrementalVsFullTest, BulkLowerThenRepairMatchesFull) {
  // The Dscale commit pattern: lower a batch, then revert members one by
  // one; the timer must track every step.
  Network net = random_circuit(99, 0.3);
  Design design(std::move(net), lib_);
  IncrementalSta timer(design.timing_context(), design.tspec());

  std::vector<NodeId> lowered;
  design.network().for_each_gate([&](const Node& g) {
    if (g.cell >= 0 && lowered.size() < 25) lowered.push_back(g.id);
  });
  for (NodeId id : lowered) {
    design.set_level(id, kLowRung);
    timer.on_node_changed(id);
  }
  ASSERT_TRUE(timer.matches_full_sta(1e-9));
  for (NodeId id : lowered) {
    design.set_level(id, kTopRung);
    timer.on_node_changed(id);
    ASSERT_TRUE(timer.matches_full_sta(1e-9));
  }
}

}  // namespace
}  // namespace dvs
