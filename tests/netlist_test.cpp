#include "netlist/network.hpp"

#include <gtest/gtest.h>

#include "netlist/stats.hpp"
#include "netlist/topo.hpp"

namespace dvs {
namespace {

Network two_gate_net() {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId g1 = net.add_gate(tt_and(2), {a, b});
  const NodeId g2 = net.add_gate(tt_inv(), {g1});
  net.add_output("y", g2);
  return net;
}

TEST(Netlist, ConstructionBasics) {
  Network net = two_gate_net();
  EXPECT_EQ(net.inputs().size(), 2u);
  EXPECT_EQ(net.outputs().size(), 1u);
  EXPECT_EQ(net.num_gates(), 2);
  EXPECT_EQ(net.num_live_nodes(), 4);
  net.check();
}

TEST(Netlist, FaninFanoutSymmetry) {
  Network net = two_gate_net();
  net.for_each_node([&](const Node& n) {
    for (NodeId f : n.fanins) {
      const auto& fo = net.node(f).fanouts;
      EXPECT_NE(std::find(fo.begin(), fo.end(), n.id), fo.end());
    }
  });
}

TEST(Netlist, ReplaceFanin) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const NodeId g = net.add_gate(tt_and(2), {a, b});
  net.add_output("y", g);
  net.replace_fanin(g, a, c);
  EXPECT_EQ(net.node(g).fanins[0], c);
  EXPECT_TRUE(net.node(a).fanouts.empty());
  EXPECT_EQ(net.node(c).fanouts.size(), 1u);
  net.check();
}

TEST(Netlist, InsertBetweenMovesSelectedFanouts) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_gate(tt_inv(), {a});
  const NodeId u = net.add_gate(tt_inv(), {g});
  const NodeId v = net.add_gate(tt_inv(), {g});
  net.add_output("u", u);
  net.add_output("v", v);
  const NodeId mid = net.insert_between(g, {v}, {}, tt_buf(), -1, "buf");
  EXPECT_EQ(net.node(u).fanins[0], g);
  EXPECT_EQ(net.node(v).fanins[0], mid);
  EXPECT_EQ(net.node(mid).fanins[0], g);
  net.check();
}

TEST(Netlist, InsertBetweenReroutesPorts) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_gate(tt_inv(), {a});
  net.add_output("y", g);
  const NodeId mid = net.insert_between(g, {}, {0}, tt_buf(), -1, "buf");
  EXPECT_EQ(net.outputs()[0].driver, mid);
  net.check();
}

TEST(Netlist, ReplaceUses) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId g1 = net.add_gate(tt_inv(), {a});
  const NodeId g2 = net.add_gate(tt_inv(), {a});
  const NodeId g3 = net.add_gate(tt_and(2), {g1, b});
  net.add_output("y", g3);
  net.add_output("z", g1);
  net.replace_uses(g1, g2);
  EXPECT_FALSE(net.is_valid(g1));
  EXPECT_EQ(net.node(g3).fanins[0], g2);
  EXPECT_EQ(net.outputs()[1].driver, g2);
  net.check();
}

TEST(Netlist, SweepDanglingCascades) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g1 = net.add_gate(tt_inv(), {a});
  const NodeId g2 = net.add_gate(tt_inv(), {g1});
  (void)g2;  // g2 dangles; removing it strands g1
  const NodeId g3 = net.add_gate(tt_inv(), {a});
  net.add_output("y", g3);
  EXPECT_EQ(net.sweep_dangling(), 2);
  EXPECT_EQ(net.num_gates(), 1);
  net.check();
}

TEST(Netlist, CompactRemapsIds) {
  Network net = two_gate_net();
  const NodeId extra = net.add_gate(tt_inv(), {net.inputs()[0]});
  (void)extra;
  net.sweep_dangling();
  const int live_before = net.num_live_nodes();
  net.compact();
  EXPECT_EQ(net.num_live_nodes(), live_before);
  EXPECT_EQ(net.size(), live_before);
  net.check();
}

TEST(Netlist, StatsReportShape) {
  const NetworkStats s = network_stats(two_gate_net());
  EXPECT_EQ(s.num_inputs, 2);
  EXPECT_EQ(s.num_outputs, 1);
  EXPECT_EQ(s.num_gates, 2);
  EXPECT_EQ(s.depth, 2);
  EXPECT_DOUBLE_EQ(s.avg_fanin, 1.5);
}

TEST(Netlist, TopoOrderRespectsEdges) {
  Network net = two_gate_net();
  const std::vector<NodeId> order = topo_order(net);
  std::vector<int> position(net.size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i)
    position[order[i]] = static_cast<int>(i);
  net.for_each_node([&](const Node& n) {
    for (NodeId f : n.fanins) EXPECT_LT(position[f], position[n.id]);
  });
}

TEST(Netlist, LogicLevels) {
  Network net = two_gate_net();
  const std::vector<int> level = logic_levels(net);
  EXPECT_EQ(level[net.inputs()[0]], 0);
  EXPECT_EQ(logic_depth(net), 2);
}

TEST(Netlist, TransitiveCones) {
  Network net = two_gate_net();
  const NodeId po_driver = net.outputs()[0].driver;
  const auto fanin = transitive_fanin(net, {po_driver});
  net.for_each_node([&](const Node& n) { EXPECT_TRUE(fanin[n.id]); });
  const auto fanout = transitive_fanout(net, {net.inputs()[0]});
  EXPECT_TRUE(fanout[po_driver]);
}

}  // namespace
}  // namespace dvs
