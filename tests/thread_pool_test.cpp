#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace dvs {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  for (int i = 0; i < 100; ++i)
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  pool.wait_idle();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversTheRange) {
  ThreadPool pool(3);
  std::vector<int> out(1000, 0);
  pool.parallel_for(1000, [&](int i) { out[i] = i; });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPoolTest, ParallelForBalancesUnevenWork) {
  // One huge iteration plus many tiny ones: with one-at-a-time claiming
  // the tiny ones drain on the other workers while the big one runs.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(64, [&](int i) {
    long local = 0;
    const int spins = i == 0 ? 200000 : 100;
    for (int k = 0; k < spins; ++k) local += k % 7;
    total.fetch_add(local == -1 ? 0 : 1);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      count.fetch_add(1);
      pool.submit([&count] { count.fetch_add(1); });
    });
  }
  pool.wait_idle();  // waits for the children too
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, StatsTrackPeakDepthAndTotalTasks) {
  ThreadPool pool(2);
  // Hold both workers hostage so further submissions stack up and the
  // peak is deterministic.
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i)
    pool.submit([&release] {
      while (!release.load()) std::this_thread::yield();
    });
  for (int i = 0; i < 6; ++i) pool.submit([] {});
  const ThreadPoolStats loaded = pool.stats();
  EXPECT_EQ(loaded.threads, 2);
  EXPECT_EQ(loaded.pending, 8);
  EXPECT_GE(loaded.peak_pending, 8);
  release.store(true);
  pool.wait_idle();
  const ThreadPoolStats drained = pool.stats();
  EXPECT_EQ(drained.pending, 0);
  EXPECT_GE(drained.peak_pending, 8);  // high-water mark survives drain
  EXPECT_EQ(drained.tasks_executed, 8u);
}

TEST(ThreadPoolTest, MixSeedSeparatesStreams) {
  // Distinct streams from one seed, stable across calls.
  EXPECT_EQ(mix_seed(42, 0), mix_seed(42, 0));
  EXPECT_NE(mix_seed(42, 0), mix_seed(42, 1));
  EXPECT_NE(mix_seed(42, 0), mix_seed(43, 0));
}

}  // namespace
}  // namespace dvs
