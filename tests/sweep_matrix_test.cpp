// Membership-identity tests for the sort-then-sweep Pareto marker: on
// every input — including heavy ties and exact duplicates — it must
// select exactly the same cells as the quadratic pairwise dominance
// definition, set the same per-cell `pareto` flags, and emit the front
// indices in grid order.
#include <gtest/gtest.h>

#include <vector>

#include "core/sweep_matrix.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

std::vector<SweepCellResult> points(
    const std::vector<std::pair<double, double>>& pd) {
  std::vector<SweepCellResult> cells(pd.size());
  for (std::size_t i = 0; i < pd.size(); ++i) {
    cells[i].power_uw = pd[i].first;
    cells[i].arrival_ns = pd[i].second;
  }
  return cells;
}

/// The definition itself: the all-pairs dominance test the O(n log n)
/// sweep must reproduce bit-for-bit.
std::vector<int> pairwise_reference(std::vector<SweepCellResult> cells) {
  std::vector<int> front;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < cells.size() && !dominated; ++j) {
      if (i == j) continue;
      const bool no_worse = cells[j].power_uw <= cells[i].power_uw &&
                            cells[j].arrival_ns <= cells[i].arrival_ns;
      const bool better = cells[j].power_uw < cells[i].power_uw ||
                          cells[j].arrival_ns < cells[i].arrival_ns;
      dominated = no_worse && better;
    }
    if (!dominated) front.push_back(static_cast<int>(i));
  }
  return front;
}

void expect_matches_reference(std::vector<SweepCellResult> cells) {
  const std::vector<int> expected = pairwise_reference(cells);
  const std::vector<int> got = mark_pareto(cells);
  ASSERT_EQ(got, expected);
  // Flags agree with membership, and the front is in grid order.
  std::size_t k = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool on_front =
        k < got.size() && got[k] == static_cast<int>(i);
    EXPECT_EQ(cells[i].pareto, on_front) << "cell " << i;
    if (on_front) ++k;
  }
  EXPECT_EQ(k, got.size());
}

TEST(SweepMatrixPareto, EmptyAndSingle) {
  expect_matches_reference(points({}));
  expect_matches_reference(points({{3.0, 1.5}}));
}

TEST(SweepMatrixPareto, ExactDuplicatesStayOnFrontTogether) {
  // Two identical points do not dominate each other: both survive.
  std::vector<SweepCellResult> cells =
      points({{1.0, 2.0}, {1.0, 2.0}, {2.0, 3.0}});
  const std::vector<int> front = mark_pareto(cells);
  EXPECT_EQ(front, (std::vector<int>{0, 1}));
  EXPECT_TRUE(cells[0].pareto);
  EXPECT_TRUE(cells[1].pareto);
  EXPECT_FALSE(cells[2].pareto);
}

TEST(SweepMatrixPareto, TiesOnOneAxisDominate) {
  // Same power, strictly better delay dominates; and vice versa.
  expect_matches_reference(points({{1.0, 2.0}, {1.0, 3.0}}));
  expect_matches_reference(points({{2.0, 1.0}, {3.0, 1.0}}));
  expect_matches_reference(
      points({{1.0, 5.0}, {1.0, 5.0}, {1.0, 4.0}, {2.0, 4.0}}));
}

TEST(SweepMatrixPareto, TenThousandRandomPointsMatchPairwise) {
  // 10k points drawn from a mix of continuous values and a coarse
  // lattice, so equal-power groups, equal-delay ties, and exact
  // duplicates all occur in bulk.
  Rng rng(0x9a2e70u);
  std::vector<SweepCellResult> cells(10000);
  for (SweepCellResult& cell : cells) {
    if (rng.next_bool(0.5)) {
      cell.power_uw = 100.0 * rng.next_double();
      cell.arrival_ns = 10.0 * rng.next_double();
    } else {
      cell.power_uw = static_cast<double>(rng.next_below(40));
      cell.arrival_ns = static_cast<double>(rng.next_below(40)) / 4.0;
    }
  }
  expect_matches_reference(std::move(cells));
}

TEST(SweepMatrixPareto, StaircaseWithPlateaus) {
  // A descending staircase (all on the front) interleaved with interior
  // points one step above it (all dominated).
  std::vector<std::pair<double, double>> pd;
  for (int i = 0; i < 64; ++i) {
    pd.push_back({static_cast<double>(i), static_cast<double>(64 - i)});
    pd.push_back({static_cast<double>(i) + 0.5,
                  static_cast<double>(64 - i) + 0.5});
  }
  std::vector<SweepCellResult> cells = points(pd);
  const std::vector<int> front = mark_pareto(cells);
  ASSERT_EQ(front.size(), 64u);
  for (int i : front) EXPECT_EQ(i % 2, 0);
  expect_matches_reference(std::move(cells));
}

}  // namespace
}  // namespace dvs
