// ECO design sessions (service/design_session.hpp): the incremental
// reoptimize path must be indistinguishable — to the last bit of every
// double — from the stateless full recompute, under hundreds of random
// edits; and the handle lifecycle (refcounts, idle expiry, byte-budget
// eviction, drain) must fail with the exact protocol error texts
// README.md documents.  Registry-direct tests drive DesignRegistry;
// socket tests boot a real Service and speak NDJSON.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "library/library.hpp"
#include "service/design_session.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/socket.hpp"

namespace dvs {
namespace {

// ---- registry-direct helpers ----

OpenDesignRequest open_circuit(const std::string& circuit,
                               const std::string& name = "") {
  OpenDesignRequest request;
  request.circuit = circuit;
  request.name = name;
  return request;
}

EditRequest one_edit(const std::string& design, DesignEdit edit) {
  EditRequest request;
  request.design = design;
  request.edits.push_back(std::move(edit));
  return request;
}

DesignEdit rung_edit(std::int64_t gate, int rung) {
  DesignEdit edit;
  edit.op = DesignEdit::Op::kRung;
  edit.gate = Json(gate);
  edit.rung = rung;
  return edit;
}

/// First valid gate id at or after `start` (probed with a no-op rung-0
/// edit, which is how a protocol client would discover one too).
std::int64_t find_gate(DesignRegistry& registry, const std::string& design,
                       std::int64_t start = 0) {
  for (std::int64_t id = start; id < start + 4096; ++id) {
    try {
      registry.edit(one_edit(design, rung_edit(id, 0)));
      return id;
    } catch (const ProtocolError&) {
    }
  }
  ADD_FAILURE() << "no gate found from id " << start;
  return -1;
}

Json::Object evaluate(DesignRegistry& registry, const std::string& design,
                      const std::string& mode) {
  ReoptimizeRequest request;
  request.design = design;
  request.mode = mode;
  return registry.reoptimize(request).fields;
}

#define EXPECT_PROTOCOL_ERROR(expression, text)                   \
  try {                                                           \
    expression;                                                   \
    ADD_FAILURE() << "no error from " << #expression;             \
  } catch (const ProtocolError& e) {                              \
    EXPECT_STREQ(text, e.what());                                 \
  }

// ---- incremental == stateless, under random edit streams ----

/// 200 random edit/reoptimize steps per circuit.  After every edit the
/// incremental evaluation (auto mode: the maintained IncrementalSta)
/// must equal the stateless full recompute exactly — not approximately:
/// the same doubles, compared with ==.  A fresh handle replaying the
/// whole edit log from scratch must land on the same numbers too.
TEST(EcoSessionTest, RandomEditsMatchStatelessExactly) {
  const Library lib = build_compass_library();
  const int rungs = lib.supplies().depth();
  DesignRegistry registry(&lib, DesignSessionConfig{});
  Rng rng(0x5e551);

  for (const char* circuit : {"C432", "b9"}) {
    const Json::Object opened = registry.open(open_circuit(circuit));
    const std::string design = opened.at("design").as_string();
    const std::int64_t gates = opened.at("gates").as_int();
    std::vector<DesignEdit> log;  // successful edits, for the replay

    int structural_steps = 0;
    for (int step = 0; step < 200; ++step) {
      // One random edit: mostly rung flips and resizes, occasionally a
      // structural level-converter insertion.
      for (int attempt = 0;; ++attempt) {
        ASSERT_LT(attempt, 1000) << circuit << " step " << step;
        DesignEdit edit;
        const int kind = rng.next_int(0, 19);
        if (kind < 14) {
          edit.op = DesignEdit::Op::kRung;
          edit.rung = rng.next_int(0, rungs - 1);
        } else if (kind < 17) {
          edit.op = rng.next_bool() ? DesignEdit::Op::kUpsize
                                    : DesignEdit::Op::kDownsize;
        } else {
          edit.op = DesignEdit::Op::kInsertLc;
        }
        edit.gate = Json(static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(gates) * 2)));
        try {
          registry.edit(one_edit(design, edit));
        } catch (const ProtocolError&) {
          continue;  // not a gate / at a rail / no fanouts — pick again
        }
        if (edit.op == DesignEdit::Op::kInsertLc) ++structural_steps;
        log.push_back(std::move(edit));
        break;
      }

      const Json::Object incremental = evaluate(registry, design, "auto");
      const Json::Object full = evaluate(registry, design, "full");
      for (const char* key :
           {"power_uw", "arrival_ns", "slack_ns", "area_um2", "tspec_ns",
            "org_power_uw", "improve_pct"})
        EXPECT_EQ(incremental.at(key).as_double(),
                  full.at(key).as_double())
            << circuit << " step " << step << " field " << key;
      for (const char* key : {"low", "level_converters", "resized"})
        EXPECT_EQ(incremental.at(key).as_int(), full.at(key).as_int())
            << circuit << " step " << step << " field " << key;
      EXPECT_EQ(incremental.at("meets_tspec").as_bool(),
                full.at("meets_tspec").as_bool())
          << circuit << " step " << step;
    }
    EXPECT_GT(structural_steps, 0) << "edit mix never went structural";

    // From-scratch cross-check: a second handle of the same circuit,
    // replaying the log, is the literal stateless run of the final
    // state.  (Node ids are deterministic, so the log replays 1:1.)
    const Json::Object reopened =
        registry.open(open_circuit(circuit, std::string(circuit) + "-r"));
    const std::string replay = reopened.at("design").as_string();
    for (const DesignEdit& edit : log)
      registry.edit(one_edit(replay, edit));
    const Json::Object a = evaluate(registry, design, "auto");
    const Json::Object b = evaluate(registry, replay, "full");
    for (const char* key : {"power_uw", "arrival_ns", "area_um2"})
      EXPECT_EQ(a.at(key).as_double(), b.at(key).as_double())
          << circuit << " replay field " << key;

    CloseDesignRequest close;
    close.design = design;
    registry.close(close);
    close.design = replay;
    registry.close(close);
  }
}

/// Auto mode resolves to the cheap path when it can and the full path
/// when it must; asking for the impossible is a protocol error with the
/// documented text.
TEST(EcoSessionTest, StructuralEditsForceFullRecompile) {
  const Library lib = build_compass_library();
  DesignRegistry registry(&lib, DesignSessionConfig{});
  registry.open(open_circuit("b9", "eco"));
  const std::int64_t gate = find_gate(registry, "eco");

  // A fresh handle has no structural debt: auto stays incremental (the
  // first evaluation arms the timer lazily).
  EXPECT_EQ("incremental",
            evaluate(registry, "eco", "auto").at("mode").as_string());
  registry.edit(one_edit("eco", rung_edit(gate, 1)));
  EXPECT_EQ("incremental",
            evaluate(registry, "eco", "auto").at("mode").as_string());

  DesignEdit lc;
  lc.op = DesignEdit::Op::kInsertLc;
  lc.gate = Json(gate);
  registry.edit(one_edit("eco", lc));
  EXPECT_PROTOCOL_ERROR(
      evaluate(registry, "eco", "incremental"),
      "cannot reoptimize 'eco' incrementally: structural edits require "
      "a full recompile (mode 'full' or 'auto')");
  EXPECT_EQ("full", evaluate(registry, "eco", "auto").at("mode")
                        .as_string());
  // Debt paid: the timer is re-armed and incremental works again.
  EXPECT_EQ("incremental",
            evaluate(registry, "eco", "incremental").at("mode")
                .as_string());
}

// ---- edit semantics ----

TEST(EcoSessionTest, EditErrorsAreIndexedAndPartialApplicationSticks) {
  const Library lib = build_compass_library();
  DesignRegistry registry(&lib, DesignSessionConfig{});
  registry.open(open_circuit("C432", "c"));
  const std::int64_t gate = find_gate(registry, "c");

  // Batch of two: the first (valid) edit stays applied, the second
  // fails with its index in the message.
  EditRequest request;
  request.design = "c";
  request.edits.push_back(rung_edit(gate, 1));
  DesignEdit bad;
  bad.op = DesignEdit::Op::kRung;
  bad.gate = Json(std::string("no_such_gate"));
  bad.rung = 1;
  request.edits.push_back(bad);
  EXPECT_PROTOCOL_ERROR(registry.edit(request),
                        "edit 1: unknown gate 'no_such_gate' in design "
                        "'c'");
  EXPECT_EQ(1, evaluate(registry, "c", "full").at("low").as_int());

  EXPECT_PROTOCOL_ERROR(
      registry.edit(one_edit("c", rung_edit(gate, 5))),
      "edit 0: rung 5 out of range for a 2-rung ladder");
}

TEST(EcoSessionTest, LevelConverterInsertRemoveRoundTrips) {
  const Library lib = build_compass_library();
  DesignRegistry registry(&lib, DesignSessionConfig{});
  const Json::Object opened = registry.open(open_circuit("b9", "lc"));
  const std::int64_t before = opened.at("gates").as_int();
  const std::int64_t gate = find_gate(registry, "lc");

  const double area_before =
      evaluate(registry, "lc", "full").at("area_um2").as_double();

  DesignEdit insert;
  insert.op = DesignEdit::Op::kInsertLc;
  insert.gate = Json(gate);
  const Json::Object inserted = registry.edit(one_edit("lc", insert));
  EXPECT_TRUE(inserted.at("structural").as_bool());
  EXPECT_EQ(before + 1, inserted.at("gates").as_int());
  // The materialized converter is a real gate: it costs area.  (The
  // `level_converters` reply field counts assignment-driven boundary
  // converters, a different thing — see core/design.hpp.)
  EXPECT_GT(evaluate(registry, "lc", "auto").at("area_um2").as_double(),
            area_before);

  // The inserted converter is one of the newest ids; find and remove it
  // (scanning like a protocol client would).  replace_uses tombstones
  // the node, so the gate count and the area return exactly.
  DesignEdit remove;
  remove.op = DesignEdit::Op::kRemoveLc;
  Json::Object removed_reply;
  bool removed = false;
  for (std::int64_t id = before; !removed && id < before + 64; ++id) {
    remove.gate = Json(id);
    try {
      removed_reply = registry.edit(one_edit("lc", remove));
      removed = true;
    } catch (const ProtocolError&) {
    }
  }
  ASSERT_TRUE(removed);
  EXPECT_EQ(before, removed_reply.at("gates").as_int());
  EXPECT_EQ(area_before,
            evaluate(registry, "lc", "auto").at("area_um2").as_double());

  // A plain gate is not a removable converter.
  DesignEdit bad;
  bad.op = DesignEdit::Op::kRemoveLc;
  bad.gate = Json(gate);
  EXPECT_THROW(registry.edit(one_edit("lc", bad)), ProtocolError);
}

// ---- lifecycle: refcounts, expiry, eviction, drain ----

TEST(EcoSessionTest, AttachRefcountsAndDoubleCloseTombstone) {
  const Library lib = build_compass_library();
  DesignRegistry registry(&lib, DesignSessionConfig{});

  const Json::Object first = registry.open(open_circuit("b9", "shared"));
  EXPECT_FALSE(first.at("attached").as_bool());
  EXPECT_EQ(1, first.at("refs").as_int());
  const Json::Object second = registry.open(open_circuit("b9", "shared"));
  EXPECT_TRUE(second.at("attached").as_bool());
  EXPECT_EQ(2, second.at("refs").as_int());
  EXPECT_EQ(1u, registry.open_count());

  CloseDesignRequest close;
  close.design = "shared";
  EXPECT_EQ(1, registry.close(close).at("refs").as_int());
  evaluate(registry, "shared", "full");  // still usable at refs 1
  EXPECT_EQ(0, registry.close(close).at("refs").as_int());
  EXPECT_EQ(0u, registry.open_count());

  EXPECT_PROTOCOL_ERROR(registry.close(close),
                        "design 'shared' is closed");
  EXPECT_PROTOCOL_ERROR(evaluate(registry, "shared", "full"),
                        "design 'shared' is closed");
  EXPECT_PROTOCOL_ERROR(
      registry.edit(one_edit("shared", rung_edit(0, 0))),
      "design 'shared' is closed");
  EXPECT_PROTOCOL_ERROR(evaluate(registry, "nope", "full"),
                        "unknown design handle 'nope'");

  // A closed name can be reopened fresh (the tombstone clears).
  const Json::Object reopened = registry.open(open_circuit("b9", "shared"));
  EXPECT_FALSE(reopened.at("attached").as_bool());
}

TEST(EcoSessionTest, IdleHandlesExpire) {
  const Library lib = build_compass_library();
  DesignSessionConfig config;
  config.idle_ms = 1;
  DesignRegistry registry(&lib, config);
  registry.open(open_circuit("b9", "sleepy"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_PROTOCOL_ERROR(evaluate(registry, "sleepy", "full"),
                        "design 'sleepy' expired after idle timeout");
  EXPECT_EQ(1u, registry.stats().expired);
  EXPECT_EQ(0u, registry.open_count());
}

TEST(EcoSessionTest, ByteBudgetEvictsOldestIdle) {
  const Library lib = build_compass_library();
  DesignSessionConfig config;
  config.max_bytes = 1;  // everything is over budget; one survivor max
  DesignRegistry registry(&lib, config);
  registry.open(open_circuit("b9", "old"));
  registry.open(open_circuit("C432", "young"));
  // Opening "young" ran the GC over budget: "old" (oldest idle) went.
  EXPECT_PROTOCOL_ERROR(
      evaluate(registry, "old", "full"),
      "design 'old' was evicted under the design byte budget");
  evaluate(registry, "young", "full");  // the last handle is never evicted
  EXPECT_EQ(1u, registry.stats().evicted);
  EXPECT_GT(registry.stats().resident_bytes, 0u);
}

TEST(EcoSessionTest, TooManyOpenDesigns) {
  const Library lib = build_compass_library();
  DesignSessionConfig config;
  config.max_open = 1;
  DesignRegistry registry(&lib, config);
  registry.open(open_circuit("b9", "only"));
  EXPECT_PROTOCOL_ERROR(registry.open(open_circuit("C432", "over")),
                        "too many open designs: 1 open at cap 1");
}

TEST(EcoSessionTest, DrainRefusesNewWorkButClosesCleanly) {
  const Library lib = build_compass_library();
  DesignRegistry registry(&lib, DesignSessionConfig{});
  registry.open(open_circuit("b9", "held"));
  registry.begin_drain();

  EXPECT_PROTOCOL_ERROR(registry.open(open_circuit("C432")),
                        "draining: design sessions are closing");
  EXPECT_PROTOCOL_ERROR(evaluate(registry, "held", "full"),
                        "draining: design sessions are closing");
  EXPECT_PROTOCOL_ERROR(
      registry.edit(one_edit("held", rung_edit(0, 0))),
      "draining: design sessions are closing");

  // close_design still works mid-drain: clients get to say goodbye.
  CloseDesignRequest close;
  close.design = "held";
  EXPECT_EQ(0, registry.close(close).at("refs").as_int());
  registry.close_all();
  EXPECT_EQ(0u, registry.open_count());
}

TEST(EcoSessionTest, UnknownCircuitFailsTheOpen) {
  const Library lib = build_compass_library();
  DesignRegistry registry(&lib, DesignSessionConfig{});
  EXPECT_PROTOCOL_ERROR(registry.open(open_circuit("not_a_circuit")),
                        "unknown MCNC circuit 'not_a_circuit'");
  EXPECT_EQ(0u, registry.open_count());
  EXPECT_EQ(0u, registry.stats().opened);
}

// ---- sweep ----

TEST(EcoSessionTest, SweepGridShapeAndPareto) {
  const Library lib = build_compass_library();
  DesignRegistry registry(&lib, DesignSessionConfig{});
  registry.open(open_circuit("b9", "grid"));

  SweepRequest request;
  request.design = "grid";
  request.vlow = {4.3, 3.7};
  request.area_budgets = {0.05, 0.10};
  const Json::Object reply = registry.sweep(request);
  // 2 ladders x (cvs + dscale + gscale x 2 budgets) = 8 cells.
  EXPECT_EQ(8u, reply.at("count").as_uint());
  EXPECT_EQ(8u, reply.at("cells").as_array().size());
  EXPECT_FALSE(reply.at("pareto").as_array().empty());
  EXPECT_EQ("grid", reply.at("design").as_string());
  EXPECT_EQ(1u, registry.stats().sweeps);
  EXPECT_EQ(8u, registry.stats().sweep_cells);
}

// ---- socket level: the NDJSON protocol end to end ----

class EcoServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceConfig config;
    config.tcp_port = 0;
    config.num_threads = 2;
    config.cache_bytes = 8u << 20;
    service_.emplace(config);
    service_->start();
  }
  void TearDown() override {
    if (service_) {
      service_->request_stop();
      service_->stop();
    }
  }
  std::optional<Service> service_;
};

class Client {
 public:
  explicit Client(int port)
      : socket_(Socket::connect_tcp("127.0.0.1", port)),
        reader_(&socket_, 64u << 20) {}
  void send(const std::string& request) { socket_.send_all(request + "\n"); }
  Json recv() {
    std::string line;
    EXPECT_TRUE(reader_.read_line(&line)) << "connection closed early";
    return Json::parse(line);
  }

 private:
  Socket socket_;
  LineReader reader_;
};

TEST_F(EcoServiceTest, FullSessionOverTheWire) {
  Client client(service_->port());

  client.send(R"({"type":"open_design","circuit":"C432","name":"wire"})");
  Json opened = client.recv();
  ASSERT_EQ("design_opened", opened.find("type")->as_string())
      << opened.dump();
  EXPECT_EQ("wire", opened.find("design")->as_string());
  const std::int64_t gates = opened.find("gates")->as_int();
  EXPECT_GT(gates, 0);

  // Find a gate over the wire: bad addresses answer errors and the
  // connection keeps serving (error containment).
  std::int64_t gate = -1;
  for (std::int64_t id = 0; id < gates && gate < 0; ++id) {
    client.send(R"({"type":"edit","design":"wire","edits":[{"op":"rung",)"
                R"("gate":)" +
                std::to_string(id) + R"(,"rung":1}]})");
    const Json reply = client.recv();
    if (reply.find("type")->as_string() == "edited") gate = id;
  }
  ASSERT_GE(gate, 0);

  client.send(
      R"({"type":"reoptimize","design":"wire","mode":"incremental"})");
  Json incremental = client.recv();
  ASSERT_EQ("reoptimized", incremental.find("type")->as_string())
      << incremental.dump();
  EXPECT_EQ("incremental", incremental.find("mode")->as_string());
  EXPECT_EQ(1, incremental.find("low")->as_int());

  client.send(R"({"type":"reoptimize","design":"wire","mode":"full"})");
  Json full = client.recv();
  ASSERT_EQ("reoptimized", full.find("type")->as_string());
  // The wire carries the same doubles both ways — byte identity
  // survives serialization because dump() round-trips doubles exactly.
  for (const char* key : {"power_uw", "arrival_ns", "area_um2"})
    EXPECT_EQ(incremental.find(key)->as_double(),
              full.find(key)->as_double())
        << key;

  // Pipeline reoptimize: first run computes, second answers from cache.
  client.send(
      R"({"type":"reoptimize","design":"wire","algos":["cvs"]})");
  Json computed = client.recv();
  ASSERT_EQ("reoptimized", computed.find("type")->as_string())
      << computed.dump();
  EXPECT_EQ("pipeline", computed.find("mode")->as_string());
  EXPECT_EQ("miss", computed.find("cache")->as_string());
  ASSERT_NE(nullptr, computed.find("report"));
  client.send(
      R"({"type":"reoptimize","design":"wire","algos":["cvs"]})");
  Json cached = client.recv();
  EXPECT_EQ("hit", cached.find("cache")->as_string());
  EXPECT_EQ(computed.find("report")->dump(),
            cached.find("report")->dump());

  client.send(
      R"({"type":"sweep","design":"wire","vlow":[4.3],"algos":["cvs"]})");
  Json swept = client.recv();
  ASSERT_EQ("sweep_result", swept.find("type")->as_string())
      << swept.dump();
  EXPECT_EQ(1u, swept.find("count")->as_uint());

  // The stats block and the Prometheus gauges both see the session.
  client.send(R"({"type":"stats"})");
  const Json stats = client.recv();
  const Json* designs = stats.find("designs");
  ASSERT_NE(nullptr, designs);
  EXPECT_EQ(1u, designs->find("open")->as_uint());
  EXPECT_GT(designs->find("resident_bytes")->as_uint(), 0u);
  EXPECT_EQ(1u, designs->find("opened")->as_uint());
  EXPECT_GE(designs->find("edits")->as_uint(), 1u);
  EXPECT_EQ(1u, designs->find("reoptimize_incremental")->as_uint());
  EXPECT_EQ(1u, designs->find("sweeps")->as_uint());

  client.send(R"({"type":"metrics"})");
  const std::string text = client.recv().find("text")->as_string();
  EXPECT_NE(std::string::npos, text.find("dvsd_sessions_open 1"))
      << text;
  EXPECT_NE(std::string::npos, text.find("dvsd_design_opened_total 1"));

  client.send(R"({"type":"close_design","design":"wire"})");
  Json closed = client.recv();
  ASSERT_EQ("design_closed", closed.find("type")->as_string());
  EXPECT_EQ(0, closed.find("refs")->as_int());

  client.send(R"({"type":"edit","design":"wire","edits":[{"op":"rung",)"
              R"("gate":0,"rung":0}]})");
  const Json error = client.recv();
  EXPECT_EQ("error", error.find("type")->as_string());
  EXPECT_EQ("design 'wire' is closed",
            error.find("message")->as_string());
}

TEST_F(EcoServiceTest, MalformedDesignRequestsAreContained) {
  Client client(service_->port());
  client.send(R"({"type":"open_design"})");
  EXPECT_EQ("open_design needs exactly one of 'circuit' or 'netlist'",
            client.recv().find("message")->as_string());
  client.send(R"({"type":"edit","design":"x","edits":[]})");
  EXPECT_EQ("edit needs a non-empty 'edits' array",
            client.recv().find("message")->as_string());
  client.send(R"({"type":"reoptimize","design":"x","mode":"sideways"})");
  EXPECT_EQ("mode must be 'auto', 'incremental', or 'full'",
            client.recv().find("message")->as_string());
  client.send(R"({"type":"close_design"})");
  EXPECT_EQ("close_design needs a 'design' handle",
            client.recv().find("message")->as_string());
  // The connection survived all of it.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ("pong", client.recv().find("type")->as_string());
}

}  // namespace
}  // namespace dvs
