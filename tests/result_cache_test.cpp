// The dvsd result cache: content-addressed key stability across
// serialization round trips (the property that makes the cache safe to
// key on), LRU eviction order, and thread-safety under pool hammering.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "benchgen/mcnc.hpp"
#include "library/library.hpp"
#include "netlist/blif.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace dvs {
namespace {

const Library& lib() {
  static const Library kLib = build_compass_library();
  return kLib;
}

CacheKey key_of(const Network& net) {
  CacheKey key;
  key.topology = topology_hash(net);
  key.mapping = mapping_fingerprint(net);
  key.options = 0x0123456789abcdefULL;
  key.library = lib().fingerprint();
  return key;
}

// ---- key stability --------------------------------------------------------

TEST(CacheKey, StableAcrossBlifAndVerilogRoundTrips) {
  for (const char* name : {"x2", "b9", "z4ml", "my_adder"}) {
    const Network mapped = build_mcnc_circuit(lib(), *find_mcnc(name));
    // Canonical unmapped form: what a client-submitted BLIF parses to.
    const Network n0 = read_blif_string(write_blif_string(mapped));
    const Network via_blif = read_blif_string(write_blif_string(n0));
    const Network via_verilog =
        read_verilog_string(write_verilog_string(n0, lib()), lib());
    EXPECT_EQ(topology_hash(n0), topology_hash(via_blif)) << name;
    EXPECT_EQ(topology_hash(n0), topology_hash(via_verilog)) << name;
    EXPECT_EQ(key_of(n0), key_of(via_blif)) << name;
    EXPECT_EQ(key_of(n0), key_of(via_verilog)) << name;
  }
}

TEST(CacheKey, MappedVerilogRoundTripKeepsMappingFingerprint) {
  const Network mapped = build_mcnc_circuit(lib(), *find_mcnc("b9"));
  const Network back =
      read_verilog_string(write_verilog_string(mapped, lib()), lib());
  EXPECT_EQ(topology_hash(mapped), topology_hash(back));
  EXPECT_EQ(mapping_fingerprint(mapped), mapping_fingerprint(back));
  EXPECT_NE(mapping_fingerprint(mapped), 0u);
}

TEST(CacheKey, BlifRoundTripDropsMappingFingerprint) {
  // BLIF carries no cell binding: a mapped circuit written to BLIF reads
  // back unmapped, so the key's mapping half flips to 0 — "will be
  // re-mapped" must not alias "sized exactly like this".
  const Network mapped = build_mcnc_circuit(lib(), *find_mcnc("b9"));
  const Network back = read_blif_string(write_blif_string(mapped));
  EXPECT_NE(mapping_fingerprint(mapped), 0u);
  EXPECT_EQ(mapping_fingerprint(back), 0u);
  // And the unmapped read-back is a fixpoint under further trips.
  const Network again = read_blif_string(write_blif_string(back));
  EXPECT_EQ(topology_hash(back), topology_hash(again));
  EXPECT_EQ(mapping_fingerprint(again), 0u);
}

TEST(CacheKey, SwappedCellBindingsChangeMappingFingerprint) {
  // Two structurally identical gates bound to different drive variants:
  // swapping the variants is a different physical design and must not
  // alias in the cache (a commutative per-gate sum would be blind here).
  const int small = lib().smallest_of("nand2");
  ASSERT_GE(small, 0);
  const int big = lib().upsize(small);
  ASSERT_GE(big, 0);
  const auto build = [&](int cell_x, int cell_y) {
    Network net("m");
    const NodeId a = net.add_input("a");
    const NodeId b = net.add_input("b");
    const TruthTable tt = lib().cell(small).function;
    const NodeId x = net.add_gate(tt, {a, b}, cell_x, "x");
    const NodeId y = net.add_gate(tt, {a, b}, cell_y, "y");
    net.add_output("o0", x);
    net.add_output("o1", y);
    return net;
  };
  const Network ab = build(small, big);
  const Network ba = build(big, small);
  EXPECT_EQ(topology_hash(ab), topology_hash(ba));
  EXPECT_NE(mapping_fingerprint(ab), mapping_fingerprint(ba));
}

TEST(CacheKey, DistinctCircuitsDistinctHashes) {
  const Network a = build_mcnc_circuit(lib(), *find_mcnc("x2"));
  const Network b = build_mcnc_circuit(lib(), *find_mcnc("b9"));
  EXPECT_NE(topology_hash(a), topology_hash(b));
}

TEST(CacheKey, NamesDoNotMatterStructureDoes) {
  const Network a = read_blif_string(
      ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n");
  const Network renamed = read_blif_string(
      ".model other\n.inputs p q\n.outputs r\n.names p q r\n11 1\n.end\n");
  const Network different = read_blif_string(
      ".model m\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n");
  EXPECT_EQ(topology_hash(a), topology_hash(renamed));
  EXPECT_NE(topology_hash(a), topology_hash(different));
}

// ---- canonical job documents (the options half of the key) ---------------

OptimizeRequest request_line(const std::string& line) {
  Request request = parse_request(line);
  EXPECT_EQ(request.type, RequestType::kOptimize);
  return request.optimize;
}

TEST(CanonicalJobKey, AlgoOrderDoesNotMatter) {
  // A client listing algorithms in any order (or spelling out the
  // default) must hit the same cache entry.
  const OptimizeRequest a = request_line(
      R"({"type":"optimize","circuit":"x2","algos":["dscale","cvs"]})");
  const OptimizeRequest b = request_line(
      R"({"type":"optimize","circuit":"x2","algos":["cvs","dscale"]})");
  EXPECT_EQ(canonical_job_json(a, 42), canonical_job_json(b, 42));
  const OptimizeRequest all_listed = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("algos":["gscale","dscale","cvs"]})");
  const OptimizeRequest all_default =
      request_line(R"({"type":"optimize","circuit":"x2"})");
  EXPECT_EQ(canonical_job_json(all_listed, 42),
            canonical_job_json(all_default, 42));
}

TEST(CanonicalJobKey, LegacyAlgoAliasesWithEquivalentPipeline) {
  // The single-algorithm request and the single-pass pipeline spelling
  // of it are the same job: same canonical document, same key, and the
  // derived Gscale cut seed resolves identically on both paths.
  for (const char* algo : {"cvs", "dscale", "gscale"}) {
    const OptimizeRequest legacy = request_line(
        std::string(R"({"type":"optimize","circuit":"x2","algos":[")") +
        algo + R"("]})");
    const OptimizeRequest spec = request_line(
        std::string(
            R"({"type":"optimize","circuit":"x2","pipeline":")") +
        algo + R"("})");
    EXPECT_EQ(canonical_job_json(legacy, 1234),
              canonical_job_json(spec, 1234))
        << algo;
  }
  // Different circuit seeds stay different jobs (the gscale cut seed
  // and the activity seed are part of the identity).
  const OptimizeRequest gscale = request_line(
      R"({"type":"optimize","circuit":"x2","pipeline":"gscale"})");
  EXPECT_NE(canonical_job_json(gscale, 1), canonical_job_json(gscale, 2));
}

TEST(CanonicalJobKey, PipelineSpellingsCanonicalize) {
  // Grammar string, JSON array, whitespace, and option order all reach
  // one canonical document; a genuinely different option value does not.
  const OptimizeRequest a = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"x("pipeline":"cvs|gscale(area_budget=0.05)"})x");
  const OptimizeRequest b = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("pipeline":["cvs",{"pass":"gscale",)"
      R"("options":{"area_budget":0.05}}]})");
  const OptimizeRequest c = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("pipeline":"  cvs  |  gscale( area_budget = 0.05 )  "})");
  EXPECT_EQ(canonical_job_json(a, 7), canonical_job_json(b, 7));
  EXPECT_EQ(canonical_job_json(a, 7), canonical_job_json(c, 7));
  const OptimizeRequest d = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"x("pipeline":"cvs|gscale(area_budget=0.06)"})x");
  EXPECT_NE(canonical_job_json(a, 7), canonical_job_json(d, 7));
  // Pass order is semantic for pipelines: gscale|cvs is another flow.
  const OptimizeRequest e = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("pipeline":"gscale(area_budget=0.05)|cvs"})");
  EXPECT_NE(canonical_job_json(a, 7), canonical_job_json(e, 7));
}

TEST(CanonicalJobKey, SupplyLadderSpellingsCanonicalize) {
  // One ladder, four spellings: comma string, array, trailing-zero
  // variants — all one canonical document (one cache entry).
  const OptimizeRequest a = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5.0,4.3,3.6"}})");
  const OptimizeRequest b = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":[5, 4.3, 3.6]}})");
  const OptimizeRequest c = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":" 5 , 4.30 , 3.60 "}})");
  EXPECT_EQ(canonical_job_json(a, 7), canonical_job_json(b, 7));
  EXPECT_EQ(canonical_job_json(a, 7), canonical_job_json(c, 7));
  // A genuinely different ladder is another job.
  const OptimizeRequest d = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5.0,4.3,3.7"}})");
  EXPECT_NE(canonical_job_json(a, 7), canonical_job_json(d, 7));
  const OptimizeRequest dual = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5.0,4.3"}})");
  EXPECT_NE(canonical_job_json(a, 7), canonical_job_json(dual, 7));
}

TEST(CanonicalJobKey, ExplicitDefaultLadderAliasesWithAbsent) {
  // Spelling out the daemon's own ladder is the same job as omitting the
  // field: the canonical document always carries the *effective* ladder.
  const OptimizeRequest with = request_line(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5,4.3"}})");
  const OptimizeRequest without =
      request_line(R"({"type":"optimize","circuit":"x2"})");
  const SupplyLadder deflt;  // {5.0, 4.3}
  EXPECT_EQ(canonical_job_json(with, 42, deflt),
            canonical_job_json(without, 42, deflt));
  // Against a daemon running a different ladder, the same two requests
  // no longer alias.
  const SupplyLadder other({5.0, 4.0});
  EXPECT_NE(canonical_job_json(with, 42, other),
            canonical_job_json(without, 42, other));
}

TEST(CanonicalJobKey, MalformedSuppliesRejectedWithSchemaText) {
  const auto parse_err = [](const std::string& supplies) {
    try {
      request_line(R"({"type":"optimize","circuit":"x2",)"
                   R"("options":{"supplies":)" +
                   supplies + "}}");
      return std::string("(accepted)");
    } catch (const SupplyError& e) {
      return std::string(e.what());
    }
  };
  EXPECT_EQ(parse_err(R"("4.3,5.0")"), "supplies must be strictly descending");
  EXPECT_EQ(parse_err(R"([5.0, 5.0])"), "supplies must be strictly descending");
  EXPECT_EQ(parse_err(R"("5.0")"), "supplies must list between 2 and 8 voltages");
  EXPECT_EQ(parse_err(R"([9,8,7,6,5,4,3,2,1.5])"),
            "supplies must list between 2 and 8 voltages");
  EXPECT_EQ(parse_err(R"("5.0,0.5")"), "supplies out of range");
  EXPECT_EQ(parse_err(R"("5.0,oops")"), "supplies out of range");
  EXPECT_EQ(parse_err(R"("")"), "supplies out of range");
}

TEST(CacheKey, LadderChangesLibraryFingerprint) {
  // The resolved job runs against a ladder-adjusted library; its
  // fingerprint (the key's library half) must move with the ladder and
  // return exactly when the ladder does.
  Library three = build_compass_library();
  three.set_supply_ladder(SupplyLadder({5.0, 4.3, 3.6}));
  EXPECT_NE(three.fingerprint(), lib().fingerprint());
  Library back = build_compass_library();
  back.set_supply_ladder(SupplyLadder({5.0, 4.3}));
  EXPECT_EQ(back.fingerprint(), lib().fingerprint());
}

// ---- LRU behavior ---------------------------------------------------------

CacheKey key_n(std::uint64_t n) {
  CacheKey key;
  key.topology = n;
  key.mapping = 1;
  key.options = 2;
  key.library = 3;
  return key;
}

ResultCache::Payload payload(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(ResultCache, HitMissCounters) {
  ResultCache cache(4096);
  EXPECT_EQ(cache.get(key_n(1)), nullptr);
  EXPECT_TRUE(cache.put(key_n(1), payload("one")));
  EXPECT_EQ(*cache.get(key_n(1)), "one");
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 3u);  // strlen("one"), exactly
  EXPECT_EQ(stats.capacity_bytes, 4096u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedInOrder) {
  // Equal-size payloads make the byte budget behave like a 3-entry one.
  ResultCache cache(30);
  const std::string ten(10, 'x');
  cache.put(key_n(1), payload(ten));
  cache.put(key_n(2), payload(ten));
  cache.put(key_n(3), payload(ten));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(cache.get(key_n(1)), nullptr);
  cache.put(key_n(4), payload(ten));  // evicts 2
  EXPECT_EQ(cache.get(key_n(2)), nullptr);
  EXPECT_NE(cache.get(key_n(1)), nullptr);
  EXPECT_NE(cache.get(key_n(3)), nullptr);
  EXPECT_NE(cache.get(key_n(4)), nullptr);
  cache.put(key_n(5), payload(ten));  // 1-3-4 re-touched; victim is 1
  EXPECT_EQ(cache.get(key_n(1)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().bytes, 30u);
}

TEST(ResultCache, EvictsExactlyEnoughBytes) {
  // Regression for the byte accounting: a big insert evicts entries in
  // LRU order until it fits — no more, no fewer — and `bytes` tracks
  // the resident payload exactly at every step.
  ResultCache cache(10);
  cache.put(key_n(1), payload("aaaa"));  // 4 bytes
  cache.put(key_n(2), payload("bbbb"));  // 8 bytes resident
  EXPECT_EQ(cache.stats().bytes, 8u);
  cache.put(key_n(3), payload("cccc"));  // 12 > 10: evict only key 1
  EXPECT_EQ(cache.get(key_n(1)), nullptr);
  EXPECT_NE(cache.get(key_n(2)), nullptr);
  EXPECT_NE(cache.get(key_n(3)), nullptr);
  EXPECT_EQ(cache.stats().bytes, 8u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.put(key_n(4), payload("dddddddddd"));  // 10 bytes: evict 2 and 3
  EXPECT_EQ(cache.stats().bytes, 10u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 3u);
}

TEST(ResultCache, OversizedPayloadRejectedNotEvictingEverything) {
  // An entry bigger than the whole budget must be refused outright —
  // the buggy alternative evicts the entire cache and then caches (or
  // under-accounts) the monster anyway.
  ResultCache cache(8);
  EXPECT_TRUE(cache.put(key_n(1), payload("abcd")));
  EXPECT_FALSE(cache.put(key_n(2), payload("way too big: 9")));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_NE(cache.get(key_n(1)), nullptr);  // survivors keep serving
  EXPECT_EQ(cache.get(key_n(2)), nullptr);
  EXPECT_EQ(cache.stats().bytes, 4u);
  // Replacing a resident key with an oversized value must also drop the
  // stale resident copy: serving the old bytes as if they were the new
  // answer would be a correctness bug, not a capacity decision.
  EXPECT_FALSE(cache.put(key_n(1), payload("also far too big")));
  EXPECT_EQ(cache.get(key_n(1)), nullptr);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, ReplacingAKeyIsNotAnEviction) {
  ResultCache cache(64);
  cache.put(key_n(1), payload("a"));
  cache.put(key_n(1), payload("bbb"));
  EXPECT_EQ(*cache.get(key_n(1)), "bbb");
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().bytes, 3u);  // old size gone, new size in
}

TEST(ResultCache, ConcurrentGetPutHammering) {
  ResultCache cache(160);  // ~16 ten-byte slots over 64 keys: constant
                           // eviction churn while threads race
  ThreadPool pool(4);
  std::atomic<int> payload_mismatches{0};
  pool.parallel_for(2000, [&](int i) {
    const std::uint64_t k = static_cast<std::uint64_t>(i % 64);
    const std::string expected = "payload-" + std::to_string(k);
    if (auto hit = cache.get(key_n(k))) {
      if (*hit != expected) payload_mismatches.fetch_add(1);
    } else {
      cache.put(key_n(k), payload(expected));
    }
  });
  EXPECT_EQ(payload_mismatches.load(), 0);
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.bytes, 160u);
  EXPECT_EQ(stats.hits + stats.misses, 2000u);
  // With 64 keys over a ~16-entry budget there must have been evictions.
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace dvs
