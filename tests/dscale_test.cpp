#include "core/dscale.hpp"

#include <gtest/gtest.h>

#include "benchgen/random_dag.hpp"
#include "benchgen/structured.hpp"
#include "core/boundary.hpp"

namespace dvs {
namespace {

class DscaleTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  Network balanced_with_branches() {
    GridSpec spec;
    spec.gates = 120;
    spec.pis = 12;
    spec.pos = 4;
    spec.slack_branch_fraction = 0.15;
    spec.seed = 5;
    return build_balanced_grid(lib_, spec, "branches");
  }
};

TEST_F(DscaleTest, FindsSlackBeyondTheCvsCluster) {
  Network net = balanced_with_branches();
  Design cvs_only(net, lib_);
  run_cvs(cvs_only);

  Design design(std::move(net), lib_);
  const DscaleResult r = run_dscale(design);
  EXPECT_EQ(r.cvs_lowered, cvs_only.count_low());
  EXPECT_GT(design.count_low(), cvs_only.count_low());
  EXPECT_GT(r.mwis_lowered, 0);
  EXPECT_TRUE(design.run_timing().meets_constraint(1e-9));
}

TEST_F(DscaleTest, InsertsConvertersOnlyWhereNeeded) {
  Network net = balanced_with_branches();
  Design design(std::move(net), lib_);
  run_dscale(design);
  design.network().for_each_gate([&](const Node& g) {
    EXPECT_EQ(design.needs_lc(g.id), lc_needed(design, g.id) != 0);
  });
  // Branch-lowered gates feed high spine gates: converters must exist.
  if (design.count_low() > 0) EXPECT_GE(design.count_lcs(), 1);
}

TEST_F(DscaleTest, TimingHoldsOnHybridCircuits) {
  HybridSpec spec;
  spec.gates = 250;
  spec.pis = 24;
  spec.pos = 12;
  spec.critical_fraction = 0.5;
  spec.seed = 17;
  Network net = build_hybrid_circuit(lib_, spec, "hybrid");
  Design design(std::move(net), lib_);
  const DscaleResult r = run_dscale(design);
  EXPECT_GE(r.rounds, 1);
  EXPECT_TRUE(design.run_timing().meets_constraint(1e-9));
}

TEST_F(DscaleTest, GreedySelectorAlsoSound) {
  Network net = balanced_with_branches();
  Design design(std::move(net), lib_);
  DscaleOptions options;
  options.selector = DscaleOptions::Selector::kGreedy;
  run_dscale(design, options);
  EXPECT_TRUE(design.run_timing().meets_constraint(1e-9));
}

TEST_F(DscaleTest, MwisNotWorseThanGreedyInFirstRound) {
  Network net = balanced_with_branches();
  Design mwis(net, lib_);
  Design greedy(std::move(net), lib_);
  DscaleOptions o1;
  o1.max_rounds = 1;
  DscaleOptions o2 = o1;
  o2.selector = DscaleOptions::Selector::kGreedy;
  const DscaleResult r1 = run_dscale(mwis, o1);
  const DscaleResult r2 = run_dscale(greedy, o2);
  // Exact MWIS maximizes the round's weight; with uniform-ish gains the
  // count is at least as large as greedy's.
  EXPECT_GE(r1.mwis_lowered + 1, r2.mwis_lowered);
}

TEST_F(DscaleTest, LcAwareWeightsAreMoreConservative) {
  Network net = balanced_with_branches();
  Design literal(net, lib_);
  Design aware(std::move(net), lib_);
  DscaleOptions aware_options;
  aware_options.lc_aware_weights = true;
  run_dscale(literal);
  run_dscale(aware, aware_options);
  EXPECT_LE(aware.count_low(), literal.count_low());
  // The conservative variant never loses power relative to plain CVS.
  EXPECT_TRUE(aware.run_timing().meets_constraint(1e-9));
}

TEST_F(DscaleTest, NeverWorseThanCvsWithTrim) {
  for (std::uint64_t seed : {5u, 17u, 23u, 42u}) {
    GridSpec spec;
    spec.gates = 120;
    spec.pis = 12;
    spec.pos = 4;
    spec.slack_branch_fraction = 0.15;
    spec.seed = seed;
    Network net = build_balanced_grid(lib_, spec, "t");
    Design cvs_only(net, lib_);
    run_cvs(cvs_only);
    Design dscale(std::move(net), lib_);
    run_dscale(dscale);
    EXPECT_LE(dscale.run_power().total(),
              cvs_only.run_power().total() + 1e-9)
        << "seed " << seed;
  }
}

TEST_F(DscaleTest, EdmondsKarpBackendAgreesOnCounts) {
  Network net = balanced_with_branches();
  Design dinic(net, lib_);
  Design ek(std::move(net), lib_);
  DscaleOptions options;
  options.flow_algo = FlowAlgo::kEdmondsKarp;
  const DscaleResult r1 = run_dscale(dinic);
  const DscaleResult r2 = run_dscale(ek, options);
  EXPECT_EQ(r1.cvs_lowered, r2.cvs_lowered);
  EXPECT_EQ(dinic.count_low(), ek.count_low());
}

}  // namespace
}  // namespace dvs
