// Fleet wall: boots a real `dvsd --scheduler`-shaped Service plus
// in-process WorkerAgents on ephemeral loopback ports and drives the
// distributed path end to end — registration/heartbeats, remote
// execution with bit-identical answers, worker expiry, corrupt-reply
// and stall fault injection, retry-on-different-worker, fall-back to
// local execution, and graceful drain with leased work in flight.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/suite.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "service/worker.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace dvs {
namespace {

/// A connected NDJSON test client (same shape as service_test's).
class Client {
 public:
  explicit Client(int port)
      : socket_(Socket::connect_tcp("127.0.0.1", port)),
        reader_(&socket_, 64u << 20) {}

  void send(const std::string& request) { socket_.send_all(request + "\n"); }

  Json recv() {
    std::string line;
    EXPECT_TRUE(reader_.read_line(&line)) << "connection closed early";
    return Json::parse(line);
  }

  bool recv_line(std::string* line) { return reader_.read_line(line); }

 private:
  Socket socket_;
  LineReader reader_;
};

/// An in-process fleet worker: its own ServiceCore (no listener) plus a
/// WorkerAgent joined to the test scheduler.
class TestWorker {
 public:
  TestWorker(int scheduler_port, const std::string& name,
             const std::string& fault_spec = "") {
    core_.config.num_threads = 2;
    core_.config.cache_bytes = 8u << 20;
    core_.init(nullptr);
    WorkerAgentConfig config;
    config.connect = "127.0.0.1:" + std::to_string(scheduler_port);
    config.name = name;
    config.heartbeat_ms = 100;
    if (!fault_spec.empty())
      config.faults = FaultInjector::parse(fault_spec);
    agent_.emplace(&core_, std::move(config));
    agent_->start();
  }

  ~TestWorker() { stop(); }

  void stop() {
    if (agent_) {
      agent_->stop();
      agent_.reset();
      core_.pool->wait_idle();
    }
  }

  bool connected() const { return agent_ && agent_->connected(); }

 private:
  ServiceCore core_;
  std::optional<WorkerAgent> agent_;
};

/// The report with wall-clock columns zeroed (legitimately
/// nondeterministic even between two local runs).
std::string comparable(Json report) {
  auto& object = report.as_object();
  if (auto it = object.find("gscale"); it != object.end())
    it->second.as_object()["seconds"] = Json(0.0);
  return report.dump();
}

class SchedulerTest : public ::testing::Test {
 protected:
  void start_service(ServiceConfig config) {
    config.tcp_port = 0;
    config.scheduler = true;
    if (config.num_threads == 0) config.num_threads = 2;
    service_.emplace(config);
    service_->start();
  }

  void TearDown() override {
    workers_.clear();  // agents stop before the scheduler goes away
    if (service_) {
      service_->request_stop();
      service_->stop();
    }
  }

  int port() const { return service_->port(); }

  TestWorker& add_worker(const std::string& name,
                         const std::string& fault_spec = "") {
    workers_.push_back(
        std::make_unique<TestWorker>(port(), name, fault_spec));
    return *workers_.back();
  }

  /// Polls `stats` until `ready(stats)` holds; fails after ~5 s.
  Json await_stats(const std::function<bool(const Json&)>& ready) {
    Client observer(port());
    Json stats;
    for (int spins = 0; spins < 5000; ++spins) {
      observer.send(R"({"type":"stats"})");
      stats = observer.recv();
      if (ready(stats)) return stats;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ADD_FAILURE() << "stats condition never became true: " << stats.dump();
    return stats;
  }

  /// Blocks until `count` live (non-expired) workers are registered.
  void await_workers(std::size_t count) {
    await_stats([count](const Json& stats) {
      const Json* fleet = stats.find("fleet");
      if (fleet == nullptr) return false;
      std::size_t live = 0;
      for (const Json& w : fleet->find("workers")->as_array())
        if (!w.find("expired")->as_bool()) ++live;
      return live >= count;
    });
  }

  static std::uint64_t fleet_counter(const Json& stats, const char* key) {
    return stats.find("fleet")->find(key)->as_uint();
  }

  std::optional<Service> service_;
  std::vector<std::unique_ptr<TestWorker>> workers_;
};

TEST_F(SchedulerTest, WorkerRegistersHeartbeatsAndExecutesRemotely) {
  start_service({});
  add_worker("w1");
  await_workers(1);

  // The suite engine is the bit-identity reference: a fleet answer must
  // match a serial local run exactly (modulo wall-clock columns).
  SuiteOptions suite;
  suite.circuits = {"x2"};
  suite.num_threads = 1;
  const SuiteReport reference = run_suite(suite);
  const std::string expected =
      comparable(report_json(reference.rows[0], true, true, true));

  Client client(port());
  client.send(R"({"type":"optimize","circuit":"x2"})");
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result") << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");
  // The job ran on the worker, and the response says so.
  ASSERT_NE(first.find("executor"), nullptr) << first.dump();
  EXPECT_EQ(first.find("executor")->as_string(), "w1");
  EXPECT_EQ(comparable(*first.find("report")), expected);

  // The remote answer warmed the scheduler's cache like a local one.
  client.send(R"({"type":"optimize","circuit":"x2"})");
  Json second = client.recv();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(second.find("executor"), nullptr);

  // heartbeat_ms is 100: at least one lands within the await window.
  const Json stats = await_stats([](const Json& s) {
    const Json* fleet = s.find("fleet");
    return fleet != nullptr && fleet->find("heartbeats")->as_uint() >= 1;
  });
  EXPECT_EQ(fleet_counter(stats, "remote_ok"), 1u);
  EXPECT_EQ(fleet_counter(stats, "dispatches"), 1u);
  EXPECT_EQ(fleet_counter(stats, "fallback_local"), 0u);
  EXPECT_EQ(fleet_counter(stats, "workers_registered"), 1u);
}

TEST_F(SchedulerTest, SchedulerExpiresSilentWorkerAndFallsBackLocally) {
  ServiceConfig config;
  config.heartbeat_timeout_ms = 300;
  config.lease_ms = 500;
  config.dispatch_retries = 0;
  start_service(config);

  // A hand-rolled worker that registers and then goes silent: no
  // heartbeats, no job results.  The sweeper must expire it.
  Client zombie(port());
  zombie.send(R"({"type":"register_worker","name":"zombie","capacity":4})");
  Json ack = zombie.recv();
  ASSERT_EQ(ack.find("type")->as_string(), "registered") << ack.dump();
  EXPECT_EQ(ack.find("name")->as_string(), "zombie");
  await_workers(1);

  // Dispatched to the zombie, the job's lease expires (or the expiry
  // sweep fails it over) and the answer is computed locally — correct
  // and executor-free.
  Client client(port());
  client.send(R"({"type":"optimize","circuit":"x2"})");
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  EXPECT_EQ(response.find("executor"), nullptr);
  EXPECT_GT(response.find("report")->find("org_power_uw")->as_double(),
            0.0);

  const Json stats = await_stats([](const Json& s) {
    const Json* fleet = s.find("fleet");
    return fleet != nullptr &&
           fleet->find("workers_expired")->as_uint() >= 1;
  });
  EXPECT_GE(fleet_counter(stats, "fallback_local"), 1u);
  EXPECT_TRUE(fleet_counter(stats, "lease_expired") >= 1 ||
              fleet_counter(stats, "workers_lost") >= 1);
  // The expired worker is gone from the roster.
  EXPECT_TRUE(stats.find("fleet")->find("workers")->as_array().empty());
}

TEST_F(SchedulerTest, CorruptRepliesRetryOnADifferentWorker) {
  ServiceConfig config;
  config.dispatch_backoff_ms = 1;
  start_service(config);
  // w-bad corrupts every reply body (checksum mismatch, still valid
  // JSON); w-good answers honestly.  Capacity 2 each, so the retry has
  // a different worker to prefer.
  add_worker("w-bad", "job-reply=corrupt-reply@1.0,seed=7");
  add_worker("w-good");
  await_workers(2);

  // Enough jobs that at least one lands on w-bad first; every answer
  // must still be correct and attributed to w-good (the retry target).
  Client client(port());
  for (const char* circuit : {"x2", "z4ml", "pm1"}) {
    client.send(std::string(R"({"type":"optimize","circuit":")") +
                circuit + R"("})");
    Json response = client.recv();
    ASSERT_EQ(response.find("type")->as_string(), "result")
        << response.dump();
    if (response.find("executor") != nullptr) {
      EXPECT_EQ(response.find("executor")->as_string(), "w-good");
    }
  }

  const Json stats = await_stats([](const Json&) { return true; });
  EXPECT_GE(fleet_counter(stats, "corrupt_replies"), 1u);
  EXPECT_GE(fleet_counter(stats, "dispatch_retries"), 1u);
  EXPECT_GE(fleet_counter(stats, "remote_ok"), 1u);
}

TEST_F(SchedulerTest, StalledWorkerLeaseExpiresAndJobRunsLocally) {
  ServiceConfig config;
  config.lease_ms = 300;
  config.dispatch_retries = 0;
  start_service(config);
  // The worker accepts the job and then sleeps "forever": the lease
  // must expire and the scheduler must answer from its own pool.
  add_worker("w-stall", "job-reply=stall@1.0,stall_ms=60000,seed=1");
  await_workers(1);

  Client client(port());
  const auto sent = std::chrono::steady_clock::now();
  client.send(R"({"type":"optimize","circuit":"x2"})");
  Json response = client.recv();
  const double wait_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - sent)
          .count();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  EXPECT_EQ(response.find("executor"), nullptr);
  // Bounded failover: one lease window plus the local compute, not the
  // worker's 60 s stall.
  EXPECT_LT(wait_ms, 10'000.0);

  const Json stats = await_stats([](const Json&) { return true; });
  EXPECT_GE(fleet_counter(stats, "lease_expired"), 1u);
  EXPECT_GE(fleet_counter(stats, "fallback_local"), 1u);
  EXPECT_EQ(fleet_counter(stats, "remote_ok"), 0u);
}

TEST_F(SchedulerTest, DispatchTraceSpansNameTheWorker) {
  start_service({});
  add_worker("w1");
  await_workers(1);

  Client client(port());
  client.send(R"({"type":"optimize","circuit":"x2","trace":true})");
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  ASSERT_NE(response.find("trace"), nullptr);
  bool saw_dispatch = false;
  for (const Json& span : response.find("trace")->as_array())
    if (span.find("name")->as_string() == "dispatch:w1") {
      saw_dispatch = true;
      EXPECT_EQ(span.find("depth")->as_int(), 1);
    }
  EXPECT_TRUE(saw_dispatch) << response.dump();
}

TEST_F(SchedulerTest, DieAfterRegisterWorkersAreReapedCleanly) {
  ServiceConfig config;
  config.heartbeat_timeout_ms = 500;
  start_service(config);
  // The agent registers and instantly drops the channel, then its
  // reconnect loop does it again — scripted infant mortality.
  add_worker("w-flaky", "register=die-after-accept@1.0,seed=2");

  await_stats([](const Json& s) {
    const Json* fleet = s.find("fleet");
    return fleet != nullptr &&
           fleet->find("workers_registered")->as_uint() >= 2;
  });

  // The roster churn never breaks request serving.
  Client client(port());
  client.send(R"({"type":"optimize","circuit":"x2"})");
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  EXPECT_GT(response.find("report")->find("org_power_uw")->as_double(),
            0.0);
}

TEST_F(SchedulerTest, BatchSurvivesWorkerKilledMidFlight) {
  ServiceConfig config;
  config.dispatch_backoff_ms = 1;
  start_service(config);
  TestWorker& victim = add_worker("w-victim");
  add_worker("w-survivor");
  await_workers(2);

  SuiteOptions suite;
  suite.circuits = {"x2", "z4ml", "pm1", "i1", "mux"};
  suite.num_threads = 1;
  const SuiteReport reference = run_suite(suite);

  Client client(port());
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml","pm1","i1","mux"],)"
      R"("id":"chaos"})");
  // Kill one worker the moment the fleet has work in flight.
  await_stats([](const Json& s) {
    const Json* fleet = s.find("fleet");
    return fleet != nullptr && fleet->find("dispatches")->as_uint() >= 1;
  });
  victim.stop();

  std::set<std::uint64_t> seen;
  bool done = false;
  while (!done) {
    Json response = client.recv();
    const std::string type = response.find("type")->as_string();
    ASSERT_TRUE(type == "batch_item" || type == "batch_done")
        << response.dump();
    if (type == "batch_done") {
      EXPECT_EQ(response.find("count")->as_uint(), 5u);
      EXPECT_EQ(response.find("failed")->as_uint(), 0u);
      done = true;
      continue;
    }
    ASSERT_EQ(response.find("error"), nullptr) << response.dump();
    const std::uint64_t index = response.find("index")->as_uint();
    ASSERT_LT(index, reference.rows.size());
    EXPECT_TRUE(seen.insert(index).second) << "duplicate item";
    // Bit-identity holds no matter who computed the row — victim,
    // survivor, or the local fallback.
    EXPECT_EQ(
        comparable(*response.find("report")),
        comparable(report_json(reference.rows[index], true, true, true)));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST_F(SchedulerTest, GracefulStopWithLeasedBatchNeverDropsRows) {
  // SIGTERM-shaped stop while leased work is in flight on a stalling
  // worker: the drain cancels the leases, every item falls back to
  // local execution, and the client still gets all rows + batch_done.
  ServiceConfig config;
  config.lease_ms = 60'000;  // the drain, not expiry, must cancel these
  config.dispatch_retries = 0;
  start_service(config);
  add_worker("w-stall", "job-reply=stall@1.0,stall_ms=60000,seed=5");
  await_workers(1);

  Client client(port());
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml","pm1"],"id":"drain"})");
  await_stats([](const Json& s) {
    const Json* fleet = s.find("fleet");
    return fleet != nullptr && fleet->find("dispatches")->as_uint() >= 1;
  });

  service_->request_stop();
  service_->stop();  // blocks until drained

  std::set<std::uint64_t> seen;
  bool done = false;
  std::string line;
  while (client.recv_line(&line)) {
    if (line.empty()) continue;
    const Json response = Json::parse(line);
    const std::string type = response.find("type")->as_string();
    ASSERT_TRUE(type == "batch_item" || type == "batch_done")
        << response.dump();
    if (type == "batch_done") {
      EXPECT_EQ(response.find("count")->as_uint(), 3u);
      EXPECT_EQ(response.find("failed")->as_uint(), 0u);
      done = true;
    } else {
      ASSERT_EQ(response.find("error"), nullptr) << response.dump();
      seen.insert(response.find("index")->as_uint());
    }
  }
  EXPECT_TRUE(done) << "batch_done never arrived before EOF";
  EXPECT_EQ(seen.size(), 3u);
  service_.reset();
}

TEST_F(SchedulerTest, RegisterWorkerRejectedWithoutSchedulerMode) {
  ServiceConfig config;
  service_.emplace(config);  // plain daemon, no --scheduler
  service_->start();

  Client client(port());
  client.send(R"({"type":"register_worker","name":"w1","capacity":2})");
  Json error = client.recv();
  ASSERT_EQ(error.find("type")->as_string(), "error") << error.dump();
  EXPECT_NE(error.find("message")->as_string().find("--scheduler"),
            std::string::npos);
  // The connection still serves normal requests.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

}  // namespace
}  // namespace dvs
