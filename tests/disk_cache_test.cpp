// The disk tier of the dvsd result cache: content-addressed file
// round trips, write-behind flushing, miss semantics, and the headline
// guarantee — a daemon restarted against the same --cache-dir answers
// the same request from disk, bit-identical, without recomputing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>

#include "service/disk_cache.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace dvs {
namespace {

namespace fs = std::filesystem;

/// A fresh directory under TMPDIR, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "dvs-disk-XXXXXX");
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CacheKey key_n(std::uint64_t n) {
  CacheKey key;
  key.topology = n;
  key.mapping = 0xfeedfacecafef00dULL;
  key.options = 2;
  key.library = 3;
  return key;
}

DiskCacheEngine::Payload payload(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(DiskCacheEngine, StoreFlushLoadRoundTrip) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  engine.store(key_n(1), payload("the serialized result body"));
  engine.flush();

  // The content-addressed file exists under its stable name...
  EXPECT_TRUE(
      fs::exists(fs::path(dir.path()) / DiskCacheEngine::file_name(key_n(1))));
  // ...and reads back byte-for-byte.
  DiskCacheEngine::Payload back = engine.load(key_n(1));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "the serialized result body");

  const DiskCacheStats stats = engine.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.write_errors, 0u);
  EXPECT_EQ(stats.bytes_written, 26u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(DiskCacheEngine, AbsentKeyIsAMiss) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  EXPECT_EQ(engine.load(key_n(404)), nullptr);
  EXPECT_EQ(engine.stats().misses, 1u);
}

TEST(DiskCacheEngine, EntriesSurviveEngineRestart) {
  TempDir dir;
  {
    DiskCacheEngine first(dir.path());
    first.store(key_n(7), payload("persisted"));
    // No explicit flush: the destructor drains the write-behind queue.
  }
  DiskCacheEngine second(dir.path());
  DiskCacheEngine::Payload back = second.load(key_n(7));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "persisted");
}

TEST(DiskCacheEngine, RestoreOverwritesAtomically) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  engine.store(key_n(1), payload("old answer"));
  engine.store(key_n(1), payload("new answer"));
  engine.flush();
  DiskCacheEngine::Payload back = engine.load(key_n(1));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "new answer");
  EXPECT_EQ(engine.stats().writes, 2u);
}

TEST(DiskCacheEngine, FileNamesAreStableAndDistinct) {
  // 4 fixed-width hex components + separators + extension: the name is
  // a pure function of the key, never of the process or the clock.
  const std::string name = DiskCacheEngine::file_name(key_n(0xabc));
  EXPECT_EQ(name.size(), 4 * 16 + 3 + 4u);
  EXPECT_EQ(name, DiskCacheEngine::file_name(key_n(0xabc)));
  EXPECT_EQ(name.substr(0, 16), "0000000000000abc");
  EXPECT_EQ(name.substr(name.size() - 4), ".res");
  EXPECT_NE(name, DiskCacheEngine::file_name(key_n(0xabd)));
}

TEST(DiskCacheEngine, UncreatableDirectoryFailsLoudly) {
  EXPECT_THROW(DiskCacheEngine("/proc/definitely/not/writable"),
               std::runtime_error);
}

// ---- corruption tolerance --------------------------------------------------
//
// Every entry carries a `dvsr1 <fnv1a64> <size>` header; load() verifies
// it and treats any mismatch as a miss, unlinking the damaged file so the
// result is recomputed exactly once instead of being served corrupted.

std::string entry_path(const TempDir& dir, const CacheKey& key) {
  return dir.path() + "/" + DiskCacheEngine::file_name(key);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

TEST(DiskCacheEngine, TruncatedEntryIsAMissAndUnlinked) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  engine.store(key_n(9), payload("a result body worth protecting"));
  engine.flush();
  const std::string path = entry_path(dir, key_n(9));
  const std::string intact = read_file(path);

  // Sweep truncation points: empty file, mid-header, header-only, and
  // several partial-payload lengths.  Every one must read as a miss,
  // count as corrupt, and leave no file behind.
  const std::size_t cuts[] = {0, 3, intact.find('\n') + 1,
                              intact.size() - 1, intact.size() / 2};
  std::uint64_t expected_corrupt = 0;
  for (const std::size_t cut : cuts) {
    write_file(path, intact.substr(0, cut));
    EXPECT_EQ(engine.load(key_n(9)), nullptr) << "cut at " << cut;
    EXPECT_FALSE(fs::exists(path)) << "cut at " << cut;
    ++expected_corrupt;
    EXPECT_EQ(engine.stats().corrupt, expected_corrupt);
  }
  EXPECT_EQ(engine.stats().misses, expected_corrupt);
  EXPECT_EQ(engine.stats().hits, 0u);
}

TEST(DiskCacheEngine, EveryFlippedByteIsDetected) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  engine.store(key_n(10), payload("checksummed payload"));
  engine.flush();
  const std::string path = entry_path(dir, key_n(10));
  const std::string intact = read_file(path);

  // Flip one bit of every byte in turn — magic, checksum digits, size
  // digits, the header newline, and each payload byte.  No single-byte
  // corruption anywhere in the file may survive verification.
  for (std::size_t i = 0; i < intact.size(); ++i) {
    std::string damaged = intact;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    write_file(path, damaged);
    EXPECT_EQ(engine.load(key_n(10)), nullptr) << "flip at byte " << i;
    EXPECT_FALSE(fs::exists(path)) << "flip at byte " << i;
  }
  EXPECT_EQ(engine.stats().corrupt, intact.size());

  // And the pristine bytes still verify: the detector has no false
  // positives on this entry.
  write_file(path, intact);
  DiskCacheEngine::Payload back = engine.load(key_n(10));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "checksummed payload");
}

TEST(DiskCacheEngine, HeaderlessLegacyFileIsAMissAndUnlinked) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  // A pre-checksum cache directory holds bare payloads.  They must be
  // treated as corrupt (miss + unlink), never returned as results.
  const std::string path = entry_path(dir, key_n(11));
  write_file(path, "raw payload from an older daemon");
  EXPECT_EQ(engine.load(key_n(11)), nullptr);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(engine.stats().corrupt, 1u);
  EXPECT_EQ(engine.stats().misses, 1u);
}

TEST(DiskCacheEngine, CorruptEntryIsRecomputedExactlyOnce) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  engine.store(key_n(12), payload("first answer"));
  engine.flush();
  const std::string path = entry_path(dir, key_n(12));
  write_file(path, read_file(path) + "trailing garbage");

  // The damaged entry misses (and vanishes)...
  EXPECT_EQ(engine.load(key_n(12)), nullptr);
  EXPECT_FALSE(fs::exists(path));
  // ...the caller re-stores the recomputed result...
  engine.store(key_n(12), payload("first answer"));
  engine.flush();
  // ...and from then on it hits again.
  DiskCacheEngine::Payload back = engine.load(key_n(12));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "first answer");
  EXPECT_EQ(engine.stats().corrupt, 1u);
  EXPECT_EQ(engine.stats().hits, 1u);
}

// ---- the restart guarantee, end to end ------------------------------------

class RestartClient {
 public:
  explicit RestartClient(int port)
      : socket_(Socket::connect_tcp("127.0.0.1", port)),
        reader_(&socket_, 64u << 20) {}

  Json round_trip(const std::string& request) {
    socket_.send_all(request + "\n");
    std::string line;
    EXPECT_TRUE(reader_.read_line(&line)) << "connection closed early";
    return Json::parse(line);
  }

 private:
  Socket socket_;
  LineReader reader_;
};

/// The response body fields that must replay bit-identically from disk.
std::string body_fields(const Json& response) {
  return response.find("report")->dump() + "|" +
         response.find("metrics")->dump() + "|" +
         response.find("trajectory")->dump();
}

TEST(DiskCacheService, RestartAnswersFromDiskBitIdentically) {
  TempDir dir;
  ServiceConfig config;
  config.tcp_port = 0;
  config.num_threads = 2;
  config.cache_dir = dir.path();
  const std::string request = R"({"type":"optimize","circuit":"x2"})";

  // Cold daemon: compute, answer "miss", persist write-behind.
  std::string cold_body;
  {
    Service service(config);
    service.start();
    RestartClient client(service.port());
    Json cold = client.round_trip(request);
    ASSERT_EQ(cold.find("type")->as_string(), "result") << cold.dump();
    EXPECT_EQ(cold.find("cache")->as_string(), "miss");
    cold_body = body_fields(cold);
    service.request_stop();
    service.stop();  // drains sessions AND flushes the disk tier
  }

  // Restarted daemon, same --cache-dir: the answer comes from the disk
  // tier (the in-memory cache is empty), byte-identical to the cold run.
  Service service(config);
  service.start();
  RestartClient client(service.port());
  Json warm = client.round_trip(request);
  ASSERT_EQ(warm.find("type")->as_string(), "result") << warm.dump();
  EXPECT_EQ(warm.find("cache")->as_string(), "disk");
  EXPECT_EQ(body_fields(warm), cold_body);

  // Exactly one disk hit, and the promote means the next repeat is a
  // memory-tier hit.
  Json stats = client.round_trip(R"({"type":"stats"})");
  EXPECT_TRUE(stats.find("disk")->find("enabled")->as_bool());
  EXPECT_EQ(stats.find("disk")->find("hits")->as_uint(), 1u);
  EXPECT_EQ(stats.find("disk")->find("misses")->as_uint(), 0u);
  Json repeat = client.round_trip(request);
  EXPECT_EQ(repeat.find("cache")->as_string(), "hit");
  EXPECT_EQ(body_fields(repeat), cold_body);

  service.request_stop();
  service.stop();
}

TEST(DiskCacheService, CacheBypassStillWarmsTheDiskTier) {
  TempDir dir;
  ServiceConfig config;
  config.tcp_port = 0;
  config.num_threads = 2;
  config.cache_dir = dir.path();
  Service service(config);
  service.start();
  RestartClient client(service.port());
  Json response = client.round_trip(
      R"({"type":"optimize","circuit":"x2","use_cache":false})");
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  service.request_stop();
  service.stop();  // flush
  EXPECT_GE(service.disk_stats().writes, 1u);
  EXPECT_FALSE(fs::is_empty(dir.path()));
}

}  // namespace
}  // namespace dvs
