// The disk tier of the dvsd result cache: content-addressed file
// round trips, write-behind flushing, miss semantics, and the headline
// guarantee — a daemon restarted against the same --cache-dir answers
// the same request from disk, bit-identical, without recomputing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "service/disk_cache.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace dvs {
namespace {

namespace fs = std::filesystem;

/// A fresh directory under TMPDIR, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "dvs-disk-XXXXXX");
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CacheKey key_n(std::uint64_t n) {
  CacheKey key;
  key.topology = n;
  key.mapping = 0xfeedfacecafef00dULL;
  key.options = 2;
  key.library = 3;
  return key;
}

DiskCacheEngine::Payload payload(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(DiskCacheEngine, StoreFlushLoadRoundTrip) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  engine.store(key_n(1), payload("the serialized result body"));
  engine.flush();

  // The content-addressed file exists under its stable name...
  EXPECT_TRUE(
      fs::exists(fs::path(dir.path()) / DiskCacheEngine::file_name(key_n(1))));
  // ...and reads back byte-for-byte.
  DiskCacheEngine::Payload back = engine.load(key_n(1));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "the serialized result body");

  const DiskCacheStats stats = engine.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.write_errors, 0u);
  EXPECT_EQ(stats.bytes_written, 26u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(DiskCacheEngine, AbsentKeyIsAMiss) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  EXPECT_EQ(engine.load(key_n(404)), nullptr);
  EXPECT_EQ(engine.stats().misses, 1u);
}

TEST(DiskCacheEngine, EntriesSurviveEngineRestart) {
  TempDir dir;
  {
    DiskCacheEngine first(dir.path());
    first.store(key_n(7), payload("persisted"));
    // No explicit flush: the destructor drains the write-behind queue.
  }
  DiskCacheEngine second(dir.path());
  DiskCacheEngine::Payload back = second.load(key_n(7));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "persisted");
}

TEST(DiskCacheEngine, RestoreOverwritesAtomically) {
  TempDir dir;
  DiskCacheEngine engine(dir.path());
  engine.store(key_n(1), payload("old answer"));
  engine.store(key_n(1), payload("new answer"));
  engine.flush();
  DiskCacheEngine::Payload back = engine.load(key_n(1));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(*back, "new answer");
  EXPECT_EQ(engine.stats().writes, 2u);
}

TEST(DiskCacheEngine, FileNamesAreStableAndDistinct) {
  // 4 fixed-width hex components + separators + extension: the name is
  // a pure function of the key, never of the process or the clock.
  const std::string name = DiskCacheEngine::file_name(key_n(0xabc));
  EXPECT_EQ(name.size(), 4 * 16 + 3 + 4u);
  EXPECT_EQ(name, DiskCacheEngine::file_name(key_n(0xabc)));
  EXPECT_EQ(name.substr(0, 16), "0000000000000abc");
  EXPECT_EQ(name.substr(name.size() - 4), ".res");
  EXPECT_NE(name, DiskCacheEngine::file_name(key_n(0xabd)));
}

TEST(DiskCacheEngine, UncreatableDirectoryFailsLoudly) {
  EXPECT_THROW(DiskCacheEngine("/proc/definitely/not/writable"),
               std::runtime_error);
}

// ---- the restart guarantee, end to end ------------------------------------

class RestartClient {
 public:
  explicit RestartClient(int port)
      : socket_(Socket::connect_tcp("127.0.0.1", port)),
        reader_(&socket_, 64u << 20) {}

  Json round_trip(const std::string& request) {
    socket_.send_all(request + "\n");
    std::string line;
    EXPECT_TRUE(reader_.read_line(&line)) << "connection closed early";
    return Json::parse(line);
  }

 private:
  Socket socket_;
  LineReader reader_;
};

/// The response body fields that must replay bit-identically from disk.
std::string body_fields(const Json& response) {
  return response.find("report")->dump() + "|" +
         response.find("metrics")->dump() + "|" +
         response.find("trajectory")->dump();
}

TEST(DiskCacheService, RestartAnswersFromDiskBitIdentically) {
  TempDir dir;
  ServiceConfig config;
  config.tcp_port = 0;
  config.num_threads = 2;
  config.cache_dir = dir.path();
  const std::string request = R"({"type":"optimize","circuit":"x2"})";

  // Cold daemon: compute, answer "miss", persist write-behind.
  std::string cold_body;
  {
    Service service(config);
    service.start();
    RestartClient client(service.port());
    Json cold = client.round_trip(request);
    ASSERT_EQ(cold.find("type")->as_string(), "result") << cold.dump();
    EXPECT_EQ(cold.find("cache")->as_string(), "miss");
    cold_body = body_fields(cold);
    service.request_stop();
    service.stop();  // drains sessions AND flushes the disk tier
  }

  // Restarted daemon, same --cache-dir: the answer comes from the disk
  // tier (the in-memory cache is empty), byte-identical to the cold run.
  Service service(config);
  service.start();
  RestartClient client(service.port());
  Json warm = client.round_trip(request);
  ASSERT_EQ(warm.find("type")->as_string(), "result") << warm.dump();
  EXPECT_EQ(warm.find("cache")->as_string(), "disk");
  EXPECT_EQ(body_fields(warm), cold_body);

  // Exactly one disk hit, and the promote means the next repeat is a
  // memory-tier hit.
  Json stats = client.round_trip(R"({"type":"stats"})");
  EXPECT_TRUE(stats.find("disk")->find("enabled")->as_bool());
  EXPECT_EQ(stats.find("disk")->find("hits")->as_uint(), 1u);
  EXPECT_EQ(stats.find("disk")->find("misses")->as_uint(), 0u);
  Json repeat = client.round_trip(request);
  EXPECT_EQ(repeat.find("cache")->as_string(), "hit");
  EXPECT_EQ(body_fields(repeat), cold_body);

  service.request_stop();
  service.stop();
}

TEST(DiskCacheService, CacheBypassStillWarmsTheDiskTier) {
  TempDir dir;
  ServiceConfig config;
  config.tcp_port = 0;
  config.num_threads = 2;
  config.cache_dir = dir.path();
  Service service(config);
  service.start();
  RestartClient client(service.port());
  Json response = client.round_trip(
      R"({"type":"optimize","circuit":"x2","use_cache":false})");
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  service.request_stop();
  service.stop();  // flush
  EXPECT_GE(service.disk_stats().writes, 1u);
  EXPECT_FALSE(fs::is_empty(dir.path()));
}

}  // namespace
}  // namespace dvs
