// Shared test spelling for the default dual supply ladder {5.0, 4.3}:
// rung 1 is its deepest rung (the old VddLevel::kLow).  Tests exercising
// deeper ladders spell rungs explicitly instead.
#pragma once

#include "library/supply.hpp"

namespace dvs {

inline constexpr SupplyId kLowRung = 1;

}  // namespace dvs
