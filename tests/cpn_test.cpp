// Dedicated tests for TCB and critical-path-network extraction: the two
// analyses that steer Gscale.
#include "timing/cpn.hpp"

#include <gtest/gtest.h>

#include "benchgen/structured.hpp"
#include "core/cvs.hpp"
#include "timing/tcb.hpp"

namespace dvs {
namespace {

class CpnTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  Network grid(std::uint64_t seed = 3) {
    GridSpec spec;
    spec.gates = 80;
    spec.pis = 10;
    spec.pos = 4;
    spec.slack_branch_fraction = 0.1;
    spec.seed = seed;
    return build_balanced_grid(lib_, spec, "g");
  }
};

TEST_F(CpnTest, TcbOfTightGridIsThePoDrivers) {
  Design design(grid(), lib_);
  const CvsResult r = run_cvs(design);  // lowers nothing: zero slack
  ASSERT_EQ(r.num_lowered, 0);
  // Every PO driver is critical and blocked -> all in the TCB.
  std::vector<char> in_tcb(design.network().size(), 0);
  for (NodeId t : r.tcb) in_tcb[t] = 1;
  for (const OutputPort& port : design.network().outputs())
    EXPECT_TRUE(in_tcb[port.driver]) << port.name;
}

TEST_F(CpnTest, CpnCoversTheMeshSpine) {
  Design design(grid(), lib_);
  const CvsResult cvs = run_cvs(design);
  const StaResult sta = design.run_timing();
  const CriticalPathNetwork cpn =
      extract_cpn(design.timing_context(), sta, cvs.tcb, 0.05);
  EXPECT_FALSE(cpn.empty());
  // In a zero-slack mesh essentially every gate is on a critical path.
  EXPECT_GT(static_cast<int>(cpn.nodes.size()),
            design.network().num_gates() / 2);
  EXPECT_FALSE(cpn.sources.empty());
  EXPECT_FALSE(cpn.sinks.empty());
}

TEST_F(CpnTest, CpnEdgesConnectMembers) {
  Design design(grid(), lib_);
  const CvsResult cvs = run_cvs(design);
  const StaResult sta = design.run_timing();
  const CriticalPathNetwork cpn =
      extract_cpn(design.timing_context(), sta, cvs.tcb, 0.05);
  std::vector<char> member(design.network().size(), 0);
  for (NodeId n : cpn.nodes) member[n] = 1;
  for (const auto& [u, v] : cpn.edges) {
    EXPECT_TRUE(member[u]);
    EXPECT_TRUE(member[v]);
    // Edges follow real netlist arcs.
    const auto& fanouts = design.network().node(u).fanouts;
    EXPECT_NE(std::find(fanouts.begin(), fanouts.end(), v),
              fanouts.end());
  }
}

TEST_F(CpnTest, WiderWindowGrowsTheNetwork) {
  Design design(grid(), lib_);
  const CvsResult cvs = run_cvs(design);
  const StaResult sta = design.run_timing();
  const auto narrow =
      extract_cpn(design.timing_context(), sta, cvs.tcb, 0.001);
  const auto wide =
      extract_cpn(design.timing_context(), sta, cvs.tcb, 0.5);
  EXPECT_GE(wide.nodes.size(), narrow.nodes.size());
}

TEST_F(CpnTest, SlackBranchesStayOutsideNarrowCpn) {
  Design design(grid(), lib_);
  const CvsResult cvs = run_cvs(design);
  const StaResult sta = design.run_timing();
  const auto cpn =
      extract_cpn(design.timing_context(), sta, cvs.tcb, 0.001);
  for (NodeId n : cpn.nodes)
    EXPECT_LT(sta.slack[n], 0.05) << "slacky node in narrow CPN";
}

TEST_F(CpnTest, EmptyTcbGivesEmptyCpn) {
  Design design(grid(), lib_);
  const StaResult sta = design.run_timing();
  const auto cpn = extract_cpn(design.timing_context(), sta, {}, 0.05);
  EXPECT_TRUE(cpn.empty());
}

}  // namespace
}  // namespace dvs
