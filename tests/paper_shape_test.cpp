// Regression guard for the reproduction itself: runs the full 39-circuit
// flow and asserts the paper's qualitative results (the "shape") hold.
// If a library or algorithm change breaks the Table 1 / Table 2 story,
// this is the test that fails.
#include <gtest/gtest.h>

#include "benchgen/mcnc.hpp"
#include "core/flow.hpp"
#include "netlist/blif.hpp"
#include "sim/bitsim.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

class PaperShapeTest : public ::testing::Test {
 protected:
  static const std::vector<CircuitRunResult>& rows() {
    static const std::vector<CircuitRunResult> kRows = [] {
      const Library lib = build_compass_library();
      std::vector<CircuitRunResult> out;
      for (const McncDescriptor& d : mcnc_suite()) {
        Network net = build_mcnc_circuit(lib, d);
        FlowOptions options;
        options.activity.num_vectors = 2048;
        out.push_back(run_paper_flow(net, lib, options));
      }
      return out;
    }();
    return kRows;
  }

  static const CircuitRunResult& row(const char* name) {
    for (const CircuitRunResult& r : rows())
      if (r.name == name) return r;
    ADD_FAILURE() << "no row " << name;
    static CircuitRunResult dummy;
    return dummy;
  }
};

TEST_F(PaperShapeTest, AveragesMatchThePaperBand) {
  double cvs = 0, dscale = 0, gscale = 0;
  for (const CircuitRunResult& r : rows()) {
    cvs += r.cvs_improve_pct;
    dscale += r.dscale_improve_pct;
    gscale += r.gscale_improve_pct;
  }
  const double n = rows().size();
  EXPECT_NEAR(cvs / n, 10.27, 2.5);    // paper: 10.27
  EXPECT_NEAR(dscale / n, 12.09, 2.5); // paper: 12.09
  EXPECT_NEAR(gscale / n, 19.12, 4.0); // paper: 19.12
  EXPECT_GE(dscale, cvs);              // Dscale never loses to CVS
  EXPECT_GT(gscale / n, cvs / n * 1.7);  // Gscale ~2x CVS
}

TEST_F(PaperShapeTest, ZeroCvsCircuits) {
  for (const char* name :
       {"C1355", "C432", "C499", "f51m", "i2", "mux", "z4ml"}) {
    EXPECT_NEAR(row(name).cvs_improve_pct, 0.0, 1e-6) << name;
    EXPECT_EQ(row(name).cvs_low, 0) << name;
    // ... and Gscale unlocks them anyway (except frozen i2).
    if (std::string(name) != "i2")
      EXPECT_GT(row(name).gscale_improve_pct, 10.0) << name;
  }
}

TEST_F(PaperShapeTest, FrozenCircuits) {
  EXPECT_NEAR(row("i2").gscale_improve_pct, 0.0, 0.5);
  EXPECT_EQ(row("i2").gscale_resized, 0);
  EXPECT_NEAR(row("i3").cvs_improve_pct, row("i3").gscale_improve_pct,
              0.5);
  EXPECT_NEAR(row("pcle").cvs_improve_pct, row("pcle").gscale_improve_pct,
              0.5);
}

TEST_F(PaperShapeTest, CvsRatiosTrackTable2) {
  int within = 0, total = 0;
  for (std::size_t i = 0; i < rows().size(); ++i) {
    const McncDescriptor& d = mcnc_suite()[i];
    ++total;
    if (std::abs(rows()[i].cvs_low_ratio() - d.paper.cvs_ratio) <= 0.10)
      ++within;
  }
  // At least ~80% of circuits within 0.10 of the published ratio.
  EXPECT_GE(within * 10, total * 8) << within << "/" << total;
}

TEST_F(PaperShapeTest, MonotoneAlgorithmOrderingPerCircuit) {
  for (const CircuitRunResult& r : rows()) {
    EXPECT_GE(r.dscale_low, r.cvs_low) << r.name;
    EXPECT_GE(r.gscale_improve_pct, r.cvs_improve_pct - 0.01) << r.name;
    EXPECT_LE(r.gscale_area_increase, 0.101) << r.name;
  }
}

TEST(SuiteRoundTrip, BlifPreservesSuiteCircuits) {
  const Library lib = build_compass_library();
  Rng rng(5);
  for (const char* name : {"z4ml", "x2", "pm1", "i1", "mux"}) {
    const McncDescriptor* d = find_mcnc(name);
    Network net = build_mcnc_circuit(lib, *d);
    Network again = read_blif_string(write_blif_string(net));
    BitSimulator s1(net), s2(again);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<bool> in;
      for (std::size_t i = 0; i < net.inputs().size(); ++i)
        in.push_back(rng.next_bool());
      EXPECT_EQ(s1.evaluate(in), s2.evaluate(in)) << name;
    }
  }
}

}  // namespace
}  // namespace dvs
