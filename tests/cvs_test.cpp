#include "core/cvs.hpp"

#include <gtest/gtest.h>

#include "dual_ladder.hpp"

#include "benchgen/structured.hpp"

namespace dvs {
namespace {

class CvsTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(CvsTest, ZeroSlackCircuitLowersNothing) {
  GridSpec spec;
  spec.gates = 60;
  spec.pis = 8;
  spec.pos = 3;
  spec.slack_branch_fraction = 0.0;
  Network net = build_balanced_grid(lib_, spec, "tight");
  Design design(std::move(net), lib_);  // tspec == own delay
  const CvsResult r = run_cvs(design);
  EXPECT_EQ(r.num_lowered, 0);
  EXPECT_EQ(design.count_low(), 0);
  EXPECT_FALSE(r.tcb.empty());
}

TEST_F(CvsTest, RelaxedConstraintLowersFromTheOutputs) {
  GridSpec spec;
  spec.gates = 60;
  spec.pis = 8;
  spec.pos = 3;
  Network net = build_balanced_grid(lib_, spec, "relaxed");
  const StaResult base = run_sta(net, lib_, -1.0);
  Design design(std::move(net), lib_, base.worst_arrival * 1.25);
  const CvsResult r = run_cvs(design);
  EXPECT_GT(r.num_lowered, 0);
  EXPECT_TRUE(cvs_cluster_invariant_holds(design));
  EXPECT_TRUE(design.run_timing().meets_constraint(1e-9));
}

TEST_F(CvsTest, ClusterIsContingentToOutputs) {
  // In a ripple adder the sum gates nearest cout have slack.
  Network net = build_ripple_adder(lib_, 16, "add16");
  Design design(std::move(net), lib_);
  run_cvs(design);
  EXPECT_TRUE(cvs_cluster_invariant_holds(design));
  EXPECT_EQ(design.count_lcs(), 0);
  EXPECT_GT(design.count_low(), 0);
}

TEST_F(CvsTest, SecondRunIsAFixpoint) {
  Network net = build_ripple_adder(lib_, 12, "add12");
  Design design(std::move(net), lib_);
  run_cvs(design);
  const int low_after_first = design.count_low();
  const CvsResult second = run_cvs(design);
  EXPECT_EQ(second.num_lowered, 0);
  EXPECT_EQ(design.count_low(), low_after_first);
}

TEST_F(CvsTest, PowerNeverIncreases) {
  Network net = build_ripple_adder(lib_, 16, "add16");
  Design baseline(net, lib_);
  Design design(std::move(net), lib_);
  run_cvs(design);
  EXPECT_LE(design.run_power().total(),
            baseline.run_power().total() + 1e-9);
}

TEST_F(CvsTest, TcbSitsNextToTheLowCluster) {
  Network net = build_ripple_adder(lib_, 16, "add16");
  Design design(std::move(net), lib_);
  const CvsResult r = run_cvs(design);
  for (NodeId t : r.tcb) {
    EXPECT_EQ(design.level(t), kTopRung);
    bool adjacent = false;
    for (NodeId fo : design.network().node(t).fanouts)
      if (design.level(fo) == kLowRung) adjacent = true;
    for (const OutputPort& port : design.network().outputs())
      if (port.driver == t) adjacent = true;
    EXPECT_TRUE(adjacent) << "TCB node " << t;
  }
}

}  // namespace
}  // namespace dvs
