#include "netlist/verilog.hpp"

#include <gtest/gtest.h>

#include "benchgen/structured.hpp"
#include "netlist/blif.hpp"

namespace dvs {
namespace {

class VerilogTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(VerilogTest, MappedNetlistEmitsInstances) {
  Network net = build_ripple_adder(lib_, 4, "add4");
  const std::string v = write_verilog_string(net, lib_);
  EXPECT_NE(v.find("module add4"), std::string::npos);
  EXPECT_NE(v.find("xor2_d0 u"), std::string::npos);
  EXPECT_NE(v.find("maj3_d0 u"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // One instance per gate.
  std::size_t count = 0;
  for (std::size_t pos = v.find(" u"); pos != std::string::npos;
       pos = v.find(" u", pos + 1))
    ++count;
  EXPECT_EQ(count, static_cast<std::size_t>(net.num_gates()));
}

TEST_F(VerilogTest, UnmappedGatesBecomeAssigns) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId g = net.add_gate(tt_xor(2), {a, b});
  net.add_output("y", g);
  const std::string v = write_verilog_string(net, lib_);
  EXPECT_NE(v.find("assign"), std::string::npos);
  EXPECT_NE(v.find("~"), std::string::npos);  // xor cover has literals
}

TEST_F(VerilogTest, ConstantsAndPorts) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId k = net.add_constant(true);
  const NodeId g = net.add_gate(tt_and(2), {a, k});
  net.add_output("y", g);
  const std::string v = write_verilog_string(net, lib_);
  EXPECT_NE(v.find("1'b1"), std::string::npos);
  EXPECT_NE(v.find("output y;"), std::string::npos);
}

TEST_F(VerilogTest, HostileNamesAreSanitized) {
  Network net("my[block]");
  const NodeId a = net.add_input("in.0");
  const NodeId g = net.add_gate(tt_inv(), {a}, lib_.find("inv_d0"));
  net.add_output("out[0]", g);
  const std::string v = write_verilog_string(net, lib_);
  EXPECT_EQ(v.find('['), std::string::npos);
  EXPECT_EQ(v.find('.'), v.find(".o("));  // only pin syntax dots remain
}

TEST_F(VerilogTest, NameCollisionsUniquified) {
  Network net("t");
  const NodeId a = net.add_input("sig");
  const NodeId g = net.add_gate(tt_inv(), {a}, lib_.find("inv_d0"));
  net.node(g).name = "sig";  // collides with the input after sanitizing
  net.add_output("sig", g);  // and the port collides again
  const std::string v = write_verilog_string(net, lib_);
  EXPECT_NE(v.find("sig_1"), std::string::npos);
  EXPECT_NE(v.find("sig_2"), std::string::npos);
}

}  // namespace
}  // namespace dvs
