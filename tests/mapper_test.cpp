#include "synth/mapper.hpp"

#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "sim/bitsim.hpp"
#include "support/rng.hpp"
#include "timing/sta.hpp"

namespace dvs {
namespace {

/// Every pattern in the forest must compute exactly its cell's function —
/// this is the test that keeps the hand-written NAND/INV trees honest.
class PatternTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PatternTest, PatternLogicEqualsCellFunction) {
  static const Library lib = build_compass_library();
  const Pattern& p = mapper_patterns()[GetParam()];
  const int cell = lib.smallest_of(p.cell_base);
  ASSERT_GE(cell, 0) << p.cell_base;
  const TruthTable& tt = lib.cell(cell).function;
  ASSERT_EQ(tt.num_vars, p.num_vars) << p.cell_base;
  for (std::uint32_t a = 0; a < (1u << p.num_vars); ++a)
    EXPECT_EQ(pattern_eval(p, a), tt.eval(a))
        << p.cell_base << " assignment " << a;
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternTest,
    ::testing::Range<std::size_t>(0, mapper_patterns().size()));

const char* kSample = R"(
.model sample
.inputs a b c d
.outputs y z
.names a b t
11 1
.names t c u
0- 1
-0 1
.names u d y
10 1
01 1
.names c d z
1- 1
-1 1
.end
)";

class MapperTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
  Network src_ = read_blif_string(kSample);

  void expect_equivalent(const Network& a, const Network& b) {
    BitSimulator s1(a), s2(b);
    for (std::uint32_t p = 0; p < 16; ++p) {
      std::vector<bool> in;
      for (int i = 0; i < 4; ++i) in.push_back((p >> i) & 1u);
      EXPECT_EQ(s1.evaluate(in), s2.evaluate(in)) << "pattern " << p;
    }
  }
};

TEST_F(MapperTest, DelayMapPreservesFunction) {
  const MapResult r = map_network(src_, lib_, MapObjective::kDelay);
  expect_equivalent(src_, r.mapped);
  r.mapped.for_each_gate([](const Node& g) { EXPECT_GE(g.cell, 0); });
}

TEST_F(MapperTest, AreaMapPreservesFunction) {
  const MapResult r = map_network(src_, lib_, MapObjective::kArea);
  expect_equivalent(src_, r.mapped);
}

TEST_F(MapperTest, AreaMapNotLargerThanDelayMap) {
  const MapResult d = map_network(src_, lib_, MapObjective::kDelay);
  const MapResult a = map_network(src_, lib_, MapObjective::kArea);
  EXPECT_LE(a.area, d.area + 1e-9);
}

TEST_F(MapperTest, PaperSetupRelaxesTwentyPercent) {
  const PaperSetupResult r = map_paper_setup(src_, lib_, 0.2);
  EXPECT_NEAR(r.tspec, r.tmin * 1.2, 1e-9);
  const StaResult sta = run_sta(r.mapped, lib_, r.tspec);
  EXPECT_TRUE(sta.meets_constraint(1e-9));
  expect_equivalent(src_, r.mapped);
}

class MapRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MapRandomTest, RandomNetworksMapCorrectly) {
  static const Library lib = build_compass_library();
  Rng rng(7000 + GetParam());
  Network net("r");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i)
    nodes.push_back(net.add_input("i" + std::to_string(i)));
  for (int g = 0; g < 15; ++g) {
    const int arity = rng.next_int(1, 3);
    std::vector<NodeId> fanins;
    for (int k = 0; k < arity; ++k) {
      NodeId f;
      do {
        f = nodes[rng.next_below(nodes.size())];
      } while (std::find(fanins.begin(), fanins.end(), f) !=
               fanins.end());
      fanins.push_back(f);
    }
    TruthTable tt{rng.next_u64(), arity};
    tt.bits &= tt.mask();
    nodes.push_back(net.add_gate(tt, fanins));
  }
  net.add_output("y", nodes.back());

  const MapResult r = map_network(net, lib, MapObjective::kArea);
  BitSimulator s1(net), s2(r.mapped);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) in.push_back(rng.next_bool());
    EXPECT_EQ(s1.evaluate(in), s2.evaluate(in));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace dvs
