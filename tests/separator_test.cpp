#include "graph/separator.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dvs {
namespace {

TEST(Separator, SingleChainCutsCheapestNode) {
  SeparatorProblem p;
  p.num_nodes = 4;
  p.edges = {{0, 1}, {1, 2}, {2, 3}};
  p.weight = {5.0, 1.0, 4.0, 7.0};
  p.sources = {0};
  p.sinks = {3};
  const SeparatorResult r = min_weight_separator(p);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1);
  EXPECT_NEAR(r.total_weight, 1.0, 1e-9);
}

TEST(Separator, ParallelChainsNeedOneCutEach) {
  // Two disjoint chains source->mid->sink.
  SeparatorProblem p;
  p.num_nodes = 6;
  p.edges = {{0, 1}, {1, 2}, {3, 4}, {4, 5}};
  p.weight = {9.0, 2.0, 9.0, 9.0, 3.0, 9.0};
  p.sources = {0, 3};
  p.sinks = {2, 5};
  const SeparatorResult r = min_weight_separator(p);
  EXPECT_EQ(r.selected, (std::vector<int>{1, 4}));
  EXPECT_NEAR(r.total_weight, 5.0, 1e-9);
}

TEST(Separator, SourceItselfCanBeTheCut) {
  SeparatorProblem p;
  p.num_nodes = 3;
  p.edges = {{0, 1}, {0, 2}};
  p.weight = {1.0, 5.0, 5.0};
  p.sources = {0};
  p.sinks = {1, 2};
  const SeparatorResult r = min_weight_separator(p);
  EXPECT_EQ(r.selected, (std::vector<int>{0}));
}

TEST(Separator, IsSeparatorChecker) {
  SeparatorProblem p;
  p.num_nodes = 3;
  p.edges = {{0, 1}, {1, 2}};
  p.weight = {1.0, 1.0, 1.0};
  p.sources = {0};
  p.sinks = {2};
  EXPECT_TRUE(is_separator(p, {1}));
  EXPECT_TRUE(is_separator(p, {0}));
  EXPECT_FALSE(is_separator(p, {}));
}

SeparatorProblem random_problem(Rng& rng) {
  SeparatorProblem p;
  p.num_nodes = rng.next_int(2, 14);
  for (int v = 0; v < p.num_nodes; ++v)
    p.weight.push_back(0.5 + rng.next_double() * 9.5);
  for (int u = 0; u < p.num_nodes; ++u)
    for (int v = u + 1; v < p.num_nodes; ++v)
      if (rng.next_bool(0.3)) p.edges.emplace_back(u, v);
  p.sources = {0};
  p.sinks = {p.num_nodes - 1};
  return p;
}

double brute_force_min_separator(const SeparatorProblem& p) {
  double best = 1e18;
  for (std::uint32_t mask = 0; mask < (1u << p.num_nodes); ++mask) {
    std::vector<int> cut;
    double weight = 0.0;
    for (int v = 0; v < p.num_nodes; ++v)
      if (mask & (1u << v)) {
        cut.push_back(v);
        weight += p.weight[v];
      }
    if (weight < best && is_separator(p, cut)) best = weight;
  }
  return best;
}

class SeparatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SeparatorPropertyTest, FlowMatchesBruteForce) {
  Rng rng(200 + GetParam());
  const SeparatorProblem p = random_problem(rng);
  const SeparatorResult r = min_weight_separator(p);
  EXPECT_TRUE(is_separator(p, r.selected));
  EXPECT_NEAR(r.total_weight, brute_force_min_separator(p), 1e-6);
}

TEST_P(SeparatorPropertyTest, EnginesAgree) {
  Rng rng(900 + GetParam());
  const SeparatorProblem p = random_problem(rng);
  const SeparatorResult d = min_weight_separator(p, FlowAlgo::kDinic);
  const SeparatorResult ek =
      min_weight_separator(p, FlowAlgo::kEdmondsKarp);
  EXPECT_NEAR(d.total_weight, ek.total_weight, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparatorPropertyTest,
                         ::testing::Range(0, 120));

}  // namespace
}  // namespace dvs
