// Integration: the full paper flow on a handful of suite circuits, plus
// the BLIF -> map -> dual-Vdd pipeline.
#include <gtest/gtest.h>

#include "benchgen/mcnc.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "netlist/blif.hpp"
#include "synth/mapper.hpp"

namespace dvs {
namespace {

class FlowTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  CircuitRunResult run(const char* name) {
    const McncDescriptor* d = find_mcnc(name);
    EXPECT_NE(d, nullptr) << name;
    Network net = build_mcnc_circuit(lib_, *d);
    FlowOptions options;
    options.activity.num_vectors = 1024;  // keep the test quick
    return run_paper_flow(net, lib_, options);
  }
};

TEST_F(FlowTest, GscaleDominatesOnBalancedCircuit) {
  const CircuitRunResult row = run("z4ml");
  EXPECT_NEAR(row.cvs_improve_pct, 0.0, 0.5);
  EXPECT_GT(row.gscale_improve_pct, row.cvs_improve_pct + 3.0);
  EXPECT_GT(row.gscale_low, row.cvs_low);
}

TEST_F(FlowTest, WideCircuitGivesCvsPlenty) {
  const CircuitRunResult row = run("lal");  // paper CVS ratio 0.71
  EXPECT_GT(row.cvs_improve_pct, 5.0);
  EXPECT_GE(row.dscale_low, row.cvs_low);
  EXPECT_GE(row.gscale_improve_pct, row.cvs_improve_pct - 0.5);
}

TEST_F(FlowTest, MaxedCircuitIsFrozen) {
  const CircuitRunResult row = run("i2");
  EXPECT_NEAR(row.cvs_improve_pct, 0.0, 0.2);
  EXPECT_NEAR(row.gscale_improve_pct, 0.0, 0.2);
  EXPECT_EQ(row.gscale_resized, 0);
}

TEST_F(FlowTest, RowFieldsAreConsistent) {
  const CircuitRunResult row = run("x2");
  EXPECT_GT(row.org_power_uw, 0.0);
  EXPECT_GT(row.tspec_ns, 0.0);
  EXPECT_GE(row.cvs_low, 0);
  EXPECT_LE(row.cvs_low, row.num_gates);
  EXPECT_GE(row.gscale_area_increase, 0.0);
  EXPECT_LE(row.gscale_area_increase, 0.101);
  EXPECT_GE(row.cvs_low_ratio(), 0.0);
  EXPECT_LE(row.gscale_low_ratio(), 1.0);
}

TEST_F(FlowTest, ReportFormattingSmoke) {
  const CircuitRunResult row = run("x2");
  const McncDescriptor* d = find_mcnc("x2");
  const std::optional<PaperRow> paper = d->paper;
  EXPECT_FALSE(format_table1_header().empty());
  EXPECT_NE(format_table1_row(row, paper).find("x2"), std::string::npos);
  EXPECT_NE(format_table2_row(row, paper).find("x2"), std::string::npos);
  const std::vector<CircuitRunResult> rows{row};
  const std::vector<std::optional<PaperRow>> papers{paper};
  EXPECT_FALSE(format_table1_footer(rows, papers).empty());
  EXPECT_FALSE(format_table2_footer(rows, papers).empty());
}

TEST_F(FlowTest, BlifMapDualVddPipeline) {
  const char* blif = R"(
.model pipeline
.inputs a b c d e
.outputs y z
.names a b t1
11 1
.names c d t2
1- 1
-1 1
.names t1 t2 e y
111 1
.names t2 e z
10 1
01 1
.end
)";
  Network src = read_blif_string(blif);
  const PaperSetupResult setup = map_paper_setup(src, lib_, 0.2);
  FlowOptions options;
  options.activity.num_vectors = 512;
  const CircuitRunResult row =
      run_paper_flow(setup.mapped, lib_, options);
  EXPECT_GT(row.org_power_uw, 0.0);
  EXPECT_GE(row.gscale_improve_pct, -0.01);
}

}  // namespace
}  // namespace dvs
