#include "core/design.hpp"

#include <gtest/gtest.h>

#include "dual_ladder.hpp"

#include "core/boundary.hpp"

namespace dvs {
namespace {

class DesignTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  /// a -> g1 -> g2 -> po, plus g1 -> g3 -> po2 (g1 has two fanouts).
  Network make_net() {
    Network net("t");
    const NodeId a = net.add_input("a");
    const int inv = lib_.find("inv_d0");
    const NodeId g1 = net.add_gate(tt_inv(), {a}, inv);
    const NodeId g2 = net.add_gate(tt_inv(), {g1}, inv);
    const NodeId g3 = net.add_gate(tt_inv(), {g1}, inv);
    net.add_output("y", g2);
    net.add_output("z", g3);
    return net;
  }
};

TEST_F(DesignTest, StartsAllHigh) {
  Design design(make_net(), lib_);
  EXPECT_EQ(design.count_low(), 0);
  EXPECT_EQ(design.count_lcs(), 0);
  design.network().for_each_gate([&](const Node& g) {
    EXPECT_EQ(design.level(g.id), kTopRung);
    EXPECT_DOUBLE_EQ(design.node_vdd()[g.id], lib_.vdd_high());
  });
}

TEST_F(DesignTest, TspecDefaultsToMappedDelay) {
  Design design(make_net(), lib_);
  const StaResult sta = design.run_timing();
  EXPECT_NEAR(design.tspec(), sta.worst_arrival, 1e-9);
  EXPECT_TRUE(sta.meets_constraint());
}

TEST_F(DesignTest, LcFlagTracksBoundary) {
  Network net = make_net();
  const NodeId g1 = net.node(net.outputs()[0].driver).fanins[0];
  Design design(std::move(net), lib_);
  design.set_level(g1, kLowRung);
  // g1 is low, its two fanouts are high: one converter needed.
  EXPECT_TRUE(design.needs_lc(g1));
  EXPECT_EQ(design.count_lcs(), 1);
  // Lower both fanouts: the boundary disappears.
  for (NodeId fo : design.network().node(g1).fanouts)
    design.set_level(fo, kLowRung);
  EXPECT_FALSE(design.needs_lc(g1));
  EXPECT_EQ(design.count_lcs(), 0);
}

TEST_F(DesignTest, PoDriversNeverNeedConverters) {
  Network net = make_net();
  const NodeId g2 = net.outputs()[0].driver;
  Design design(std::move(net), lib_);
  design.set_level(g2, kLowRung);
  EXPECT_FALSE(design.needs_lc(g2));
}

TEST_F(DesignTest, AreaIncludesConverters) {
  Network net = make_net();
  const NodeId g1 = net.node(net.outputs()[0].driver).fanins[0];
  Design design(std::move(net), lib_);
  const double base = design.total_area();
  EXPECT_NEAR(base, design.original_area(), 1e-9);
  design.set_level(g1, kLowRung);
  EXPECT_NEAR(design.total_area(),
              base + lib_.cell(lib_.level_converter()).area, 1e-9);
}

TEST_F(DesignTest, ResizeCounting) {
  Network net = make_net();
  const NodeId g2 = net.outputs()[0].driver;
  Design design(std::move(net), lib_);
  EXPECT_EQ(design.count_resized(), 0);
  const int bigger = lib_.upsize(design.network().node(g2).cell);
  design.network().set_cell(g2, bigger);
  EXPECT_EQ(design.count_resized(), 1);
  design.network().set_cell(g2, design.original_cell(g2));
  EXPECT_EQ(design.count_resized(), 0);
}

TEST_F(DesignTest, ActivityIsCachedAndDeterministic) {
  Design design(make_net(), lib_);
  const Activity& a1 = design.activity();
  const Activity& a2 = design.activity();
  EXPECT_EQ(&a1, &a2);
  EXPECT_GT(design.run_power().total(), 0.0);
}

TEST_F(DesignTest, MaterializeConvertersInsertsRealGates) {
  Network net = make_net();
  const NodeId g1 = net.node(net.outputs()[0].driver).fanins[0];
  Design design(std::move(net), lib_);
  design.set_level(g1, kLowRung);
  std::vector<char> low_mask;
  Network materialized = materialize_level_converters(design, &low_mask);
  int converters = 0;
  materialized.for_each_gate([&](const Node& g) {
    if (g.cell >= 0 && lib_.cell(g.cell).is_level_converter) ++converters;
  });
  EXPECT_EQ(converters, 1);
  EXPECT_EQ(materialized.num_gates(),
            design.network().num_gates() + 1);
  EXPECT_TRUE(low_mask[g1]);
}

TEST_F(DesignTest, LoweringEverythingNeedsNoConverters) {
  Design design(make_net(), lib_);
  design.network().for_each_gate(
      [&](const Node& g) { design.set_level(g.id, kLowRung); });
  EXPECT_EQ(design.count_lcs(), 0);
  EXPECT_EQ(design.count_low(), 3);
}

}  // namespace
}  // namespace dvs
