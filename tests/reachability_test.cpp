#include "graph/reachability.hpp"

#include <gtest/gtest.h>

#include "netlist/topo.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

TEST(Reachability, Reflexive) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_gate(tt_inv(), {a});
  net.add_output("y", g);
  const Reachability reach(net);
  EXPECT_TRUE(reach.reaches(a, a));
  EXPECT_TRUE(reach.reaches(a, g));
  EXPECT_FALSE(reach.reaches(g, a));
  EXPECT_TRUE(reach.comparable(a, g));
}

class ReachabilityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReachabilityPropertyTest, MatchesTransitiveFanout) {
  Rng rng(GetParam());
  Network net("r");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 5; ++i)
    nodes.push_back(net.add_input("i" + std::to_string(i)));
  for (int g = 0; g < 40; ++g) {
    const NodeId f0 = nodes[rng.next_below(nodes.size())];
    NodeId f1 = nodes[rng.next_below(nodes.size())];
    if (f1 == f0) f1 = nodes[0] == f0 ? nodes[1] : nodes[0];
    nodes.push_back(net.add_gate(tt_nand(2), {f0, f1}));
  }
  net.add_output("y", nodes.back());

  const Reachability reach(net);
  for (NodeId from : nodes) {
    const auto cone = transitive_fanout(net, {from});
    for (NodeId to : nodes)
      EXPECT_EQ(reach.reaches(from, to), cone[to] != 0)
          << from << "->" << to;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace dvs
