#include "synth/decompose.hpp"

#include <gtest/gtest.h>

#include "sim/bitsim.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

class CubePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CubePropertyTest, CoverEqualsTruthTable) {
  Rng rng(GetParam());
  const int vars = rng.next_int(0, 5);
  TruthTable tt{rng.next_u64(), vars};
  tt.bits &= tt.mask();
  const std::vector<Cube> cover = extract_cubes(tt);
  for (std::uint32_t p = 0; p < (1u << vars); ++p)
    EXPECT_EQ(cover_eval(cover, p), tt.eval(p))
        << "vars=" << vars << " bits=" << tt.bits << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubePropertyTest, ::testing::Range(0, 200));

TEST(Cubes, AndMergesToSingleCube) {
  const std::vector<Cube> cover = extract_cubes(tt_and(3));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (Cube{1, 1, 1}));
}

TEST(Cubes, TautologyIsSingleDontCareCube) {
  TruthTable tt{0b1111ULL, 2};
  const std::vector<Cube> cover = extract_cubes(tt);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (Cube{2, 2}));
}

TEST(Cubes, ConstantZeroIsEmptyCover) {
  EXPECT_TRUE(extract_cubes(TruthTable{0, 3}).empty());
}

Network random_network(Rng& rng, int num_gates) {
  Network net("r");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i)
    nodes.push_back(net.add_input("i" + std::to_string(i)));
  for (int g = 0; g < num_gates; ++g) {
    const int arity = rng.next_int(1, 4);
    std::vector<NodeId> fanins;
    for (int k = 0; k < arity; ++k) {
      NodeId f;
      do {
        f = nodes[rng.next_below(nodes.size())];
      } while (std::find(fanins.begin(), fanins.end(), f) != fanins.end());
      fanins.push_back(f);
    }
    TruthTable tt{rng.next_u64(), arity};
    tt.bits &= tt.mask();
    nodes.push_back(net.add_gate(tt, fanins));
  }
  net.add_output("y0", nodes.back());
  net.add_output("y1", nodes[nodes.size() / 2]);
  return net;
}

class DecomposePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DecomposePropertyTest, PreservesFunctionality) {
  Rng rng(3000 + GetParam());
  Network net = random_network(rng, 12);
  Network nand_net = decompose_to_nand2(net);

  // Only NAND2 / INV / constants remain.
  nand_net.for_each_gate([](const Node& g) {
    EXPECT_TRUE(g.function == tt_nand(2) || g.function == tt_inv())
        << "gate arity " << g.function.num_vars;
  });

  BitSimulator s1(net), s2(nand_net);
  for (std::uint32_t p = 0; p < 16; ++p) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back((p >> i) & 1u);
    EXPECT_EQ(s1.evaluate(in), s2.evaluate(in)) << "pattern " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposePropertyTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace dvs
