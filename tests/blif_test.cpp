#include "netlist/blif.hpp"

#include <gtest/gtest.h>

#include "sim/bitsim.hpp"

namespace dvs {
namespace {

const char* kSimple = R"(
.model adder1
.inputs a b cin
.outputs sum cout
# sum = a ^ b ^ cin
.names a b t1
10 1
01 1
.names t1 cin sum
10 1
01 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
)";

TEST(Blif, ParsesSimpleModel) {
  Network net = read_blif_string(kSimple);
  EXPECT_EQ(net.name(), "adder1");
  EXPECT_EQ(net.inputs().size(), 3u);
  EXPECT_EQ(net.outputs().size(), 2u);
  EXPECT_EQ(net.num_gates(), 3);
}

TEST(Blif, ParsedLogicIsCorrect) {
  Network net = read_blif_string(kSimple);
  BitSimulator sim(net);
  for (int p = 0; p < 8; ++p) {
    const bool a = p & 1, b = p & 2, cin = p & 4;
    const auto out = sim.evaluate({a, b, cin});
    EXPECT_EQ(out[0], a ^ b ^ cin) << "pattern " << p;
    EXPECT_EQ(out[1], (a && b) || (a && cin) || (b && cin));
  }
}

TEST(Blif, RoundTripPreservesFunction) {
  Network net = read_blif_string(kSimple);
  Network again = read_blif_string(write_blif_string(net));
  BitSimulator s1(net), s2(again);
  for (int p = 0; p < 8; ++p) {
    const std::vector<bool> in{bool(p & 1), bool(p & 2), bool(p & 4)};
    EXPECT_EQ(s1.evaluate(in), s2.evaluate(in));
  }
}

TEST(Blif, OffsetCover) {
  Network net = read_blif_string(
      ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n");
  BitSimulator sim(net);
  EXPECT_TRUE(sim.evaluate({false, false})[0]);
  EXPECT_FALSE(sim.evaluate({true, true})[0]);
}

TEST(Blif, Constants) {
  Network net = read_blif_string(
      ".model m\n.inputs a\n.outputs k1 k0\n.names k1\n1\n.names k0\n.end\n");
  BitSimulator sim(net);
  EXPECT_TRUE(sim.evaluate({false})[0]);
  EXPECT_FALSE(sim.evaluate({false})[1]);
}

TEST(Blif, WideFunctionIsDecomposed) {
  // 9-input AND exceeds the gate arity cap and must become a tree.
  std::string text = ".model m\n.inputs";
  for (int i = 0; i < 9; ++i) text += " x" + std::to_string(i);
  text += "\n.outputs y\n.names";
  for (int i = 0; i < 9; ++i) text += " x" + std::to_string(i);
  text += " y\n111111111 1\n.end\n";
  Network net = read_blif_string(text);
  net.for_each_gate([](const Node& g) {
    EXPECT_LE(g.function.num_vars, kMaxGateInputs);
  });
  BitSimulator sim(net);
  std::vector<bool> in(9, true);
  EXPECT_TRUE(sim.evaluate(in)[0]);
  in[4] = false;
  EXPECT_FALSE(sim.evaluate(in)[0]);
}

TEST(Blif, LineContinuationAndComments) {
  Network net = read_blif_string(
      ".model m\n.inputs a \\\n b\n.outputs y # trailing\n"
      ".names a b y\n11 1\n.end\n");
  EXPECT_EQ(net.inputs().size(), 2u);
}

TEST(Blif, RejectsLatches) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".latch a y re clk 0\n.end\n"),
               BlifError);
}

TEST(Blif, RejectsCycles) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".names y a x\n11 1\n.names x a y\n11 1\n"
                                ".end\n"),
               BlifError);
}

TEST(Blif, RejectsMalformedCover) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a b\n.outputs y\n"
                                ".names a b y\n1 1\n.end\n"),
               BlifError);
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".names a y\n2 1\n.end\n"),
               BlifError);
}

TEST(Blif, RejectsUndefinedSignals) {
  EXPECT_THROW(read_blif_string(
                   ".model m\n.inputs a\n.outputs y\n.end\n"),
               BlifError);
}

}  // namespace
}  // namespace dvs
