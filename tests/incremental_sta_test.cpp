#include "timing/incremental.hpp"

#include <gtest/gtest.h>

#include "dual_ladder.hpp"

#include "benchgen/random_dag.hpp"
#include "benchgen/structured.hpp"
#include "core/design.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

class IncrementalStaTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(IncrementalStaTest, MatchesFullStaInitially) {
  Network net = build_ripple_adder(lib_, 8, "a8");
  Design design(std::move(net), lib_);
  IncrementalSta timer(design.timing_context(), design.tspec());
  EXPECT_TRUE(timer.matches_full_sta());
}

TEST_F(IncrementalStaTest, TracksSingleLowering) {
  Network net = build_ripple_adder(lib_, 8, "a8");
  Design design(std::move(net), lib_);
  IncrementalSta timer(design.timing_context(), design.tspec());
  const NodeId victim = design.network().outputs()[0].driver;
  design.set_level(victim, kLowRung);
  timer.on_node_changed(victim);
  EXPECT_TRUE(timer.matches_full_sta(1e-9));
}

TEST_F(IncrementalStaTest, TracksResize) {
  Network net = build_ripple_adder(lib_, 8, "a8");
  Design design(std::move(net), lib_);
  IncrementalSta timer(design.timing_context(), design.tspec());
  const NodeId victim = design.network().outputs()[2].driver;
  const int bigger = lib_.upsize(design.network().node(victim).cell);
  ASSERT_GE(bigger, 0);
  design.network().set_cell(victim, bigger);
  timer.on_node_changed(victim);
  EXPECT_TRUE(timer.matches_full_sta(1e-9));
}

TEST_F(IncrementalStaTest, TracksConverterAppearance) {
  // Lower a mid-cone gate so an LC flag flips on.
  Network net = build_ripple_adder(lib_, 8, "a8");
  Design design(std::move(net), lib_);
  NodeId mid = kNoNode;
  design.network().for_each_gate([&](const Node& g) {
    if (mid != kNoNode) return;
    for (NodeId fo : g.fanouts)
      if (!design.network().node(fo).fanouts.empty()) mid = g.id;
  });
  ASSERT_NE(mid, kNoNode);
  IncrementalSta timer(design.timing_context(), design.tspec());
  design.set_level(mid, kLowRung);  // fanouts high -> LC appears
  ASSERT_TRUE(design.needs_lc(mid));
  timer.on_node_changed(mid);
  EXPECT_TRUE(timer.matches_full_sta(1e-9));
  // And disappears again.
  design.set_level(mid, kTopRung);
  timer.on_node_changed(mid);
  EXPECT_TRUE(timer.matches_full_sta(1e-9));
}

/// Property: a long random sequence of voltage flips and resizes tracked
/// incrementally always matches the full analysis.
class IncrementalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalPropertyTest, RandomEditSequences) {
  static const Library lib = build_compass_library();
  Rng rng(8000 + GetParam());
  HybridSpec spec;
  spec.gates = 120;
  spec.pis = 14;
  spec.pos = 8;
  spec.critical_fraction = 0.5;
  spec.seed = 100 + GetParam();
  Network net = build_hybrid_circuit(lib, spec, "h");
  Design design(std::move(net), lib);
  IncrementalSta timer(design.timing_context(), design.tspec());

  std::vector<NodeId> gates;
  design.network().for_each_gate(
      [&](const Node& g) { gates.push_back(g.id); });
  for (int step = 0; step < 30; ++step) {
    const NodeId id = gates[rng.next_below(gates.size())];
    if (rng.next_bool(0.6)) {
      design.set_level(id, design.level(id) == kTopRung
                               ? kLowRung
                               : kTopRung);
      timer.on_node_changed(id);
      // A level flip can also flip the converter flags on the fanins;
      // the caller must notify for those too.
      for (NodeId fi : design.network().node(id).fanins)
        if (design.network().node(fi).is_gate()) timer.on_node_changed(fi);
    } else {
      const int bigger = lib.upsize(design.network().node(id).cell);
      if (bigger >= 0) {
        design.network().set_cell(id, bigger);
        timer.on_node_changed(id);
      }
    }
  }
  EXPECT_TRUE(timer.matches_full_sta(1e-7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace dvs
