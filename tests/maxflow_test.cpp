#include "graph/flow_network.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dvs {
namespace {

FlowNetwork diamond() {
  FlowNetwork net;
  net.add_vertices(4);  // 0=s, 3=t
  net.add_arc(0, 1, 3.0);
  net.add_arc(0, 2, 2.0);
  net.add_arc(1, 3, 2.0);
  net.add_arc(2, 3, 3.0);
  net.add_arc(1, 2, 1.0);
  return net;
}

TEST(MaxFlow, DiamondKnownValue) {
  FlowNetwork d1 = diamond();
  EXPECT_NEAR(dinic_max_flow(d1, 0, 3), 5.0, 1e-9);
  FlowNetwork d2 = diamond();
  EXPECT_NEAR(edmonds_karp_max_flow(d2, 0, 3), 5.0, 1e-9);
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork net;
  net.add_vertices(3);
  net.add_arc(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(dinic_max_flow(net, 0, 2), 0.0);
}

TEST(MaxFlow, ResidualReachabilityGivesMinCut) {
  FlowNetwork net = diamond();
  const double value = dinic_max_flow(net, 0, 3);
  const std::vector<char> side = net.residual_reachable(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[3]);
  // Cut capacity across the partition equals the flow value.  Recompute
  // from a fresh network (caps there are original).
  FlowNetwork fresh = diamond();
  double cut = 0.0;
  for (int v = 0; v < fresh.num_vertices(); ++v) {
    if (!side[v]) continue;
    for (const auto& arc : fresh.arcs_of(v))
      if (!side[arc.to]) cut += arc.cap;
  }
  EXPECT_NEAR(cut, value, 1e-9);
}

TEST(MaxFlow, FlowOnTracksPushedFlow) {
  FlowNetwork net;
  net.add_vertices(2);
  const int arc = net.add_arc(0, 1, 4.0);
  EXPECT_NEAR(dinic_max_flow(net, 0, 1), 4.0, 1e-9);
  EXPECT_NEAR(net.flow_on(0, arc), 4.0, 1e-9);
}

/// Property: Dinic and Edmonds-Karp agree on random graphs.
class RandomFlowTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomFlowTest, EnginesAgree) {
  Rng rng(GetParam());
  const int n = 2 + rng.next_int(2, 10);
  FlowNetwork a, b;
  a.add_vertices(n);
  b.add_vertices(n);
  const int edges = rng.next_int(n, 4 * n);
  for (int e = 0; e < edges; ++e) {
    const int u = rng.next_int(0, n - 1);
    const int v = rng.next_int(0, n - 1);
    if (u == v) continue;
    const double cap = 0.5 + rng.next_double() * 10.0;
    a.add_arc(u, v, cap);
    b.add_arc(u, v, cap);
  }
  const double fa = dinic_max_flow(a, 0, n - 1);
  const double fb = edmonds_karp_max_flow(b, 0, n - 1);
  EXPECT_NEAR(fa, fb, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlowTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace dvs
