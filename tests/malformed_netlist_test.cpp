// Hardening wall for the netlist front-ends: the dvsd daemon feeds
// client-supplied text straight into read_blif_string /
// read_verilog_string, so malformed input of any shape must surface as a
// catchable error (BlifError / VerilogError / runtime_error) — never a
// crash, contract abort, or silent mis-parse.
#include <gtest/gtest.h>

#include <string>

#include "library/library.hpp"
#include "netlist/blif.hpp"
#include "netlist/verilog.hpp"

namespace dvs {
namespace {

const char* kGoodBlif = R"(.model demo
.inputs a b c d
.outputs y z
.names a b t1
11 1
.names c d t2
1- 1
-1 1
.names t1 t2 y
10 1
01 1
.names t2 c z
11 1
.end
)";

TEST(MalformedBlif, GoodReferenceParses) {
  const Network net = read_blif_string(kGoodBlif);
  EXPECT_EQ(net.inputs().size(), 4u);
  EXPECT_EQ(net.outputs().size(), 2u);
}

TEST(MalformedBlif, DuplicateDriverIsAnError) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a b\n.outputs y\n"
                                ".names a y\n1 1\n"
                                ".names b y\n1 1\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, DrivingAPrimaryInputIsAnError) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a b\n.outputs b\n"
                                ".names a b\n1 1\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, DuplicateInputIsAnError) {
  EXPECT_THROW(
      read_blif_string(".model m\n.inputs a a\n.outputs a\n.end\n"),
      BlifError);
}

TEST(MalformedBlif, UndrivenOutputIsAnError) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, UndefinedFaninIsAnError) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".names a ghost y\n11 1\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, CombinationalCycleIsAnError) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".names y x\n1 1\n"
                                ".names x y\n1 1\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, GarbageTokensAreAnError) {
  EXPECT_THROW(read_blif_string("\x01\x02garbage \xff\n.model m\n"),
               BlifError);
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".names a y\nxx yy zz\n.end\n"),
               BlifError);
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".names a y\n2 1\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, CoverShapeErrors) {
  // Pattern width mismatch.
  EXPECT_THROW(read_blif_string(".model m\n.inputs a b\n.outputs y\n"
                                ".names a b y\n1 1\n.end\n"),
               BlifError);
  // Mixed on/off-set.
  EXPECT_THROW(read_blif_string(".model m\n.inputs a b\n.outputs y\n"
                                ".names a b y\n11 1\n00 0\n.end\n"),
               BlifError);
  // Bad output value.
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                ".names a y\n1 x\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, SequentialAndUnsupportedConstructs) {
  EXPECT_THROW(read_blif_string(".model m\n.latch a b re clk 0\n.end\n"),
               BlifError);
  EXPECT_THROW(read_blif_string(".model m\n.subckt foo a=b\n.end\n"),
               BlifError);
}

TEST(MalformedBlif, NestingDepthIsBounded) {
  // A 12000-long buffer chain declared in REVERSE dependency order (so
  // the builder must recurse the whole chain from the first declaration):
  // deeper than the parser's recursion cap, must raise BlifError instead
  // of overflowing the stack.
  std::string text = ".model deep\n.inputs a\n.outputs n11999\n";
  for (int i = 11999; i >= 1; --i) {
    text += ".names n" + std::to_string(i - 1) + " n" +
            std::to_string(i) + "\n1 1\n";
  }
  text += ".names a n0\n1 1\n.end\n";
  EXPECT_THROW(read_blif_string(text), BlifError);
}

TEST(MalformedBlif, ModerateDepthStillParses) {
  std::string text = ".model chain\n.inputs a\n.outputs n1999\n";
  text += ".names a n0\n1 1\n";
  for (int i = 1; i < 2000; ++i) {
    text += ".names n" + std::to_string(i - 1) + " n" +
            std::to_string(i) + "\n1 1\n";
  }
  text += ".end\n";
  EXPECT_NO_THROW(read_blif_string(text));
}

// Truncation sweep: every prefix of a valid document either parses or
// raises a catchable error.  (Runs the parser a few hundred times; the
// point is "no crash", not specific messages.)
TEST(MalformedBlif, EveryTruncationIsHandled) {
  const std::string text = kGoodBlif;
  for (std::size_t len = 0; len <= text.size(); ++len) {
    try {
      read_blif_string(text.substr(0, len));
    } catch (const std::exception&) {
      // Acceptable: an error, not a crash.
    }
  }
}

// ---------------------------------------------------------------------------

const Library& lib() {
  static const Library kLib = build_compass_library();
  return kLib;
}

std::string good_verilog() {
  return write_verilog_string(read_blif_string(kGoodBlif), lib());
}

TEST(MalformedVerilog, GoodReferenceRoundTrips) {
  EXPECT_NO_THROW(read_verilog_string(good_verilog(), lib()));
}

TEST(MalformedVerilog, DuplicateDriverIsAnError) {
  EXPECT_THROW(read_verilog_string("module m (a, y);\n  input a;\n"
                                   "  output y;\n  assign y = a;\n"
                                   "  assign y = ~a;\nendmodule\n",
                                   lib()),
               VerilogError);
}

TEST(MalformedVerilog, DrivingAnInputIsAnError) {
  EXPECT_THROW(read_verilog_string("module m (a, y);\n  input a;\n"
                                   "  output y;\n  assign a = 1'b0;\n"
                                   "  assign y = a;\nendmodule\n",
                                   lib()),
               VerilogError);
  // Same conflict with the assign textually before the declaration.
  EXPECT_THROW(read_verilog_string("module m (a, y);\n"
                                   "  assign a = 1'b0;\n  input a;\n"
                                   "  output y;\n  assign y = a;\n"
                                   "endmodule\n",
                                   lib()),
               VerilogError);
}

TEST(MalformedVerilog, DuplicateInputIsAnError) {
  EXPECT_THROW(read_verilog_string("module m (a, y);\n  input a;\n"
                                   "  input a;\n  output y;\n"
                                   "  assign y = a;\nendmodule\n",
                                   lib()),
               VerilogError);
}

TEST(MalformedVerilog, CycleIsAnError) {
  EXPECT_THROW(read_verilog_string("module m (y);\n  output y;\n"
                                   "  wire a;\n  wire b;\n"
                                   "  assign a = ~b;\n  assign b = ~a;\n"
                                   "  assign y = a;\nendmodule\n",
                                   lib()),
               VerilogError);
}

TEST(MalformedVerilog, UnknownCellAndBadPins) {
  EXPECT_THROW(read_verilog_string("module m (a, y);\n  input a;\n"
                                   "  output y;\n"
                                   "  bogus_cell u0 (.o(y), .i0(a));\n"
                                   "endmodule\n",
                                   lib()),
               VerilogError);
  EXPECT_THROW(read_verilog_string("module m (a, y);\n  input a;\n"
                                   "  output y;\n"
                                   "  inv_d1 u0 (.o(y), .i99999999(a));\n"
                                   "endmodule\n",
                                   lib()),
               VerilogError);
  EXPECT_THROW(read_verilog_string("module m (a, y);\n  input a;\n"
                                   "  output y;\n"
                                   "  inv_d1 u0 (.i0(a));\nendmodule\n",
                                   lib()),
               VerilogError);
}

TEST(MalformedVerilog, StructuralGarbage) {
  EXPECT_THROW(read_verilog_string("", lib()), VerilogError);
  EXPECT_THROW(read_verilog_string("wire w;\n", lib()), VerilogError);
  EXPECT_THROW(read_verilog_string("module m (y);\n  output y;\n"
                                   "  assign y = 1'b1;\n",
                                   lib()),
               VerilogError);  // missing endmodule
  EXPECT_THROW(read_verilog_string("module m (y);\n  output y;\n"
                                   "  assign y = @#$;\nendmodule\n",
                                   lib()),
               VerilogError);
  EXPECT_THROW(read_verilog_string("module m (y);\n  output y;\n"
                                   "  assign y = 1'b1;\nendmodule\n"
                                   "module n (z);\nendmodule\n",
                                   lib()),
               VerilogError);
}

TEST(MalformedVerilog, EveryTruncationIsHandled) {
  const std::string text = good_verilog();
  for (std::size_t len = 0; len <= text.size(); ++len) {
    try {
      read_verilog_string(text.substr(0, len), lib());
    } catch (const std::exception&) {
    }
  }
}

}  // namespace
}  // namespace dvs
