// End-to-end wall for the dvsd service: boots a real Service on an
// ephemeral loopback port and drives it through sockets exactly like a
// client would — protocol fidelity, suite-engine equality, cache
// behavior across netlist formats, error containment, batch streaming,
// and shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <thread>

#include "core/suite.hpp"
#include "library/library.hpp"
#include "netlist/blif.hpp"
#include "netlist/verilog.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"
#include "support/version.hpp"

namespace dvs {
namespace {

const char* kDemoBlif = R"(.model demo
.inputs a b c d e f
.outputs y z
.names a b t1
11 1
.names c d t2
1- 1
-1 1
.names t1 t2 t3
10 1
01 1
.names t3 e t4
11 1
.names t4 f y
1- 1
-1 1
.names t2 e z
11 1
.end
)";

/// Value of one exposition series in a metrics dump. `series` must be
/// the exact line prefix, labels included (e.g. "dvsd_requests_total" or
/// "dvsd_cache_hits_total{tier=\"memory\"}"). Returns -1 when absent.
double metric_value(const std::string& text, const std::string& series) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol - pos > series.size() &&
        text.compare(pos, series.size(), series) == 0 &&
        text[pos + series.size()] == ' ')
      return std::atof(text.c_str() + pos + series.size() + 1);
    pos = eol + 1;
  }
  return -1.0;
}

/// A connected test client speaking NDJSON.
class Client {
 public:
  explicit Client(int port)
      : socket_(Socket::connect_tcp("127.0.0.1", port)),
        reader_(&socket_, 64u << 20) {}

  void send(const std::string& request) {
    socket_.send_all(request + "\n");
  }

  Json recv() {
    std::string line;
    EXPECT_TRUE(reader_.read_line(&line)) << "connection closed early";
    return Json::parse(line);
  }

  /// Raw read for tests that expect the daemon to close the connection.
  bool recv_line(std::string* line) { return reader_.read_line(line); }

 private:
  Socket socket_;
  LineReader reader_;
};

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceConfig config;
    config.tcp_port = 0;
    config.num_threads = 2;
    config.cache_bytes = 8u << 20;
    start_service(config);
  }

  /// Boots (or reboots) the service under a test-specific config.
  void start_service(ServiceConfig config) {
    if (service_) {
      service_->request_stop();
      service_->stop();
    }
    config.tcp_port = 0;
    service_.emplace(config);
    service_->start();
  }

  void TearDown() override {
    if (service_) {
      service_->request_stop();
      service_->stop();
    }
  }

  int port() const { return service_->port(); }

  /// Polls `stats` over a fresh connection until `ready(stats)` holds
  /// (the deterministic way to wait for another connection's jobs to
  /// reach the pool).  Fails the test after ~5 s.
  Json await_stats(const std::function<bool(const Json&)>& ready) {
    Client observer(port());
    Json stats;
    for (int spins = 0; spins < 5000; ++spins) {
      observer.send(R"({"type":"stats"})");
      stats = observer.recv();
      if (ready(stats)) return stats;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ADD_FAILURE() << "stats condition never became true: "
                  << stats.dump();
    return stats;
  }

  /// One `metrics` round trip: the Prometheus exposition text.
  std::string fetch_metrics() {
    Client observer(port());
    observer.send(R"({"type":"metrics"})");
    return observer.recv().find("text")->as_string();
  }

  std::optional<Service> service_;
};

/// The report with wall-clock columns zeroed (legitimately nondeterministic).
std::string comparable(Json report) {
  auto& object = report.as_object();
  if (auto it = object.find("gscale"); it != object.end())
    it->second.as_object()["seconds"] = Json(0.0);
  return report.dump();
}

TEST_F(ServiceTest, PingStatsAndUnknownType) {
  Client client(port());
  client.send(R"({"type":"ping","id":7})");
  Json pong = client.recv();
  EXPECT_EQ(pong.find("type")->as_string(), "pong");
  EXPECT_EQ(pong.find("id")->as_int(), 7);

  client.send(R"({"type":"stats"})");
  Json stats = client.recv();
  EXPECT_EQ(stats.find("type")->as_string(), "stats");
  EXPECT_EQ(stats.find("cache")->find("hits")->as_uint(), 0u);
  EXPECT_EQ(stats.find("cache")->find("bytes")->as_uint(), 0u);
  EXPECT_EQ(stats.find("cache")->find("rejected")->as_uint(), 0u);
  EXPECT_EQ(stats.find("cache")->find("capacity_bytes")->as_uint(),
            8u << 20);
  EXPECT_FALSE(stats.find("disk")->find("enabled")->as_bool());
  EXPECT_EQ(stats.find("pool")->find("threads")->as_int(), 2);
  EXPECT_EQ(stats.find("pool")->find("watermark")->as_uint(), 16u);
  EXPECT_EQ(stats.find("pool")->find("overload_rejections")->as_uint(),
            0u);
  EXPECT_GE(stats.find("sessions")->find("active")->as_uint(), 1u);
  EXPECT_EQ(stats.find("pool")->find("tasks_executed")->as_uint(), 0u);
  EXPECT_GE(stats.find("pool")->find("peak_depth")->as_int(), 0);
  EXPECT_EQ(stats.find("version")->as_string(), kDvsVersion);
  EXPECT_GE(stats.find("uptime_ms")->as_double(), 0.0);
  // The monotonic spelling counts every parsed request on this daemon:
  // the ping above plus this stats call.
  EXPECT_EQ(stats.find("requests_total")->as_uint(), 2u);

  client.send(R"({"type":"frobnicate"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Connection still serves after the error.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, NamedCircuitMatchesSuiteEngineAndCaches) {
  SuiteOptions suite;
  suite.circuits = {"x2"};
  suite.num_threads = 1;
  const SuiteReport reference = run_suite(suite);
  const std::string expected =
      comparable(report_json(reference.rows[0], true, true, true));

  Client client(port());
  const std::string request = R"({"type":"optimize","circuit":"x2"})";
  client.send(request);
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result")
      << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");
  EXPECT_EQ(comparable(*first.find("report")), expected);
  // Metrics are attached for every enabled algorithm.
  EXPECT_NE(first.find("metrics")->find("gscale"), nullptr);

  client.send(request);
  Json second = client.recv();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));

  // A different seed is a different job, not a stale hit.
  client.send(
      R"({"type":"optimize","circuit":"x2","options":{"seed":99}})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
}

TEST_F(ServiceTest, BlifAndVerilogSubmissionsShareOneCacheEntry) {
  const Library lib = build_compass_library();
  const Network parsed = read_blif_string(kDemoBlif);
  const std::string verilog = write_verilog_string(parsed, lib);

  Json::Object blif_req;
  blif_req["type"] = Json("optimize");
  blif_req["netlist"] = Json(std::string(kDemoBlif));
  Json::Object verilog_req;
  verilog_req["type"] = Json("optimize");
  verilog_req["netlist"] = Json(verilog);
  verilog_req["format"] = Json("verilog");

  Client client(port());
  client.send(Json(blif_req).dump());
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result") << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");

  // The same circuit as Verilog text: content addressing must hit.
  client.send(Json(verilog_req).dump());
  Json second = client.recv();
  ASSERT_EQ(second.find("type")->as_string(), "result") << second.dump();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));
}

TEST_F(ServiceTest, ReturnNetlistRoundTrips) {
  Json::Object request;
  request["type"] = Json("optimize");
  request["netlist"] = Json(std::string(kDemoBlif));
  request["return_netlist"] = Json(true);
  Json::Array algos;
  algos.emplace_back("dscale");
  request["algos"] = Json(std::move(algos));

  Client client(port());
  client.send(Json(request).dump());
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  ASSERT_NE(response.find("netlist"), nullptr);
  ASSERT_NE(response.find("low_gates"), nullptr);
  // The returned netlist is valid BLIF (converters materialized).
  EXPECT_NO_THROW(read_blif_string(response.find("netlist")->as_string()));
  const Json& metrics = *response.find("metrics")->find("dscale");
  EXPECT_GT(metrics.find("power_uw")->as_double(), 0.0);
  EXPECT_GT(metrics.find("area_um2")->as_double(), 0.0);
}

TEST_F(ServiceTest, BatchStreamsEveryRowMatchingTheSuite) {
  SuiteOptions suite;
  suite.circuits = {"x2", "z4ml", "pm1"};
  suite.num_threads = 1;
  const SuiteReport reference = run_suite(suite);

  Client client(port());
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml","pm1"],"id":"B"})");
  std::set<std::uint64_t> seen;
  bool done = false;
  while (!done) {
    Json response = client.recv();
    const std::string type = response.find("type")->as_string();
    ASSERT_TRUE(type == "batch_item" || type == "batch_done")
        << response.dump();
    EXPECT_EQ(response.find("id")->as_string(), "B");
    if (type == "batch_done") {
      EXPECT_EQ(response.find("count")->as_uint(), 3u);
      EXPECT_EQ(response.find("failed")->as_uint(), 0u);
      done = true;
      continue;
    }
    ASSERT_EQ(response.find("error"), nullptr) << response.dump();
    const std::uint64_t index = response.find("index")->as_uint();
    ASSERT_LT(index, reference.rows.size());
    EXPECT_TRUE(seen.insert(index).second) << "duplicate item";
    EXPECT_EQ(
        comparable(*response.find("report")),
        comparable(report_json(reference.rows[index], true, true, true)));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(ServiceTest, PipelineRequestsRunHybridsWithTrajectory) {
  Client client(port());
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("pipeline":"cvs | gscale(area_budget=0.05) | dscale"})");
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  // No paper columns: the report carries the shared columns only...
  const Json& report = *response.find("report");
  EXPECT_EQ(report.find("cvs"), nullptr);
  EXPECT_GT(report.find("org_power_uw")->as_double(), 0.0);
  // ...and the trajectory carries one point per executed pass.
  const Json& trajectory = *response.find("trajectory");
  ASSERT_EQ(trajectory.as_array().size(), 1u);
  const Json& cell = trajectory.as_array()[0];
  EXPECT_EQ(cell.find("label")->as_string(), "pipeline");
  const Json::Array& passes = cell.find("passes")->as_array();
  ASSERT_EQ(passes.size(), 3u);
  EXPECT_EQ(passes[0].find("pass")->as_string(), "cvs");
  EXPECT_EQ(passes[1].find("pass")->as_string(), "gscale");
  EXPECT_EQ(passes[2].find("pass")->as_string(), "dscale");
  // Monotone trajectory: each stage ends at or below the previous power.
  EXPECT_LE(passes[2].find("power_uw")->as_double(),
            passes[0].find("power_uw")->as_double() + 1e-6);
  // Final metrics for the cell are attached under its label.
  EXPECT_NE(response.find("metrics")->find("pipeline"), nullptr);

  // The same pipeline again: canonical fingerprint makes it a hit.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("pipeline":"cvs|gscale(area_budget=0.05)|dscale"})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "hit");
}

TEST_F(ServiceTest, LegacyAlgosAndPipelineSpellingShareOneCacheEntry) {
  Client client(port());
  client.send(R"({"type":"optimize","circuit":"z4ml","algos":["dscale"]})");
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result") << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");

  // Same job, spelled as a pipeline: must hit and replay the same body.
  client.send(R"({"type":"optimize","circuit":"z4ml","pipeline":"dscale"})");
  Json second = client.recv();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));

  // Algo order never splits entries either.
  client.send(
      R"({"type":"optimize","circuit":"z4ml","algos":["gscale","cvs"]})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
  client.send(
      R"({"type":"optimize","circuit":"z4ml","algos":["cvs","gscale"]})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "hit");
}

TEST_F(ServiceTest, PipelineReturnNetlistAndBatch) {
  // return_netlist composes with hybrid pipelines (a pipeline is one
  // cell, so the exactly-one-result invariant holds by construction).
  Json::Object request;
  request["type"] = Json("optimize");
  request["netlist"] = Json(std::string(kDemoBlif));
  request["pipeline"] = Json("cvs | dscale | trim");
  request["return_netlist"] = Json(true);
  Client client(port());
  client.send(Json(request).dump());
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  ASSERT_NE(response.find("netlist"), nullptr);
  EXPECT_NO_THROW(read_blif_string(response.find("netlist")->as_string()));

  // Batch fans a pipeline across circuits.
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml"],)"
      R"("pipeline":"cvs | dscale","id":"P"})");
  int items = 0;
  bool done = false;
  while (!done) {
    Json line = client.recv();
    const std::string type = line.find("type")->as_string();
    if (type == "batch_done") {
      EXPECT_EQ(line.find("failed")->as_uint(), 0u);
      done = true;
      continue;
    }
    ASSERT_EQ(type, "batch_item") << line.dump();
    ASSERT_EQ(line.find("error"), nullptr) << line.dump();
    const Json& trajectory = *line.find("trajectory");
    EXPECT_EQ(trajectory.as_array()[0]
                  .find("passes")->as_array().size(),
              2u);
    ++items;
  }
  EXPECT_EQ(items, 2);
}

TEST_F(ServiceTest, PipelineErrorsAreContained) {
  Client client(port());
  // Unknown pass.
  client.send(
      R"({"type":"optimize","circuit":"x2","pipeline":"cvs | warp"})");
  Json error = client.recv();
  EXPECT_EQ(error.find("type")->as_string(), "error");
  EXPECT_NE(error.find("message")->as_string().find("unknown pass"),
            std::string::npos);
  // Unknown option, malformed grammar, algos+pipeline conflict.
  client.send(
      R"x({"type":"optimize","circuit":"x2","pipeline":"cvs(bogus=1)"})x");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  client.send(
      R"({"type":"optimize","circuit":"x2","pipeline":"cvs |"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("algos":["cvs"],"pipeline":"dscale"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // The connection still serves.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, ErrorContainment) {
  Client client(port());
  // Malformed JSON.
  client.send("this is not json");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Unknown field (strict parsing).
  client.send(R"({"type":"optimize","circuit":"x2","bogus":1})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Unknown circuit.
  client.send(R"({"type":"optimize","circuit":"nope"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Malformed netlist (duplicate driver).
  Json::Object request;
  request["type"] = Json("optimize");
  request["netlist"] = Json(std::string(
      ".model m\n.inputs a b\n.outputs y\n"
      ".names a y\n1 1\n.names b y\n1 1\n.end\n"));
  client.send(Json(request).dump());
  Json error = client.recv();
  EXPECT_EQ(error.find("type")->as_string(), "error");
  // return_netlist with several algorithms is rejected.
  client.send(
      R"({"type":"optimize","circuit":"x2","return_netlist":true})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // The connection survived all of it.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, SupplyLadderJobsRunAndKeySeparately) {
  Client client(port());
  // A 3-level ladder end to end: the daemon maps, optimizes, and answers
  // against the requested operating point.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5.0,4.3,3.6"}})");
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result") << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");
  EXPECT_GT(first.find("report")->find("org_power_uw")->as_double(), 0.0);

  // The same ladder spelled as an array hits the same entry.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":[5, 4.3, 3.6]}})");
  Json second = client.recv();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));

  // A different ladder is a different job; the default ladder spelled
  // explicitly aliases with the ladder-free request.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5.0,4.3,4.0"}})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
  client.send(R"({"type":"optimize","circuit":"x2"})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5,4.3"}})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "hit");

  // Deeper rungs open strictly more saving on this circuit than the
  // dual ladder (that is the point of the generalization).
  client.send(
      R"({"type":"optimize","circuit":"z4ml","algos":["dscale"],)"
      R"("options":{"supplies":"5.0,4.3,3.6"}})");
  Json three = client.recv();
  client.send(R"({"type":"optimize","circuit":"z4ml","algos":["dscale"]})");
  Json dual = client.recv();
  EXPECT_GE(three.find("report")->find("dscale")->find("improve_pct")
                ->as_double(),
            dual.find("report")->find("dscale")->find("improve_pct")
                ->as_double());
}

TEST_F(ServiceTest, MalformedSuppliesRejectedVerbatim) {
  Client client(port());
  const auto expect_error = [&](const std::string& supplies,
                                const std::string& message) {
    client.send(R"({"type":"optimize","circuit":"x2",)"
                R"("options":{"supplies":)" +
                supplies + "}}");
    Json response = client.recv();
    ASSERT_EQ(response.find("type")->as_string(), "error")
        << response.dump();
    EXPECT_EQ(response.find("message")->as_string(), message);
  };
  expect_error(R"("4.3,5.0")", "supplies must be strictly descending");
  expect_error(R"([5.0,5.0])", "supplies must be strictly descending");
  expect_error(R"("5.0")", "supplies must list between 2 and 8 voltages");
  expect_error(R"("5.0,0.5")", "supplies out of range");
  expect_error(R"("5.0,4.3V")", "supplies out of range");
  // The connection still serves.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, OversizedLineRejectedVerbatim) {
  ServiceConfig config;
  config.num_threads = 2;
  config.max_line_bytes = 1024;
  start_service(config);

  Client client(port());
  client.send(std::string(4096, 'x'));  // one 4 KiB line, no JSON at all
  Json error = client.recv();
  ASSERT_EQ(error.find("type")->as_string(), "error") << error.dump();
  // The message is the protocol-verbatim LineTooLongError text.
  EXPECT_EQ(error.find("message")->as_string(),
            "line too long: exceeds the 1024-byte limit");
  EXPECT_EQ(error.find("code")->as_string(), "line_too_long");
  // The unread remainder makes resync impossible: connection closes.
  std::string line;
  EXPECT_FALSE(client.recv_line(&line));

  // A maximal-but-legal line still round-trips on a fresh connection.
  Client ok(port());
  ok.send(R"({"type":"ping"})");
  EXPECT_EQ(ok.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, OverloadedRejectionAtWatermark) {
  ServiceConfig config;
  config.num_threads = 1;
  config.max_backlog = 2;
  start_service(config);

  // Saturate the single worker well past the watermark: six uncached
  // jobs, each several times the default simulation cost.
  Client busy(port());
  busy.send(
      R"({"type":"batch","circuits":["x2","x2","x2","x2","x2","x2"],)"
      R"("use_cache":false,"options":{"vectors":262144},"id":"slow"})");
  await_stats([](const Json& stats) {
    return stats.find("pool")->find("inflight")->as_uint() >= 2;
  });

  // The gate answers immediately — no queue wait, no computation.
  Client rejected(port());
  const auto sent = std::chrono::steady_clock::now();
  rejected.send(R"({"type":"optimize","circuit":"z4ml","id":"late"})");
  Json error = rejected.recv();
  const double wait_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - sent)
          .count();
  ASSERT_EQ(error.find("type")->as_string(), "error") << error.dump();
  EXPECT_EQ(error.find("code")->as_string(), "overloaded");
  EXPECT_EQ(error.find("id")->as_string(), "late");
  EXPECT_NE(error.find("message")->as_string().find("overloaded"),
            std::string::npos);
  EXPECT_LT(wait_ms, 100.0);

  // The saturating batch itself still completes in full.
  int items = 0;
  while (true) {
    Json line = busy.recv();
    if (line.find("type")->as_string() == "batch_done") {
      EXPECT_EQ(line.find("count")->as_uint(), 6u);
      break;
    }
    ++items;
  }
  EXPECT_EQ(items, 6);
  const Json stats = await_stats([](const Json&) { return true; });
  EXPECT_GE(stats.find("pool")->find("overload_rejections")->as_uint(),
            1u);
}

TEST_F(ServiceTest, DeadlineExpiresInQueue) {
  ServiceConfig config;
  config.num_threads = 1;  // default watermark = 8: admission passes
  start_service(config);

  // One long uncached job owns the only worker for hundreds of ms.
  Client busy(port());
  busy.send(R"({"type":"optimize","circuit":"x2","use_cache":false,)"
            R"("options":{"vectors":1048576},"id":"long"})");
  // Wait until the worker has actually *dequeued* the long job —
  // dvsd_queue_wait_ms ticks exactly once per dequeue, so count >= 1
  // proves the only worker is busy executing. (`inflight >= 1` is not
  // enough: with the pool's LIFO own-deque pop, a still-queued long job
  // would let the later 1 ms z4ml run first, within its deadline.)
  for (int spins = 0;; ++spins) {
    ASSERT_LT(spins, 5000) << "long job never dequeued";
    if (metric_value(fetch_metrics(), "dvsd_queue_wait_ms_count") >= 1.0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A 1 ms deadline cannot survive that queue wait: the job is admitted,
  // then fails with the structured timeout when the worker dequeues it.
  Client impatient(port());
  impatient.send(
      R"({"type":"optimize","circuit":"z4ml","deadline_ms":1,"id":"dl"})");
  Json error = impatient.recv();
  ASSERT_EQ(error.find("type")->as_string(), "error") << error.dump();
  EXPECT_EQ(error.find("code")->as_string(), "deadline_exceeded");
  EXPECT_EQ(error.find("id")->as_string(), "dl");

  Json done = busy.recv();  // the long job itself is unaffected
  EXPECT_EQ(done.find("type")->as_string(), "result") << done.dump();
  const Json stats = await_stats([](const Json&) { return true; });
  EXPECT_GE(stats.find("pool")->find("deadline_expired")->as_uint(), 1u);
}

TEST_F(ServiceTest, GracefulStopDrainsInFlightBatch) {
  // SIGTERM-shaped stop: request_stop() + stop() while a batch is mid
  // flight.  The drain must let the session finish and answer every item
  // (plus batch_done) before the socket closes.
  Client client(port());
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml","pm1"],"id":"drain"})");
  await_stats([](const Json& stats) {
    return stats.find("pool")->find("inflight")->as_uint() >= 1;
  });

  service_->request_stop();
  service_->stop();  // blocks until drained

  std::set<std::uint64_t> seen;
  bool done = false;
  std::string line;
  while (client.recv_line(&line)) {
    if (line.empty()) continue;
    const Json response = Json::parse(line);
    const std::string type = response.find("type")->as_string();
    ASSERT_TRUE(type == "batch_item" || type == "batch_done")
        << response.dump();
    if (type == "batch_done") {
      EXPECT_EQ(response.find("count")->as_uint(), 3u);
      EXPECT_EQ(response.find("failed")->as_uint(), 0u);
      done = true;
    } else {
      ASSERT_EQ(response.find("error"), nullptr) << response.dump();
      seen.insert(response.find("index")->as_uint());
    }
  }
  EXPECT_TRUE(done) << "batch_done never arrived before EOF";
  EXPECT_EQ(seen.size(), 3u);
  service_.reset();
}

TEST_F(ServiceTest, StatsAndMetricsAgree) {
  Client client(port());
  client.send(R"({"type":"optimize","circuit":"x2","id":1})");
  ASSERT_EQ(client.recv().find("cache")->as_string(), "miss");
  client.send(R"({"type":"optimize","circuit":"x2","id":2})");
  ASSERT_EQ(client.recv().find("cache")->as_string(), "hit");

  // Same connection, back to back on a quiescent daemon: the exposition
  // and the stats object are views over the same registry, so every
  // shared counter must agree exactly.
  client.send(R"({"type":"metrics"})");
  const std::string text = client.recv().find("text")->as_string();
  client.send(R"({"type":"stats"})");
  const Json stats = client.recv();

  EXPECT_EQ(metric_value(text, "dvsd_jobs_completed_total"),
            static_cast<double>(
                stats.find("jobs")->find("completed")->as_uint()));
  EXPECT_EQ(metric_value(text, "dvsd_jobs_failed_total"),
            static_cast<double>(
                stats.find("jobs")->find("failed")->as_uint()));
  EXPECT_EQ(
      metric_value(text, "dvsd_cache_hits_total{tier=\"memory\"}"),
      static_cast<double>(stats.find("cache")->find("hits")->as_uint()));
  EXPECT_EQ(
      metric_value(text, "dvsd_cache_misses_total{tier=\"memory\"}"),
      static_cast<double>(
          stats.find("cache")->find("misses")->as_uint()));
  EXPECT_EQ(metric_value(text, "dvsd_connections_total"),
            static_cast<double>(stats.find("connections")->as_uint()));
  // The stats request itself is the only request between the two reads.
  EXPECT_EQ(metric_value(text, "dvsd_requests_total") + 1.0,
            static_cast<double>(stats.find("requests_total")->as_uint()));
  EXPECT_EQ(metric_value(text, "dvsd_build_info{version=\"" +
                                   std::string(kDvsVersion) + "\"}"),
            1.0);
  // One queue wait and one optimize service time per optimize request.
  EXPECT_EQ(metric_value(text, "dvsd_queue_wait_ms_count"), 2.0);
  EXPECT_EQ(
      metric_value(text, "dvsd_service_ms_count{type=\"optimize\"}"),
      2.0);
}

TEST_F(ServiceTest, MetricsEndpointServesExposition) {
  ServiceConfig config;
  config.metrics_port = 0;  // kernel-assigned
  start_service(config);
  const int http_port = service_->metrics_port();
  ASSERT_GT(http_port, 0);

  Socket http = Socket::connect_tcp("127.0.0.1", http_port);
  http.send_all("GET /metrics HTTP/1.0\r\n\r\n");
  LineReader reader(&http, 1u << 20);
  std::string line;
  std::string reply;
  while (reader.read_line(&line)) reply += line + "\n";
  EXPECT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(reply.find("# TYPE dvsd_queue_wait_ms histogram"),
            std::string::npos);
  EXPECT_NE(reply.find("# TYPE dvsd_service_ms histogram"),
            std::string::npos);
  EXPECT_NE(reply.find("dvsd_pool_threads"), std::string::npos);
  EXPECT_NE(reply.find("dvsd_requests_total"), std::string::npos);
}

TEST_F(ServiceTest, TraceSpansTileTheRequest) {
  Client client(port());
  client.send(R"({"type":"optimize","circuit":"x2","trace":true,"id":1})");
  Json miss = client.recv();
  ASSERT_EQ(miss.find("type")->as_string(), "result") << miss.dump();
  EXPECT_EQ(miss.find("cache")->as_string(), "miss");
  const Json* trace = miss.find("trace");
  ASSERT_NE(trace, nullptr);
  double depth0 = 0.0;
  double prev_start = -1.0;
  std::set<std::string> phases;
  for (const Json& span : trace->as_array()) {
    const double start = span.find("start_ms")->as_double();
    EXPECT_GE(start, prev_start);  // spans arrive sorted by start
    prev_start = start;
    if (span.find("depth")->as_int() == 0) {
      depth0 += span.find("dur_ms")->as_double();
      phases.insert(span.find("name")->as_string());
    }
  }
  for (const char* phase : {"parse", "admission", "queue_wait",
                            "resolve", "cache_lookup", "execute",
                            "store", "respond"})
    EXPECT_TRUE(phases.count(phase)) << phase;
  // The tiling contract: depth-0 phases partition the request, so their
  // durations sum to the reported wall time (5% / 1 ms slack for the
  // instructions between clock reads).
  const double wall = miss.find("wall_ms")->as_double();
  EXPECT_NEAR(depth0, wall, std::max(0.05 * wall, 1.0));

  // A hit never executes the flow; and without trace:true the response
  // carries no trace at all.
  client.send(R"({"type":"optimize","circuit":"x2","trace":true,"id":2})");
  Json hit = client.recv();
  EXPECT_EQ(hit.find("cache")->as_string(), "hit");
  ASSERT_NE(hit.find("trace"), nullptr);
  for (const Json& span : hit.find("trace")->as_array())
    EXPECT_NE(span.find("name")->as_string(), "execute");
  client.send(R"({"type":"optimize","circuit":"x2","id":3})");
  EXPECT_EQ(client.recv().find("trace"), nullptr);
}

TEST_F(ServiceTest, BatchTraceStreamsPerItemSpans) {
  Client client(port());
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml","pm1"],"trace":true})");
  int items = 0;
  while (true) {
    Json line = client.recv();
    const std::string type = line.find("type")->as_string();
    if (type == "batch_done") break;
    ASSERT_EQ(type, "batch_item") << line.dump();
    ASSERT_EQ(line.find("error"), nullptr) << line.dump();
    ++items;
    // Items complete out of order across workers, and workers append
    // spans concurrently — each item's trace must still come out sorted
    // and tiling its own wall time.
    const Json* trace = line.find("trace");
    ASSERT_NE(trace, nullptr) << line.dump();
    double depth0 = 0.0;
    double prev_start = -1.0;
    for (const Json& span : trace->as_array()) {
      const double start = span.find("start_ms")->as_double();
      EXPECT_GE(start, prev_start);
      prev_start = start;
      if (span.find("depth")->as_int() == 0)
        depth0 += span.find("dur_ms")->as_double();
    }
    const double wall = line.find("wall_ms")->as_double();
    EXPECT_NEAR(depth0, wall, std::max(0.05 * wall, 1.0));
  }
  EXPECT_EQ(items, 3);
}

TEST_F(ServiceTest, ShutdownRequestStopsTheService) {
  Client client(port());
  client.send(R"({"type":"shutdown"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "bye");
  service_->wait();  // returns because the stop flag is set
  service_->stop();
  service_.reset();
}

}  // namespace
}  // namespace dvs
