// End-to-end wall for the dvsd service: boots a real Service on an
// ephemeral loopback port and drives it through sockets exactly like a
// client would — protocol fidelity, suite-engine equality, cache
// behavior across netlist formats, error containment, batch streaming,
// and shutdown.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/suite.hpp"
#include "library/library.hpp"
#include "netlist/blif.hpp"
#include "netlist/verilog.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace dvs {
namespace {

const char* kDemoBlif = R"(.model demo
.inputs a b c d e f
.outputs y z
.names a b t1
11 1
.names c d t2
1- 1
-1 1
.names t1 t2 t3
10 1
01 1
.names t3 e t4
11 1
.names t4 f y
1- 1
-1 1
.names t2 e z
11 1
.end
)";

/// A connected test client speaking NDJSON.
class Client {
 public:
  explicit Client(int port)
      : socket_(Socket::connect_tcp("127.0.0.1", port)),
        reader_(&socket_, 64u << 20) {}

  void send(const std::string& request) {
    socket_.send_all(request + "\n");
  }

  Json recv() {
    std::string line;
    EXPECT_TRUE(reader_.read_line(&line)) << "connection closed early";
    return Json::parse(line);
  }

 private:
  Socket socket_;
  LineReader reader_;
};

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceConfig config;
    config.tcp_port = 0;
    config.num_threads = 2;
    config.cache_entries = 64;
    service_.emplace(config);
    service_->start();
  }

  void TearDown() override {
    if (service_) {
      service_->request_stop();
      service_->stop();
    }
  }

  int port() const { return service_->port(); }

  std::optional<Service> service_;
};

/// The report with wall-clock columns zeroed (legitimately nondeterministic).
std::string comparable(Json report) {
  auto& object = report.as_object();
  if (auto it = object.find("gscale"); it != object.end())
    it->second.as_object()["seconds"] = Json(0.0);
  return report.dump();
}

TEST_F(ServiceTest, PingStatsAndUnknownType) {
  Client client(port());
  client.send(R"({"type":"ping","id":7})");
  Json pong = client.recv();
  EXPECT_EQ(pong.find("type")->as_string(), "pong");
  EXPECT_EQ(pong.find("id")->as_int(), 7);

  client.send(R"({"type":"stats"})");
  Json stats = client.recv();
  EXPECT_EQ(stats.find("type")->as_string(), "stats");
  EXPECT_EQ(stats.find("cache")->find("hits")->as_uint(), 0u);
  EXPECT_EQ(stats.find("cache")->find("capacity")->as_uint(), 64u);

  client.send(R"({"type":"frobnicate"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Connection still serves after the error.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, NamedCircuitMatchesSuiteEngineAndCaches) {
  SuiteOptions suite;
  suite.circuits = {"x2"};
  suite.num_threads = 1;
  const SuiteReport reference = run_suite(suite);
  const std::string expected =
      comparable(report_json(reference.rows[0], true, true, true));

  Client client(port());
  const std::string request = R"({"type":"optimize","circuit":"x2"})";
  client.send(request);
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result")
      << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");
  EXPECT_EQ(comparable(*first.find("report")), expected);
  // Metrics are attached for every enabled algorithm.
  EXPECT_NE(first.find("metrics")->find("gscale"), nullptr);

  client.send(request);
  Json second = client.recv();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));

  // A different seed is a different job, not a stale hit.
  client.send(
      R"({"type":"optimize","circuit":"x2","options":{"seed":99}})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
}

TEST_F(ServiceTest, BlifAndVerilogSubmissionsShareOneCacheEntry) {
  const Library lib = build_compass_library();
  const Network parsed = read_blif_string(kDemoBlif);
  const std::string verilog = write_verilog_string(parsed, lib);

  Json::Object blif_req;
  blif_req["type"] = Json("optimize");
  blif_req["netlist"] = Json(std::string(kDemoBlif));
  Json::Object verilog_req;
  verilog_req["type"] = Json("optimize");
  verilog_req["netlist"] = Json(verilog);
  verilog_req["format"] = Json("verilog");

  Client client(port());
  client.send(Json(blif_req).dump());
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result") << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");

  // The same circuit as Verilog text: content addressing must hit.
  client.send(Json(verilog_req).dump());
  Json second = client.recv();
  ASSERT_EQ(second.find("type")->as_string(), "result") << second.dump();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));
}

TEST_F(ServiceTest, ReturnNetlistRoundTrips) {
  Json::Object request;
  request["type"] = Json("optimize");
  request["netlist"] = Json(std::string(kDemoBlif));
  request["return_netlist"] = Json(true);
  Json::Array algos;
  algos.emplace_back("dscale");
  request["algos"] = Json(std::move(algos));

  Client client(port());
  client.send(Json(request).dump());
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  ASSERT_NE(response.find("netlist"), nullptr);
  ASSERT_NE(response.find("low_gates"), nullptr);
  // The returned netlist is valid BLIF (converters materialized).
  EXPECT_NO_THROW(read_blif_string(response.find("netlist")->as_string()));
  const Json& metrics = *response.find("metrics")->find("dscale");
  EXPECT_GT(metrics.find("power_uw")->as_double(), 0.0);
  EXPECT_GT(metrics.find("area_um2")->as_double(), 0.0);
}

TEST_F(ServiceTest, BatchStreamsEveryRowMatchingTheSuite) {
  SuiteOptions suite;
  suite.circuits = {"x2", "z4ml", "pm1"};
  suite.num_threads = 1;
  const SuiteReport reference = run_suite(suite);

  Client client(port());
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml","pm1"],"id":"B"})");
  std::set<std::uint64_t> seen;
  bool done = false;
  while (!done) {
    Json response = client.recv();
    const std::string type = response.find("type")->as_string();
    ASSERT_TRUE(type == "batch_item" || type == "batch_done")
        << response.dump();
    EXPECT_EQ(response.find("id")->as_string(), "B");
    if (type == "batch_done") {
      EXPECT_EQ(response.find("count")->as_uint(), 3u);
      EXPECT_EQ(response.find("failed")->as_uint(), 0u);
      done = true;
      continue;
    }
    ASSERT_EQ(response.find("error"), nullptr) << response.dump();
    const std::uint64_t index = response.find("index")->as_uint();
    ASSERT_LT(index, reference.rows.size());
    EXPECT_TRUE(seen.insert(index).second) << "duplicate item";
    EXPECT_EQ(
        comparable(*response.find("report")),
        comparable(report_json(reference.rows[index], true, true, true)));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(ServiceTest, PipelineRequestsRunHybridsWithTrajectory) {
  Client client(port());
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("pipeline":"cvs | gscale(area_budget=0.05) | dscale"})");
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  // No paper columns: the report carries the shared columns only...
  const Json& report = *response.find("report");
  EXPECT_EQ(report.find("cvs"), nullptr);
  EXPECT_GT(report.find("org_power_uw")->as_double(), 0.0);
  // ...and the trajectory carries one point per executed pass.
  const Json& trajectory = *response.find("trajectory");
  ASSERT_EQ(trajectory.as_array().size(), 1u);
  const Json& cell = trajectory.as_array()[0];
  EXPECT_EQ(cell.find("label")->as_string(), "pipeline");
  const Json::Array& passes = cell.find("passes")->as_array();
  ASSERT_EQ(passes.size(), 3u);
  EXPECT_EQ(passes[0].find("pass")->as_string(), "cvs");
  EXPECT_EQ(passes[1].find("pass")->as_string(), "gscale");
  EXPECT_EQ(passes[2].find("pass")->as_string(), "dscale");
  // Monotone trajectory: each stage ends at or below the previous power.
  EXPECT_LE(passes[2].find("power_uw")->as_double(),
            passes[0].find("power_uw")->as_double() + 1e-6);
  // Final metrics for the cell are attached under its label.
  EXPECT_NE(response.find("metrics")->find("pipeline"), nullptr);

  // The same pipeline again: canonical fingerprint makes it a hit.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("pipeline":"cvs|gscale(area_budget=0.05)|dscale"})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "hit");
}

TEST_F(ServiceTest, LegacyAlgosAndPipelineSpellingShareOneCacheEntry) {
  Client client(port());
  client.send(R"({"type":"optimize","circuit":"z4ml","algos":["dscale"]})");
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result") << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");

  // Same job, spelled as a pipeline: must hit and replay the same body.
  client.send(R"({"type":"optimize","circuit":"z4ml","pipeline":"dscale"})");
  Json second = client.recv();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));

  // Algo order never splits entries either.
  client.send(
      R"({"type":"optimize","circuit":"z4ml","algos":["gscale","cvs"]})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
  client.send(
      R"({"type":"optimize","circuit":"z4ml","algos":["cvs","gscale"]})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "hit");
}

TEST_F(ServiceTest, PipelineReturnNetlistAndBatch) {
  // return_netlist composes with hybrid pipelines (a pipeline is one
  // cell, so the exactly-one-result invariant holds by construction).
  Json::Object request;
  request["type"] = Json("optimize");
  request["netlist"] = Json(std::string(kDemoBlif));
  request["pipeline"] = Json("cvs | dscale | trim");
  request["return_netlist"] = Json(true);
  Client client(port());
  client.send(Json(request).dump());
  Json response = client.recv();
  ASSERT_EQ(response.find("type")->as_string(), "result")
      << response.dump();
  ASSERT_NE(response.find("netlist"), nullptr);
  EXPECT_NO_THROW(read_blif_string(response.find("netlist")->as_string()));

  // Batch fans a pipeline across circuits.
  client.send(
      R"({"type":"batch","circuits":["x2","z4ml"],)"
      R"("pipeline":"cvs | dscale","id":"P"})");
  int items = 0;
  bool done = false;
  while (!done) {
    Json line = client.recv();
    const std::string type = line.find("type")->as_string();
    if (type == "batch_done") {
      EXPECT_EQ(line.find("failed")->as_uint(), 0u);
      done = true;
      continue;
    }
    ASSERT_EQ(type, "batch_item") << line.dump();
    ASSERT_EQ(line.find("error"), nullptr) << line.dump();
    const Json& trajectory = *line.find("trajectory");
    EXPECT_EQ(trajectory.as_array()[0]
                  .find("passes")->as_array().size(),
              2u);
    ++items;
  }
  EXPECT_EQ(items, 2);
}

TEST_F(ServiceTest, PipelineErrorsAreContained) {
  Client client(port());
  // Unknown pass.
  client.send(
      R"({"type":"optimize","circuit":"x2","pipeline":"cvs | warp"})");
  Json error = client.recv();
  EXPECT_EQ(error.find("type")->as_string(), "error");
  EXPECT_NE(error.find("message")->as_string().find("unknown pass"),
            std::string::npos);
  // Unknown option, malformed grammar, algos+pipeline conflict.
  client.send(
      R"x({"type":"optimize","circuit":"x2","pipeline":"cvs(bogus=1)"})x");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  client.send(
      R"({"type":"optimize","circuit":"x2","pipeline":"cvs |"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("algos":["cvs"],"pipeline":"dscale"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // The connection still serves.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, ErrorContainment) {
  Client client(port());
  // Malformed JSON.
  client.send("this is not json");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Unknown field (strict parsing).
  client.send(R"({"type":"optimize","circuit":"x2","bogus":1})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Unknown circuit.
  client.send(R"({"type":"optimize","circuit":"nope"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // Malformed netlist (duplicate driver).
  Json::Object request;
  request["type"] = Json("optimize");
  request["netlist"] = Json(std::string(
      ".model m\n.inputs a b\n.outputs y\n"
      ".names a y\n1 1\n.names b y\n1 1\n.end\n"));
  client.send(Json(request).dump());
  Json error = client.recv();
  EXPECT_EQ(error.find("type")->as_string(), "error");
  // return_netlist with several algorithms is rejected.
  client.send(
      R"({"type":"optimize","circuit":"x2","return_netlist":true})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "error");
  // The connection survived all of it.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, SupplyLadderJobsRunAndKeySeparately) {
  Client client(port());
  // A 3-level ladder end to end: the daemon maps, optimizes, and answers
  // against the requested operating point.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5.0,4.3,3.6"}})");
  Json first = client.recv();
  ASSERT_EQ(first.find("type")->as_string(), "result") << first.dump();
  EXPECT_EQ(first.find("cache")->as_string(), "miss");
  EXPECT_GT(first.find("report")->find("org_power_uw")->as_double(), 0.0);

  // The same ladder spelled as an array hits the same entry.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":[5, 4.3, 3.6]}})");
  Json second = client.recv();
  EXPECT_EQ(second.find("cache")->as_string(), "hit");
  EXPECT_EQ(comparable(*second.find("report")),
            comparable(*first.find("report")));

  // A different ladder is a different job; the default ladder spelled
  // explicitly aliases with the ladder-free request.
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5.0,4.3,4.0"}})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
  client.send(R"({"type":"optimize","circuit":"x2"})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "miss");
  client.send(
      R"({"type":"optimize","circuit":"x2",)"
      R"("options":{"supplies":"5,4.3"}})");
  EXPECT_EQ(client.recv().find("cache")->as_string(), "hit");

  // Deeper rungs open strictly more saving on this circuit than the
  // dual ladder (that is the point of the generalization).
  client.send(
      R"({"type":"optimize","circuit":"z4ml","algos":["dscale"],)"
      R"("options":{"supplies":"5.0,4.3,3.6"}})");
  Json three = client.recv();
  client.send(R"({"type":"optimize","circuit":"z4ml","algos":["dscale"]})");
  Json dual = client.recv();
  EXPECT_GE(three.find("report")->find("dscale")->find("improve_pct")
                ->as_double(),
            dual.find("report")->find("dscale")->find("improve_pct")
                ->as_double());
}

TEST_F(ServiceTest, MalformedSuppliesRejectedVerbatim) {
  Client client(port());
  const auto expect_error = [&](const std::string& supplies,
                                const std::string& message) {
    client.send(R"({"type":"optimize","circuit":"x2",)"
                R"("options":{"supplies":)" +
                supplies + "}}");
    Json response = client.recv();
    ASSERT_EQ(response.find("type")->as_string(), "error")
        << response.dump();
    EXPECT_EQ(response.find("message")->as_string(), message);
  };
  expect_error(R"("4.3,5.0")", "supplies must be strictly descending");
  expect_error(R"([5.0,5.0])", "supplies must be strictly descending");
  expect_error(R"("5.0")", "supplies must list between 2 and 8 voltages");
  expect_error(R"("5.0,0.5")", "supplies out of range");
  expect_error(R"("5.0,4.3V")", "supplies out of range");
  // The connection still serves.
  client.send(R"({"type":"ping"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "pong");
}

TEST_F(ServiceTest, ShutdownRequestStopsTheService) {
  Client client(port());
  client.send(R"({"type":"shutdown"})");
  EXPECT_EQ(client.recv().find("type")->as_string(), "bye");
  service_->wait();  // returns because the stop flag is set
  service_->stop();
  service_.reset();
}

}  // namespace
}  // namespace dvs
