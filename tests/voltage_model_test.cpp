#include "library/voltage_model.hpp"

#include <gtest/gtest.h>

namespace dvs {
namespace {

TEST(VoltageModel, UnityAtNominal) {
  VoltageModel vm{5.0, 0.8, 1.3};
  EXPECT_NEAR(vm.delay_factor(5.0), 1.0, 1e-12);
  EXPECT_NEAR(vm.energy_factor(5.0), 1.0, 1e-12);
  EXPECT_NEAR(vm.leakage_factor(5.0), 1.0, 1e-12);
}

TEST(VoltageModel, PaperOperatingPoint) {
  VoltageModel vm{5.0, 0.8, 1.3};
  // ~9% slower and 26% less dynamic energy at 4.3V (DESIGN.md).
  EXPECT_NEAR(vm.delay_factor(4.3), 1.09, 0.02);
  EXPECT_NEAR(vm.energy_factor(4.3), 0.7396, 1e-9);
}

TEST(VoltageModel, DelayMonotoneDecreasingInVdd) {
  VoltageModel vm{5.0, 0.8, 1.3};
  double prev = vm.delay_factor(2.0);
  for (double v = 2.2; v <= 6.0; v += 0.2) {
    const double f = vm.delay_factor(v);
    EXPECT_LT(f, prev) << "at " << v;
    prev = f;
  }
}

TEST(VoltageModel, EnergyQuadratic) {
  VoltageModel vm{5.0, 0.8, 1.3};
  EXPECT_NEAR(vm.energy_factor(2.5), 0.25, 1e-12);
  EXPECT_NEAR(vm.energy_factor(10.0), 4.0, 1e-12);
}

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, LowVoltageAlwaysSlower) {
  VoltageModel vm{5.0, 0.8, GetParam()};
  EXPECT_GT(vm.delay_factor(4.3), 1.0);
  EXPECT_GT(vm.delay_factor(3.3), vm.delay_factor(4.3));
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(1.0, 1.3, 1.5, 2.0));

}  // namespace
}  // namespace dvs
