#include "library/library.hpp"

#include <gtest/gtest.h>

#include "library/level_converter.hpp"

namespace dvs {
namespace {

class CompassTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(CompassTest, HasExactly72CombinationalCellsPlusConverter) {
  int combinational = 0;
  int converters = 0;
  for (int i = 0; i < lib_.num_cells(); ++i) {
    if (lib_.cell(i).is_level_converter)
      ++converters;
    else
      ++combinational;
  }
  EXPECT_EQ(combinational, 72);
  EXPECT_EQ(converters, 1);
}

TEST_F(CompassTest, InvertingCellsHaveThreeSizes) {
  for (const char* base : {"inv", "nand2", "nand3", "nand4", "nand5",
                           "nor2", "nor3", "nor4", "nor5", "aoi21",
                           "oai21", "aoi22", "oai22", "aoi211", "oai211",
                           "xnor2", "xnor3"}) {
    const int cell = lib_.smallest_of(base);
    ASSERT_GE(cell, 0) << base;
    EXPECT_EQ(lib_.variants_of(cell).size(), 3u) << base;
    // XNOR has an inverted output stage but is non-unate, so the
    // unateness-based classification applies to the others only.
    if (std::string(base).find("xnor") == std::string::npos) {
      EXPECT_TRUE(lib_.cell(cell).inverting()) << base;
    }
  }
}

TEST_F(CompassTest, NonInvertingCellsHaveTwoSizes) {
  for (const char* base : {"buf", "and2", "and3", "and4", "or2", "or3",
                           "or4", "xor2", "mux2", "maj3"}) {
    const int cell = lib_.smallest_of(base);
    ASSERT_GE(cell, 0) << base;
    EXPECT_EQ(lib_.variants_of(cell).size(), 2u) << base;
    EXPECT_FALSE(lib_.cell(cell).inverting()) << base;
  }
}

TEST_F(CompassTest, UpsizeDownsizeWalkTheLadder) {
  const int d0 = lib_.find("nand2_d0");
  const int d1 = lib_.upsize(d0);
  const int d2 = lib_.upsize(d1);
  EXPECT_EQ(lib_.cell(d1).name, "nand2_d1");
  EXPECT_EQ(lib_.cell(d2).name, "nand2_d2");
  EXPECT_EQ(lib_.upsize(d2), -1);
  EXPECT_EQ(lib_.downsize(d0), -1);
  EXPECT_EQ(lib_.downsize(d1), d0);
}

TEST_F(CompassTest, BiggerDrivesAreFasterButHeavier) {
  const int d0 = lib_.find("nand2_d0");
  const int d2 = lib_.find("nand2_d2");
  const Cell& small = lib_.cell(d0);
  const Cell& big = lib_.cell(d2);
  EXPECT_LT(big.arcs[0].resistance_rise, small.arcs[0].resistance_rise);
  EXPECT_GT(big.input_cap[0], small.input_cap[0]);
  EXPECT_GT(big.area, small.area);
}

TEST_F(CompassTest, StacksAreSlower) {
  EXPECT_GT(lib_.cell(lib_.find("nand4_d0")).arcs[0].resistance_rise,
            lib_.cell(lib_.find("nand2_d0")).arcs[0].resistance_rise);
  EXPECT_GT(lib_.cell(lib_.find("nor4_d0")).arcs[0].intrinsic_rise,
            lib_.cell(lib_.find("nor2_d0")).arcs[0].intrinsic_rise);
}

TEST_F(CompassTest, FunctionMatchingFindsFamilies) {
  const auto nand2_matches = lib_.cells_matching(tt_nand(2));
  ASSERT_EQ(nand2_matches.size(), 1u);
  EXPECT_EQ(lib_.cell(nand2_matches[0]).base_name, "nand2");
  EXPECT_TRUE(lib_.cells_matching(tt_mux2()).size() == 1u);
}

TEST_F(CompassTest, CellFunctionsMatchTheirNames) {
  EXPECT_TRUE(lib_.cell(lib_.find("xor2_d0")).function == tt_xor(2));
  EXPECT_TRUE(lib_.cell(lib_.find("aoi22_d1")).function == tt_aoi22());
  EXPECT_TRUE(lib_.cell(lib_.find("maj3_d0")).function == tt_maj3());
  EXPECT_TRUE(lib_.cell(lib_.find("inv_d2")).function == tt_inv());
}

TEST_F(CompassTest, LevelConverterQueries) {
  EXPECT_TRUE(has_level_converter(lib_));
  const Cell& lc = level_converter_cell(lib_);
  EXPECT_TRUE(lc.is_level_converter);
  EXPECT_GT(level_converter_delay(lib_, 10.0), 0.0);
  EXPECT_GT(level_converter_overhead_cap(lib_), 0.0);
}

TEST_F(CompassTest, SupplySetters) {
  lib_.set_supplies(3.3, 2.4);
  EXPECT_DOUBLE_EQ(lib_.vdd_high(), 3.3);
  EXPECT_DOUBLE_EQ(lib_.vdd_low(), 2.4);
}

TEST(WireLoad, GrowsWithFanout) {
  WireLoadModel wire;
  EXPECT_DOUBLE_EQ(wire.wire_cap(0), 0.0);
  EXPECT_GT(wire.wire_cap(3), wire.wire_cap(1));
}

}  // namespace
}  // namespace dvs
