#include "benchgen/mcnc.hpp"

#include <gtest/gtest.h>
#include <set>

#include "benchgen/random_dag.hpp"
#include "benchgen/structured.hpp"
#include "netlist/stats.hpp"
#include "sim/bitsim.hpp"
#include "timing/sta.hpp"

namespace dvs {
namespace {

class BenchgenTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(BenchgenTest, SuiteHas39UniqueCircuits) {
  const auto suite = mcnc_suite();
  EXPECT_EQ(suite.size(), 39u);
  std::set<std::string> names;
  for (const McncDescriptor& d : suite) names.insert(d.name);
  EXPECT_EQ(names.size(), 39u);
  EXPECT_NE(find_mcnc("des"), nullptr);
  EXPECT_EQ(find_mcnc("nonexistent"), nullptr);
}

TEST_F(BenchgenTest, PaperAveragesMatchThePaper) {
  double cvs = 0, dscale = 0, gscale = 0, ratio = 0;
  for (const McncDescriptor& d : mcnc_suite()) {
    cvs += d.paper.cvs_pct;
    dscale += d.paper.dscale_pct;
    gscale += d.paper.gscale_pct;
    ratio += d.paper.gscale_ratio;
  }
  const double n = 39.0;
  EXPECT_NEAR(cvs / n, 10.27, 0.01);
  EXPECT_NEAR(dscale / n, 12.09, 0.01);
  EXPECT_NEAR(gscale / n, 19.12, 0.01);
  EXPECT_NEAR(ratio / n, 0.70, 0.01);
}

TEST_F(BenchgenTest, AdderComputesSums) {
  Network net = build_ripple_adder(lib_, 8, "add8");
  BitSimulator sim(net);
  for (int a = 0; a < 256; a += 37) {
    for (int b = 0; b < 256; b += 41) {
      std::vector<bool> in;
      for (int i = 0; i < 8; ++i) in.push_back((a >> i) & 1);
      for (int i = 0; i < 8; ++i) in.push_back((b >> i) & 1);
      in.push_back(false);  // cin
      const auto out = sim.evaluate(in);
      int sum = 0;
      for (int i = 0; i < 8; ++i) sum |= out[i] << i;
      sum |= out[8] << 8;  // cout
      EXPECT_EQ(sum, a + b);
    }
  }
}

TEST_F(BenchgenTest, BalancedGridHasZeroSlackSpine) {
  GridSpec spec;
  spec.gates = 80;
  spec.pis = 8;
  spec.pos = 4;
  spec.slack_branch_fraction = 0.1;
  Network net = build_balanced_grid(lib_, spec, "g");
  const StaResult sta = run_sta(net, lib_, -1.0);
  // Every PO must be critical to within far less than one gate's
  // voltage-lowering delay penalty (~0.03 ns) — the CVS=0 signature.
  for (const OutputPort& port : net.outputs())
    EXPECT_NEAR(sta.arrival[port.driver].max(), sta.worst_arrival, 0.02)
        << port.name;
}

TEST_F(BenchgenTest, BalancedGridHasSomeInternalSlack) {
  GridSpec spec;
  spec.gates = 120;
  spec.pis = 10;
  spec.pos = 4;
  spec.slack_branch_fraction = 0.15;
  Network net = build_balanced_grid(lib_, spec, "g");
  const StaResult sta = run_sta(net, lib_, -1.0);
  int with_slack = 0;
  net.for_each_gate([&](const Node& g) {
    if (sta.slack[g.id] > 0.1) ++with_slack;
  });
  EXPECT_GT(with_slack, 0);
}

TEST_F(BenchgenTest, GeneratorsAreDeterministic) {
  const McncDescriptor* d = find_mcnc("alu2");
  ASSERT_NE(d, nullptr);
  Network a = build_mcnc_circuit(lib_, *d);
  Network b = build_mcnc_circuit(lib_, *d);
  EXPECT_EQ(describe(network_stats(a)), describe(network_stats(b)));
  EXPECT_EQ(a.size(), b.size());
}

TEST_F(BenchgenTest, GateCountsTrackTable2) {
  for (const char* name : {"C432", "z4ml", "mux", "my_adder", "b9"}) {
    const McncDescriptor* d = find_mcnc(name);
    ASSERT_NE(d, nullptr) << name;
    Network net = build_mcnc_circuit(lib_, *d);
    EXPECT_NEAR(net.num_gates(), d->gates, d->gates * 0.05 + 2) << name;
    EXPECT_EQ(static_cast<int>(net.inputs().size()), d->pis) << name;
  }
}

TEST_F(BenchgenTest, EveryCircuitBuildsValid) {
  for (const McncDescriptor& d : mcnc_suite()) {
    if (d.gates > 700) continue;  // keep the unit suite fast
    Network net = build_mcnc_circuit(lib_, d);
    net.check();
    EXPECT_GT(net.num_gates(), 0) << d.name;
    net.for_each_gate([&](const Node& g) {
      EXPECT_GE(g.cell, 0) << d.name;  // fully mapped
    });
  }
}

TEST_F(BenchgenTest, MaxedCircuitsUseLargestDrives) {
  const McncDescriptor* d = find_mcnc("i2");
  ASSERT_NE(d, nullptr);
  Network net = build_mcnc_circuit(lib_, *d);
  net.for_each_gate([&](const Node& g) {
    EXPECT_EQ(lib_.upsize(g.cell), -1) << g.id;
  });
}

TEST_F(BenchgenTest, HybridCriticalFractionCalibration) {
  const McncDescriptor* wide = find_mcnc("x3");    // CVS ratio 0.82
  const McncDescriptor* tight = find_mcnc("C3540");  // CVS ratio 0.07
  EXPECT_LT(hybrid_critical_fraction(*wide),
            hybrid_critical_fraction(*tight));
}

}  // namespace
}  // namespace dvs
