// Equivalence and invalidation suite for the compiled flat timing graph.
// The flat-graph full STA must be BIT-identical (exact double equality,
// not epsilon-close) to the seed pointer-chasing analysis, across random
// circuits and hundreds of random supply / cell-size / LC point changes;
// the incremental engine must track every one of those changes; and a
// structural edit must invalidate Design's cached graph.
#include <gtest/gtest.h>

#include "dual_ladder.hpp"

#include <cmath>

#include "benchgen/random_dag.hpp"
#include "core/design.hpp"
#include "support/rng.hpp"
#include "timing/graph.hpp"
#include "timing/incremental.hpp"
#include "timing/reference.hpp"

namespace dvs {
namespace {

/// Exact comparison, treating equal infinities as equal.
bool same_double(double a, double b) {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return a == b;
}

::testing::AssertionResult bit_identical(const StaResult& flat,
                                         const StaResult& ref,
                                         const Network& net) {
  if (flat.tspec != ref.tspec || flat.worst_arrival != ref.worst_arrival)
    return ::testing::AssertionFailure()
           << "tspec/worst_arrival differ: " << flat.tspec << "/"
           << flat.worst_arrival << " vs " << ref.tspec << "/"
           << ref.worst_arrival;
  for (int id = 0; id < net.size(); ++id) {
    if (!net.is_valid(id)) continue;
    if (flat.arrival[id].rise != ref.arrival[id].rise ||
        flat.arrival[id].fall != ref.arrival[id].fall ||
        flat.lc_arrival[id].rise != ref.lc_arrival[id].rise ||
        flat.lc_arrival[id].fall != ref.lc_arrival[id].fall ||
        flat.load[id] != ref.load[id] ||
        flat.lc_load[id] != ref.lc_load[id] ||
        !same_double(flat.required[id].rise, ref.required[id].rise) ||
        !same_double(flat.required[id].fall, ref.required[id].fall) ||
        !same_double(flat.slack[id], ref.slack[id]))
      return ::testing::AssertionFailure()
             << "node " << id << " diverges: arrival ("
             << flat.arrival[id].rise << ", " << flat.arrival[id].fall
             << ") vs (" << ref.arrival[id].rise << ", "
             << ref.arrival[id].fall << "), load " << flat.load[id]
             << " vs " << ref.load[id];
  }
  return ::testing::AssertionSuccess();
}

class TimingGraphTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  Network random_circuit(std::uint64_t seed, double critical_fraction) {
    HybridSpec spec;
    spec.gates = 160;
    spec.pis = 16;
    spec.pos = 8;
    spec.critical_fraction = critical_fraction;
    spec.seed = seed;
    return build_hybrid_circuit(lib_, spec,
                                "tg" + std::to_string(seed));
  }

  /// One random point change: a supply flip (LC flags migrate via
  /// Design), a one-step upsize, or a one-step downsize.
  NodeId random_flip(Design& design, Rng& rng) {
    const Network& net = design.network();
    std::vector<NodeId> gates;
    net.for_each_gate([&](const Node& g) {
      if (g.cell >= 0) gates.push_back(g.id);
    });
    if (gates.empty()) return kNoNode;
    const NodeId id = gates[rng.next_below(gates.size())];
    switch (rng.next_below(3)) {
      case 0:
        design.set_level(id, design.level(id) == kTopRung
                                 ? kLowRung
                                 : kTopRung);
        return id;
      case 1: {
        const int up = lib_.upsize(net.node(id).cell);
        if (up < 0) return kNoNode;
        design.network().set_cell(id, up);
        return id;
      }
      default: {
        const int down = lib_.downsize(net.node(id).cell);
        if (down < 0) return kNoNode;
        design.network().set_cell(id, down);
        return id;
      }
    }
  }
};

TEST_F(TimingGraphTest, CompiledStructureMatchesNetwork) {
  const Network net = random_circuit(11, 0.5);
  const TimingGraph g(net, lib_);

  EXPECT_EQ(g.structural_version(), net.structural_version());
  EXPECT_TRUE(g.describes(net, lib_));

  // Fanin CSR mirrors Node::fanins verbatim; unique-fanout entries
  // reproduce the for_each_unique_fanout visit order with ascending pins
  // and per-(driver,sink) cap sums.
  net.for_each_node([&](const Node& node) {
    const auto fi = g.fanins(node.id);
    ASSERT_EQ(fi.size(), node.fanins.size());
    for (std::size_t k = 0; k < fi.size(); ++k)
      EXPECT_EQ(fi[k], node.fanins[k]);

    std::vector<NodeId> expected_uniq;
    for_each_unique_fanout(node,
                           [&](NodeId v) { expected_uniq.push_back(v); });
    const auto uniq = g.unique_fanouts(node.id);
    ASSERT_EQ(uniq.size(), expected_uniq.size());
    std::size_t entry_cursor = 0;
    const auto pins = g.fanout_pins(node.id);
    const auto caps = g.fanout_pin_caps(node.id);
    for (std::size_t k = 0; k < uniq.size(); ++k) {
      EXPECT_EQ(uniq[k], expected_uniq[k]);
      const Node& sink = net.node(expected_uniq[k]);
      double cap_sum = 0.0;
      for (std::size_t pin = 0; pin < sink.fanins.size(); ++pin) {
        if (sink.fanins[pin] != node.id) continue;
        ASSERT_LT(entry_cursor, pins.size());
        EXPECT_EQ(pins[entry_cursor].sink, sink.id);
        EXPECT_EQ(pins[entry_cursor].pin, static_cast<int>(pin));
        const double cap = sink.cell >= 0
                               ? lib_.cell(sink.cell).input_cap[pin]
                               : 6.0;
        EXPECT_EQ(caps[entry_cursor], cap);
        cap_sum += cap;
        ++entry_cursor;
      }
      EXPECT_EQ(g.sink_cap_sum(node.id, static_cast<int>(k)), cap_sum);
    }
    EXPECT_EQ(entry_cursor, pins.size());
  });

  int total_ports = 0;
  for (int id = 0; id < net.size(); ++id)
    total_ports += g.port_fanout_count(id);
  EXPECT_EQ(total_ports, static_cast<int>(net.outputs().size()));
}

TEST_F(TimingGraphTest, FlatStaBitIdenticalToReferenceAcrossShapes) {
  for (const double critical : {0.0, 0.4, 0.9}) {
    Network net = random_circuit(
        300 + static_cast<int>(critical * 10), critical);
    Design design(std::move(net), lib_);
    const TimingContext ctx = design.timing_context();
    const StaResult flat = run_sta(ctx, design.tspec());
    const StaResult ref = run_sta_reference(ctx, design.tspec());
    EXPECT_TRUE(bit_identical(flat, ref, design.network()))
        << "critical=" << critical;
  }
}

TEST_F(TimingGraphTest, TwoHundredRandomFlipsStayBitIdentical) {
  Rng rng(7101);
  Network net = random_circuit(42, 0.4);
  Design design(std::move(net), lib_);
  IncrementalSta timer(design.timing_context(), design.tspec());

  int committed = 0;
  while (committed < 200) {
    const NodeId id = random_flip(design, rng);
    if (id == kNoNode) continue;
    timer.on_node_changed(id);
    ++committed;
    const TimingContext ctx = design.timing_context();
    const StaResult flat = run_sta(ctx, design.tspec());
    const StaResult ref = run_sta_reference(ctx, design.tspec());
    ASSERT_TRUE(bit_identical(flat, ref, design.network()))
        << "diverged after commit " << committed << " (node " << id << ")";
    ASSERT_TRUE(timer.matches_full_sta(1e-9))
        << "incremental diverged after commit " << committed;
  }
}

TEST_F(TimingGraphTest, DesignRecompilesOnStructuralEdit) {
  Network net = random_circuit(99, 0.3);
  Design design(std::move(net), lib_);
  const TimingGraph* before = &design.timing_graph();
  const std::uint64_t version_before = before->structural_version();

  // Point changes patch in place: same compilation object.
  std::vector<NodeId> gates;
  design.network().for_each_gate([&](const Node& g) {
    if (g.cell >= 0) gates.push_back(g.id);
  });
  design.set_level(gates.front(), kLowRung);
  const int up = lib_.upsize(design.network().node(gates.back()).cell);
  if (up >= 0) design.network().set_cell(gates.back(), up);
  EXPECT_EQ(&design.timing_graph(), before);
  EXPECT_EQ(design.timing_graph().structural_version(), version_before);

  // A structural edit (buffer insertion) bumps the network version and
  // forces a recompile; timing over the new graph still matches the
  // reference walk exactly.
  const NodeId driver = gates.front();
  std::vector<NodeId> moved;
  for (NodeId fo : design.network().node(driver).fanouts) {
    moved.push_back(fo);
    break;
  }
  ASSERT_FALSE(moved.empty());
  const int buf_cell = lib_.smallest_of("buf");
  design.network().insert_between(driver, moved, {}, tt_buf(),
                                  buf_cell, "tg_buf");
  design.sync_with_network();

  const TimingGraph& after = design.timing_graph();
  EXPECT_NE(after.structural_version(), version_before);
  EXPECT_TRUE(after.describes(design.network(), lib_));

  const TimingContext ctx = design.timing_context();
  const StaResult flat = run_sta(ctx, design.tspec());
  const StaResult ref = run_sta_reference(ctx, design.tspec());
  EXPECT_TRUE(bit_identical(flat, ref, design.network()));
}

TEST_F(TimingGraphTest, StaleGraphInContextFallsBackToFreshCompile) {
  Network net = random_circuit(5, 0.2);
  Design design(std::move(net), lib_);
  TimingContext ctx = design.timing_context();

  // Invalidate behind the context's back: the analysis must notice the
  // version mismatch and compile its own view instead of reading the
  // stale one.
  const TimingGraph stale = design.timing_graph();
  const NodeId driver = design.network().inputs()[0];
  std::vector<NodeId> sinks;
  for (NodeId fo : design.network().node(driver).fanouts) {
    sinks.push_back(fo);
    break;
  }
  ASSERT_FALSE(sinks.empty());
  design.network().insert_between(driver, sinks, {}, tt_buf(),
                                  lib_.smallest_of("buf"), "tg_buf2");
  design.sync_with_network();

  ctx = design.timing_context();
  TimingContext stale_ctx = ctx;
  stale_ctx.graph = &stale;
  const StaResult via_stale = run_sta(stale_ctx, design.tspec());
  const StaResult ref = run_sta_reference(ctx, design.tspec());
  EXPECT_TRUE(bit_identical(via_stale, ref, design.network()));
}

TEST_F(TimingGraphTest, MultiLaneArraysSurviveStructuralEditViaRecompile) {
  Network net = random_circuit(41, 0.3);
  Design design(std::move(net), lib_);
  std::vector<NodeId> gates;
  design.network().for_each_gate([&](const Node& g) {
    if (g.cell >= 0) gates.push_back(g.id);
  });

  // A batch scored against the current compilation needs no recompile.
  MultiLaneSta lanes(design.timing_context(), design.tspec());
  lanes.set_level(lanes.add_lane(), gates.front(), kLowRung);
  lanes.run();
  ASSERT_FALSE(lanes.recompiled());

  // Structural edit under a retained copy of the old compilation (the
  // shape of a long-lived session keeping a graph past the design's
  // recompile): the network version moves on, the copy goes stale.
  const TimingGraph stale = design.timing_graph();
  const std::uint64_t version_before = stale.structural_version();
  const NodeId driver = gates.front();
  std::vector<NodeId> moved;
  for (NodeId fo : design.network().node(driver).fanouts) {
    moved.push_back(fo);
    break;
  }
  ASSERT_FALSE(moved.empty());
  design.network().insert_between(driver, moved, {}, tt_buf(),
                                  lib_.smallest_of("buf"), "ml_buf");
  design.sync_with_network();
  ASSERT_NE(design.timing_graph().structural_version(), version_before);

  // A lane batch whose context still names the stale compilation: the
  // engine must notice the structural_version mismatch, discard the lane
  // block, compile its own view — and still reproduce the full walk on
  // the edited network bit-for-bit.
  TimingContext stale_ctx = design.timing_context();
  stale_ctx.graph = &stale;
  MultiLaneSta relanes(stale_ctx, design.tspec());
  const NodeId victim = gates.back();
  relanes.set_level(relanes.add_lane(), victim, kLowRung);
  relanes.run();
  EXPECT_TRUE(relanes.recompiled());

  Design ref = design;
  ref.set_level(victim, kLowRung);
  const StaResult full = ref.run_timing();
  EXPECT_EQ(relanes.worst_arrival(0), full.worst_arrival);
  for (NodeId id = 0; id < design.network().size(); ++id) {
    if (!design.network().is_valid(id)) continue;
    const RiseFall a = relanes.arrival(0, id);
    EXPECT_EQ(a.rise, full.arrival[id].rise);
    EXPECT_EQ(a.fall, full.arrival[id].fall);
  }
}

}  // namespace
}  // namespace dvs
