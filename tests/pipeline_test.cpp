// The composable pass-pipeline API: option-schema typing, the spec
// grammar, canonicalization fixpoints, fingerprint stability, registry
// rejection of unknown passes/options, per-pass instrumentation, and —
// the load-bearing guarantee — that the canonical "cvs" / "dscale" /
// "gscale" pipelines reproduce the legacy suite matrix bit for bit.
#include "opt/pipeline.hpp"

#include <gtest/gtest.h>

#include "benchgen/mcnc.hpp"
#include "core/job.hpp"
#include "core/suite.hpp"
#include "library/library.hpp"
#include "opt/passes.hpp"
#include "opt/registry.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

const Library& lib() {
  static const Library kLib = build_compass_library();
  return kLib;
}

// ---- registry -------------------------------------------------------------

TEST(PassRegistry, BuiltinsAreRegistered) {
  for (const char* name : {"cvs", "dscale", "gscale", "trim", "measure"}) {
    EXPECT_TRUE(pass_registry().contains(name)) << name;
    EXPECT_EQ(pass_registry().create(name)->name(), name);
  }
}

TEST(PassRegistry, UnknownPassAndDuplicateRegistrationAreRejected) {
  EXPECT_THROW(pass_registry().create("frobnicate"), OptionError);
  EXPECT_THROW(
      pass_registry().register_pass(
          "cvs", [] { return std::unique_ptr<Pass>(); }),
      OptionError);
}

// ---- option schema --------------------------------------------------------

TEST(OptionSchema, TypedParseAndRangeChecks) {
  auto pass = pass_registry().create("gscale");
  Json::Object options;
  options["area_budget"] = Json(0.05);
  options["max_iter"] = Json(3);
  options["selector"] = Json("random");
  pass->configure(options);
  EXPECT_TRUE(pass->is_set("area_budget"));
  EXPECT_FALSE(pass->is_set("cpn_window"));

  const Json::Object canonical = pass->canonical_options();
  EXPECT_EQ(canonical.at("area_budget").as_double(), 0.05);
  EXPECT_EQ(canonical.at("max_iter").as_int(), 3);
  EXPECT_EQ(canonical.at("selector").as_string(), "random");
  // Defaulted fields appear explicitly in the canonical form.
  EXPECT_EQ(canonical.at("enable_sizing").as_bool(), true);

  Json::Object bad_range;
  bad_range["area_budget"] = Json(-0.5);
  EXPECT_THROW(pass_registry().create("gscale")->configure(bad_range),
               OptionError);
  Json::Object unknown;
  unknown["area_bugdet"] = Json(0.05);
  try {
    pass_registry().create("gscale")->configure(unknown);
    FAIL() << "unknown option accepted";
  } catch (const OptionError& e) {
    EXPECT_STREQ(e.what(), "unknown field 'area_bugdet' in gscale");
  }
  Json::Object bad_choice;
  bad_choice["selector"] = Json("best");
  EXPECT_THROW(pass_registry().create("gscale")->configure(bad_choice),
               OptionError);
}

TEST(OptionSchema, FingerprintIgnoresFieldOrderAndDefaultSpelling) {
  // The same logical configuration reached three ways: option order,
  // grammar-vs-JSON spec form, and defaults-spelled-out vs implied.
  Pipeline a = Pipeline::parse("gscale(area_budget=0.05, max_iter=3)");
  Pipeline b = Pipeline::parse("gscale(max_iter=3, area_budget=0.05)");
  const Json spec = Json::parse(
      R"([{"pass":"gscale","options":{"max_iter":3,"area_budget":0.05}}])");
  Pipeline c = Pipeline::from_spec(spec);
  Pipeline d = Pipeline::parse("gscale(area_budget=0.05, max_iter=3, "
                               "enable_sizing=true, selector=separator)");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a.fingerprint(), d.fingerprint());
  // ... and a genuinely different configuration hashes differently.
  Pipeline e = Pipeline::parse("gscale(area_budget=0.06, max_iter=3)");
  EXPECT_NE(a.fingerprint(), e.fingerprint());
}

// ---- grammar --------------------------------------------------------------

TEST(PipelineGrammar, ParsesHybridSpecs) {
  Pipeline p = Pipeline::parse(
      " cvs | gscale( area_budget = 0.05, selector=random ) |dscale|trim ");
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.pass(0).name(), "cvs");
  EXPECT_EQ(p.pass(1).name(), "gscale");
  EXPECT_EQ(p.pass(2).name(), "dscale");
  EXPECT_EQ(p.pass(3).name(), "trim");
  EXPECT_EQ(
      p.pass(1).canonical_options().at("area_budget").as_double(), 0.05);
  EXPECT_EQ(p.pass(1).canonical_options().at("selector").as_string(),
            "random");
}

TEST(PipelineGrammar, RejectsMalformedSpecs) {
  EXPECT_THROW(Pipeline::parse(""), PipelineError);
  EXPECT_THROW(Pipeline::parse("   "), PipelineError);
  EXPECT_THROW(Pipeline::parse("cvs |"), PipelineError);
  EXPECT_THROW(Pipeline::parse("cvs极"), PipelineError);
  EXPECT_THROW(Pipeline::parse("gscale(area_budget)"), PipelineError);
  EXPECT_THROW(Pipeline::parse("gscale(area_budget=0.05"), PipelineError);
  EXPECT_THROW(Pipeline::parse("nope"), OptionError);          // unknown pass
  EXPECT_THROW(Pipeline::parse("cvs(nope=1)"), OptionError);   // unknown opt
  EXPECT_THROW(Pipeline::parse("gscale(max_iter=0)"), OptionError);
  EXPECT_THROW(Pipeline::from_spec(Json::parse("{}")), PipelineError);
  EXPECT_THROW(Pipeline::from_spec(Json::parse("[]")), PipelineError);
  EXPECT_THROW(Pipeline::from_spec(Json::parse(R"([{"opts":{}}])")),
               PipelineError);
}

TEST(PipelineGrammar, CanonicalDumpReparseIsAFixpoint) {
  const char* specs[] = {
      "cvs",
      "dscale(selector=greedy, max_rounds=2)",
      "cvs | gscale(area_budget=0.05) | dscale",
      "measure | gscale(random_cut_seed=42, flow_algo=edmonds_karp) | trim",
  };
  for (const char* spec : specs) {
    Pipeline first = Pipeline::parse(spec);
    const std::string canonical = first.canonical_spec();
    Pipeline second = Pipeline::parse(canonical);
    EXPECT_EQ(second.canonical_spec(), canonical) << spec;
    EXPECT_EQ(second.canonical_json().dump(),
              first.canonical_json().dump())
        << spec;
    EXPECT_EQ(second.fingerprint(), first.fingerprint()) << spec;
    // The JSON form round-trips through the same canonical dump too.
    Pipeline third = Pipeline::from_spec(first.canonical_json());
    EXPECT_EQ(third.fingerprint(), first.fingerprint()) << spec;
  }
}

// ---- seed resolution ------------------------------------------------------

TEST(PipelineSeeds, DerivedPerPositionUnlessExplicit) {
  Pipeline p = Pipeline::parse("gscale | gscale | gscale(random_cut_seed=9)");
  p.resolve_seeds(1234);
  const auto seed_of = [&](std::size_t i) {
    return p.pass(i).canonical_options().at("random_cut_seed").as_uint();
  };
  // Position 0 uses the legacy suite stream (mix_seed(circuit, 3)).
  EXPECT_EQ(seed_of(0), mix_seed(1234, 3));
  EXPECT_EQ(seed_of(1), mix_seed(1234, 4));
  EXPECT_EQ(seed_of(2), 9u);  // explicit wins
}

// ---- execution ------------------------------------------------------------

TEST(PipelineRunTest, InstrumentsEveryPass) {
  const Network net = build_mcnc_circuit(lib(), *find_mcnc("x2"));
  FlowOptions flow;
  flow.activity.num_vectors = 512;
  CircuitRunResult row;
  init_flow_row(net, lib(), flow, &row);
  Design design = make_flow_design(net, lib(), flow, row.tspec_ns);

  Pipeline p = Pipeline::parse("measure | cvs | gscale | dscale | trim");
  p.resolve_seeds(77);
  const PipelineRun run = p.run(design);
  ASSERT_EQ(run.passes.size(), 5u);

  // The measure probe records the untouched starting point.
  EXPECT_EQ(run.passes[0].pass, "measure");
  EXPECT_EQ(run.passes[0].low_gates, 0);
  EXPECT_EQ(run.passes[0].gates_touched, 0);
  EXPECT_DOUBLE_EQ(run.passes[0].power_uw, row.org_power_uw);

  // CVS lowers gates; the trajectory monotonically tracks the design.
  EXPECT_GT(run.passes[1].low_gates, 0);
  EXPECT_EQ(run.passes[1].gates_touched, run.passes[1].low_gates);
  EXPECT_LT(run.passes[1].power_uw, row.org_power_uw);
  EXPECT_EQ(run.passes[1].position, 1);

  // Gscale grows the cluster by resizing.
  EXPECT_GE(run.passes[2].low_gates, run.passes[1].low_gates);
  EXPECT_GT(run.passes[2].resized, 0);

  // Every pass kept the constraint (run() asserts it internally too).
  for (const PassStats& stats : run.passes)
    EXPECT_LE(stats.arrival_ns, row.tspec_ns * (1 + 1e-9));

  // The design object reflects the final pass.
  EXPECT_EQ(design.count_low(), run.passes.back().low_gates);
}

TEST(PipelineRunTest, HybridBeatsOrMatchesItsBestSinglePass) {
  const Network net = build_mcnc_circuit(lib(), *find_mcnc("b9"));
  FlowOptions flow;
  flow.activity.num_vectors = 512;
  flow.activity.seed = 4321;
  CircuitRunResult row;
  init_flow_row(net, lib(), flow, &row);

  const auto final_power = [&](const char* spec) {
    Design design = make_flow_design(net, lib(), flow, row.tspec_ns);
    Pipeline p = Pipeline::parse(spec);
    p.resolve_seeds(4321);
    return p.run(design).passes.back().power_uw;
  };
  // gscale -> dscale refines the gscale result: dscale starts from the
  // already-lowered cluster, adds MWIS rounds, and its trim cleanup
  // only ever raises gates that reduce power.
  EXPECT_LE(final_power("gscale | dscale"), final_power("gscale") + 1e-6);
}

// ---- suite-matrix equivalence --------------------------------------------

TEST(PipelineSuiteTest, CanonicalSpecsReproduceTheLegacyMatrixBitForBit) {
  SuiteOptions options;
  options.circuits = {"b9", "C432", "apex7"};
  options.flow.activity.num_vectors = 512;
  options.num_threads = 2;

  const SuiteReport legacy = run_suite(options);
  const PipelineSuiteReport matrix =
      run_pipeline_suite(options, {"cvs", "dscale", "gscale"});
  ASSERT_EQ(matrix.cells.size(), legacy.rows.size() * 3);

  for (std::size_t i = 0; i < legacy.rows.size(); ++i) {
    const CircuitRunResult& row = legacy.rows[i];
    const PipelineSuiteCell& cvs = matrix.cells[i * 3 + 0];
    const PipelineSuiteCell& dscale = matrix.cells[i * 3 + 1];
    const PipelineSuiteCell& gscale = matrix.cells[i * 3 + 2];

    // Shared columns: bit-identical (same derived activity seed).
    for (const PipelineSuiteCell* cell : {&cvs, &dscale, &gscale}) {
      EXPECT_EQ(cell->circuit, row.name);
      EXPECT_EQ(cell->num_gates, row.num_gates);
      EXPECT_EQ(cell->tspec_ns, row.tspec_ns);
      EXPECT_EQ(cell->org_power_uw, row.org_power_uw);
    }
    // Algorithm columns: the pipeline cells are the legacy cells.
    EXPECT_EQ(cvs.improve_pct, row.cvs_improve_pct);
    EXPECT_EQ(cvs.run.passes.back().low_gates, row.cvs_low);
    EXPECT_EQ(dscale.improve_pct, row.dscale_improve_pct);
    EXPECT_EQ(dscale.run.passes.back().low_gates, row.dscale_low);
    EXPECT_EQ(dscale.run.passes.back().level_converters, row.dscale_lcs);
    EXPECT_EQ(gscale.improve_pct, row.gscale_improve_pct);
    EXPECT_EQ(gscale.run.passes.back().low_gates, row.gscale_low);
    EXPECT_EQ(gscale.run.passes.back().resized, row.gscale_resized);
    EXPECT_EQ(gscale.run.passes.back().details.at("area_increase")
                  .as_double(),
              row.gscale_area_increase);
  }
}

TEST(PipelineSuiteTest, HybridMatrixRunsDeterministicallyAcrossThreads) {
  SuiteOptions options;
  options.circuits = {"x2", "b9"};
  options.flow.activity.num_vectors = 256;
  const std::vector<std::string> specs = {"cvs | gscale | dscale"};

  options.num_threads = 1;
  const PipelineSuiteReport serial = run_pipeline_suite(options, specs);
  options.num_threads = 4;
  const PipelineSuiteReport parallel = run_pipeline_suite(options, specs);

  ASSERT_EQ(serial.cells.size(), 2u);
  ASSERT_EQ(parallel.cells.size(), 2u);
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const PipelineSuiteCell& a = serial.cells[i];
    const PipelineSuiteCell& b = parallel.cells[i];
    EXPECT_EQ(a.spec, b.spec);
    EXPECT_EQ(a.improve_pct, b.improve_pct);
    ASSERT_EQ(a.run.passes.size(), 3u);
    ASSERT_EQ(b.run.passes.size(), 3u);
    for (std::size_t j = 0; j < a.run.passes.size(); ++j) {
      EXPECT_EQ(a.run.passes[j].power_uw, b.run.passes[j].power_uw);
      EXPECT_EQ(a.run.passes[j].low_gates, b.run.passes[j].low_gates);
      EXPECT_EQ(a.run.passes[j].resized, b.run.passes[j].resized);
    }
    // The hybrid did real multi-stage work: the final stage improved on
    // (or matched) the first.
    EXPECT_LE(a.run.passes.back().power_uw,
              a.run.passes.front().power_uw + 1e-9);
  }
  // JSON document sanity.
  const std::string json = serial.to_json();
  EXPECT_NE(json.find("dvs-bench-pipeline-v1"), std::string::npos);
  EXPECT_NO_THROW(Json::parse(json));
}

// ---- trim as a standalone pass -------------------------------------------

TEST(TrimPassTest, NeverIncreasesPowerAndKeepsTiming) {
  const Network net = build_mcnc_circuit(lib(), *find_mcnc("z4ml"));
  FlowOptions flow;
  flow.activity.num_vectors = 512;
  CircuitRunResult row;
  init_flow_row(net, lib(), flow, &row);
  Design design = make_flow_design(net, lib(), flow, row.tspec_ns);

  // Un-trimmed dscale leaves boundaries trim can reconsider.
  Pipeline p = Pipeline::parse("dscale(trim_unprofitable=false) | trim");
  p.resolve_seeds(1);
  const PipelineRun run = p.run(design);
  ASSERT_EQ(run.passes.size(), 2u);
  EXPECT_LE(run.passes[1].power_uw, run.passes[0].power_uw + 1e-12);
  EXPECT_GE(run.passes[1].details.at("raised").as_int(), 0);
}

}  // namespace
}  // namespace dvs
