#include "synth/sweep.hpp"

#include <gtest/gtest.h>

#include "sim/bitsim.hpp"
#include "support/rng.hpp"

namespace dvs {
namespace {

TEST(Sweep, FoldsConstantInputs) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId k = net.add_constant(true);
  const NodeId g = net.add_gate(tt_and(2), {a, k});  // == a
  net.add_output("y", g);
  const SweepStats stats = sweep_network(net);
  EXPECT_GT(stats.constants_folded, 0);
  // The whole thing reduces to the input driving the port.
  EXPECT_EQ(net.outputs()[0].driver, a);
  EXPECT_EQ(net.num_gates(), 0);
}

TEST(Sweep, RemovesBuffersAndInverterPairs) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b1 = net.add_gate(tt_buf(), {a});
  const NodeId i1 = net.add_gate(tt_inv(), {b1});
  const NodeId i2 = net.add_gate(tt_inv(), {i1});
  net.add_output("y", i2);
  const SweepStats stats = sweep_network(net);
  EXPECT_GT(stats.buffers_removed + stats.inverter_pairs_removed, 0);
  EXPECT_EQ(net.outputs()[0].driver, a);
}

TEST(Sweep, RemovesDanglingLogic) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId used = net.add_gate(tt_inv(), {a});
  const NodeId dead1 = net.add_gate(tt_inv(), {a});
  const NodeId dead2 = net.add_gate(tt_inv(), {dead1});
  (void)dead2;
  net.add_output("y", used);
  const SweepStats stats = sweep_network(net);
  // dead2 is INV(INV(a)) and may fall to the inverter-pair rule before
  // the dangling sweep reaches it; either way both dead gates go.
  EXPECT_EQ(stats.dangling_removed + stats.inverter_pairs_removed, 2);
  EXPECT_EQ(net.num_gates(), 1);
}

TEST(Sweep, ConstantZeroAndGate) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId k = net.add_constant(false);
  const NodeId g = net.add_gate(tt_and(2), {a, k});  // == 0
  const NodeId h = net.add_gate(tt_or(2), {g, a});   // == a
  net.add_output("y", h);
  sweep_network(net);
  EXPECT_EQ(net.outputs()[0].driver, a);
}

class SweepPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SweepPropertyTest, PreservesFunctionality) {
  Rng rng(4000 + GetParam());
  Network net("r");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 4; ++i)
    nodes.push_back(net.add_input("i" + std::to_string(i)));
  nodes.push_back(net.add_constant(rng.next_bool()));
  for (int g = 0; g < 14; ++g) {
    const int arity = rng.next_int(1, 3);
    std::vector<NodeId> fanins;
    for (int k = 0; k < arity; ++k) {
      NodeId f;
      do {
        f = nodes[rng.next_below(nodes.size())];
      } while (std::find(fanins.begin(), fanins.end(), f) !=
               fanins.end());
      fanins.push_back(f);
    }
    TruthTable tt{rng.next_u64(), arity};
    tt.bits &= tt.mask();
    nodes.push_back(net.add_gate(tt, fanins));
  }
  net.add_output("y", nodes.back());

  Network original = net;  // deep copy before sweeping
  sweep_network(net);
  BitSimulator s1(original), s2(net);
  for (std::uint32_t p = 0; p < 16; ++p) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back((p >> i) & 1u);
    EXPECT_EQ(s1.evaluate(in), s2.evaluate(in)) << "pattern " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepPropertyTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace dvs
