#include "power/activity.hpp"

#include <gtest/gtest.h>

#include "library/library.hpp"

namespace dvs {
namespace {

Network xor_tree(int width) {
  Network net("x");
  std::vector<NodeId> layer;
  for (int i = 0; i < width; ++i)
    layer.push_back(net.add_input("i" + std::to_string(i)));
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(net.add_gate(tt_xor(2), {layer[i], layer[i + 1]}));
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  net.add_output("y", layer[0]);
  return net;
}

TEST(Activity, ProbabilityPropagationOnTreeIsExact) {
  // XOR of independent p=0.5 inputs is p=0.5 at every node.
  Network net = xor_tree(8);
  const Activity act = propagate_probabilities(net, 0.5);
  net.for_each_gate([&](const Node& g) {
    EXPECT_NEAR(act.prob_one[g.id], 0.5, 1e-12);
    EXPECT_NEAR(act.alpha01[g.id], 0.25, 1e-12);
  });
}

TEST(Activity, BiasedInputsPropagate) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId g = net.add_gate(tt_and(2), {a, b});
  net.add_output("y", g);
  const Activity act = propagate_probabilities(net, 0.9);
  EXPECT_NEAR(act.prob_one[g], 0.81, 1e-12);
  EXPECT_NEAR(act.alpha01[g], 0.81 * 0.19, 1e-12);
}

TEST(Activity, RandomSimulationAgreesWithAnalyticOnTrees) {
  Network net = xor_tree(16);
  ActivityOptions options;
  options.num_vectors = 1 << 14;
  options.seed = 3;
  const Activity sim = estimate_activity(net, options);
  const Activity ana = propagate_probabilities(net, 0.5);
  net.for_each_node([&](const Node& n) {
    EXPECT_NEAR(sim.prob_one[n.id], ana.prob_one[n.id], 0.02) << n.id;
    EXPECT_NEAR(sim.alpha01[n.id], ana.alpha01[n.id], 0.02) << n.id;
  });
}

TEST(Activity, ConstantsNeverSwitch) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId k = net.add_constant(true);
  const NodeId g = net.add_gate(tt_or(2), {a, k});  // g == 1 always
  net.add_output("y", g);
  const Activity act = estimate_activity(net, {});
  EXPECT_DOUBLE_EQ(act.alpha01[k], 0.0);
  EXPECT_DOUBLE_EQ(act.alpha01[g], 0.0);
  EXPECT_DOUBLE_EQ(act.prob_one[g], 1.0);
}

TEST(Activity, DeterministicAcrossRuns) {
  Network net = xor_tree(8);
  ActivityOptions options;
  options.seed = 11;
  const Activity a = estimate_activity(net, options);
  const Activity b = estimate_activity(net, options);
  EXPECT_EQ(a.alpha01, b.alpha01);
}

TEST(Activity, Alpha01BoundedByQuarterInTheLimit) {
  Network net = xor_tree(8);
  ActivityOptions options;
  options.num_vectors = 1 << 13;
  const Activity act = estimate_activity(net, options);
  net.for_each_node([&](const Node& n) {
    EXPECT_LE(act.alpha01[n.id], 0.30);  // 0.25 + sampling noise
  });
}

class BiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweep, SimulationTracksInputBias) {
  Network net("t");
  const NodeId a = net.add_input("a");
  net.add_output("y", net.add_gate(tt_buf(), {a}));
  ActivityOptions options;
  options.num_vectors = 1 << 14;
  options.input_one_probability = GetParam();
  const Activity act = estimate_activity(net, options);
  EXPECT_NEAR(act.prob_one[a], GetParam(), 0.02);
  EXPECT_NEAR(act.alpha01[a], GetParam() * (1 - GetParam()), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Biases, BiasSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace dvs
