// BLIF -> Verilog -> BLIF round-trip golden tests over MCNC circuits:
// every format hop must preserve gate count, the structural topology
// hash, the STA delay, and (checked by bit-parallel simulation) the
// functional behavior of the circuit.
//
// Stages: the mapped circuit round-trips through structural Verilog with
// its cell binding intact; the BLIF hops operate at function level (BLIF
// .names carries no cell binding) and must be a fixpoint after the first
// normalization pass.
#include <gtest/gtest.h>

#include <cstdint>

#include "benchgen/mcnc.hpp"
#include "netlist/blif.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"
#include "sim/bitsim.hpp"
#include "support/rng.hpp"
#include "timing/sta.hpp"

namespace dvs {
namespace {

// Structural identity across hops is asserted with the real
// dvs::topology_hash (netlist/stats.hpp) — the canonical,
// truth-table-sensitive hash the dvsd result cache keys on.

/// Output-port words from simulating 64 random patterns.
std::vector<std::uint64_t> simulate_ports(const Network& net, Rng rng) {
  BitSimulator sim(net);
  std::vector<std::uint64_t> inputs(net.inputs().size());
  for (auto& w : inputs) w = rng.next_u64();
  const std::vector<std::uint64_t> values = sim.simulate(inputs);
  std::vector<std::uint64_t> out;
  for (const OutputPort& port : net.outputs())
    out.push_back(values[port.driver]);
  return out;
}

double sta_delay(const Network& net, const Library& lib) {
  return run_sta(net, lib, -1.0).worst_arrival;
}

class RoundTripTest : public ::testing::TestWithParam<const char*> {
 protected:
  Library lib_ = build_compass_library();
};

TEST_P(RoundTripTest, VerilogPreservesTheMappedCircuitExactly) {
  const McncDescriptor* d = find_mcnc(GetParam());
  ASSERT_NE(d, nullptr);
  const Network net0 = build_mcnc_circuit(lib_, *d);

  const Network net1 =
      read_verilog_string(write_verilog_string(net0, lib_), lib_);
  EXPECT_EQ(net1.num_gates(), net0.num_gates());
  EXPECT_EQ(net1.inputs().size(), net0.inputs().size());
  EXPECT_EQ(net1.outputs().size(), net0.outputs().size());
  EXPECT_EQ(topology_hash(net1), topology_hash(net0));
  // Cell bindings survive, so the mapped delay is bit-identical.
  EXPECT_EQ(sta_delay(net1, lib_), sta_delay(net0, lib_));
  EXPECT_EQ(simulate_ports(net1, Rng(7)), simulate_ports(net0, Rng(7)));
}

TEST_P(RoundTripTest, BlifVerilogBlifIsAFixpointAfterNormalization) {
  const McncDescriptor* d = find_mcnc(GetParam());
  ASSERT_NE(d, nullptr);
  const Network net0 = build_mcnc_circuit(lib_, *d);

  // First BLIF hop normalizes (port-alias buffers appear, cell binding
  // drops to function level) ...
  const Network netA = read_blif_string(write_blif_string(net0));
  // ... then BLIF -> Verilog -> BLIF must preserve everything.
  const Network netB =
      read_verilog_string(write_verilog_string(netA, lib_), lib_);
  const Network netC = read_blif_string(write_blif_string(netB));

  for (const Network* stage : {&netB, &netC}) {
    EXPECT_EQ(stage->num_gates(), netA.num_gates());
    EXPECT_EQ(stage->inputs().size(), netA.inputs().size());
    EXPECT_EQ(stage->outputs().size(), netA.outputs().size());
    EXPECT_EQ(topology_hash(*stage), topology_hash(netA));
    EXPECT_NEAR(sta_delay(*stage, lib_), sta_delay(netA, lib_), 1e-9);
    EXPECT_EQ(simulate_ports(*stage, Rng(11)), simulate_ports(netA, Rng(11)));
  }

  // Functional behavior also survives the lossy first hop.
  EXPECT_EQ(simulate_ports(netA, Rng(13)), simulate_ports(net0, Rng(13)));
}

INSTANTIATE_TEST_SUITE_P(Mcnc, RoundTripTest,
                         ::testing::Values("x2", "b9", "C432"));

}  // namespace
}  // namespace dvs
