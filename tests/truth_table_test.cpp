#include <gtest/gtest.h>

#include "netlist/network.hpp"

namespace dvs {
namespace {

class ArityTest : public ::testing::TestWithParam<int> {};

TEST_P(ArityTest, AndOrDuality) {
  const int n = GetParam();
  const TruthTable land = tt_and(n);
  const TruthTable lor = tt_or(n);
  for (std::uint32_t p = 0; p < (1u << n); ++p) {
    const bool all = p == (1u << n) - 1;
    const bool any = p != 0;
    EXPECT_EQ(land.eval(p), all);
    EXPECT_EQ(lor.eval(p), any);
    EXPECT_EQ(tt_nand(n).eval(p), !all);
    EXPECT_EQ(tt_nor(n).eval(p), !any);
    EXPECT_EQ(tt_xor(n).eval(p),
              (__builtin_popcount(p) & 1) == 1);
    EXPECT_EQ(tt_xnor(n).eval(p),
              (__builtin_popcount(p) & 1) == 0);
  }
}

TEST_P(ArityTest, Unateness) {
  const int n = GetParam();
  for (int v = 0; v < n; ++v) {
    EXPECT_TRUE(is_positive_unate(tt_and(n), v));
    EXPECT_TRUE(is_positive_unate(tt_or(n), v));
    EXPECT_TRUE(is_negative_unate(tt_nand(n), v));
    EXPECT_TRUE(is_negative_unate(tt_nor(n), v));
    if (n >= 2) {
      EXPECT_FALSE(is_positive_unate(tt_xor(n), v));
      EXPECT_FALSE(is_negative_unate(tt_xor(n), v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arities, ArityTest, ::testing::Range(1, 7));

TEST(TruthTable, Mux2Semantics) {
  const TruthTable mux = tt_mux2();
  for (std::uint32_t p = 0; p < 8; ++p) {
    const bool a = p & 1, b = p & 2, s = p & 4;
    EXPECT_EQ(mux.eval(p), s ? b : a);
  }
}

TEST(TruthTable, AoiOaiSemantics) {
  for (std::uint32_t p = 0; p < 8; ++p) {
    const bool a = p & 1, b = p & 2, c = p & 4;
    EXPECT_EQ(tt_aoi21().eval(p), !((a && b) || c));
    EXPECT_EQ(tt_oai21().eval(p), !((a || b) && c));
    EXPECT_EQ(tt_maj3().eval(p),
              (a && b) || (a && c) || (b && c));
  }
  for (std::uint32_t p = 0; p < 16; ++p) {
    const bool a = p & 1, b = p & 2, c = p & 4, d = p & 8;
    EXPECT_EQ(tt_aoi22().eval(p), !((a && b) || (c && d)));
    EXPECT_EQ(tt_oai22().eval(p), !((a || b) && (c || d)));
    EXPECT_EQ(tt_aoi211().eval(p), !((a && b) || c || d));
    EXPECT_EQ(tt_oai211().eval(p), !((a || b) && c && d));
  }
}

TEST(TruthTable, ConstAndUnit) {
  EXPECT_TRUE(tt_const(true).eval(0));
  EXPECT_FALSE(tt_const(false).eval(0));
  EXPECT_TRUE(tt_buf().eval(1));
  EXPECT_FALSE(tt_buf().eval(0));
  EXPECT_FALSE(tt_inv().eval(1));
  EXPECT_TRUE(tt_inv().eval(0));
}

TEST(TruthTable, EqualityIgnoresGarbageBits) {
  TruthTable a{0b0110ULL, 2};
  TruthTable b{0b0110ULL | (0xffULL << 4), 2};  // junk above the mask
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace dvs
