// Tests for the support layer: deterministic RNG and unit formatting,
// plus the load-computation helper shared by STA and power.
#include <gtest/gtest.h>

#include "library/library.hpp"
#include "support/rng.hpp"
#include "support/units.hpp"
#include "timing/loads.hpp"

namespace dvs {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const int v = rng.next_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformishDistribution) {
  Rng rng(99);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_GT(buckets[b], n / 10 - n / 50);
    EXPECT_LT(buckets[b], n / 10 + n / 50);
  }
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_percent(0.1912), "19.12");
}

TEST(Units, SwitchPowerConstant) {
  // alpha * f[MHz] * C[fF] * V^2 * 1e-3 == uW: check one known point.
  // 0.25 * 20 MHz * 10 fF * 25 V^2 = 1.25 uW.
  EXPECT_NEAR(0.25 * 20.0 * 10.0 * 25.0 * kSwitchPowerToMicrowatt, 1.25,
              1e-12);
}

class LoadsTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(LoadsTest, SplitsAcrossConverterBoundary) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const int inv = lib_.find("inv_d0");
  const NodeId g = net.add_gate(tt_inv(), {a}, inv);
  const NodeId hi = net.add_gate(tt_inv(), {g}, inv);
  const NodeId lo = net.add_gate(tt_inv(), {g}, inv);
  net.add_output("x", hi);
  net.add_output("y", lo);

  std::vector<double> vdd(net.size(), lib_.vdd_high());
  vdd[g] = lib_.vdd_low();
  vdd[lo] = lib_.vdd_low();
  std::vector<char> lc(net.size(), 0);
  lc[g] = 1;

  LoadContext ctx{&net, &lib_, vdd, lc, 25.0};
  EXPECT_TRUE(arc_through_lc(ctx, g, hi));
  EXPECT_FALSE(arc_through_lc(ctx, g, lo));

  const NodeLoads loads = compute_loads(ctx);
  EXPECT_EQ(loads.lc_fanout_pins[g], 1);
  // LC side: the high fanout pin + its wire.
  const double lc_side = lib_.cell(inv).input_cap[0] +
                         lib_.wire_load().wire_cap(1);
  EXPECT_NEAR(loads.lc[g], lc_side, 1e-12);
  // Direct side: the low pin + the converter's input + wire(2).
  const double direct =
      lib_.cell(inv).input_cap[0] +
      lib_.cell(lib_.level_converter()).input_cap[0] +
      lib_.wire_load().wire_cap(2);
  EXPECT_NEAR(loads.direct[g], direct, 1e-12);
}

TEST_F(LoadsTest, MultiPinFanoutCountsEveryPin) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const int xnor = lib_.find("xnor2_d0");
  // Same driver on both pins of one sink.
  const NodeId g = net.add_gate(tt_inv(), {a}, lib_.find("inv_d0"));
  const NodeId s = net.add_gate(tt_xnor(2), {g, g}, xnor);
  net.add_output("y", s);
  std::vector<double> vdd(net.size(), lib_.vdd_high());
  LoadContext ctx{&net, &lib_, vdd, {}, 25.0};
  const NodeLoads loads = compute_loads(ctx);
  EXPECT_NEAR(loads.direct[g],
              2 * lib_.cell(xnor).input_cap[0] +
                  lib_.wire_load().wire_cap(2),
              1e-12);
}

}  // namespace
}  // namespace dvs
