// Tests for the support layer: deterministic RNG and unit formatting,
// the load-computation helper shared by STA and power, and the
// robustness primitives under the distributed service — bounded backoff,
// deterministic fault injection, and the hardened socket layer.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "library/library.hpp"
#include "support/backoff.hpp"
#include "support/fault_inject.hpp"
#include "support/rng.hpp"
#include "support/socket.hpp"
#include "support/units.hpp"
#include "timing/loads.hpp"

namespace dvs {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const int v = rng.next_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformishDistribution) {
  Rng rng(99);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_GT(buckets[b], n / 10 - n / 50);
    EXPECT_LT(buckets[b], n / 10 + n / 50);
  }
}

TEST(Units, Formatting) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
  EXPECT_EQ(format_percent(0.1912), "19.12");
}

TEST(Units, SwitchPowerConstant) {
  // alpha * f[MHz] * C[fF] * V^2 * 1e-3 == uW: check one known point.
  // 0.25 * 20 MHz * 10 fF * 25 V^2 = 1.25 uW.
  EXPECT_NEAR(0.25 * 20.0 * 10.0 * 25.0 * kSwitchPowerToMicrowatt, 1.25,
              1e-12);
}

class LoadsTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(LoadsTest, SplitsAcrossConverterBoundary) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const int inv = lib_.find("inv_d0");
  const NodeId g = net.add_gate(tt_inv(), {a}, inv);
  const NodeId hi = net.add_gate(tt_inv(), {g}, inv);
  const NodeId lo = net.add_gate(tt_inv(), {g}, inv);
  net.add_output("x", hi);
  net.add_output("y", lo);

  std::vector<double> vdd(net.size(), lib_.vdd_high());
  vdd[g] = lib_.vdd_low();
  vdd[lo] = lib_.vdd_low();
  std::vector<char> lc(net.size(), 0);
  lc[g] = 1;

  LoadContext ctx{&net, &lib_, vdd, lc, 25.0};
  EXPECT_TRUE(arc_through_lc(ctx, g, hi));
  EXPECT_FALSE(arc_through_lc(ctx, g, lo));

  const NodeLoads loads = compute_loads(ctx);
  EXPECT_EQ(loads.lc_fanout_pins[g], 1);
  // LC side: the high fanout pin + its wire.
  const double lc_side = lib_.cell(inv).input_cap[0] +
                         lib_.wire_load().wire_cap(1);
  EXPECT_NEAR(loads.lc[g], lc_side, 1e-12);
  // Direct side: the low pin + the converter's input + wire(2).
  const double direct =
      lib_.cell(inv).input_cap[0] +
      lib_.cell(lib_.level_converter()).input_cap[0] +
      lib_.wire_load().wire_cap(2);
  EXPECT_NEAR(loads.direct[g], direct, 1e-12);
}

TEST_F(LoadsTest, MultiPinFanoutCountsEveryPin) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const int xnor = lib_.find("xnor2_d0");
  // Same driver on both pins of one sink.
  const NodeId g = net.add_gate(tt_inv(), {a}, lib_.find("inv_d0"));
  const NodeId s = net.add_gate(tt_xnor(2), {g, g}, xnor);
  net.add_output("y", s);
  std::vector<double> vdd(net.size(), lib_.vdd_high());
  LoadContext ctx{&net, &lib_, vdd, {}, 25.0};
  const NodeLoads loads = compute_loads(ctx);
  EXPECT_NEAR(loads.direct[g],
              2 * lib_.cell(xnor).input_cap[0] +
                  lib_.wire_load().wire_cap(2),
              1e-12);
}

// ---- BackoffPolicy ---------------------------------------------------------

TEST(Backoff, DelayTracksTheExponentialEnvelopeWithJitter) {
  BackoffPolicy policy;  // base 50, x2, cap 2000
  double cap = policy.base_ms;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const double delay = policy.delay_ms(attempt);
    const double bounded_cap = std::min(cap, policy.max_ms);
    EXPECT_GE(delay, bounded_cap / 2) << "attempt " << attempt;
    EXPECT_LT(delay, bounded_cap) << "attempt " << attempt;
    cap *= policy.multiplier;
  }
}

TEST(Backoff, DeterministicInSeedAndAttempt) {
  BackoffPolicy a, b;
  a.seed = b.seed = 42;
  for (int attempt = 0; attempt < 8; ++attempt)
    EXPECT_EQ(a.delay_ms(attempt), b.delay_ms(attempt));

  // A different seed de-synchronizes the jitter (that is its job:
  // simultaneous retriers must spread out, not stampede in lockstep).
  BackoffPolicy c;
  c.seed = 43;
  bool any_differ = false;
  for (int attempt = 0; attempt < 8; ++attempt)
    if (c.delay_ms(attempt) != a.delay_ms(attempt)) any_differ = true;
  EXPECT_TRUE(any_differ);
}

TEST(Backoff, LateAttemptsSaturateAtMaxMs) {
  BackoffPolicy policy;
  policy.base_ms = 10.0;
  policy.max_ms = 80.0;
  const double delay = policy.delay_ms(30);  // 10 * 2^30 >> 80
  EXPECT_GE(delay, 40.0);
  EXPECT_LT(delay, 80.0);
}

// ---- FaultInjector ---------------------------------------------------------

TEST(FaultInject, DefaultAndEmptySpecAreDisabled) {
  FaultInjector none;
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.at("job-reply"), FaultInjector::Action::kNone);

  FaultInjector empty = FaultInjector::parse("");
  EXPECT_FALSE(empty.enabled());
  EXPECT_EQ(empty.at("job-reply"), FaultInjector::Action::kNone);
}

TEST(FaultInject, ProbabilityOneAlwaysFiresAndOnlyAtItsPoint) {
  FaultInjector faults =
      FaultInjector::parse("job-reply=corrupt-reply@1.0,seed=3");
  ASSERT_TRUE(faults.enabled());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(faults.at("job-reply"), FaultInjector::Action::kCorruptReply);
    EXPECT_EQ(faults.at("register"), FaultInjector::Action::kNone);
  }
}

TEST(FaultInject, ProbabilityZeroNeverFires) {
  FaultInjector faults = FaultInjector::parse("job-accept=stall@0.0");
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(faults.at("job-accept"), FaultInjector::Action::kNone);
}

TEST(FaultInject, FixedSeedReplaysTheExactFaultSchedule) {
  const std::string spec = "job-reply=drop-connection@0.5,seed=7";
  FaultInjector a = FaultInjector::parse(spec);
  FaultInjector b = FaultInjector::parse(spec);
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    const FaultInjector::Action decision = a.at("job-reply");
    EXPECT_EQ(decision, b.at("job-reply")) << "arrival " << i;
    if (decision != FaultInjector::Action::kNone) ++fired;
  }
  // A 0.5 schedule actually mixes hits and passes.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);

  // A different seed produces a different schedule.
  FaultInjector c = FaultInjector::parse("job-reply=drop-connection@0.5,seed=8");
  FaultInjector d = FaultInjector::parse(spec);
  bool any_differ = false;
  for (int i = 0; i < 200; ++i)
    if (c.at("job-reply") != d.at("job-reply")) any_differ = true;
  EXPECT_TRUE(any_differ);
}

TEST(FaultInject, CopiesShareTheArrivalCounters) {
  // The worker hands copies of one injector to its channel and job
  // threads; the schedule must stay one stream per point, not restart
  // per copy.
  FaultInjector original =
      FaultInjector::parse("job-reply=stall@0.5,seed=11");
  FaultInjector copy = original;
  std::vector<FaultInjector::Action> interleaved;
  for (int i = 0; i < 100; ++i)
    interleaved.push_back((i % 2 == 0 ? original : copy).at("job-reply"));

  FaultInjector fresh = FaultInjector::parse("job-reply=stall@0.5,seed=11");
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(interleaved[i], fresh.at("job-reply")) << "arrival " << i;
}

TEST(FaultInject, StallMsSettingParses) {
  EXPECT_EQ(FaultInjector::parse("job-reply=stall,stall_ms=1234").stall_ms(),
            1234);
  EXPECT_EQ(FaultInjector::parse("job-reply=stall").stall_ms(), 60000);
}

TEST(FaultInject, MalformedSpecsThrowWithTheGrammar) {
  const char* bad[] = {
      "nonsense",                     // no key=value
      "job-reply=",                   // empty value
      "job-reply=set-on-fire",        // unknown action
      "job-reply=stall@1.5",          // probability out of range
      "job-reply=stall@oops",         // malformed probability
      "seed=abc",                     // malformed number
      "stall_ms=-5",                  // negative stall
  };
  for (const char* spec : bad) {
    EXPECT_THROW(FaultInjector::parse(spec), std::runtime_error) << spec;
  }
}

// ---- socket hardening ------------------------------------------------------

/// One accepted loopback connection pair for poking at failure modes.
struct SocketPair {
  ListenSocket listener;
  Socket client;
  Socket server;

  SocketPair() {
    listener = ListenSocket::listen_tcp(0);
    std::thread connector([this] {
      client = Socket::connect_tcp("127.0.0.1", listener.port());
    });
    server = listener.accept_connection();
    connector.join();
  }
};

TEST(SocketHardening, SendToDeadPeerThrowsInsteadOfKillingTheProcess) {
  SocketPair pair;
  pair.server.close();
  // The first sends may land in the kernel buffer before the RST/EPIPE
  // comes back; keep pushing until the failure surfaces.  Surviving to
  // the throw IS the assertion — an unhandled SIGPIPE would abort the
  // whole test binary.
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i)
          pair.client.send_all(std::string(4096, 'x'));
      },
      SocketError);
}

TEST(SocketHardening, PeerResetMidReadIsACleanStructuredError) {
  SocketPair pair;
  std::atomic<bool> got_clean_error{false};
  std::thread reader([&] {
    LineReader lines(&pair.client, 1u << 20);
    std::string line;
    try {
      // Blocks awaiting a line that will never complete.
      while (lines.read_line(&line)) {
      }
    } catch (const SocketError&) {
      got_clean_error = true;  // structured failure, not a crash
    }
  });
  // Half a line, then a hard RST (SO_LINGER 0 close aborts the
  // connection instead of FIN-closing it) — the "worker killed
  // mid-reply" shape.
  pair.server.send_all("{\"type\":\"job_result\",\"body\":\"trunc");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  struct linger hard = {1, 0};
  ::setsockopt(pair.server.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  pair.server.close();
  reader.join();
  EXPECT_TRUE(got_clean_error.load());
}

TEST(SocketHardening, RecvTimeoutThrowsSocketTimeoutError) {
  SocketPair pair;
  pair.client.set_recv_timeout_ms(100);
  char byte;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(pair.client.recv_some(&byte, 1), SocketTimeoutError);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, std::chrono::seconds(10));

  // Disarmed, a recv against live data still works.
  pair.client.set_recv_timeout_ms(0);
  pair.server.send_all("k");
  EXPECT_EQ(pair.client.recv_some(&byte, 1), 1u);
  EXPECT_EQ(byte, 'k');
}

TEST(SocketHardening, ConnectionRefusedIsAStructuredError) {
  // Bind a port, then release it: nothing listens there anymore.
  int dead_port;
  {
    ListenSocket probe = ListenSocket::listen_tcp(0);
    dead_port = probe.port();
  }
  EXPECT_THROW(Socket::connect_tcp("127.0.0.1", dead_port), SocketError);
}

}  // namespace
}  // namespace dvs
