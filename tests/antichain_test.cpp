#include "graph/antichain.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dvs {
namespace {

AntichainProblem chain(int n) {
  AntichainProblem p;
  p.num_nodes = n;
  p.weight.assign(n, 1.0);
  for (int i = 0; i + 1 < n; ++i) p.edges.emplace_back(i, i + 1);
  return p;
}

TEST(Antichain, ChainSelectsHeaviestNode) {
  AntichainProblem p = chain(5);
  p.weight = {1.0, 7.0, 2.0, 3.0, 1.0};
  const AntichainResult r = max_weight_antichain(p);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 1);
  EXPECT_NEAR(r.total_weight, 7.0, 1e-9);
}

TEST(Antichain, IndependentNodesAllSelected) {
  AntichainProblem p;
  p.num_nodes = 4;
  p.weight = {1.0, 2.0, 3.0, 4.0};  // no edges at all
  const AntichainResult r = max_weight_antichain(p);
  EXPECT_EQ(r.selected.size(), 4u);
  EXPECT_NEAR(r.total_weight, 10.0, 1e-9);
}

TEST(Antichain, DiamondPicksTheParallelPair) {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3; weights make {1,2} the best antichain.
  AntichainProblem p;
  p.num_nodes = 4;
  p.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  p.weight = {3.0, 2.5, 2.5, 3.0};
  const AntichainResult r = max_weight_antichain(p);
  EXPECT_EQ(r.selected, (std::vector<int>{1, 2}));
  EXPECT_NEAR(r.total_weight, 5.0, 1e-9);
}

TEST(Antichain, ZeroWeightNodesTransmitOrderOnly) {
  // 0 -> z -> 1 with w(z) = 0: 0 and 1 are still comparable through z.
  AntichainProblem p;
  p.num_nodes = 3;
  p.edges = {{0, 2}, {2, 1}};
  p.weight = {5.0, 4.0, 0.0};
  const AntichainResult r = max_weight_antichain(p);
  ASSERT_EQ(r.selected.size(), 1u);
  EXPECT_EQ(r.selected[0], 0);
}

TEST(Antichain, EmptyProblem) {
  AntichainProblem p;
  p.num_nodes = 0;
  const AntichainResult r = max_weight_antichain(p);
  EXPECT_TRUE(r.selected.empty());
  EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
}

AntichainProblem random_dag(Rng& rng, int max_nodes) {
  AntichainProblem p;
  p.num_nodes = rng.next_int(1, max_nodes);
  for (int v = 0; v < p.num_nodes; ++v)
    p.weight.push_back(rng.next_bool(0.8)
                           ? 0.5 + rng.next_double() * 9.5
                           : 0.0);
  // Edges only forward in index order: guaranteed acyclic.
  for (int u = 0; u < p.num_nodes; ++u)
    for (int v = u + 1; v < p.num_nodes; ++v)
      if (rng.next_bool(0.25)) p.edges.emplace_back(u, v);
  return p;
}

bool is_antichain(const AntichainProblem& p, const std::vector<int>& sel) {
  std::vector<std::vector<int>> adj(p.num_nodes);
  for (const auto& [u, v] : p.edges) adj[u].push_back(v);
  for (int s : sel) {
    std::vector<char> seen(p.num_nodes, 0);
    std::vector<int> stack{s};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int w : adj[v])
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back(w);
        }
    }
    for (int t : sel)
      if (t != s && seen[t]) return false;
  }
  return true;
}

/// The flow construction must match brute force on hundreds of DAGs.
class AntichainPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AntichainPropertyTest, FlowMatchesBruteForce) {
  Rng rng(1000 + GetParam());
  const AntichainProblem p = random_dag(rng, 12);
  const AntichainResult flow = max_weight_antichain(p);
  const AntichainResult ref = max_weight_antichain_bruteforce(p);
  EXPECT_NEAR(flow.total_weight, ref.total_weight, 1e-6)
      << "nodes=" << p.num_nodes << " edges=" << p.edges.size();
  EXPECT_TRUE(is_antichain(p, flow.selected));
}

TEST_P(AntichainPropertyTest, BothEnginesAgree) {
  Rng rng(5000 + GetParam());
  const AntichainProblem p = random_dag(rng, 18);
  const AntichainResult d = max_weight_antichain(p, FlowAlgo::kDinic);
  const AntichainResult ek =
      max_weight_antichain(p, FlowAlgo::kEdmondsKarp);
  EXPECT_NEAR(d.total_weight, ek.total_weight, 1e-6);
  EXPECT_TRUE(is_antichain(p, d.selected));
  EXPECT_TRUE(is_antichain(p, ek.selected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AntichainPropertyTest,
                         ::testing::Range(0, 150));

}  // namespace
}  // namespace dvs
