#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include "support/units.hpp"

namespace dvs {
namespace {

class PowerTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();
};

TEST_F(PowerTest, SingleInverterHandComputation) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const int inv = lib_.find("inv_d0");
  const NodeId g = net.add_gate(tt_inv(), {a}, inv);
  net.add_output("y", g);

  Activity act;
  act.alpha01.assign(net.size(), 0.0);
  act.prob_one.assign(net.size(), 0.5);
  act.alpha01[g] = 0.25;
  act.alpha01[a] = 0.25;

  const PowerBreakdown p = compute_power(net, lib_, act, 20.0);
  // Inverter drives only the port: 25 fF + wire(1).
  const double load = 25.0 + lib_.wire_load().wire_cap(1);
  const double vdd2 = lib_.vdd_high() * lib_.vdd_high();
  const double expected_g =
      0.25 * 20.0 * load * vdd2 * kSwitchPowerToMicrowatt;
  // The PI-driven net is charged to the upstream block, not this design.
  EXPECT_NEAR(p.switching, expected_g, 1e-9);
  EXPECT_DOUBLE_EQ(p.node_power[a], 0.0);
  EXPECT_GT(p.internal, 0.0);
  EXPECT_GT(p.leakage, 0.0);
  EXPECT_DOUBLE_EQ(p.converter, 0.0);
  EXPECT_NEAR(p.total(),
              p.switching + p.internal + p.converter + p.leakage, 1e-12);
}

TEST_F(PowerTest, QuadraticInSupply) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_gate(tt_inv(), {a}, lib_.find("inv_d0"));
  net.add_output("y", g);
  Activity act;
  act.alpha01.assign(net.size(), 0.2);
  act.prob_one.assign(net.size(), 0.5);

  std::vector<double> vdd_high(net.size(), lib_.vdd_high());
  std::vector<double> vdd_low(net.size(), lib_.vdd_low());
  PowerContext ctx;
  ctx.net = &net;
  ctx.lib = &lib_;
  ctx.alpha01 = act.alpha01;
  ctx.node_vdd = vdd_high;
  const double ph = compute_power(ctx).switching;
  ctx.node_vdd = vdd_low;
  const double pl = compute_power(ctx).switching;
  const double ratio = (4.3 * 4.3) / (5.0 * 5.0);
  EXPECT_NEAR(pl / ph, ratio, 1e-9);
}

TEST_F(PowerTest, ConverterPowerAppearsWithFlag) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const int inv = lib_.find("inv_d0");
  const NodeId g1 = net.add_gate(tt_inv(), {a}, inv);
  const NodeId g2 = net.add_gate(tt_inv(), {g1}, inv);
  net.add_output("y", g2);
  Activity act;
  act.alpha01.assign(net.size(), 0.25);

  std::vector<double> vdd(net.size(), lib_.vdd_high());
  vdd[g1] = lib_.vdd_low();
  std::vector<char> lc(net.size(), 0);
  PowerContext ctx;
  ctx.net = &net;
  ctx.lib = &lib_;
  ctx.alpha01 = act.alpha01;
  ctx.node_vdd = vdd;
  ctx.lc_on_output = lc;
  EXPECT_DOUBLE_EQ(compute_power(ctx).converter, 0.0);
  lc[g1] = 1;
  const PowerBreakdown with = compute_power(ctx);
  EXPECT_GT(with.converter, 0.0);
  EXPECT_GT(with.node_power[g1], 0.0);
}

TEST_F(PowerTest, LoweringAGateReducesItsPower) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId g = net.add_gate(tt_inv(), {a}, lib_.find("inv_d0"));
  net.add_output("y", g);
  Activity act;
  act.alpha01.assign(net.size(), 0.25);

  std::vector<double> vdd(net.size(), lib_.vdd_high());
  PowerContext ctx;
  ctx.net = &net;
  ctx.lib = &lib_;
  ctx.alpha01 = act.alpha01;
  ctx.node_vdd = vdd;
  const double before = compute_power(ctx).node_power[g];
  vdd[g] = lib_.vdd_low();
  const double after = compute_power(ctx).node_power[g];
  EXPECT_LT(after, before);
}

TEST_F(PowerTest, NodePowerSumsToTotal) {
  Network net("t");
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId g1 = net.add_gate(tt_nand(2), {a, b}, lib_.find("nand2_d0"));
  const NodeId g2 = net.add_gate(tt_inv(), {g1}, lib_.find("inv_d1"));
  net.add_output("y", g2);
  Activity act;
  act.alpha01.assign(net.size(), 0.2);
  const PowerBreakdown p = compute_power(net, lib_, act, 20.0);
  double sum = 0.0;
  for (double v : p.node_power) sum += v;
  EXPECT_NEAR(sum, p.total(), 1e-9);
}

}  // namespace
}  // namespace dvs
