// Byte-equality suite for the N-lane arrival engine: every lane of a
// MultiLaneSta run must reproduce — with EXACT double equality, not
// epsilon-closeness — the arrivals and worst arrival of a full
// single-assignment STA on a design carrying that lane's overrides.
// Exercised across the whole 39-circuit MCNC suite and 200-step random
// flip sequences on dual and 3-rung ladders, with multi-override lanes
// (the Gscale revert-prefix shape) and lane-count sweeps.
#include <gtest/gtest.h>

#include "dual_ladder.hpp"

#include <string>
#include <vector>

#include "benchgen/mcnc.hpp"
#include "benchgen/random_dag.hpp"
#include "core/design.hpp"
#include "support/rng.hpp"
#include "timing/graph.hpp"
#include "timing/sta.hpp"

namespace dvs {
namespace {

/// One candidate point change, in both representations: applied to a lane
/// via set_level/set_cell and to a reference Design via the committed
/// mutation path.
struct Flip {
  NodeId node = kNoNode;
  bool is_level = false;
  SupplyId level = 0;
  int cell = -1;
};

void apply_to_lane(MultiLaneSta& lanes, int lane, const Flip& flip) {
  if (flip.is_level)
    lanes.set_level(lane, flip.node, flip.level);
  else
    lanes.set_cell(lane, flip.node, flip.cell);
}

void apply_to_design(Design& design, const Flip& flip) {
  if (flip.is_level)
    design.set_level(flip.node, flip.level);
  else
    design.network().set_cell(flip.node, flip.cell);
}

/// Exact comparison of one lane against the full single-assignment walk
/// on a design copy carrying the lane's flips.
::testing::AssertionResult lane_bit_identical(
    const MultiLaneSta& lanes, int lane, const Design& base,
    const std::vector<Flip>& flips) {
  Design ref = base;  // fresh graph slot: recompiles from scratch
  for (const Flip& flip : flips) apply_to_design(ref, flip);
  const StaResult full = ref.run_timing();
  if (lanes.worst_arrival(lane) != full.worst_arrival)
    return ::testing::AssertionFailure()
           << "lane " << lane << " worst_arrival "
           << lanes.worst_arrival(lane) << " != " << full.worst_arrival;
  if (lanes.worst_slack(lane) != full.worst_slack())
    return ::testing::AssertionFailure()
           << "lane " << lane << " worst_slack differs";
  const Network& net = ref.network();
  for (NodeId id = 0; id < net.size(); ++id) {
    if (!net.is_valid(id)) continue;
    const RiseFall got = lanes.arrival(lane, id);
    if (got.rise != full.arrival[id].rise ||
        got.fall != full.arrival[id].fall)
      return ::testing::AssertionFailure()
             << "lane " << lane << " node " << id << " arrival ("
             << got.rise << ", " << got.fall << ") != ("
             << full.arrival[id].rise << ", " << full.arrival[id].fall
             << ")";
  }
  return ::testing::AssertionSuccess();
}

/// Random candidate flip against the design's current state.
Flip random_flip(const Design& design, const Library& lib, Rng& rng) {
  const Network& net = design.network();
  std::vector<NodeId> gates;
  net.for_each_gate([&](const Node& g) {
    if (g.cell >= 0) gates.push_back(g.id);
  });
  if (gates.empty()) return {};
  for (int attempt = 0; attempt < 8; ++attempt) {
    const NodeId id = gates[rng.next_below(gates.size())];
    switch (rng.next_below(3)) {
      case 0: {
        const int depth = lib.supplies().depth();
        const SupplyId to =
            static_cast<SupplyId>(rng.next_below(depth));
        if (to == design.level(id)) continue;
        return {id, true, to, -1};
      }
      case 1: {
        const int up = lib.upsize(net.node(id).cell);
        if (up < 0) continue;
        return {id, false, 0, up};
      }
      default: {
        const int down = lib.downsize(net.node(id).cell);
        if (down < 0) continue;
        return {id, false, 0, down};
      }
    }
  }
  return {};
}

/// Scatters part of the design to deeper rungs so LC boundaries exist in
/// the committed state the lanes perturb.
void seed_levels(Design& design, Rng& rng) {
  const int depth = design.supplies().depth();
  design.network().for_each_gate([&](const Node& g) {
    if (rng.next_below(3) == 0)
      design.set_level(
          g.id, static_cast<SupplyId>(1 + rng.next_below(depth - 1)));
  });
}

class MultiLaneStaTest : public ::testing::Test {
 protected:
  Library lib_ = build_compass_library();

  Network random_circuit(std::uint64_t seed) {
    HybridSpec spec;
    spec.gates = 150;
    spec.pis = 14;
    spec.pos = 8;
    spec.critical_fraction = 0.4;
    spec.seed = seed;
    return build_hybrid_circuit(lib_, spec,
                                "ml" + std::to_string(seed));
  }
};

TEST_F(MultiLaneStaTest, BaseSweepMatchesFullStaAcrossMcncSuite) {
  for (const McncDescriptor& d : mcnc_suite()) {
    Network net = build_mcnc_circuit(lib_, d);
    Design design(std::move(net), lib_);
    Rng rng(d.seed ^ 0x9e3779b9u);
    seed_levels(design, rng);
    MultiLaneSta lanes(design.timing_context(), design.tspec());
    lanes.run();
    const StaResult full = design.run_timing();
    ASSERT_EQ(lanes.base_worst_arrival(), full.worst_arrival)
        << d.name;
    ASSERT_FALSE(lanes.recompiled()) << d.name;
  }
}

TEST_F(MultiLaneStaTest, EightLanesBitIdenticalAcrossMcncSuite) {
  for (const McncDescriptor& d : mcnc_suite()) {
    Network net = build_mcnc_circuit(lib_, d);
    Design design(std::move(net), lib_);
    Rng rng(d.seed ^ 0x51ed2701u);
    seed_levels(design, rng);

    MultiLaneSta lanes(design.timing_context(), design.tspec());
    std::vector<std::vector<Flip>> per_lane;
    for (int l = 0; l < 8; ++l) {
      const Flip flip = random_flip(design, lib_, rng);
      if (flip.node == kNoNode) continue;
      const int lane = lanes.add_lane();
      apply_to_lane(lanes, lane, flip);
      per_lane.push_back({flip});
    }
    lanes.run();
    for (int l = 0; l < lanes.num_lanes(); ++l)
      ASSERT_TRUE(lane_bit_identical(lanes, l, design, per_lane[l]))
          << d.name;
  }
}

TEST_F(MultiLaneStaTest, TwoHundredRandomFlipSequences) {
  // 200 committed steps; before each commit the candidate (and three
  // siblings) are scored as lanes and checked byte-for-byte against full
  // walks, so the engine tracks a drifting committed state.
  Network net = random_circuit(77);
  Design design(std::move(net), lib_);

  int committed = 0;
  Rng seq(1234577);
  while (committed < 200) {
    MultiLaneSta lanes(design.timing_context(), design.tspec());
    std::vector<std::vector<Flip>> per_lane;
    for (int l = 0; l < 4; ++l) {
      const Flip flip = random_flip(design, lib_, seq);
      if (flip.node == kNoNode) continue;
      const int lane = lanes.add_lane();
      apply_to_lane(lanes, lane, flip);
      per_lane.push_back({flip});
    }
    if (per_lane.empty()) continue;
    lanes.run();
    for (int l = 0; l < lanes.num_lanes(); ++l)
      ASSERT_TRUE(lane_bit_identical(lanes, l, design, per_lane[l]))
          << "after commit " << committed;
    // Commit lane 0's flip and move on.
    apply_to_design(design, per_lane[0][0]);
    ++committed;
  }
}

TEST_F(MultiLaneStaTest, CumulativePrefixLanesMatchOnThreeRungLadder) {
  // The Gscale revert shape: lane k carries the first k+1 overrides of
  // one override sequence, on a 3-rung ladder.
  Library lib3 = build_compass_library();
  lib3.set_supply_ladder(SupplyLadder{{5.0, 4.3, 3.6}});
  HybridSpec spec;
  spec.gates = 150;
  spec.pis = 14;
  spec.pos = 8;
  spec.critical_fraction = 0.4;
  spec.seed = 901;
  Network net = build_hybrid_circuit(lib3, spec, "ml3");
  Design design(std::move(net), lib3);
  Rng rng(5511);
  seed_levels(design, rng);

  MultiLaneSta lanes(design.timing_context(), design.tspec());
  std::vector<Flip> prefix;
  std::vector<std::vector<Flip>> per_lane;
  while (static_cast<int>(per_lane.size()) < 12) {
    const Flip flip = random_flip(design, lib3, rng);
    if (flip.node == kNoNode) continue;
    prefix.push_back(flip);
    const int lane = lanes.add_lane();
    for (const Flip& f : prefix) apply_to_lane(lanes, lane, f);
    per_lane.push_back(prefix);
  }
  lanes.run();
  for (int l = 0; l < lanes.num_lanes(); ++l)
    ASSERT_TRUE(lane_bit_identical(lanes, l, design, per_lane[l]))
        << "prefix lane " << l;
}

TEST_F(MultiLaneStaTest, LaneCountSweepAgreesAcrossWidths) {
  // The same candidates scored at width 1 (one run per candidate) and
  // width 16 (one run) must produce identical doubles: lane results do
  // not depend on how candidates are packed.
  Network net = random_circuit(311);
  Design design(std::move(net), lib_);
  Rng rng(40312);
  seed_levels(design, rng);

  std::vector<Flip> flips;
  while (static_cast<int>(flips.size()) < 16) {
    const Flip flip = random_flip(design, lib_, rng);
    if (flip.node != kNoNode) flips.push_back(flip);
  }

  MultiLaneSta wide(design.timing_context(), design.tspec());
  for (int l = 0; l < 16; ++l)
    apply_to_lane(wide, wide.add_lane(), flips[l]);
  wide.run();

  for (int l = 0; l < 16; ++l) {
    MultiLaneSta narrow(design.timing_context(), design.tspec());
    apply_to_lane(narrow, narrow.add_lane(), flips[l]);
    narrow.run();
    ASSERT_EQ(narrow.worst_arrival(0), wide.worst_arrival(l));
    for (NodeId id = 0; id < design.network().size(); ++id) {
      if (!design.network().is_valid(id)) continue;
      const RiseFall a = narrow.arrival(0, id);
      const RiseFall b = wide.arrival(l, id);
      ASSERT_EQ(a.rise, b.rise);
      ASSERT_EQ(a.fall, b.fall);
    }
  }
}

TEST_F(MultiLaneStaTest, ReusedEngineTracksCommittedPointChanges) {
  // One engine instance reused across committed cell edits (the service
  // shape): sync_cells absorbs the edits without a recompile.
  Network net = random_circuit(55);
  Design design(std::move(net), lib_);
  MultiLaneSta lanes(design.timing_context(), design.tspec());
  Rng rng(660001);
  for (int step = 0; step < 20; ++step) {
    const Flip flip = random_flip(design, lib_, rng);
    if (flip.node == kNoNode) continue;
    apply_to_design(design, flip);
    lanes.reset_lanes();
    const Flip cand = random_flip(design, lib_, rng);
    if (cand.node == kNoNode) continue;
    apply_to_lane(lanes, lanes.add_lane(), cand);
    lanes.run();
    ASSERT_FALSE(lanes.recompiled());
    ASSERT_TRUE(lane_bit_identical(lanes, 0, design, {cand}))
        << "step " << step;
  }
}

}  // namespace
}  // namespace dvs
