#include "core/suite.hpp"

#include <gtest/gtest.h>

namespace dvs {
namespace {

SuiteOptions small_suite(int threads) {
  SuiteOptions options;
  options.circuits = {"b9", "C432", "apex7"};
  options.flow.activity.num_vectors = 512;  // keep the matrix fast
  options.num_threads = threads;
  return options;
}

/// Everything except the wall-clock column must be bit-identical.
void expect_rows_identical(const CircuitRunResult& a,
                           const CircuitRunResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.num_gates, b.num_gates);
  EXPECT_EQ(a.tspec_ns, b.tspec_ns);
  EXPECT_EQ(a.org_power_uw, b.org_power_uw);
  EXPECT_EQ(a.cvs_improve_pct, b.cvs_improve_pct);
  EXPECT_EQ(a.dscale_improve_pct, b.dscale_improve_pct);
  EXPECT_EQ(a.gscale_improve_pct, b.gscale_improve_pct);
  EXPECT_EQ(a.cvs_low, b.cvs_low);
  EXPECT_EQ(a.dscale_low, b.dscale_low);
  EXPECT_EQ(a.gscale_low, b.gscale_low);
  EXPECT_EQ(a.gscale_resized, b.gscale_resized);
  EXPECT_EQ(a.dscale_lcs, b.dscale_lcs);
  EXPECT_EQ(a.gscale_area_increase, b.gscale_area_increase);
}

TEST(SuiteTest, ParallelMatchesSerialBitForBit) {
  const SuiteReport serial = run_suite(small_suite(1));
  const SuiteReport parallel = run_suite(small_suite(4));
  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  EXPECT_EQ(parallel.num_threads, 4);
  for (std::size_t i = 0; i < serial.rows.size(); ++i)
    expect_rows_identical(serial.rows[i], parallel.rows[i]);
}

TEST(SuiteTest, RowsMatchThePerCircuitFlow) {
  // The engine's merged rows must agree with running the plain serial
  // flow with the engine's derived seeds — the pool adds scheduling, not
  // semantics.
  const SuiteReport report = run_suite(small_suite(2));
  ASSERT_EQ(report.rows.size(), 3u);
  for (const CircuitRunResult& row : report.rows) {
    EXPECT_GT(row.num_gates, 0);
    EXPECT_GT(row.org_power_uw, 0.0);
    EXPECT_GE(row.gscale_improve_pct, row.cvs_improve_pct - 1e-9);
  }
}

TEST(SuiteTest, MaxGatesFiltersCircuits) {
  SuiteOptions options = small_suite(2);
  options.max_gates = 200;  // keeps b9 (111) and C432 (159), drops apex7
  const SuiteReport report = run_suite(options);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].name, "b9");
  EXPECT_EQ(report.rows[1].name, "C432");
}

TEST(SuiteTest, JsonIsWellFormedAndCarriesEveryCircuit) {
  SuiteOptions options = small_suite(2);
  const SuiteReport report = run_suite(options);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\": \"dvs-bench-suite-v1\""),
            std::string::npos);
  for (const char* name : {"b9", "C432", "apex7"})
    EXPECT_NE(json.find("\"name\": \"" + std::string(name) + "\""),
              std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(SuiteTest, AlgorithmMaskSkipsDisabledColumns) {
  SuiteOptions options = small_suite(2);
  options.circuits = {"b9"};
  options.run_dscale = false;
  options.run_gscale = false;
  const SuiteReport report = run_suite(options);
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_GT(report.rows[0].cvs_low, 0);
  EXPECT_EQ(report.rows[0].dscale_low, 0);
  EXPECT_EQ(report.rows[0].gscale_low, 0);
}

}  // namespace
}  // namespace dvs
