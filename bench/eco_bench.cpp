// ECO bench: what a maintained design session buys.  Opens the largest
// MCNC circuits as design handles, streams random point edits at them,
// and times the incremental re-evaluation (the maintained IncrementalSta
// updating only the changed cones) against the stateless full recompute
// the daemon would do without a session — asserting along the way that
// both paths agree on every double, bit for bit.
//
//   $ eco_bench [--edits N] [--circuits a,b,c] [--out PATH]
//
// Writes a JSON summary (default BENCH_eco.json) with per-circuit
// incremental/full wall times and the speedup factor; exits non-zero on
// any incremental-vs-full mismatch.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "library/library.hpp"
#include "service/design_session.hpp"
#include "service/protocol.hpp"
#include "support/rng.hpp"

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double field(const dvs::Json::Object& fields, const char* key) {
  return fields.at(key).as_double();
}

/// Applies one random point edit (rung flip, upsize, or downsize) to a
/// random gate, retrying addresses that are not gates or edits that are
/// already at a drive rail.  Returns false if no edit landed.
bool random_point_edit(dvs::DesignRegistry& registry,
                       const std::string& handle, int num_rungs,
                       std::uint64_t id_bound, dvs::Rng& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    dvs::EditRequest request;
    request.design = handle;
    dvs::DesignEdit edit;
    const int kind = rng.next_int(0, 3);
    if (kind <= 1)  // bias toward rung flips: the classic ECO
      edit.op = dvs::DesignEdit::Op::kRung;
    else if (kind == 2)
      edit.op = dvs::DesignEdit::Op::kUpsize;
    else
      edit.op = dvs::DesignEdit::Op::kDownsize;
    edit.rung = rng.next_int(0, num_rungs - 1);
    edit.gate = dvs::Json(static_cast<std::int64_t>(
        rng.next_below(id_bound)));
    request.edits.push_back(std::move(edit));
    try {
      registry.edit(request);
      return true;
    } catch (const dvs::ProtocolError&) {
      // Not a gate / already at a rail — pick again.
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  int edits = 50;
  std::string out = "BENCH_eco.json";
  std::vector<std::string> circuits = {"des", "i10", "C7552"};
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--edits") {
      edits = std::atoi(value());
    } else if (flag == "--out") {
      out = value();
    } else if (flag == "--circuits") {
      circuits.clear();
      std::istringstream list(value());
      std::string name;
      while (std::getline(list, name, ','))
        if (!name.empty()) circuits.push_back(name);
    } else {
      std::fprintf(stderr,
                   "usage: eco_bench [--edits N] [--circuits a,b,c] "
                   "[--out PATH]\n");
      return 1;
    }
  }

  const dvs::Library lib = dvs::build_compass_library();
  const int num_rungs = lib.supplies().depth();
  dvs::DesignRegistry registry(&lib, dvs::DesignSessionConfig{});
  dvs::Rng rng(0xec0);

  std::printf("ECO bench — incremental reoptimize vs stateless full "
              "recompute, %d edits per circuit\n", edits);
  std::printf("%-10s | %6s | %12s | %12s | %8s | %s\n", "circuit",
              "gates", "incremental", "full", "speedup", "identical");

  dvs::Json::Array rows;
  double total_incremental_ms = 0.0;
  double total_full_ms = 0.0;
  bool all_identical = true;

  for (const std::string& name : circuits) {
    dvs::OpenDesignRequest open;
    open.circuit = name;
    const dvs::Json::Object opened = registry.open(open);
    const std::string handle = opened.at("design").as_string();
    const std::int64_t gates = opened.at("gates").as_int();
    // Node ids run past the gate count (inputs are nodes too); double
    // the gate count comfortably covers the id space to sample from.
    const std::uint64_t id_bound = static_cast<std::uint64_t>(gates) * 2;

    // Arm the incremental timer outside the measured loop.
    dvs::ReoptimizeRequest warm;
    warm.design = handle;
    warm.mode = "full";
    registry.reoptimize(warm);

    double incremental_ms = 0.0;
    double full_ms = 0.0;
    bool identical = true;
    for (int step = 0; step < edits; ++step) {
      if (!random_point_edit(registry, handle, num_rungs, id_bound, rng)) {
        std::fprintf(stderr, "eco_bench: %s: no edit landed\n",
                     name.c_str());
        return 1;
      }
      dvs::ReoptimizeRequest request;
      request.design = handle;
      request.mode = "incremental";
      auto start = std::chrono::steady_clock::now();
      const dvs::DesignReoptimizeResult incr = registry.reoptimize(request);
      incremental_ms += ms_since(start);

      // The stateless answer: a fresh Design compiled from the current
      // netlist, exactly what a session-less daemon would compute.
      request.mode = "full";
      start = std::chrono::steady_clock::now();
      const dvs::DesignReoptimizeResult full = registry.reoptimize(request);
      full_ms += ms_since(start);

      for (const char* key : {"power_uw", "arrival_ns", "slack_ns",
                              "area_um2", "low", "level_converters"}) {
        if (field(incr.fields, key) != field(full.fields, key)) {
          std::fprintf(stderr,
                       "eco_bench: %s step %d: %s diverged "
                       "(incremental %.17g vs full %.17g)\n",
                       name.c_str(), step, key, field(incr.fields, key),
                       field(full.fields, key));
          identical = false;
        }
      }
    }

    dvs::CloseDesignRequest close;
    close.design = handle;
    registry.close(close);

    const double speedup = incremental_ms > 0 ? full_ms / incremental_ms
                                              : 0.0;
    std::printf("%-10s | %6lld | %9.1f ms | %9.1f ms | %7.1fx | %s\n",
                name.c_str(), static_cast<long long>(gates),
                incremental_ms, full_ms, speedup,
                identical ? "yes" : "NO");
    std::fflush(stdout);

    dvs::Json::Object row;
    row["name"] = dvs::Json(name);
    row["gates"] = dvs::Json(gates);
    row["edits"] = dvs::Json(edits);
    row["incremental_ms"] = dvs::Json(incremental_ms);
    row["full_ms"] = dvs::Json(full_ms);
    row["speedup"] = dvs::Json(speedup);
    row["identical"] = dvs::Json(identical);
    rows.emplace_back(std::move(row));
    total_incremental_ms += incremental_ms;
    total_full_ms += full_ms;
    all_identical = all_identical && identical;
  }

  const double speedup =
      total_incremental_ms > 0 ? total_full_ms / total_incremental_ms : 0.0;
  std::printf("overall: incremental %.1f ms, full %.1f ms — %.1fx\n",
              total_incremental_ms, total_full_ms, speedup);

  dvs::Json::Object summary;
  summary["bench"] = dvs::Json(std::string("eco"));
  summary["circuits"] = dvs::Json(std::move(rows));
  summary["incremental_ms"] = dvs::Json(total_incremental_ms);
  summary["full_ms"] = dvs::Json(total_full_ms);
  summary["speedup"] = dvs::Json(speedup);
  summary["identical"] = dvs::Json(all_identical);
  std::ofstream file(out);
  file << dvs::Json(std::move(summary)).dump() << "\n";
  if (!file) {
    std::fprintf(stderr, "eco_bench: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return all_identical ? 0 : 1;
}
