// Ablation E3: what the exact maximum-weight-independent-set selection
// buys Dscale.  Compares (a) the paper's flow-based MWIS with gross
// (paper-literal) weights, (b) a greedy independent set, and (c) MWIS with
// converter-aware (net-gain) weights, on circuits with slack beyond the
// CVS cluster.
#include <cstdio>

#include "benchgen/mcnc.hpp"
#include "core/dscale.hpp"

namespace {

struct Variant {
  const char* name;
  dvs::DscaleOptions options;
};

}  // namespace

int main() {
  const dvs::Library lib = dvs::build_compass_library();

  dvs::DscaleOptions mwis;
  dvs::DscaleOptions greedy;
  greedy.selector = dvs::DscaleOptions::Selector::kGreedy;
  dvs::DscaleOptions aware;
  aware.lc_aware_weights = true;
  const Variant variants[] = {
      {"mwis(paper)", mwis}, {"greedy", greedy}, {"mwis(lc-aware)", aware}};

  std::printf("Ablation E3 — Dscale independent-set selection\n");
  std::printf("%-10s | %-15s %8s %8s %8s %8s\n", "circuit", "variant",
              "low", "lcs", "rounds", "improv%");

  for (const char* name : {"C1355", "C432", "z4ml", "b9", "term1", "k2"}) {
    const dvs::McncDescriptor* d = dvs::find_mcnc(name);
    dvs::Network net = dvs::build_mcnc_circuit(lib, *d);
    dvs::Design baseline(net, lib);
    const double org = baseline.run_power().total();
    for (const Variant& variant : variants) {
      dvs::Design design(net, lib);
      const dvs::DscaleResult r = run_dscale(design, variant.options);
      std::printf("%-10s | %-15s %8d %8d %8d %8.2f\n", name,
                  variant.name, design.count_low(), design.count_lcs(),
                  r.rounds,
                  100.0 * (org - design.run_power().total()) / org);
      std::fflush(stdout);
    }
  }
  return 0;
}
