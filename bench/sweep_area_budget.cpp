// Sweep E6: the paper caps Gscale's area increase at 10%.  This sweep
// shows the saving-vs-area curve that makes 10% a sensible knee.
//
// Thin driver over the sweep-matrix engine (core/sweep_matrix.hpp) —
// the same grid the dvsd `sweep` verb runs with an `area_budgets` axis.
// `--json` emits one NDJSON object per circuit.
#include <cstdio>
#include <cstring>

#include "benchgen/mcnc.hpp"
#include "core/sweep_matrix.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: sweep_area_budget [--json]\n");
      return 1;
    }
  }

  dvs::ThreadPool pool;
  if (!json) {
    std::printf("Sweep E6 — Gscale area budget\n");
    std::printf("%-10s | %7s | %6s %8s %8s %8s | %6s\n", "circuit",
                "budget", "low", "resized", "areaInc", "improv%",
                "pareto");
  }

  for (const char* name : {"C1355", "C432", "alu2", "k2"}) {
    const dvs::McncDescriptor* d = dvs::find_mcnc(name);

    dvs::SweepMatrixSpec spec;
    spec.area_budgets = {0.0, 0.02, 0.05, 0.10, 0.20, 0.40};
    spec.run_cvs = false;
    spec.run_dscale = false;  // E6 is the Gscale budget axis alone
    // The daemon's circuit-seed derivation for named circuits:
    // mix(root seed, descriptor seed), root 0x5eed.
    spec.circuit_seed = dvs::mix_seed(0x5eed, d->seed);

    const auto source = [d](const dvs::Library& lib) {
      return dvs::build_mcnc_circuit(lib, *d);
    };
    const dvs::SweepMatrixResult result =
        dvs::run_sweep_matrix(source, dvs::build_compass_library(), spec,
                              &pool);

    if (json) {
      dvs::Json grid = dvs::sweep_matrix_json(result);
      grid.as_object()["circuit"] = dvs::Json(std::string(name));
      std::printf("%s\n", grid.dump().c_str());
    } else {
      for (const dvs::SweepCellResult& cell : result.cells)
        std::printf("%-10s | %6.0f%% | %6d %8d %8.3f %8.2f | %6s\n", name,
                    100.0 * cell.area_budget, cell.low, cell.resized,
                    cell.area_increase, cell.improve_pct,
                    cell.pareto ? "*" : "");
    }
    std::fflush(stdout);
  }
  return 0;
}
