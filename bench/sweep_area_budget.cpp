// Sweep E6: the paper caps Gscale's area increase at 10%.  This sweep
// shows the saving-vs-area curve that makes 10% a sensible knee.
#include <cstdio>

#include "benchgen/mcnc.hpp"
#include "core/gscale.hpp"

int main() {
  const dvs::Library lib = dvs::build_compass_library();

  std::printf("Sweep E6 — Gscale area budget\n");
  std::printf("%-10s | %7s | %6s %8s %8s %8s\n", "circuit", "budget",
              "low", "resized", "areaInc", "improv%");

  for (const char* name : {"C1355", "C432", "alu2", "k2"}) {
    const dvs::McncDescriptor* d = dvs::find_mcnc(name);
    dvs::Network net = dvs::build_mcnc_circuit(lib, *d);
    dvs::Design baseline(net, lib);
    const double org = baseline.run_power().total();
    for (double budget : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
      dvs::GscaleOptions options;
      options.area_budget_ratio = budget;
      dvs::Design design(net, lib);
      const dvs::GscaleResult r = run_gscale(design, options);
      std::printf("%-10s | %6.0f%% | %6d %8d %8.3f %8.2f\n", name,
                  100.0 * budget, design.count_low(), r.num_resized,
                  r.area_increase_ratio,
                  100.0 * (org - design.run_power().total()) / org);
      std::fflush(stdout);
    }
  }
  return 0;
}
