// The parallel suite engine's driver: runs the MCNC x {CVS, Dscale,
// Gscale} matrix across a work-stealing pool, prints the paper's Table 1
// and Table 2 over the aggregated rows, and writes the machine-readable
// BENCH_suite.json (schema documented in README.md).
//
//   $ ./suite_bench                      # all 39 circuits, all cores
//   $ ./suite_bench --threads 1          # serial reference run
//   $ ./suite_bench --quick --json q.json
//   $ ./suite_bench --pipeline 'cvs | gscale | dscale' --quick
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "benchgen/mcnc.hpp"
#include "core/suite.hpp"
#include "library/supply.hpp"

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: suite_bench [--threads N] [--json FILE] "
      "[--quick | --max-gates N]\n"
      "                   [--circuit NAME]... [--seed S] [--vectors N]\n"
      "                   [--supplies V1,V2,...] [--pipeline SPEC]...\n"
      "\n"
      "Runs the MCNC x {CVS, Dscale, Gscale} matrix across the thread\n"
      "pool, prints Table 1 / Table 2 and writes BENCH_suite.json.\n"
      "With --pipeline, runs the MCNC x SPEC matrix through the pass\n"
      "registry instead and reports per-pass trajectories\n"
      "(schema dvs-bench-pipeline-v1).\n"
      "  --threads N    worker threads (1 = serial reference, 0 = all "
      "cores)\n"
      "  --json FILE    output path (default BENCH_suite.json)\n"
      "  --quick        only circuits with <= 300 gates\n"
      "  --max-gates N  only circuits with <= N gates\n"
      "  --circuit NAME run one circuit (repeatable)\n"
      "  --seed S       suite root seed (default 0x5eed)\n"
      "  --vectors N    activity-estimation vectors (default 4096)\n"
      "  --supplies L   supply ladder, strictly descending voltages\n"
      "                 (default 5,4.3), e.g. --supplies 5.0,4.3,3.6\n"
      "  --pipeline SPEC  registry pipeline, e.g. 'cvs | "
      "gscale(area_budget=0.05) | dscale' (repeatable)\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  dvs::SuiteOptions options;
  std::vector<std::string> pipelines;
  std::string json_path = "BENCH_suite.json";
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--threads")
      options.num_threads = std::atoi(value());
    else if (flag == "--json")
      json_path = value();
    else if (flag == "--quick")
      options.max_gates = 300;
    else if (flag == "--max-gates")
      options.max_gates = std::atoi(value());
    else if (flag == "--circuit")
      options.circuits.push_back(value());
    else if (flag == "--seed")
      options.seed = std::strtoull(value(), nullptr, 0);
    else if (flag == "--vectors")
      options.flow.activity.num_vectors = std::atoi(value());
    else if (flag == "--supplies") {
      try {
        options.supplies = dvs::parse_supply_ladder(value()).voltages();
      } catch (const dvs::SupplyError& e) {
        std::fprintf(stderr, "suite_bench: %s\n", e.what());
        return 1;
      }
    } else if (flag == "--pipeline")
      pipelines.push_back(value());
    else if (flag == "--help" || flag == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "suite_bench: unknown flag '%s'\n",
                   flag.c_str());
      usage(stderr);
      return 1;
    }
  }

  for (const std::string& name : options.circuits) {
    if (dvs::find_mcnc(name) == nullptr) {
      std::fprintf(stderr, "unknown circuit '%s'; known:", name.c_str());
      for (const dvs::McncDescriptor& d : dvs::mcnc_suite())
        std::fprintf(stderr, " %s", d.name);
      std::fprintf(stderr, "\n");
      return 1;
    }
  }

  if (!pipelines.empty()) {
    try {
      const dvs::PipelineSuiteReport report =
          dvs::run_pipeline_suite(options, pipelines);
      std::fputs(report.table().c_str(), stdout);
      std::printf("\n%zu cells on %d threads in %.2fs -> %s\n",
                  report.cells.size(), report.num_threads,
                  report.wall_seconds, json_path.c_str());
      std::ofstream out(json_path);
      if (!out) throw std::runtime_error("cannot write: " + json_path);
      out << report.to_json();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "suite_bench: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  const dvs::SuiteReport report = dvs::run_suite(options);
  std::fputs(report.table1().c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(report.table2().c_str(), stdout);
  std::printf("\n%zu circuits on %d threads in %.2fs -> %s\n",
              report.rows.size(), report.num_threads, report.wall_seconds,
              json_path.c_str());
  try {
    dvs::write_suite_json(report, json_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
