// service_bench — drives an in-process dvsd service with N concurrent
// TCP clients over the MCNC suite and measures what the
// optimization-as-a-service layer adds: requests/sec under concurrency,
// cold-path vs cache-hit latency, and protocol/report fidelity.
//
// Phases:
//   1. serial reference  — run_suite(threads=1), the ground truth rows
//   2. cold              — one client, every circuit once (all misses)
//   3. concurrent hits   — N clients x every circuit (all hits)
//   4. hit latency       — one client, every circuit (clean hit timing)
//   5. batch             — one `batch` request streaming the whole list
//
// Every response's report is compared field-for-field (modulo the
// gscale wall-clock column) against the serial suite row; any mismatch,
// failed request, or a cache-hit speedup below 10x fails the run (the
// ISSUE 2 acceptance bar) unless --no-check.
//
//   $ ./service_bench --clients 8 --max-gates 300 --json BENCH_service.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/mcnc.hpp"
#include "core/suite.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/worker.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace {

struct BenchOptions {
  int clients = 8;
  int max_gates = 300;
  int server_threads = 0;
  int workers = 0;
  std::uint64_t seed = 0x5eed;
  int vectors = 4096;
  std::string json_path = "BENCH_service.json";
  bool check = true;
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: service_bench [--clients N] [--max-gates N] [--threads N]\n"
      "                     [--workers N] [--seed S] [--vectors N]\n"
      "                     [--json FILE] [--no-check]\n"
      "\n"
      "Boots an in-process dvsd, fans N concurrent clients over the MCNC\n"
      "circuits with <= max-gates gates, verifies every report against\n"
      "the serial suite engine, and writes BENCH_service.json.\n"
      "--workers N boots the daemon in scheduler mode with N in-process\n"
      "fleet workers, so the cold phase measures distributed dispatch;\n"
      "the bit-identity checks apply unchanged.\n"
      "--no-check reports instead of failing on mismatch/speedup.\n",
      out);
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Canonical comparison form of a report object: the gscale seconds
/// column is wall clock and legitimately differs run to run.
std::string comparable(dvs::Json report) {
  auto& object = report.as_object();
  if (auto it = object.find("gscale"); it != object.end())
    it->second.as_object()["seconds"] = dvs::Json(0.0);
  return report.dump();
}

struct Tally {
  std::vector<double> latencies_ms;
  int requests = 0;
  int failures = 0;
  int mismatches = 0;
  int cache_hits = 0;
  int cache_misses = 0;

  void merge(const Tally& other) {
    latencies_ms.insert(latencies_ms.end(), other.latencies_ms.begin(),
                        other.latencies_ms.end());
    requests += other.requests;
    failures += other.failures;
    mismatches += other.mismatches;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }

  double mean_ms() const {
    if (latencies_ms.empty()) return 0.0;
    double sum = 0;
    for (double v : latencies_ms) sum += v;
    return sum / static_cast<double>(latencies_ms.size());
  }
};

/// Nearest-rank percentile (p in [0,100]) of a latency sample.
double percentile_ms(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] + (sample[hi] - sample[lo]) * frac;
}

/// The three JSON percentile fields for one phase's latency sample.
std::string percentile_fields(const char* phase,
                              const std::vector<double>& sample);

/// One client connection submitting `circuits` one at a time.
Tally run_client(int port, const BenchOptions& options,
                 const std::vector<std::string>& circuits,
                 const std::vector<std::string>& expected) {
  Tally tally;
  try {
    dvs::Socket socket = dvs::Socket::connect_tcp("127.0.0.1", port);
    dvs::LineReader reader(&socket, 64u << 20);
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      dvs::Json::Object request;
      request["type"] = dvs::Json("optimize");
      request["circuit"] = dvs::Json(circuits[i]);
      dvs::Json::Object opts;
      opts["seed"] = dvs::Json(options.seed);
      opts["vectors"] = dvs::Json(options.vectors);
      request["options"] = dvs::Json(std::move(opts));
      const auto start = std::chrono::steady_clock::now();
      socket.send_all(dvs::Json(std::move(request)).dump() + "\n");
      std::string line;
      ++tally.requests;
      if (!reader.read_line(&line)) {
        ++tally.failures;
        break;
      }
      tally.latencies_ms.push_back(ms_since(start));
      const dvs::Json response = dvs::Json::parse(line);
      const dvs::Json* type = response.find("type");
      if (!type || type->as_string() != "result") {
        std::fprintf(stderr, "non-result response: %s\n", line.c_str());
        ++tally.failures;
        continue;
      }
      if (response.find("cache")->as_string() == "hit")
        ++tally.cache_hits;
      else
        ++tally.cache_misses;
      if (comparable(*response.find("report")) != expected[i])
        ++tally.mismatches;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "client error: %s\n", e.what());
    ++tally.failures;
  }
  return tally;
}

Tally run_clients(int num_clients, int port, const BenchOptions& options,
                  const std::vector<std::vector<std::string>>& per_client,
                  const std::vector<std::vector<std::string>>& expected) {
  std::vector<Tally> tallies(per_client.size());
  std::vector<std::thread> threads;
  threads.reserve(per_client.size());
  for (std::size_t c = 0; c < per_client.size(); ++c)
    threads.emplace_back([&, c] {
      tallies[c] = run_client(port, options, per_client[c], expected[c]);
    });
  for (std::thread& t : threads) t.join();
  Tally total;
  for (const Tally& t : tallies) total.merge(t);
  (void)num_clients;
  return total;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string percentile_fields(const char* phase,
                              const std::vector<double>& sample) {
  std::string out;
  for (const auto& [tag, p] :
       {std::pair<const char*, double>{"p50", 50.0},
        {"p95", 95.0},
        {"p99", 99.0}}) {
    out += "  \"";
    out += phase;
    out += "_";
    out += tag;
    out += "_ms\": " + num(percentile_ms(sample, p)) + ",\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--clients")
      options.clients = std::atoi(value());
    else if (flag == "--max-gates")
      options.max_gates = std::atoi(value());
    else if (flag == "--threads")
      options.server_threads = std::atoi(value());
    else if (flag == "--workers")
      options.workers = std::atoi(value());
    else if (flag == "--seed")
      options.seed = std::strtoull(value(), nullptr, 0);
    else if (flag == "--vectors")
      options.vectors = std::atoi(value());
    else if (flag == "--json")
      options.json_path = value();
    else if (flag == "--no-check")
      options.check = false;
    else if (flag == "--help" || flag == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "service_bench: unknown flag '%s'\n",
                   flag.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (options.clients < 1) {
    std::fprintf(stderr, "service_bench: --clients must be >= 1\n");
    return 1;
  }

  // ---- phase 1: the serial ground truth --------------------------------
  dvs::SuiteOptions suite;
  suite.max_gates = options.max_gates;
  suite.num_threads = 1;
  suite.seed = options.seed;
  suite.flow.activity.num_vectors = options.vectors;
  const auto serial_start = std::chrono::steady_clock::now();
  const dvs::SuiteReport reference = dvs::run_suite(suite);
  const double serial_ms = ms_since(serial_start);

  std::vector<std::string> circuits;
  std::vector<std::string> expected;
  for (const dvs::CircuitRunResult& row : reference.rows) {
    circuits.push_back(row.name);
    expected.push_back(comparable(dvs::report_json(row, true, true, true)));
  }
  std::printf("service_bench: %zu circuits (<= %d gates), serial "
              "reference %.0f ms\n",
              circuits.size(), options.max_gates, serial_ms);
  if (circuits.empty()) {
    std::fprintf(stderr, "service_bench: no circuits selected\n");
    return 1;
  }

  // ---- boot the daemon (and, with --workers, a fleet) -------------------
  dvs::ServiceConfig config;
  config.tcp_port = 0;
  config.num_threads = options.server_threads;
  config.scheduler = options.workers > 0;
  // The bench measures latency and fidelity, not admission control: on a
  // small machine the default watermark (8x pool threads) can sit at or
  // below --clients and reject the concurrent phase, so provision it to
  // always admit the fan-out.
  config.max_backlog = static_cast<std::size_t>(options.clients) * 2 + 16;
  dvs::Service service(config);
  service.start();
  const int port = service.port();

  std::vector<std::unique_ptr<dvs::ServiceCore>> worker_cores;
  std::vector<std::unique_ptr<dvs::WorkerAgent>> worker_agents;
  for (int w = 0; w < options.workers; ++w) {
    auto core = std::make_unique<dvs::ServiceCore>();
    core->config.num_threads = 2;  // light workers: this is one machine
    core->init(nullptr);
    dvs::WorkerAgentConfig agent_config;
    agent_config.connect = "127.0.0.1:" + std::to_string(port);
    agent_config.name = "bench-w" + std::to_string(w);
    agent_config.heartbeat_ms = 200;
    auto agent =
        std::make_unique<dvs::WorkerAgent>(core.get(), agent_config);
    agent->start();
    worker_agents.push_back(std::move(agent));
    worker_cores.push_back(std::move(core));
  }
  for (int tries = 0; tries < 200; ++tries) {
    bool all = true;
    for (const auto& agent : worker_agents)
      if (!agent->connected()) all = false;
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (options.workers > 0)
    std::printf("service_bench: fleet of %d in-process workers joined\n",
                options.workers);

  // ---- phase 2: cold, one client (every request a miss) ----------------
  const Tally cold =
      run_clients(1, port, options, {circuits}, {expected});

  // ---- phase 3: N concurrent clients, every circuit (all hits) ---------
  std::vector<std::vector<std::string>> all_circuits(
      static_cast<std::size_t>(options.clients), circuits);
  std::vector<std::vector<std::string>> all_expected(
      static_cast<std::size_t>(options.clients), expected);
  const auto concurrent_start = std::chrono::steady_clock::now();
  const Tally concurrent = run_clients(options.clients, port, options,
                                       all_circuits, all_expected);
  const double concurrent_ms = ms_since(concurrent_start);

  // ---- phase 4: clean hit latency, one client ---------------------------
  const Tally hits =
      run_clients(1, port, options, {circuits}, {expected});

  // ---- phase 5: one batch request over the whole list -------------------
  int batch_failures = 0;
  int batch_mismatches = 0;
  double batch_ms = 0;
  try {
    dvs::Socket socket = dvs::Socket::connect_tcp("127.0.0.1", port);
    dvs::Json::Object request;
    request["type"] = dvs::Json("batch");
    dvs::Json::Array names;
    for (const std::string& c : circuits) names.emplace_back(c);
    request["circuits"] = dvs::Json(std::move(names));
    dvs::Json::Object opts;
    opts["seed"] = dvs::Json(options.seed);
    opts["vectors"] = dvs::Json(options.vectors);
    request["options"] = dvs::Json(std::move(opts));
    const auto start = std::chrono::steady_clock::now();
    socket.send_all(dvs::Json(std::move(request)).dump() + "\n");
    dvs::LineReader reader(&socket, 64u << 20);
    std::string line;
    std::size_t items = 0;
    while (reader.read_line(&line)) {
      const dvs::Json response = dvs::Json::parse(line);
      const std::string type = response.find("type")->as_string();
      if (type == "batch_item") {
        ++items;
        if (response.find("error") != nullptr) {
          ++batch_failures;
          continue;
        }
        const std::size_t index = response.find("index")->as_uint();
        if (index >= expected.size() ||
            comparable(*response.find("report")) != expected[index])
          ++batch_mismatches;
      } else if (type == "batch_done") {
        batch_ms = ms_since(start);
        if (items != circuits.size()) ++batch_failures;
        break;
      } else {
        ++batch_failures;
        break;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "batch error: %s\n", e.what());
    ++batch_failures;
  }

  // Fleet counters (scheduler mode only), read over the protocol while
  // the daemon is still serving.
  std::uint64_t fleet_dispatches = 0, fleet_remote_ok = 0;
  std::uint64_t fleet_retries = 0, fleet_fallback = 0;
  if (options.workers > 0) {
    try {
      dvs::Socket socket = dvs::Socket::connect_tcp("127.0.0.1", port);
      socket.send_all("{\"type\":\"stats\"}\n");
      dvs::LineReader reader(&socket, 1u << 20);
      std::string line;
      if (reader.read_line(&line)) {
        const dvs::Json stats = dvs::Json::parse(line);
        if (const dvs::Json* fleet = stats.find("fleet")) {
          fleet_dispatches = fleet->find("dispatches")->as_uint();
          fleet_remote_ok = fleet->find("remote_ok")->as_uint();
          fleet_retries = fleet->find("dispatch_retries")->as_uint();
          fleet_fallback = fleet->find("fallback_local")->as_uint();
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fleet stats error: %s\n", e.what());
    }
  }

  const dvs::CacheStats cache = service.cache_stats();
  for (auto& agent : worker_agents) agent->stop();
  worker_agents.clear();
  for (auto& core : worker_cores) core->pool->wait_idle();
  service.request_stop();
  service.stop();

  // ---- aggregate --------------------------------------------------------
  const double cold_ms = cold.mean_ms();
  const double hit_ms = hits.mean_ms();
  const double speedup = hit_ms > 0 ? cold_ms / hit_ms : 0.0;
  const double requests_per_sec =
      concurrent_ms > 0
          ? 1000.0 * static_cast<double>(concurrent.requests) /
                concurrent_ms
          : 0.0;
  const int failures =
      cold.failures + concurrent.failures + hits.failures + batch_failures;
  const int mismatches = cold.mismatches + concurrent.mismatches +
                         hits.mismatches + batch_mismatches;
  const int unexpected_cache =
      cold.cache_hits + concurrent.cache_misses + hits.cache_misses;

  std::printf(
      "cold:      %3d requests, mean %8.2f ms  p50 %.2f  p95 %.2f  "
      "p99 %.2f  (1 client)\n"
      "hits:      %3d requests, mean %8.2f ms  p50 %.2f  p95 %.2f  "
      "p99 %.2f  (1 client)\n"
      "concurrent: p50 %.2f  p95 %.2f  p99 %.2f ms\n"
      "concurrent:%3d requests in %.0f ms -> %.0f req/s  (%d clients)\n"
      "batch:     %zu circuits in %.0f ms\n"
      "cache:     %llu hits / %llu misses / %llu evictions\n"
      "speedup:   %.1fx (cache hit vs cold)\n"
      "failures:  %d, report mismatches: %d, cache anomalies: %d\n",
      cold.requests, cold_ms, percentile_ms(cold.latencies_ms, 50),
      percentile_ms(cold.latencies_ms, 95),
      percentile_ms(cold.latencies_ms, 99), hits.requests, hit_ms,
      percentile_ms(hits.latencies_ms, 50),
      percentile_ms(hits.latencies_ms, 95),
      percentile_ms(hits.latencies_ms, 99),
      percentile_ms(concurrent.latencies_ms, 50),
      percentile_ms(concurrent.latencies_ms, 95),
      percentile_ms(concurrent.latencies_ms, 99), concurrent.requests,
      concurrent_ms, requests_per_sec, options.clients, circuits.size(),
      batch_ms, static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.evictions), speedup,
      failures, mismatches, unexpected_cache);
  if (options.workers > 0)
    std::printf(
        "fleet:     %d workers, %llu dispatches, %llu remote ok, "
        "%llu retries, %llu local fallbacks\n",
        options.workers, static_cast<unsigned long long>(fleet_dispatches),
        static_cast<unsigned long long>(fleet_remote_ok),
        static_cast<unsigned long long>(fleet_retries),
        static_cast<unsigned long long>(fleet_fallback));

  // ---- BENCH_service.json ----------------------------------------------
  std::ofstream out(options.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"schema\": \"dvs-bench-service-v1\",\n"
      << "  \"clients\": " << options.clients << ",\n"
      << "  \"circuits\": " << circuits.size() << ",\n"
      << "  \"max_gates\": " << options.max_gates << ",\n"
      << "  \"seed\": " << options.seed << ",\n"
      << "  \"serial_reference_ms\": " << num(serial_ms) << ",\n"
      << "  \"cold_mean_ms\": " << num(cold_ms) << ",\n"
      << percentile_fields("cold", cold.latencies_ms)
      << "  \"hit_mean_ms\": " << num(hit_ms) << ",\n"
      << percentile_fields("hit", hits.latencies_ms)
      << percentile_fields("concurrent", concurrent.latencies_ms)
      << "  \"cache_hit_speedup\": " << num(speedup) << ",\n"
      << "  \"concurrent_requests\": " << concurrent.requests << ",\n"
      << "  \"concurrent_wall_ms\": " << num(concurrent_ms) << ",\n"
      << "  \"requests_per_sec\": " << num(requests_per_sec) << ",\n"
      << "  \"batch_wall_ms\": " << num(batch_ms) << ",\n"
      << "  \"failed_requests\": " << failures << ",\n"
      << "  \"report_mismatches\": " << mismatches << ",\n"
      << "  \"workers\": " << options.workers << ",\n"
      << "  \"fleet\": {\"dispatches\": " << fleet_dispatches
      << ", \"remote_ok\": " << fleet_remote_ok
      << ", \"dispatch_retries\": " << fleet_retries
      << ", \"fallback_local\": " << fleet_fallback << "},\n"
      << "  \"cache\": {\"hits\": " << cache.hits
      << ", \"misses\": " << cache.misses
      << ", \"evictions\": " << cache.evictions << "}\n"
      << "}\n";
  out.close();
  std::printf("-> %s\n", options.json_path.c_str());

  if (options.check) {
    if (failures > 0 || mismatches > 0 || unexpected_cache > 0) {
      std::fprintf(stderr, "service_bench: FAILED (failures/mismatches)\n");
      return 1;
    }
    if (speedup < 10.0) {
      std::fprintf(stderr,
                   "service_bench: FAILED (cache-hit speedup %.1fx < 10x)\n",
                   speedup);
      return 1;
    }
  }
  return 0;
}
