// Sweep E5: the paper fixes (5V, 4.3V) "in accordance with our internal
// design project"; this sweep shows how the choice trades off.  Lower
// Vlow saves more per gate (V^2) but costs more delay per gate
// (alpha-power law), shrinking the set of gates that fit their slack.
//
// Thin driver over the sweep-matrix engine (core/sweep_matrix.hpp) —
// the same grid the dvsd `sweep` verb runs, so a row here matches the
// matching daemon cell bit-for-bit.  `--json` emits one NDJSON object
// per circuit: {"circuit":..., "cells":[...], "pareto":[...]}.
#include <cstdio>
#include <cstring>

#include "benchgen/mcnc.hpp"
#include "core/sweep_matrix.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "usage: sweep_vlow [--json]\n");
      return 1;
    }
  }

  dvs::ThreadPool pool;
  if (!json) {
    std::printf("Sweep E5 — Vlow choice at Vhigh = 5.0V\n");
    std::printf("%-10s | %-7s | %5s | %13s | %6s | %8s %8s | %6s\n",
                "circuit", "algo", "Vlow", "delay-penalty", "low",
                "power", "improv%", "pareto");
  }

  for (const char* name : {"b9", "apex7", "term1"}) {
    const dvs::McncDescriptor* d = dvs::find_mcnc(name);

    dvs::SweepMatrixSpec spec;
    for (double vlow : {4.7, 4.5, 4.3, 4.0, 3.7, 3.3})
      spec.ladders.push_back({5.0, vlow});
    spec.run_dscale = false;  // E5 contrasts CVS against Gscale
    // The daemon's circuit-seed derivation for named circuits:
    // mix(root seed, descriptor seed), root 0x5eed.
    spec.circuit_seed = dvs::mix_seed(0x5eed, d->seed);

    const auto source = [d](const dvs::Library& lib) {
      return dvs::build_mcnc_circuit(lib, *d);
    };
    const dvs::SweepMatrixResult result =
        dvs::run_sweep_matrix(source, dvs::build_compass_library(), spec,
                              &pool);

    if (json) {
      dvs::Json grid = dvs::sweep_matrix_json(result);
      grid.as_object()["circuit"] = dvs::Json(std::string(name));
      std::printf("%s\n", grid.dump().c_str());
    } else {
      for (const dvs::SweepCellResult& cell : result.cells)
        std::printf(
            "%-10s | %-7s | %5.1f | %12.1f%% | %6d | %8.3f %8.2f | %6s\n",
            name, cell.algo.c_str(), cell.supplies.back(),
            cell.delay_penalty_pct, cell.low, cell.power_uw,
            cell.improve_pct, cell.pareto ? "*" : "");
    }
    std::fflush(stdout);
  }
  return 0;
}
