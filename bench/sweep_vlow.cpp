// Sweep E5: the paper fixes (5V, 4.3V) "in accordance with our internal
// design project"; this sweep shows how the choice trades off.  Lower
// Vlow saves more per gate (V^2) but costs more delay per gate
// (alpha-power law), shrinking the set of gates that fit their slack.
#include <cstdio>

#include "benchgen/mcnc.hpp"
#include "core/dscale.hpp"
#include "core/gscale.hpp"

int main() {
  std::printf("Sweep E5 — Vlow choice at Vhigh = 5.0V\n");
  std::printf("%-10s | %5s | %14s | %6s %6s | %8s %8s\n", "circuit",
              "Vlow", "delay-penalty", "cvsLow", "gscLow", "cvs%",
              "gscale%");

  for (const char* name : {"b9", "apex7", "term1"}) {
    for (double vlow : {4.7, 4.5, 4.3, 4.0, 3.7, 3.3}) {
      dvs::Library lib = dvs::build_compass_library();
      lib.set_supplies(5.0, vlow);
      const dvs::McncDescriptor* d = dvs::find_mcnc(name);
      dvs::Network net = dvs::build_mcnc_circuit(lib, *d);

      dvs::Design baseline(net, lib);
      const double org = baseline.run_power().total();

      dvs::Design cvs(net, lib);
      run_cvs(cvs);
      const double cvs_improve =
          100.0 * (org - cvs.run_power().total()) / org;
      const int cvs_low = cvs.count_low();

      dvs::Design gscale(net, lib);
      run_gscale(gscale);
      const double gscale_improve =
          100.0 * (org - gscale.run_power().total()) / org;

      std::printf("%-10s | %5.1f | %13.1f%% | %6d %6d | %8.2f %8.2f\n",
                  name, vlow,
                  100.0 * (lib.voltage_model().delay_factor(vlow) - 1.0),
                  cvs_low, gscale.count_low(), cvs_improve,
                  gscale_improve);
      std::fflush(stdout);
    }
  }
  return 0;
}
