// Reproduces Table 2 of the paper: per-circuit low-voltage gate counts
// and ratios for CVS / Dscale / Gscale, plus Gscale's sizing profile.
// Columns match DESIGN.md E2.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "benchgen/mcnc.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  const dvs::Library lib = dvs::build_compass_library();
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("Table 2 — profiles: low-Vdd gates per algorithm and "
              "Gscale sizing (paper: DAC'99, Yeh et al.)\n\n");
  std::fputs(dvs::format_table2_header().c_str(), stdout);

  std::vector<dvs::CircuitRunResult> rows;
  std::vector<std::optional<dvs::PaperRow>> papers;
  for (const dvs::McncDescriptor& d : dvs::mcnc_suite()) {
    if (quick && d.gates > 300) continue;
    dvs::Network net = dvs::build_mcnc_circuit(lib, d);
    dvs::FlowOptions options;
    options.activity.num_vectors = 4096;
    const dvs::CircuitRunResult row =
        dvs::run_paper_flow(net, lib, options);
    rows.push_back(row);
    papers.emplace_back(d.paper);
    std::fputs(dvs::format_table2_row(row, papers.back()).c_str(),
               stdout);
    std::fflush(stdout);
  }
  std::fputs(dvs::format_table2_footer(rows, papers).c_str(), stdout);
  return 0;
}
