// Reproduces Table 1 of the paper: per-circuit original power and the
// power improvement of CVS / Dscale / Gscale, with the published numbers
// printed next to the measured ones.  Columns match DESIGN.md E1.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "benchgen/mcnc.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  const dvs::Library lib = dvs::build_compass_library();
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::printf("Table 1 — power improvement over the single-supply "
              "original (paper: DAC'99, Yeh et al.)\n");
  std::printf("voltages (%.1fV, %.1fV), 20 MHz random-simulation power, "
              "Tspec = mapped delay, area cap 10%%\n\n",
              lib.vdd_high(), lib.vdd_low());
  std::fputs(dvs::format_table1_header().c_str(), stdout);

  std::vector<dvs::CircuitRunResult> rows;
  std::vector<std::optional<dvs::PaperRow>> papers;
  for (const dvs::McncDescriptor& d : dvs::mcnc_suite()) {
    if (quick && d.gates > 300) continue;
    dvs::Network net = dvs::build_mcnc_circuit(lib, d);
    dvs::FlowOptions options;
    options.activity.num_vectors = 4096;
    const dvs::CircuitRunResult row =
        dvs::run_paper_flow(net, lib, options);
    rows.push_back(row);
    papers.emplace_back(d.paper);
    std::fputs(dvs::format_table1_row(row, papers.back()).c_str(),
               stdout);
    std::fflush(stdout);
  }
  std::fputs(dvs::format_table1_footer(rows, papers).c_str(), stdout);
  return 0;
}
