// Microbenchmarks E7: engine throughput backing the paper's complexity
// discussion (§2.1 O(ne log(n^2/e)) for the MWIS step, §3.1 O(ne^2) for
// Edmonds-Karp).  Google-benchmark binary.
//
// `--json` emits the google-benchmark JSON report (per-algorithm
// wall-clock in `real_time`) so successive runs give a perf trajectory:
//   $ ./perf_engines --json > PERF_engines.json
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "benchgen/mcnc.hpp"
#include "core/cvs.hpp"
#include "core/dscale.hpp"
#include "core/gscale.hpp"
#include "opt/pipeline.hpp"
#include "graph/antichain.hpp"
#include "graph/separator.hpp"
#include "power/activity.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "timing/graph.hpp"
#include "timing/incremental.hpp"
#include "timing/sta.hpp"

namespace {

const dvs::Library& lib() {
  static const dvs::Library kLib = dvs::build_compass_library();
  return kLib;
}

const dvs::Network& circuit(const std::string& name) {
  static std::map<std::string, dvs::Network> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    const dvs::McncDescriptor* d = dvs::find_mcnc(name);
    it = cache.emplace(name, dvs::build_mcnc_circuit(lib(), *d)).first;
  }
  return it->second;
}

const char* kByIndex[] = {"x2",   "b9", "apex7", "alu4",
                          "k2",   "C7552", "des", "i10"};

/// Cold-start STA: every iteration compiles a throwaway timing graph and
/// analyzes over it (the convenience-overload path).
void BM_Sta(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  for (auto _ : state)
    benchmark::DoNotOptimize(dvs::run_sta(net, lib(), -1.0));
  state.SetLabel(circuit(kByIndex[state.range(0)]).name());
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_Sta)->DenseRange(0, 5);

/// Steady-state full STA over a pre-compiled graph: the shape of every
/// re-analysis inside the optimization loops, and the row to compare
/// against the seed's pointer-chasing BM_Sta numbers.
void BM_FullSta(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  dvs::Design design(net, lib());
  const dvs::TimingContext ctx = design.timing_context();
  for (auto _ : state)
    benchmark::DoNotOptimize(dvs::run_sta(ctx, design.tspec()));
  state.SetLabel(net.name());
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_FullSta)->DenseRange(0, 5);

/// One-shot compilation of Network + Library into the CSR/SoA form.
void BM_TimingGraphCompile(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  for (auto _ : state) {
    dvs::TimingGraph graph(net, lib());
    benchmark::DoNotOptimize(graph.topo_order().data());
  }
  state.SetLabel(net.name());
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_TimingGraphCompile)->DenseRange(0, 5);

void BM_ActivityEstimation(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  dvs::ActivityOptions options;
  options.num_vectors = 1024;
  for (auto _ : state)
    benchmark::DoNotOptimize(dvs::estimate_activity(net, options));
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_ActivityEstimation)->DenseRange(0, 5);

/// Circuit-shaped antichain instance: the whole netlist DAG with random
/// positive weights on a third of the nodes.
dvs::AntichainProblem antichain_instance(const dvs::Network& net) {
  dvs::AntichainProblem p;
  p.num_nodes = net.size();
  p.weight.assign(net.size(), 0.0);
  dvs::Rng rng(11);
  net.for_each_node([&](const dvs::Node& n) {
    if (rng.next_bool(0.33)) p.weight[n.id] = 0.1 + rng.next_double();
    for (dvs::NodeId fo : n.fanouts) p.edges.emplace_back(n.id, fo);
  });
  return p;
}

void BM_AntichainDinic(benchmark::State& state) {
  const auto p = antichain_instance(circuit(kByIndex[state.range(0)]));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        dvs::max_weight_antichain(p, dvs::FlowAlgo::kDinic));
}
BENCHMARK(BM_AntichainDinic)->DenseRange(0, 5);

void BM_AntichainEdmondsKarp(benchmark::State& state) {
  const auto p = antichain_instance(circuit(kByIndex[state.range(0)]));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        dvs::max_weight_antichain(p, dvs::FlowAlgo::kEdmondsKarp));
}
BENCHMARK(BM_AntichainEdmondsKarp)->DenseRange(0, 5);

void BM_Cvs(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  for (auto _ : state) {
    dvs::Design design(net, lib());
    benchmark::DoNotOptimize(dvs::run_cvs(design));
  }
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_Cvs)->DenseRange(0, 3);

void BM_Dscale(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  for (auto _ : state) {
    dvs::Design design(net, lib());
    benchmark::DoNotOptimize(dvs::run_dscale(design));
  }
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_Dscale)->DenseRange(0, 3);

void BM_Gscale(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  for (auto _ : state) {
    dvs::Design design(net, lib());
    benchmark::DoNotOptimize(dvs::run_gscale(design));
  }
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_Gscale)->DenseRange(0, 3);

/// The direct equivalent of one legacy flow cell: engine call plus the
/// power/delay measurements every cell always paid (the baseline row
/// for BM_PipelineOverhead; BM_Cvs measures the bare engine).
void BM_FlowCellDirect(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  for (auto _ : state) {
    dvs::Design design(net, lib());
    dvs::run_cvs(design);
    benchmark::DoNotOptimize(design.count_low());
    benchmark::DoNotOptimize(design.run_power().total());
    benchmark::DoNotOptimize(design.run_timing().worst_arrival);
  }
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_FlowCellDirect)->DenseRange(0, 3);

/// The same cell through the pipeline API: spec parse, registry
/// factory, schema-backed options, and per-pass trajectory capture on
/// top of BM_FlowCellDirect's work.  The gap between the two rows is
/// the price of the composable surface; it must stay a small fraction
/// of the cell (the engine + measurement dominate), not multiply it.
void BM_PipelineOverhead(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  for (auto _ : state) {
    dvs::Design design(net, lib());
    dvs::Pipeline pipeline = dvs::Pipeline::parse("cvs");
    benchmark::DoNotOptimize(pipeline.run(design));
  }
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_PipelineOverhead)->DenseRange(0, 3);

/// Spec-grammar parse + registry dispatch alone (no circuit work): the
/// per-request constant the dvsd service pays to compile a pipeline.
void BM_PipelineParse(benchmark::State& state) {
  for (auto _ : state) {
    dvs::Pipeline pipeline = dvs::Pipeline::parse(
        "cvs | gscale(area_budget=0.05, selector=random) | dscale | trim");
    benchmark::DoNotOptimize(pipeline.fingerprint());
  }
}
BENCHMARK(BM_PipelineParse);

/// One registry counter increment: the per-request fixed cost of the
/// observability layer's native instruments (dvsd bumps a handful of
/// these per request — they must stay in the nanoseconds).
void BM_MetricsCounter(benchmark::State& state) {
  dvs::MetricsRegistry registry;
  dvs::Counter& counter = registry.counter(
      "bench_requests_total", "benchmark counter");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter.value());
  }
}
BENCHMARK(BM_MetricsCounter);

/// One histogram observation into the default 27-bucket latency ladder:
/// the queue-wait / service-time recording path.
void BM_HistogramObserve(benchmark::State& state) {
  dvs::MetricsRegistry registry;
  dvs::Histogram& histogram = registry.histogram(
      "bench_latency_ms", "benchmark histogram", {},
      dvs::MetricsRegistry::default_latency_bounds_ms());
  double v = 0.0;
  for (auto _ : state) {
    v = v < 1000.0 ? v + 0.37 : 0.0;
    histogram.observe(v);
  }
  benchmark::DoNotOptimize(histogram.snapshot().count);
}
BENCHMARK(BM_HistogramObserve);

/// The Dscale/Gscale hot-loop primitive: one voltage flip + incremental
/// re-time, versus the full re-analysis it replaced (BM_Sta).
void BM_IncrementalFlip(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  dvs::Design design(net, lib());
  dvs::IncrementalSta timer(design.timing_context(), design.tspec());
  const dvs::NodeId victim = design.network().outputs()[0].driver;
  bool low = false;
  for (auto _ : state) {
    low = !low;
    design.set_level(victim, low ? design.supplies().deepest()
                                 : dvs::kTopRung);
    timer.on_node_changed(victim);
    benchmark::DoNotOptimize(timer.result().worst_arrival);
  }
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_IncrementalFlip)->DenseRange(0, 5);

/// N candidate rung assignments scored by ONE lane walk.  The second
/// argument is the lane count, swept over {1, 4, 8, 16} so `--json`
/// emits one row per width: the lanes=1 row is the scalar
/// one-candidate-per-walk baseline, and per-candidate cost at width N
/// is real_time / N (the `lanes` counter rides along in the JSON).
/// CI's bench-lanes gate reads these rows on des/i10/C7552.
void BM_MultiLaneSta(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  dvs::Design design(net, lib());
  const int lanes = static_cast<int>(state.range(1));
  std::vector<dvs::NodeId> gates;
  net.for_each_gate([&](const dvs::Node& g) {
    if (g.cell >= 0) gates.push_back(g.id);
  });
  const dvs::SupplyId deep = design.supplies().deepest();
  dvs::MultiLaneSta engine(design.timing_context(), design.tspec());
  for (auto _ : state) {
    engine.reset_lanes();
    // Deterministic victims spread across the gate list: each lane
    // probes one gate dropped to the deepest rung.
    for (int l = 0; l < lanes; ++l) {
      const int lane = engine.add_lane();
      engine.set_level(lane, gates[(l * gates.size()) / lanes], deep);
    }
    engine.run();
    benchmark::DoNotOptimize(engine.worst_slack(lanes - 1));
  }
  state.SetLabel(net.name());
  state.counters["gates"] = net.num_gates();
  state.counters["lanes"] = lanes;
}
BENCHMARK(BM_MultiLaneSta)->ArgsProduct({{5, 6, 7}, {1, 4, 8, 16}});

/// One Dscale candidate-collection round over the big circuits: the
/// deepest-first batched lane-group scan with the hoisted lowering
/// model (plus the MWIS selection and commit it feeds).
void BM_BatchedDscaleScan(benchmark::State& state) {
  const dvs::Network& net = circuit(kByIndex[state.range(0)]);
  dvs::DscaleOptions options;
  options.run_initial_cvs = false;
  options.max_rounds = 1;
  for (auto _ : state) {
    dvs::Design design(net, lib());
    benchmark::DoNotOptimize(dvs::run_dscale(design, options));
  }
  state.SetLabel(net.name());
  state.counters["gates"] = net.num_gates();
}
BENCHMARK(BM_BatchedDscaleScan)->DenseRange(5, 7);

}  // namespace

int main(int argc, char** argv) {
  // `--json` is shorthand for google-benchmark's JSON reporter, kept
  // stable here so CI and future PRs can diff per-algorithm wall-clock.
  std::vector<char*> args(argv, argv + argc);
  static char json_flag[] = "--benchmark_format=json";
  for (char*& arg : args) {
    if (std::strcmp(arg, "--json") == 0) arg = json_flag;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fputs(
          "usage: perf_engines [--json] [google-benchmark flags]\n"
          "\n"
          "Engine microbenchmarks (cold/steady-state full STA, timing-\n"
          "graph compilation, activity estimation, antichain max-flow,\n"
          "CVS/Dscale/Gscale, pipeline-dispatch overhead, metrics\n"
          "counter/histogram cost, per-flip incremental STA, multi-lane\n"
          "STA at widths 1/4/8/16, batched Dscale scan rounds) over MCNC\n"
          "stand-ins.  --json = --benchmark_format=json (CI stores it as\n"
          "BENCH_engines.json); everything else is passed to\n"
          "google-benchmark (--benchmark_filter=REGEX,\n"
          "--benchmark_min_time=T, ...).  Unknown flags exit non-zero.\n",
          stdout);
      return 0;
    }
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
