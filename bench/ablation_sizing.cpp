// Ablation E4: what cut-based sizing buys Gscale.  Compares the full
// algorithm against sizing disabled (== iterated CVS) and against a
// random separator, then sweeps maxIter (the paper uses 10).
#include <cstdio>

#include "benchgen/mcnc.hpp"
#include "core/gscale.hpp"

int main() {
  const dvs::Library lib = dvs::build_compass_library();

  std::printf("Ablation E4a — Gscale cut selection "
              "(balanced circuits, where sizing is everything)\n");
  std::printf("%-10s | %-14s %6s %8s %8s %8s\n", "circuit", "variant",
              "low", "resized", "areaInc", "improv%");
  for (const char* name : {"C1355", "C499", "mux", "f51m", "alu2"}) {
    const dvs::McncDescriptor* d = dvs::find_mcnc(name);
    dvs::Network net = dvs::build_mcnc_circuit(lib, *d);
    dvs::Design baseline(net, lib);
    const double org = baseline.run_power().total();

    dvs::GscaleOptions full;
    dvs::GscaleOptions no_sizing;
    no_sizing.enable_sizing = false;
    dvs::GscaleOptions random_cut;
    random_cut.selector = dvs::GscaleOptions::CutSelector::kRandomCut;
    const std::pair<const char*, dvs::GscaleOptions> variants[] = {
        {"min-separator", full},
        {"no-sizing", no_sizing},
        {"random-cut", random_cut}};
    for (const auto& [vname, options] : variants) {
      dvs::Design design(net, lib);
      const dvs::GscaleResult r = run_gscale(design, options);
      std::printf("%-10s | %-14s %6d %8d %8.3f %8.2f\n", name, vname,
                  design.count_low(), r.num_resized,
                  r.area_increase_ratio,
                  100.0 * (org - design.run_power().total()) / org);
      std::fflush(stdout);
    }
  }

  std::printf("\nAblation E4b — maxIter sweep (paper uses 10)\n");
  std::printf("%-10s | %7s %6s %8s %8s\n", "circuit", "maxIter", "low",
              "iters", "improv%");
  for (const char* name : {"C1355", "alu2"}) {
    const dvs::McncDescriptor* d = dvs::find_mcnc(name);
    dvs::Network net = dvs::build_mcnc_circuit(lib, *d);
    dvs::Design baseline(net, lib);
    const double org = baseline.run_power().total();
    for (int max_iter : {0, 1, 3, 10, 30}) {
      dvs::GscaleOptions options;
      options.max_iter = max_iter;
      dvs::Design design(net, lib);
      const dvs::GscaleResult r = run_gscale(design, options);
      std::printf("%-10s | %7d %6d %8d %8.2f\n", name, max_iter,
                  design.count_low(), r.iterations,
                  100.0 * (org - design.run_power().total()) / org);
      std::fflush(stdout);
    }
  }
  return 0;
}
