// dvs-worker — standalone fleet worker for a dvsd scheduler.  Connects
// to `dvsd --scheduler`, registers, and executes leased optimization
// jobs on its own ThreadPool; answers are bit-identical to what the
// scheduler would compute locally.
//
//   $ dvs-worker --join 127.0.0.1:7117
//   $ dvs-worker --join /tmp/dvsd.sock --threads 8 --name rack2-w0
//
// A lost scheduler is not fatal: the agent reconnects with bounded
// backoff until SIGINT/SIGTERM.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/server.hpp"
#include "service/worker.hpp"

namespace {

dvs::WorkerAgent* g_agent = nullptr;
std::atomic<bool> g_stop{false};

void on_signal(int) {
  // request_stop is atomics + one shutdown() syscall: signal-safe.
  g_stop.store(true);
  if (g_agent != nullptr) g_agent->request_stop();
}

void usage(std::FILE* out) {
  std::fputs(
      "usage: dvs-worker --join ADDR [--threads N] [--capacity N]\n"
      "                  [--name S] [--cache-bytes N[K|M|G]]\n"
      "                  [--cache-dir PATH] [--heartbeat-ms N]\n"
      "                  [--fault-inject SPEC] [--verbose]\n"
      "\n"
      "Executes fleet jobs for a dvsd scheduler.  Options:\n"
      "  --join ADDR          scheduler address: host:port, :port, or a\n"
      "                       Unix-socket path (required)\n"
      "  --threads N          flow worker threads (default: all cores)\n"
      "  --capacity N         max concurrently leased jobs announced to\n"
      "                       the scheduler (default: worker threads)\n"
      "  --name S             announced identity (default: assigned)\n"
      "  --cache-bytes N      local result-cache budget (default 256M)\n"
      "  --cache-dir PATH     local persistent cache tier\n"
      "  --heartbeat-ms N     heartbeat cadence (default 500)\n"
      "  --fault-inject SPEC  deterministic fault injection, e.g.\n"
      "                       'job-reply=stall@1.0,stall_ms=5000,seed=7'\n"
      "                       (default: $DVS_FAULT_INJECT)\n"
      "  --verbose            log fleet events to stderr\n"
      "  --help               this text\n",
      out);
}

bool parse_bytes(const char* text, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text) return false;
  std::size_t scale = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = 1ull << 10; break;
      case 'm': case 'M': scale = 1ull << 20; break;
      case 'g': case 'G': scale = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  *out = static_cast<std::size_t>(value * scale);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dvs::ServiceCore core;
  dvs::WorkerAgentConfig agent_config;
  std::string fault_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--join")
      agent_config.connect = value();
    else if (flag == "--threads")
      core.config.num_threads = std::atoi(value());
    else if (flag == "--capacity")
      agent_config.capacity = std::atoi(value());
    else if (flag == "--name")
      agent_config.name = value();
    else if (flag == "--cache-bytes") {
      const char* text = value();
      if (!parse_bytes(text, &core.config.cache_bytes) ||
          core.config.cache_bytes == 0) {
        std::fprintf(stderr,
                     "dvs-worker: --cache-bytes wants a byte count, got "
                     "'%s'\n",
                     text);
        return 1;
      }
    } else if (flag == "--cache-dir")
      core.config.cache_dir = value();
    else if (flag == "--heartbeat-ms")
      agent_config.heartbeat_ms = std::atoi(value());
    else if (flag == "--fault-inject")
      fault_spec = value();
    else if (flag == "--verbose")
      agent_config.verbose = true;
    else if (flag == "--help" || flag == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "dvs-worker: unknown flag '%s'\n", flag.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (agent_config.connect.empty()) {
    std::fprintf(stderr, "dvs-worker: --join ADDR is required\n");
    usage(stderr);
    return 1;
  }

  try {
    agent_config.faults = fault_spec.empty()
                              ? dvs::FaultInjector::from_env()
                              : dvs::FaultInjector::parse(fault_spec);
    core.init(nullptr);
    dvs::WorkerAgent agent(&core, agent_config);
    agent.start();
    g_agent = &agent;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    std::printf("dvs-worker: joining %s (%d threads)\n",
                agent_config.connect.c_str(), core.pool->num_threads());
    std::fflush(stdout);
    // Polls instead of waiting on a condition variable: the signal
    // handler must stay async-signal-safe, so it cannot notify.
    while (!g_stop.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    agent.stop();
    g_agent = nullptr;
    core.pool->wait_idle();
    if (core.disk) core.disk->flush();
    std::printf("dvs-worker: bye (%llu jobs executed)\n",
                static_cast<unsigned long long>(agent.jobs_executed()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvs-worker: %s\n", e.what());
    return 1;
  }
}
