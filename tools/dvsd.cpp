// dvsd — the dual-Vdd optimization daemon.  Serves the NDJSON protocol
// documented in README.md ("Optimization as a service") on a loopback
// TCP port or a Unix-domain socket until SIGINT/SIGTERM or a client
// `shutdown` request.
//
//   $ dvsd --port 7117                 # TCP on 127.0.0.1:7117
//   $ dvsd --unix /tmp/dvsd.sock      # Unix-domain socket
//   $ dvsd --port 0                    # kernel-assigned port (printed)
//   $ dvsd --cache-dir /var/dvsd      # persistent disk cache tier
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hpp"

namespace {

dvs::Service* g_service = nullptr;

void on_signal(int) {
  if (g_service != nullptr) g_service->request_stop();
}

void usage(std::FILE* out) {
  std::fputs(
      "usage: dvsd [--port N | --unix PATH] [--threads N]\n"
      "            [--cache-bytes N[K|M|G]] [--cache-dir PATH]\n"
      "            [--max-line-bytes N[K|M|G]] [--max-backlog N]\n"
      "            [--max-inflight N] [--drain-timeout-ms N]\n"
      "            [--session-idle-ms N] [--design-bytes N[K|M|G]]\n"
      "            [--max-designs N]\n"
      "            [--metrics-port N] [--trace-log PATH] [--slow-ms X]\n"
      "            [--scheduler] [--lease-ms N] [--heartbeat-timeout-ms N]\n"
      "            [--dispatch-retries N] [--dispatch-backoff-ms N]\n"
      "            [--join ADDR] [--worker-name S] [--capacity N]\n"
      "            [--fault-inject SPEC] [--verbose]\n"
      "\n"
      "Serves dual-Vdd optimization jobs over newline-delimited JSON\n"
      "(protocol: see README.md).  Options:\n"
      "  --port N             listen on 127.0.0.1:N (0 = kernel-assigned;\n"
      "                       the bound port is printed on stdout)\n"
      "  --unix PATH          listen on a Unix-domain socket instead\n"
      "  --threads N          flow worker threads (default: all cores)\n"
      "  --cache-bytes N      in-memory result-cache budget, bytes of\n"
      "                       payload; K/M/G suffixes ok (default 256M)\n"
      "  --cache-dir PATH     disk cache tier: results persist here and\n"
      "                       warm-hit across daemon restarts\n"
      "  --max-line-bytes N   NDJSON request-line cap (default 64M)\n"
      "  --max-backlog N      reject optimize/batch with an 'overloaded'\n"
      "                       error once N jobs are queued or running\n"
      "                       (default: 8x worker threads)\n"
      "  --max-inflight N     per-connection in-flight job window\n"
      "                       (default 64)\n"
      "  --drain-timeout-ms N graceful-drain budget on SIGTERM/stop\n"
      "                       (default 30000)\n"
      "  --session-idle-ms N  expire an open design handle after N ms\n"
      "                       idle (0 = never; default 600000)\n"
      "  --design-bytes N     resident-byte budget across open designs;\n"
      "                       oldest-idle handles are evicted above it\n"
      "                       (0 = unlimited; default 1G)\n"
      "  --max-designs N      cap on simultaneously open design handles\n"
      "                       (default 256)\n"
      "  --metrics-port N     serve the Prometheus text exposition on\n"
      "                       127.0.0.1:N (0 = kernel-assigned, printed;\n"
      "                       default: disabled)\n"
      "  --trace-log PATH     append one NDJSON trace record (spans,\n"
      "                       wall_ms, cache tier) per request to PATH\n"
      "  --slow-ms X          log requests slower than X ms to stderr\n"
      "  --scheduler          accept dvs-worker registrations and dispatch\n"
      "                       cache misses to the fleet (local fallback)\n"
      "  --lease-ms N         per-job worker lease deadline (default 10000)\n"
      "  --heartbeat-timeout-ms N\n"
      "                       expire a silent worker after N ms (default\n"
      "                       3000) and requeue its leases\n"
      "  --dispatch-retries N retry budget per dispatch, preferring a\n"
      "                       different worker each time (default 2)\n"
      "  --dispatch-backoff-ms N\n"
      "                       base of the exponential retry backoff\n"
      "                       (default 50)\n"
      "  --join ADDR          also register with the scheduler at ADDR\n"
      "                       (host:port or a Unix-socket path) and lend\n"
      "                       this daemon's pool to its fleet\n"
      "  --worker-name S      identity announced on --join\n"
      "  --capacity N         max concurrently leased jobs on --join\n"
      "                       (default: worker threads)\n"
      "  --fault-inject SPEC  deterministic fault injection for the --join\n"
      "                       worker side, e.g.\n"
      "                       'job-reply=corrupt-reply@0.5,seed=7'\n"
      "                       (default: $DVS_FAULT_INJECT)\n"
      "  --verbose            log connections to stderr\n"
      "  --help               this text\n",
      out);
}

/// Parses "N", "NK", "NM", or "NG" (case-insensitive) into bytes.
/// Returns false on trailing garbage or a missing number.
bool parse_bytes(const char* text, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text) return false;
  std::size_t scale = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = 1ull << 10; break;
      case 'm': case 'M': scale = 1ull << 20; break;
      case 'g': case 'G': scale = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  *out = static_cast<std::size_t>(value * scale);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dvs::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    auto bytes_value = [&](std::size_t* out) {
      const char* text = value();
      if (!parse_bytes(text, out)) {
        std::fprintf(stderr, "dvsd: %s wants a byte count, got '%s'\n",
                     flag.c_str(), text);
        std::exit(1);
      }
    };
    if (flag == "--port")
      config.tcp_port = std::atoi(value());
    else if (flag == "--unix")
      config.unix_path = value();
    else if (flag == "--threads")
      config.num_threads = std::atoi(value());
    else if (flag == "--cache-bytes")
      bytes_value(&config.cache_bytes);
    else if (flag == "--cache-dir")
      config.cache_dir = value();
    else if (flag == "--max-line-bytes")
      bytes_value(&config.max_line_bytes);
    else if (flag == "--max-backlog")
      config.max_backlog =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    else if (flag == "--max-inflight")
      config.max_inflight_per_connection =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    else if (flag == "--drain-timeout-ms")
      config.drain_timeout_ms = std::atoi(value());
    else if (flag == "--session-idle-ms")
      config.session_idle_ms = std::strtoull(value(), nullptr, 0);
    else if (flag == "--design-bytes")
      bytes_value(&config.design_bytes);
    else if (flag == "--max-designs")
      config.max_open_designs =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    else if (flag == "--metrics-port")
      config.metrics_port = std::atoi(value());
    else if (flag == "--trace-log")
      config.trace_log_path = value();
    else if (flag == "--slow-ms")
      config.slow_ms = std::atof(value());
    else if (flag == "--scheduler")
      config.scheduler = true;
    else if (flag == "--lease-ms")
      config.lease_ms = std::atoi(value());
    else if (flag == "--heartbeat-timeout-ms")
      config.heartbeat_timeout_ms = std::atoi(value());
    else if (flag == "--dispatch-retries")
      config.dispatch_retries = std::atoi(value());
    else if (flag == "--dispatch-backoff-ms")
      config.dispatch_backoff_ms = std::atoi(value());
    else if (flag == "--join")
      config.join = value();
    else if (flag == "--worker-name")
      config.worker_name = value();
    else if (flag == "--capacity")
      config.worker_capacity = std::atoi(value());
    else if (flag == "--heartbeat-ms")
      config.heartbeat_ms = std::atoi(value());
    else if (flag == "--fault-inject")
      config.fault_spec = value();
    else if (flag == "--verbose")
      config.verbose = true;
    else if (flag == "--help" || flag == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "dvsd: unknown flag '%s'\n", flag.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (config.cache_bytes == 0) {
    std::fprintf(stderr, "dvsd: --cache-bytes must be >= 1\n");
    return 1;
  }
  if (config.max_line_bytes < 1024) {
    std::fprintf(stderr, "dvsd: --max-line-bytes must be >= 1024\n");
    return 1;
  }

  try {
    dvs::Service service(config);
    service.start();
    g_service = &service;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    if (config.unix_path.empty())
      std::printf("dvsd: listening on 127.0.0.1:%d\n", service.port());
    else
      std::printf("dvsd: listening on %s\n", config.unix_path.c_str());
    if (config.metrics_port >= 0)
      std::printf("dvsd: metrics on http://127.0.0.1:%d/metrics\n",
                  service.metrics_port());
    if (config.scheduler)
      std::printf("dvsd: scheduler mode (accepting worker registrations)\n");
    if (!config.join.empty())
      std::printf("dvsd: joining fleet at %s\n", config.join.c_str());
    std::fflush(stdout);
    service.wait();
    service.stop();
    g_service = nullptr;
    const dvs::CacheStats cache = service.cache_stats();
    std::printf("dvsd: bye (%llu hits, %llu misses, %llu evictions)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions));
    if (!config.cache_dir.empty()) {
      const dvs::DiskCacheStats disk = service.disk_stats();
      std::printf(
          "dvsd: disk tier (%llu hits, %llu misses, %llu writes, "
          "%llu write errors)\n",
          static_cast<unsigned long long>(disk.hits),
          static_cast<unsigned long long>(disk.misses),
          static_cast<unsigned long long>(disk.writes),
          static_cast<unsigned long long>(disk.write_errors));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvsd: %s\n", e.what());
    return 1;
  }
}
