// dvsd — the dual-Vdd optimization daemon.  Serves the NDJSON protocol
// documented in README.md ("Optimization as a service") on a loopback
// TCP port or a Unix-domain socket until SIGINT/SIGTERM or a client
// `shutdown` request.
//
//   $ dvsd --port 7117                 # TCP on 127.0.0.1:7117
//   $ dvsd --unix /tmp/dvsd.sock      # Unix-domain socket
//   $ dvsd --port 0                    # kernel-assigned port (printed)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hpp"

namespace {

dvs::Service* g_service = nullptr;

void on_signal(int) {
  if (g_service != nullptr) g_service->request_stop();
}

void usage(std::FILE* out) {
  std::fputs(
      "usage: dvsd [--port N | --unix PATH] [--threads N]\n"
      "            [--cache-entries N] [--verbose]\n"
      "\n"
      "Serves dual-Vdd optimization jobs over newline-delimited JSON\n"
      "(protocol: see README.md).  Options:\n"
      "  --port N           listen on 127.0.0.1:N (0 = kernel-assigned;\n"
      "                     the bound port is printed on stdout)\n"
      "  --unix PATH        listen on a Unix-domain socket instead\n"
      "  --threads N        flow worker threads (default: all cores)\n"
      "  --cache-entries N  result-cache capacity (default 1024)\n"
      "  --verbose          log connections to stderr\n"
      "  --help             this text\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  dvs::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (flag == "--port")
      config.tcp_port = std::atoi(value());
    else if (flag == "--unix")
      config.unix_path = value();
    else if (flag == "--threads")
      config.num_threads = std::atoi(value());
    else if (flag == "--cache-entries")
      config.cache_entries =
          static_cast<std::size_t>(std::strtoull(value(), nullptr, 0));
    else if (flag == "--verbose")
      config.verbose = true;
    else if (flag == "--help" || flag == "-h") {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "dvsd: unknown flag '%s'\n", flag.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (config.cache_entries == 0) {
    std::fprintf(stderr, "dvsd: --cache-entries must be >= 1\n");
    return 1;
  }

  try {
    dvs::Service service(config);
    service.start();
    g_service = &service;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGPIPE, SIG_IGN);
    if (config.unix_path.empty())
      std::printf("dvsd: listening on 127.0.0.1:%d\n", service.port());
    else
      std::printf("dvsd: listening on %s\n", config.unix_path.c_str());
    std::fflush(stdout);
    service.wait();
    service.stop();
    g_service = nullptr;
    const dvs::CacheStats cache = service.cache_stats();
    std::printf("dvsd: bye (%llu hits, %llu misses, %llu evictions)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvsd: %s\n", e.what());
    return 1;
  }
}
