// dvs-client — command-line client for the dvsd optimization daemon.
//
//   $ dvs-client --port 7117 ping
//   $ dvs-client --port 7117 optimize --circuit b9
//   $ dvs-client --port 7117 optimize my.blif --algo dscale --return-netlist
//   $ dvs-client --unix /tmp/dvsd.sock batch --all --max-gates 300
//   $ dvs-client --port 7117 stats
//   $ dvs-client --port 7117 shutdown
//
// Default output is a human summary; --json prints the daemon's raw
// NDJSON responses unmodified (one per line).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "library/supply.hpp"
#include "service/protocol.hpp"
#include "support/backoff.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

#include <unistd.h>

namespace {

void usage(std::FILE* out) {
  std::fputs(
      "usage: dvs-client [--port N | --unix PATH] [--host IP] [--json]\n"
      "                  [--retries N] [--backoff-ms B] COMMAND [args]\n"
      "\n"
      "  --retries N     reconnect and resubmit up to N times when the\n"
      "                  connection is refused/reset or the daemon answers\n"
      "                  a structured 'overloaded' error (default 0)\n"
      "  --backoff-ms B  base of the exponential retry backoff with\n"
      "                  jitter (default 200)\n"
      "\n"
      "commands:\n"
      "  ping                       round-trip check\n"
      "  stats  (or --stats)        cache/pool/session counters\n"
      "  metrics (or --metrics)     Prometheus text exposition, verbatim\n"
      "  shutdown                   stop the daemon\n"
      "  optimize FILE | --circuit NAME\n"
      "      [--format blif|verilog]   input format of FILE (default blif)\n"
      "      [--algo cvs|dscale|gscale|all]   (default all)\n"
      "      [--pipeline SPEC]         registry pipeline instead of --algo,\n"
      "                                e.g. 'cvs | gscale(area_budget=0.05)"
      " | dscale'\n"
      "      [--seed S] [--vectors N] [--freq-mhz F] [--tspec-relax R]\n"
      "      [--supplies V1,V2,...]    supply ladder to optimize at,\n"
      "                                strictly descending (e.g. "
      "5.0,4.3,3.6)\n"
      "      [--return-netlist]        embed the optimized netlist\n"
      "      [--no-cache]              skip the cache lookup\n"
      "      [--deadline-ms N]         fail fast if still queued after N ms\n"
      "      [--trace]                 request per-phase spans in the reply\n"
      "  batch --circuits a,b,c | --all [--max-gates N]\n"
      "      [--algo ... | --pipeline SPEC] [--seed S] [--vectors N] "
      "[--supplies L] [--no-cache] [--deadline-ms N] [--trace]\n"
      "  --session FILE             scripted ECO session (FILE or '-' for\n"
      "                             stdin); one command per line:\n"
      "      open CIRCUIT|FILE.blif [as NAME]   open a design handle\n"
      "      edit rung GATE R | edit cell GATE CELL\n"
      "      edit upsize|downsize|insert_lc|remove_lc GATE\n"
      "      reopt [auto|incremental|full] [algos L | pipeline SPEC]\n"
      "      sweep [vlow V1,V2,..] [budgets B1,B2,..] [algos L]\n"
      "      close\n"
      "      # comment; blank lines skipped; lines starting with '{' are\n"
      "      # sent verbatim as one NDJSON request.  Verbs after `open`\n"
      "      # target the last opened handle automatically.\n",
      out);
}

struct Cli {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string unix_path;
  bool raw_json = false;
  int retries = 0;
  int backoff_ms = 200;
};

dvs::Socket connect(const Cli& cli) {
  if (!cli.unix_path.empty())
    return dvs::Socket::connect_unix(cli.unix_path);
  if (cli.port < 0)
    throw dvs::SocketError("no --port or --unix given");
  return dvs::Socket::connect_tcp(cli.host, cli.port);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const dvs::Json* get(const dvs::Json& json, const char* key) {
  return json.find(key);
}

double dbl(const dvs::Json& json, const char* key, double fallback = 0) {
  const dvs::Json* v = json.find(key);
  return v ? v->as_double() : fallback;
}

void print_algo(const dvs::Json& report, const char* name) {
  const dvs::Json* algo = report.find(name);
  if (!algo) return;
  std::printf("  %-7s improve %6.2f%%  low %4lld", name,
              dbl(*algo, "improve_pct"),
              static_cast<long long>(algo->find("low")->as_int()));
  if (const dvs::Json* lcs = algo->find("level_converters"))
    std::printf("  LCs %lld", static_cast<long long>(lcs->as_int()));
  if (const dvs::Json* resized = algo->find("resized"))
    std::printf("  resized %lld  area +%.3f",
                static_cast<long long>(resized->as_int()),
                dbl(*algo, "area_increase"));
  std::printf("\n");
}

/// Per-phase spans of a traced response, indented under the result line.
void print_trace(const dvs::Json& response) {
  const dvs::Json* trace = get(response, "trace");
  if (!trace) return;
  for (const dvs::Json& span : trace->as_array()) {
    const long long depth = span.find("depth")->as_int();
    std::printf("  %*s%-28s %9.3f ms  @ %.3f\n",
                static_cast<int>(2 * depth), "",
                span.find("name")->as_string().c_str(),
                dbl(span, "dur_ms"), dbl(span, "start_ms"));
  }
}

/// Pretty-prints one response line.  Returns false on {"type":"error"}.
bool print_response(const std::string& line) {
  const dvs::Json json = dvs::Json::parse(line);
  const std::string type =
      get(json, "type") ? get(json, "type")->as_string() : "?";
  if (type == "error") {
    const dvs::Json* message = get(json, "message");
    const dvs::Json* code = get(json, "code");
    std::fprintf(stderr, "error%s%s%s: %s\n", code ? " [" : "",
                 code ? code->as_string().c_str() : "", code ? "]" : "",
                 message ? message->as_string().c_str() : line.c_str());
    return false;
  }
  if (type == "pong") {
    std::printf("pong\n");
  } else if (type == "metrics") {
    // The exposition text is the payload; print it verbatim so the
    // output pipes straight into promtool / grep.
    std::fputs(get(json, "text")->as_string().c_str(), stdout);
  } else if (type == "bye") {
    std::printf("daemon stopping\n");
  } else if (type == "stats") {
    const dvs::Json& cache = *get(json, "cache");
    std::printf("cache: %llu hits / %llu misses / %llu evictions / "
                "%llu rejected | %llu entries, %.1f/%.1f MiB\n",
                static_cast<unsigned long long>(
                    cache.find("hits")->as_uint()),
                static_cast<unsigned long long>(
                    cache.find("misses")->as_uint()),
                static_cast<unsigned long long>(
                    cache.find("evictions")->as_uint()),
                static_cast<unsigned long long>(
                    cache.find("rejected")->as_uint()),
                static_cast<unsigned long long>(
                    cache.find("entries")->as_uint()),
                static_cast<double>(cache.find("bytes")->as_uint()) /
                    (1 << 20),
                static_cast<double>(
                    cache.find("capacity_bytes")->as_uint()) /
                    (1 << 20));
    if (const dvs::Json* disk = get(json, "disk")) {
      if (disk->find("enabled")->as_bool())
        std::printf("disk:  %llu hits / %llu misses | %llu writes "
                    "(%llu errors), %.1f MiB written\n",
                    static_cast<unsigned long long>(
                        disk->find("hits")->as_uint()),
                    static_cast<unsigned long long>(
                        disk->find("misses")->as_uint()),
                    static_cast<unsigned long long>(
                        disk->find("writes")->as_uint()),
                    static_cast<unsigned long long>(
                        disk->find("write_errors")->as_uint()),
                    static_cast<double>(
                        disk->find("bytes_written")->as_uint()) /
                        (1 << 20));
      else
        std::printf("disk:  (no cache dir)\n");
    }
    if (const dvs::Json* pool = get(json, "pool")) {
      std::printf("pool:  %lld threads, %lld queued+running "
                  "(peak %lld, watermark %llu) | %llu tasks | "
                  "%llu overloaded, %llu deadline-expired\n",
                  static_cast<long long>(pool->find("threads")->as_int()),
                  static_cast<long long>(pool->find("depth")->as_int()),
                  static_cast<long long>(
                      pool->find("peak_depth")->as_int()),
                  static_cast<unsigned long long>(
                      pool->find("watermark")->as_uint()),
                  static_cast<unsigned long long>(
                      pool->find("tasks_executed")->as_uint()),
                  static_cast<unsigned long long>(
                      pool->find("overload_rejections")->as_uint()),
                  static_cast<unsigned long long>(
                      pool->find("deadline_expired")->as_uint()));
    }
    if (const dvs::Json* sessions = get(json, "sessions"))
      std::printf("sessions: %llu active / %llu total\n",
                  static_cast<unsigned long long>(
                      sessions->find("active")->as_uint()),
                  static_cast<unsigned long long>(
                      sessions->find("total")->as_uint()));
    if (const dvs::Json* designs = get(json, "designs"))
      std::printf(
          "designs: %llu open (%.1f MiB resident) | %llu opened, "
          "%llu closed, %llu expired, %llu evicted | %llu edits | "
          "reopt %llu incr / %llu full | %llu sweeps (%llu cells)\n",
          static_cast<unsigned long long>(
              designs->find("open")->as_uint()),
          static_cast<double>(
              designs->find("resident_bytes")->as_uint()) /
              (1 << 20),
          static_cast<unsigned long long>(
              designs->find("opened")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("closed")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("expired")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("evicted")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("edits")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("reoptimize_incremental")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("reoptimize_full")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("sweeps")->as_uint()),
          static_cast<unsigned long long>(
              designs->find("sweep_cells")->as_uint()));
    const dvs::Json& jobs = *get(json, "jobs");
    std::printf("jobs: %llu completed, %llu failed | requests %llu | "
                "connections %llu | threads %lld | up %.1fs\n",
                static_cast<unsigned long long>(
                    jobs.find("completed")->as_uint()),
                static_cast<unsigned long long>(
                    jobs.find("failed")->as_uint()),
                static_cast<unsigned long long>(
                    get(json, "requests")->as_uint()),
                static_cast<unsigned long long>(
                    get(json, "connections")->as_uint()),
                static_cast<long long>(get(json, "threads")->as_int()),
                dbl(json, "uptime_seconds"));
    if (const dvs::Json* version = get(json, "version"))
      std::printf("dvsd %s\n", version->as_string().c_str());
  } else if (type == "result" || type == "batch_item") {
    if (const dvs::Json* error = get(json, "error")) {
      std::fprintf(stderr, "error (%s): %s\n",
                   get(json, "name")->as_string().c_str(),
                   error->as_string().c_str());
      return false;
    }
    const dvs::Json& report = *get(json, "report");
    std::printf("%s: %lld gates, tspec %.3f ns, original %.2f uW  [%s, "
                "%.1f ms]\n",
                report.find("name")->as_string().c_str(),
                static_cast<long long>(report.find("gates")->as_int()),
                dbl(report, "tspec_ns"), dbl(report, "org_power_uw"),
                get(json, "cache")->as_string().c_str(),
                dbl(json, "wall_ms"));
    print_algo(report, "cvs");
    print_algo(report, "dscale");
    print_algo(report, "gscale");
    // Pipeline cells (anything that is not a paper algorithm column)
    // print their full per-pass trajectory.
    if (const dvs::Json* trajectory = get(json, "trajectory")) {
      for (const dvs::Json& cell : trajectory->as_array()) {
        const std::string& label = cell.find("label")->as_string();
        if (label == "cvs" || label == "dscale" || label == "gscale")
          continue;
        std::printf("  %s: %s  improve %.2f%%\n", label.c_str(),
                    cell.find("spec")->as_string().c_str(),
                    dbl(cell, "improve_pct"));
        int position = 0;
        for (const dvs::Json& pass : cell.find("passes")->as_array())
          std::printf("    [%d] %-8s power %9.3f uW  arrival %7.4f ns"
                      "  area %9.1f um2  low %4lld  touched %4lld\n",
                      position++,
                      pass.find("pass")->as_string().c_str(),
                      dbl(pass, "power_uw"), dbl(pass, "arrival_ns"),
                      dbl(pass, "area_um2"),
                      static_cast<long long>(pass.find("low")->as_int()),
                      static_cast<long long>(
                          pass.find("gates_touched")->as_int()));
      }
    }
    print_trace(json);
    if (const dvs::Json* netlist = get(json, "netlist"))
      std::printf("--- optimized netlist ---\n%s",
                  netlist->as_string().c_str());
  } else if (type == "design_opened") {
    std::printf("opened %s: %s, %lld gates, tspec %.3f ns, "
                "original %.2f uW, v%llu, refs %lld%s\n",
                get(json, "design")->as_string().c_str(),
                get(json, "circuit")->as_string().c_str(),
                static_cast<long long>(get(json, "gates")->as_int()),
                dbl(json, "tspec_ns"), dbl(json, "org_power_uw"),
                static_cast<unsigned long long>(
                    get(json, "structural_version")->as_uint()),
                static_cast<long long>(get(json, "refs")->as_int()),
                get(json, "attached")->as_bool() ? " (attached)" : "");
  } else if (type == "edited") {
    std::printf("edited %s: %lld edit%s applied%s, v%llu, %lld gates\n",
                get(json, "design")->as_string().c_str(),
                static_cast<long long>(get(json, "applied")->as_int()),
                get(json, "applied")->as_int() == 1 ? "" : "s",
                get(json, "structural")->as_bool() ? " (structural)" : "",
                static_cast<unsigned long long>(
                    get(json, "structural_version")->as_uint()),
                static_cast<long long>(get(json, "gates")->as_int()));
  } else if (type == "reoptimized") {
    if (const dvs::Json* report = get(json, "report")) {
      // Pipeline mode carries the full optimize result body.
      std::printf("reoptimized %s [pipeline, %s, %.1f ms]\n",
                  get(json, "design")->as_string().c_str(),
                  get(json, "cache")->as_string().c_str(),
                  dbl(json, "wall_ms"));
      print_algo(*report, "cvs");
      print_algo(*report, "dscale");
      print_algo(*report, "gscale");
    } else {
      std::printf(
          "reoptimized %s [%s, %.1f ms]: power %.3f uW "
          "(improve %.2f%%)  arrival %.4f ns vs tspec %.4f ns (%s)  "
          "low %lld  LCs %lld  resized %lld  area %.1f um2\n",
          get(json, "design")->as_string().c_str(),
          get(json, "mode")->as_string().c_str(), dbl(json, "wall_ms"),
          dbl(json, "power_uw"), dbl(json, "improve_pct"),
          dbl(json, "arrival_ns"), dbl(json, "tspec_ns"),
          get(json, "meets_tspec")->as_bool() ? "meets" : "VIOLATES",
          static_cast<long long>(get(json, "low")->as_int()),
          static_cast<long long>(
              get(json, "level_converters")->as_int()),
          static_cast<long long>(get(json, "resized")->as_int()),
          dbl(json, "area_um2"));
    }
    print_trace(json);
  } else if (type == "sweep_result") {
    std::printf("sweep %s: %llu cells, %.1f ms\n",
                get(json, "design")->as_string().c_str(),
                static_cast<unsigned long long>(
                    get(json, "count")->as_uint()),
                dbl(json, "wall_ms"));
    for (const dvs::Json& cell : get(json, "cells")->as_array()) {
      std::string ladder;
      for (const dvs::Json& v : cell.find("supplies")->as_array()) {
        if (!ladder.empty()) ladder += ',';
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2f", v.as_double());
        ladder += buf;
      }
      std::printf("  %-7s %-24s", cell.find("algo")->as_string().c_str(),
                  ladder.c_str());
      if (cell.find("area_budget"))
        std::printf(" budget %.2f", dbl(cell, "area_budget"));
      std::printf("  power %9.3f uW  improve %6.2f%%  arrival %7.4f ns%s\n",
                  dbl(cell, "power_uw"), dbl(cell, "improve_pct"),
                  dbl(cell, "arrival_ns"),
                  cell.find("pareto")->as_bool() ? "  *pareto" : "");
    }
  } else if (type == "design_closed") {
    const long long refs =
        static_cast<long long>(get(json, "refs")->as_int());
    if (refs == 0)
      std::printf("closed %s\n", get(json, "design")->as_string().c_str());
    else
      std::printf("released %s (%lld refs remain)\n",
                  get(json, "design")->as_string().c_str(), refs);
  } else if (type == "batch_done") {
    std::printf("batch done: %llu circuits, %llu cache hits, "
                "%llu failed, %.1f ms\n",
                static_cast<unsigned long long>(
                    get(json, "count")->as_uint()),
                static_cast<unsigned long long>(
                    get(json, "cache_hits")->as_uint()),
                static_cast<unsigned long long>(
                    get(json, "failed")->as_uint()),
                dbl(json, "wall_ms"));
  } else {
    std::printf("%s\n", line.c_str());
  }
  return true;
}

// ---- scripted ECO sessions (--session FILE) ----

/// Gate operands: an all-digit token is sent as a numeric node id,
/// anything else as a gate name.
dvs::Json gate_json(const std::string& token) {
  bool digits = !token.empty();
  for (char c : token) digits = digits && c >= '0' && c <= '9';
  if (digits)
    return dvs::Json(static_cast<std::int64_t>(
        std::strtoll(token.c_str(), nullptr, 10)));
  return dvs::Json(token);
}

dvs::Json::Array double_list(const std::string& text, const char* what) {
  dvs::Json::Array out;
  std::istringstream list(text);
  std::string item;
  while (std::getline(list, item, ','))
    if (!item.empty()) out.emplace_back(std::atof(item.c_str()));
  if (out.empty())
    throw std::runtime_error(std::string(what) + " wants V1,V2,...");
  return out;
}

dvs::Json::Array algo_list(const std::string& text) {
  dvs::Json::Array out;
  std::istringstream list(text);
  std::string item;
  while (std::getline(list, item, ','))
    if (!item.empty()) out.emplace_back(item);
  return out;
}

/// Translates one script line into the NDJSON request it stands for.
/// `current` is the handle threaded from the last design_opened reply.
std::string session_request(const std::vector<std::string>& words,
                            const std::string& current) {
  const std::string& verb = words[0];
  dvs::Json::Object request;
  auto need_design = [&]() {
    if (current.empty())
      throw std::runtime_error("no open design (use `open` first)");
    request["design"] = dvs::Json(current);
  };
  if (verb == "open") {
    if (words.size() < 2) throw std::runtime_error("open wants a circuit");
    request["type"] = dvs::Json(std::string("open_design"));
    const std::string& what = words[1];
    // A path-looking operand is a netlist file; a bare word is an MCNC
    // circuit name.
    if (what.find('/') != std::string::npos ||
        what.find('.') != std::string::npos) {
      request["netlist"] = dvs::Json(read_file(what));
      if (what.size() > 2 && what.rfind(".v") == what.size() - 2)
        request["format"] = dvs::Json(std::string("verilog"));
    } else {
      request["circuit"] = dvs::Json(what);
    }
    if (words.size() == 4 && words[2] == "as")
      request["name"] = dvs::Json(words[3]);
    else if (words.size() != 2)
      throw std::runtime_error("usage: open CIRCUIT|FILE [as NAME]");
  } else if (verb == "edit") {
    if (words.size() < 3)
      throw std::runtime_error("usage: edit OP GATE [ARG]");
    need_design();
    request["type"] = dvs::Json(std::string("edit"));
    dvs::Json::Object edit;
    const std::string& op = words[1];
    edit["op"] = dvs::Json(op);
    edit["gate"] = gate_json(words[2]);
    if (op == "rung") {
      if (words.size() != 4)
        throw std::runtime_error("usage: edit rung GATE R");
      edit["rung"] = dvs::Json(std::atoi(words[3].c_str()));
    } else if (op == "cell") {
      if (words.size() != 4)
        throw std::runtime_error("usage: edit cell GATE CELL");
      edit["cell"] = dvs::Json(words[3]);
    } else if (words.size() != 3) {
      throw std::runtime_error("usage: edit " + op + " GATE");
    }
    dvs::Json::Array edits;
    edits.emplace_back(std::move(edit));
    request["edits"] = dvs::Json(std::move(edits));
  } else if (verb == "reopt") {
    need_design();
    request["type"] = dvs::Json(std::string("reoptimize"));
    for (std::size_t i = 1; i < words.size(); ++i) {
      const std::string& word = words[i];
      if (word == "auto" || word == "incremental" || word == "full") {
        request["mode"] = dvs::Json(word);
      } else if (word == "algos" && i + 1 < words.size()) {
        request["algos"] = dvs::Json(algo_list(words[++i]));
      } else if (word == "pipeline" && i + 1 < words.size()) {
        // The pipeline spec is the rest of the line, spaces included.
        std::string spec;
        while (++i < words.size()) {
          if (!spec.empty()) spec += ' ';
          spec += words[i];
        }
        request["pipeline"] = dvs::Json(spec);
      } else {
        throw std::runtime_error("unknown reopt argument '" + word + "'");
      }
    }
  } else if (verb == "sweep") {
    need_design();
    request["type"] = dvs::Json(std::string("sweep"));
    for (std::size_t i = 1; i < words.size(); ++i) {
      const std::string& word = words[i];
      if (word == "vlow" && i + 1 < words.size())
        request["vlow"] = dvs::Json(double_list(words[++i], "vlow"));
      else if (word == "budgets" && i + 1 < words.size())
        request["area_budgets"] =
            dvs::Json(double_list(words[++i], "budgets"));
      else if (word == "algos" && i + 1 < words.size())
        request["algos"] = dvs::Json(algo_list(words[++i]));
      else
        throw std::runtime_error("unknown sweep argument '" + word + "'");
    }
  } else if (verb == "close") {
    if (words.size() != 1)
      throw std::runtime_error("close takes no arguments");
    need_design();
    request["type"] = dvs::Json(std::string("close_design"));
  } else {
    throw std::runtime_error("unknown session command '" + verb + "'");
  }
  return dvs::Json(std::move(request)).dump();
}

/// Runs a session script over one connection, fail-fast: the first
/// error response (or unparsable script line) stops the script.
int run_session(const Cli& cli, const std::string& path) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) throw std::runtime_error("cannot open " + path);
    in = &file;
  }
  dvs::Socket socket = connect(cli);
  dvs::LineReader reader(&socket, 64u << 20);
  std::string line;
  std::string current;  // last opened design handle
  int lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::string request;
    if (line[start] == '{') {
      request = line.substr(start);
    } else {
      std::vector<std::string> words;
      std::istringstream stream(line);
      std::string word;
      while (stream >> word) words.push_back(word);
      try {
        request = session_request(words, current);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "dvs-client: %s:%d: %s\n", path.c_str(),
                     lineno, e.what());
        return 1;
      }
    }
    socket.send_all(request + "\n");
    std::string reply;
    if (!reader.read_line(&reply)) {
      std::fprintf(stderr, "dvs-client: %s:%d: connection closed\n",
                   path.c_str(), lineno);
      return 2;
    }
    const dvs::Json json = dvs::Json::parse(reply);
    const dvs::Json* type = json.find("type");
    if (type && type->as_string() == "design_opened")
      current = json.find("design")->as_string();
    bool ok;
    if (cli.raw_json) {
      std::printf("%s\n", reply.c_str());
      ok = !type || type->as_string() != "error";
    } else {
      ok = print_response(reply);
    }
    if (!ok) {
      std::fprintf(stderr, "dvs-client: %s:%d: script stopped\n",
                   path.c_str(), lineno);
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);

  // Connection / output flags may appear anywhere before the command.
  std::size_t at = 0;
  auto value = [&](const char* flag) -> std::string {
    if (at + 1 >= args.size()) {
      std::fprintf(stderr, "dvs-client: %s needs a value\n", flag);
      std::exit(1);
    }
    return args[++at];
  };
  std::string command;
  std::string session_path;
  for (; at < args.size(); ++at) {
    const std::string& arg = args[at];
    if (arg == "--port")
      cli.port = std::atoi(value("--port").c_str());
    else if (arg == "--host")
      cli.host = value("--host");
    else if (arg == "--unix")
      cli.unix_path = value("--unix");
    else if (arg == "--json")
      cli.raw_json = true;
    else if (arg == "--retries")
      cli.retries = std::atoi(value("--retries").c_str());
    else if (arg == "--backoff-ms")
      cli.backoff_ms = std::atoi(value("--backoff-ms").c_str());
    else if (arg == "--session") {
      session_path = value("--session");
      command = "session";
      ++at;
      break;
    } else if (arg == "--stats") {
      // Flag spelling of the stats command, for script ergonomics:
      //   dvs-client --port N --stats
      command = "stats";
      ++at;
      break;
    } else if (arg == "--metrics") {
      command = "metrics";
      ++at;
      break;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      command = arg;
      ++at;
      break;
    } else {
      std::fprintf(stderr, "dvs-client: unknown flag '%s'\n", arg.c_str());
      usage(stderr);
      return 1;
    }
  }
  if (command.empty()) {
    usage(stderr);
    return 1;
  }

  try {
    if (command == "session") {
      if (at != args.size()) {
        std::fprintf(stderr, "dvs-client: --session takes no arguments\n");
        return 1;
      }
      return run_session(cli, session_path);
    }

    dvs::Json::Object request;
    int expected_responses = 1;  // batch reads until batch_done instead

    if (command == "ping" || command == "stats" || command == "metrics" ||
        command == "shutdown") {
      if (at != args.size()) {
        std::fprintf(stderr, "dvs-client: %s takes no arguments\n",
                     command.c_str());
        return 1;
      }
      request["type"] = dvs::Json(command);
    } else if (command == "optimize" || command == "batch") {
      request["type"] = dvs::Json(command);
      dvs::Json::Object options;
      std::string file;
      for (; at < args.size(); ++at) {
        const std::string& arg = args[at];
        if (arg == "--circuit")
          request["circuit"] = dvs::Json(value("--circuit"));
        else if (arg == "--circuits") {
          dvs::Json::Array names;
          std::istringstream list(value("--circuits"));
          std::string name;
          while (std::getline(list, name, ','))
            if (!name.empty()) names.emplace_back(name);
          request["circuits"] = dvs::Json(std::move(names));
        } else if (arg == "--all")
          request["all"] = dvs::Json(true);
        else if (arg == "--max-gates")
          request["max_gates"] =
              dvs::Json(std::atoi(value("--max-gates").c_str()));
        else if (arg == "--format")
          request["format"] = dvs::Json(value("--format"));
        else if (arg == "--algo") {
          dvs::Json::Array algos;
          algos.emplace_back(value("--algo"));
          request["algos"] = dvs::Json(std::move(algos));
        } else if (arg == "--pipeline")
          request["pipeline"] = dvs::Json(value("--pipeline"));
        else if (arg == "--seed")
          options["seed"] = dvs::Json(static_cast<std::uint64_t>(
              std::strtoull(value("--seed").c_str(), nullptr, 0)));
        else if (arg == "--vectors")
          options["vectors"] =
              dvs::Json(std::atoi(value("--vectors").c_str()));
        else if (arg == "--freq-mhz")
          options["freq_mhz"] =
              dvs::Json(std::atof(value("--freq-mhz").c_str()));
        else if (arg == "--tspec-relax")
          options["tspec_relax"] =
              dvs::Json(std::atof(value("--tspec-relax").c_str()));
        else if (arg == "--supplies") {
          // Validate locally with the daemon's own schema so a bad
          // ladder fails fast with the exact protocol error text.
          const std::string ladder = value("--supplies");
          dvs::parse_supply_ladder(ladder);  // throws SupplyError
          options["supplies"] = dvs::Json(ladder);
        }
        else if (arg == "--return-netlist")
          request["return_netlist"] = dvs::Json(true);
        else if (arg == "--no-cache")
          request["use_cache"] = dvs::Json(false);
        else if (arg == "--deadline-ms")
          request["deadline_ms"] = dvs::Json(static_cast<std::uint64_t>(
              std::strtoull(value("--deadline-ms").c_str(), nullptr, 0)));
        else if (arg == "--trace")
          request["trace"] = dvs::Json(true);
        else if (!arg.empty() && arg[0] != '-' && file.empty())
          file = arg;
        else {
          std::fprintf(stderr, "dvs-client: unknown argument '%s'\n",
                       arg.c_str());
          return 1;
        }
      }
      if (!options.empty())
        request["options"] = dvs::Json(std::move(options));
      if (command == "optimize") {
        if (!file.empty())
          request["netlist"] = dvs::Json(read_file(file));
        if (request.count("netlist") == request.count("circuit")) {
          std::fprintf(stderr,
                       "dvs-client: optimize needs a FILE or --circuit\n");
          return 1;
        }
      } else {
        expected_responses = -1;  // stream until batch_done
      }
    } else {
      std::fprintf(stderr, "dvs-client: unknown command '%s'\n",
                   command.c_str());
      usage(stderr);
      return 1;
    }

    const std::string request_line =
        dvs::Json(std::move(request)).dump() + "\n";
    // --retries: a refused/reset connection or a structured 'overloaded'
    // rejection reconnects and resubmits with exponential backoff.
    // Requests are either read-only or idempotent (optimize/batch are
    // cached pure functions), so resubmission is always safe — but once
    // any output has been printed, the retry window is over: replaying a
    // partially-streamed batch would duplicate rows.
    dvs::BackoffPolicy backoff;
    backoff.base_ms = cli.backoff_ms > 0 ? cli.backoff_ms : 1;
    backoff.max_ms = backoff.base_ms * 32.0;
    backoff.seed = static_cast<std::uint64_t>(::getpid());
    for (int attempt = 0;; ++attempt) {
      bool printed = false;
      std::string retry_reason;
      try {
        dvs::Socket socket = connect(cli);
        socket.send_all(request_line);
        dvs::LineReader reader(&socket, 64u << 20);
        std::string line;
        bool ok = true;
        int remaining = expected_responses;
        while ((remaining != 0) && reader.read_line(&line)) {
          if (line.empty()) continue;
          const dvs::Json json = dvs::Json::parse(line);
          const dvs::Json* type = json.find("type");
          const std::string type_name = type ? type->as_string() : "?";
          if (!printed && attempt < cli.retries && type_name == "error") {
            const dvs::Json* code = json.find("code");
            if (code != nullptr && code->as_string() == "overloaded") {
              retry_reason = "daemon overloaded";
              break;
            }
          }
          printed = true;
          if (cli.raw_json) {
            std::printf("%s\n", line.c_str());
            if (type_name == "error" || json.find("error") != nullptr)
              ok = false;
          } else {
            ok = print_response(line) && ok;
          }
          if (remaining > 0) --remaining;
          // Batch stream: stop after batch_done / top-level error.
          if (remaining < 0 &&
              (type_name == "batch_done" || type_name == "error"))
            break;
        }
        if (retry_reason.empty()) return ok ? 0 : 2;
      } catch (const dvs::SocketError& e) {
        if (printed || attempt >= cli.retries) throw;
        retry_reason = e.what();
      }
      const int delay_ms = static_cast<int>(backoff.delay_ms(attempt));
      std::fprintf(stderr, "dvs-client: %s; retry %d/%d in %d ms\n",
                   retry_reason.c_str(), attempt + 1, cli.retries,
                   delay_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dvs-client: %s\n", e.what());
    return 1;
  }
}
