#include "support/trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace dvs {

namespace {

double ms_between(RequestTrace::Clock::time_point a,
                  RequestTrace::Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

void RequestTrace::add(const std::string& name, Clock::time_point start,
                       Clock::time_point end, int depth) {
  TraceSpan span;
  span.name = name;
  span.depth = depth;
  span.start_ms = ms_between(epoch_, start);
  span.dur_ms = ms_between(start, end);
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

void RequestTrace::add_offset(const std::string& name, double start_ms,
                              double dur_ms, int depth) {
  TraceSpan span;
  span.name = name;
  span.depth = depth;
  span.start_ms = start_ms;
  span.dur_ms = dur_ms;
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> RequestTrace::spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    return std::tie(a.start_ms, a.depth, a.name) <
           std::tie(b.start_ms, b.depth, b.name);
  });
  return out;
}

Json RequestTrace::json() const {
  Json::Array arr;
  for (const TraceSpan& span : spans()) {
    Json::Object obj;
    obj["name"] = Json(span.name);
    obj["depth"] = Json(static_cast<std::int64_t>(span.depth));
    obj["start_ms"] = Json(span.start_ms);
    obj["dur_ms"] = Json(span.dur_ms);
    arr.push_back(Json(std::move(obj)));
  }
  return Json(std::move(arr));
}

double RequestTrace::phase_total_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const TraceSpan& span : spans_)
    if (span.depth == 0) total += span.dur_ms;
  return total;
}

TraceLog::TraceLog(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "a");
  if (!file_) throw std::runtime_error("trace log: cannot open " + path);
}

TraceLog::~TraceLog() {
  if (file_) std::fclose(file_);
}

void TraceLog::write(const Json& record) {
  const std::string line = record.dump();
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

}  // namespace dvs
