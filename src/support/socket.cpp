#include "support/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <ctime>
#include <mutex>

namespace dvs {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

int new_stream_socket(int family) {
  ignore_sigpipe();
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) fail_errno("socket()");
  return fd;
}

/// Drives a connect() to completion on `fd`, tolerating EINTR and
/// enforcing an optional wall-clock timeout.  POSIX forbids restarting
/// an interrupted connect(); the portable recipe is to wait for
/// writability and read the pending status out of SO_ERROR.
void finish_connect(int fd, const sockaddr* addr, socklen_t addr_len,
                    int timeout_ms, const std::string& what) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    fail_errno("fcntl(" + what + ")");
  const int rc = ::connect(fd, addr, addr_len);
  if (rc < 0 && errno != EINPROGRESS && errno != EINTR)
    fail_errno("connect(" + what + ")");
  if (rc < 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    pollfd pfd{fd, POLLOUT, 0};
    while (true) {
      int wait_ms = -1;
      if (timeout_ms > 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        wait_ms = static_cast<int>(left.count());
        if (wait_ms < 0) wait_ms = 0;
      }
      const int polled = ::poll(&pfd, 1, wait_ms);
      if (polled > 0) break;
      if (polled == 0)
        throw SocketTimeoutError("connect(" + what + ") timed out after " +
                                 std::to_string(timeout_ms) + "ms");
      if (errno != EINTR) fail_errno("poll(connect " + what + ")");
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0)
      fail_errno("getsockopt(SO_ERROR)");
    if (err != 0) {
      errno = err;
      fail_errno("connect(" + what + ")");
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) fail_errno("fcntl(" + what + ")");
}

sockaddr_in loopback_addr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path)
    throw SocketError("unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void ignore_sigpipe() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(std::string_view data) {
  if (!valid()) throw SocketError("send on closed socket");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send()");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(char* buffer, std::size_t max) {
  if (!valid()) throw SocketError("recv on closed socket");
  while (true) {
    const ssize_t n = ::recv(fd_, buffer, max, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      throw SocketTimeoutError("recv() timed out");
    fail_errno("recv()");
  }
}

void Socket::set_recv_timeout_ms(int timeout_ms) {
  if (!valid()) throw SocketError("set_recv_timeout_ms on closed socket");
  if (timeout_ms < 0) timeout_ms = 0;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) < 0)
    fail_errno("setsockopt(SO_RCVTIMEO)");
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_tcp(const std::string& host, int port,
                           int timeout_ms) {
  Socket socket(new_stream_socket(AF_INET));
  sockaddr_in addr = loopback_addr(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw SocketError("bad IPv4 address: " + host);
  finish_connect(socket.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr,
                 timeout_ms, host + ":" + std::to_string(port));
  return socket;
}

Socket Socket::connect_unix(const std::string& path, int timeout_ms) {
  sockaddr_un addr = unix_addr(path);
  Socket socket(new_stream_socket(AF_UNIX));
  finish_connect(socket.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr,
                 timeout_ms, path);
  return socket;
}

bool LineReader::read_line(std::string* line) {
  const auto too_long = [this]() -> LineTooLongError {
    return LineTooLongError("line too long: exceeds the " +
                            std::to_string(max_line_bytes_) +
                            "-byte limit");
  };
  while (true) {
    // A complete line already buffered?
    const std::size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      // The cap applies to complete lines too — a line that fits in one
      // recv() chunk must not slip past it just because its newline
      // already arrived.
      if (nl > max_line_bytes_) throw too_long();
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return true;
    }
    scanned_ = buffer_.size();
    if (eof_) {
      if (buffer_.empty()) return false;
      if (buffer_.size() > max_line_bytes_) throw too_long();
      line->assign(std::move(buffer_));
      buffer_.clear();
      scanned_ = 0;
      return true;
    }
    if (buffer_.size() > max_line_bytes_) throw too_long();
    char chunk[16384];
    const std::size_t n = socket_->recv_some(chunk, sizeof chunk);
    if (n == 0)
      eof_ = true;
    else
      buffer_.append(chunk, n);
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

ListenSocket ListenSocket::listen_tcp(int port, int backlog) {
  ListenSocket ls;
  ls.fd_ = new_stream_socket(AF_INET);
  const int one = 1;
  ::setsockopt(ls.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  if (::bind(ls.fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    fail_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  if (::listen(ls.fd_, backlog) < 0) fail_errno("listen()");
  socklen_t len = sizeof addr;
  if (::getsockname(ls.fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    fail_errno("getsockname()");
  ls.port_ = ntohs(addr.sin_port);
  return ls;
}

ListenSocket ListenSocket::listen_unix(const std::string& path,
                                       int backlog) {
  ListenSocket ls;
  const sockaddr_un addr = unix_addr(path);
  // Remove a stale socket from a previous run — but only a socket; an
  // operator typo must not silently delete a regular file.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode))
      throw SocketError(path + " exists and is not a socket");
    ::unlink(path.c_str());
  }
  ls.fd_ = new_stream_socket(AF_UNIX);
  if (::bind(ls.fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0)
    fail_errno("bind(" + path + ")");
  if (::listen(ls.fd_, backlog) < 0) fail_errno("listen()");
  ls.unix_path_ = path;
  return ls;
}

Socket ListenSocket::accept_connection() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // peer reset before we accepted; next please
        continue;
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM: {
        // Resource pressure is transient: back off instead of killing
        // the accept loop (which would leave a deaf daemon running).
        timespec delay{0, 50'000'000};  // 50 ms
        ::nanosleep(&delay, nullptr);
        continue;
      }
      // Linux surfaces pending per-connection network errors through
      // accept(); they condemn that one connection, never the listener.
      case ENETDOWN:
      case EPROTO:
      case ENOPROTOOPT:
      case EHOSTDOWN:
      case EHOSTUNREACH:
      case ENETUNREACH:
      case EOPNOTSUPP:
        continue;
      case EBADF:
      case EINVAL:
        // After shutdown_listener()/close(): orderly exit.
        return Socket();
      default:
        fail_errno("accept()");
    }
  }
}

void ListenSocket::shutdown_listener() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  }
}

}  // namespace dvs
