#include "support/units.hpp"

#include <cstdio>

namespace dvs {

std::string format_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string format_percent(double x) { return format_fixed(100.0 * x, 2); }

}  // namespace dvs
