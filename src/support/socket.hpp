// Thin POSIX socket layer for the dvsd service: RAII file descriptors,
// loopback-TCP and Unix-domain listeners, blocking client connects, and a
// buffered newline-delimited reader with a hard line-length cap (the wire
// protocol is NDJSON, so "one line" is "one message" and an unbounded line
// is an attack, not a request).
//
// All helpers throw SocketError on failure and never raise SIGPIPE
// (sends use MSG_NOSIGNAL).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace dvs {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& message)
      : std::runtime_error("socket: " + message) {}

 protected:
  /// Tag for subclasses whose what() goes on the wire verbatim and must
  /// not carry the "socket: " transport prefix.
  struct Verbatim {};
  SocketError(Verbatim, const std::string& message)
      : std::runtime_error(message) {}
};

/// A blocking operation exceeded its configured timeout (connect with a
/// timeout_ms, or a recv after set_recv_timeout_ms).  Distinct from other
/// I/O failures so retry loops can treat "slow" differently from "dead".
class SocketTimeoutError : public SocketError {
 public:
  explicit SocketTimeoutError(const std::string& message)
      : SocketError(message) {}
};

/// A line exceeded LineReader's cap.  Distinct from I/O failures so a
/// server can still send a rejection message before dropping the
/// connection (the unread remainder of the line makes resync impossible).
/// what() is the protocol-verbatim "line too long ..." error text.
class LineTooLongError : public SocketError {
 public:
  explicit LineTooLongError(const std::string& message)
      : SocketError(Verbatim{}, message) {}
};

/// Owning wrapper around a connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer (retrying short writes / EINTR).
  void send_all(std::string_view data);

  /// Reads up to `max` bytes; 0 on orderly peer close.  Throws on error;
  /// SocketTimeoutError if a recv timeout is set and expires.
  std::size_t recv_some(char* buffer, std::size_t max);

  /// Arms SO_RCVTIMEO: a recv that sits idle this long throws
  /// SocketTimeoutError instead of blocking forever.  0 disarms.
  void set_recv_timeout_ms(int timeout_ms);

  /// Half-closes both directions, unblocking a peer (or own) blocked
  /// recv; safe to call from another thread and on an invalid socket.
  void shutdown_both() noexcept;

  void close() noexcept;

  /// Blocking connect.  EINTR is handled (the in-flight connect is
  /// finished via poll + SO_ERROR, never restarted).  With timeout_ms > 0
  /// a connect that takes longer throws SocketTimeoutError.
  static Socket connect_tcp(const std::string& host, int port,
                            int timeout_ms = 0);
  static Socket connect_unix(const std::string& path, int timeout_ms = 0);

 private:
  int fd_ = -1;
};

/// Installs a one-time, process-wide SIG_IGN for SIGPIPE.  Called
/// automatically by every socket constructor path (sends also pass
/// MSG_NOSIGNAL, but third-party code writing to a dead fd must not be
/// able to kill the daemon either); exposed for tools that want it
/// before any socket exists.
void ignore_sigpipe();

/// Buffered reader returning one '\n'-terminated line at a time.
class LineReader {
 public:
  explicit LineReader(Socket* socket, std::size_t max_line_bytes)
      : socket_(socket), max_line_bytes_(max_line_bytes) {}

  /// Next line without its trailing '\n' (a final unterminated chunk
  /// before EOF counts as a line).  False on EOF.  Throws SocketError on
  /// I/O errors or when a line exceeds the cap.
  bool read_line(std::string* line);

 private:
  Socket* socket_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t scanned_ = 0;  // prefix of buffer_ known to hold no '\n'
  bool eof_ = false;
};

/// Listening socket (TCP on 127.0.0.1, or a Unix-domain path).
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { close(); }
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned; see port()).
  static ListenSocket listen_tcp(int port, int backlog = 64);
  /// Binds (and later unlinks) a Unix-domain socket at `path`.
  static ListenSocket listen_unix(const std::string& path,
                                  int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  /// Actual bound TCP port (0 for Unix sockets).
  int port() const { return port_; }

  /// Blocks for one connection.  Returns an invalid Socket when the
  /// listener has been shut down (the accept loop's exit signal).
  /// Transient failures — EINTR from a stray signal, ECONNABORTED,
  /// fd/memory pressure, the async-network-error family — are retried
  /// here and never surface; a genuinely unexpected errno throws
  /// SocketError so the caller can log and decide, instead of the
  /// daemon silently going deaf.
  Socket accept_connection();

  /// Unblocks accept_connection() from any thread.
  void shutdown_listener() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  int port_ = 0;
  std::string unix_path_;
};

}  // namespace dvs
