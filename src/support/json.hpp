// Minimal JSON value: parser and serializer for the dvsd wire protocol
// (newline-delimited JSON requests/responses) and for canonicalizing flow
// options into cache keys.  Objects are stored in a std::map, so dump()
// always emits keys in sorted order — serializing the same logical value
// twice yields byte-identical text, which is what makes hashing a dumped
// document a sound cache-key ingredient.
//
// Integers are kept exact: a token without '.', 'e' or 'E' is stored as a
// 64-bit integer (unsigned when non-negative), so RNG seeds survive the
// round trip that a double would mangle.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dvs {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& message)
      : std::runtime_error("json: " + message) {}
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(Num::from_double(d)) {}
  Json(int i) : type_(Type::kNumber), num_(Num::from_int(i)) {}
  Json(std::int64_t i) : type_(Type::kNumber), num_(Num::from_int(i)) {}
  Json(std::uint64_t u) : type_(Type::kNumber), num_(Num::from_uint(u)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  /// Parses one JSON document; trailing non-space content is an error.
  /// Throws JsonError on malformed input (bounded nesting depth).
  static Json parse(std::string_view text);

  /// Compact serialization (no whitespace, sorted object keys).
  std::string dump() const;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;

 private:
  struct Num {
    enum class Repr { kDouble, kInt, kUint } repr = Repr::kDouble;
    double dbl = 0.0;
    std::int64_t int_v = 0;
    std::uint64_t uint_v = 0;
    static Num from_double(double d) { return {Repr::kDouble, d, 0, 0}; }
    static Num from_int(std::int64_t i);
    static Num from_uint(std::uint64_t u) {
      return {Repr::kUint, 0.0, 0, u};
    }
  };

  void dump_to(std::string* out) const;

  Type type_;
  bool bool_ = false;
  Num num_;
  std::string string_;
  Array array_;
  Object object_;

  friend class JsonParser;
};

/// Appends `s` to `out` as a quoted JSON string (escapes per RFC 8259).
void json_append_quoted(std::string* out, std::string_view s);

/// FNV-1a 64-bit over raw bytes — the hash behind cache-key components.
std::uint64_t fnv1a64(std::string_view bytes);

/// Shortest %g spelling that strtod's back to the same bits — the
/// double spelling shared by every canonical spec (pipeline options,
/// supply ladders), so "1e-09" never becomes 17-digit noise and
/// parse(canonical) stays a fixpoint.
std::string shortest_double_spelling(double v);

}  // namespace dvs
