#pragma once

// A process-wide observability substrate: a lock-sharded registry of named,
// labeled Counters, Gauges, and log-bucketed Histograms, dumped in the
// Prometheus text exposition format (version 0.0.4).
//
// Two usage patterns coexist:
//   * registry-native instruments — call-site code holds a Counter*/Gauge*/
//     Histogram* handle and increments/observes directly (hot paths pay one
//     relaxed atomic op);
//   * mirrored instruments — subsystems that keep their own authoritative
//     counters (ResultCache, DiskCacheEngine, ThreadPool) are copied into
//     registry instruments by a registered collector callback that runs just
//     before every exposition/read, so `stats` and `metrics` can never
//     disagree about a value.
//
// Instrument handles are stable for the registry's lifetime: families live in
// a std::map per shard and instruments are heap-allocated, so neither insert
// nor rehash ever moves them.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dvs {

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing 64-bit counter. `set` exists solely for mirrored
// instruments whose authoritative value lives elsewhere; native call sites
// must only ever `inc`.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Double-valued gauge. add() is a CAS loop so it works on toolchains without
// std::atomic<double>::fetch_add.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// A point-in-time copy of a histogram, safe to merge and query off-thread.
// `bounds` are ascending inclusive upper bounds (Prometheus `le` semantics:
// bucket i counts values v with v <= bounds[i]); `counts` has one extra
// trailing slot for the +Inf overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  // Adds `other` into this snapshot; bucket layouts must match.
  void merge(const HistogramSnapshot& other);

  // Estimates the q-quantile (q in [0,1]) by linear interpolation inside the
  // bucket that straddles the target rank. Values past the last finite bound
  // clamp to it. Returns 0 for an empty histogram.
  double quantile(double q) const;
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

  // `count` bounds starting at `start`, each `growth` times the previous.
  static std::vector<double> exponential_bounds(double start, double growth,
                                                int count);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Escapes a label value for the exposition format: backslash, double quote,
// and newline.
std::string escape_label_value(const std::string& value);

// Renders labels as `{k="v",k2="v2"}` with keys sorted; empty labels render
// as an empty string. Exposed for tests.
std::string render_label_set(const MetricLabels& labels);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. Re-requesting the same (name, labels) returns the same
  // instrument; requesting an existing family with a different instrument
  // kind throws std::logic_error.
  Counter& counter(const std::string& name, const std::string& help,
                   const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const MetricLabels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const MetricLabels& labels = {},
                       std::vector<double> bounds = default_latency_bounds_ms());

  // Registers a callback that mirrors external counters into registry
  // instruments; all collectors run at the top of every exposition().
  void register_collector(std::function<void()> fn);
  void collect();

  // Prometheus text exposition (collect() included). Families are emitted
  // sorted by name, instruments sorted by rendered label set, so the output
  // is deterministic.
  std::string exposition();

  // Log2 buckets from 1 µs to ~67 s, expressed in milliseconds.
  static std::vector<double> default_latency_bounds_ms();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    // Keyed by rendered label set so lookup and output order coincide.
    std::map<std::string, Instrument> instruments;
  };

  struct Shard {
    std::mutex mutex;
    std::map<std::string, Family> families;
  };

  Instrument& instrument(const std::string& name, const std::string& help,
                         Kind kind, const MetricLabels& labels);
  Shard& shard_for(const std::string& name);

  static constexpr int kShards = 8;
  std::array<Shard, kShards> shards_;
  std::mutex collectors_mutex_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace dvs
