// Deterministic fault injection for the distributed service path.
//
// Failure handling is first-class tested code here, so the failures
// themselves must be first-class reproducible.  A FaultInjector is
// configured from a compact spec string (CLI `--fault-inject` or the
// DVS_FAULT_INJECT environment variable) naming *points* in the code
// and the *action* to take there with some probability:
//
//     point=action[@probability]
//
// joined by commas, plus two settings entries:
//
//     seed=N        deterministic decision seed (default 1)
//     stall_ms=N    how long a `stall` action sleeps (default 60000)
//
// Actions: `drop-connection`, `stall`, `corrupt-reply`,
// `die-after-accept`.  Probability defaults to 1.  The decision for
// the i-th arrival at a point is a pure function of
// (seed, fnv1a(point), i), so a fixed seed replays the exact same
// fault schedule across runs regardless of thread interleaving.
//
// Instrumented points (worker side):
//   register     evaluated after the scheduler acknowledges
//                registration (`die-after-accept` drops the channel)
//   job-accept   evaluated when a leased job arrives
//                (`drop-connection` / `die-after-accept` close the
//                channel before executing)
//   job-reply    evaluated before sending a result (`stall` sleeps
//                stall_ms holding the lease, `corrupt-reply` flips a
//                byte of the body so the checksum mismatches,
//                `drop-connection` closes instead of replying)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace dvs {

class FaultInjector {
 public:
  enum class Action {
    kNone,
    kDropConnection,
    kStall,
    kCorruptReply,
    kDieAfterAccept,
  };

  /// Disabled injector: at() always returns kNone.
  FaultInjector() = default;

  /// Parses a spec string; throws std::runtime_error with the exact
  /// grammar on any malformed entry.  An empty spec yields a disabled
  /// injector.  Copies share the underlying arrival counters.
  static FaultInjector parse(const std::string& spec);

  /// parse(getenv("DVS_FAULT_INJECT")) — disabled when unset.
  static FaultInjector from_env();

  bool enabled() const { return state_ != nullptr; }

  /// Decision for this arrival at `point`; increments the point's
  /// arrival counter.  kNone when disabled or no rule fires.
  Action at(const std::string& point);

  int stall_ms() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

/// Human-readable action name for logs and error messages.
const char* fault_action_name(FaultInjector::Action action);

}  // namespace dvs
