// Published per-circuit results from the paper's Table 1 and Table 2,
// carried alongside measured results so every report can print
// paper-vs-measured columns.
#pragma once

namespace dvs {

struct PaperRow {
  double org_pwr_uw = 0.0;   // Table 1, OrgPwr
  double cvs_pct = 0.0;      // Table 1, CVS improvement %
  double dscale_pct = 0.0;   // Table 1, Dscale improvement %
  double gscale_pct = 0.0;   // Table 1, Gscale improvement %
  double cpu_s = 0.0;        // Table 1, CPU seconds (SUN Ultra SPARC)
  double cvs_ratio = 0.0;    // Table 2, CVS low-Vdd gate ratio
  double dscale_ratio = 0.0; // Table 2, Dscale ratio
  double gscale_ratio = 0.0; // Table 2, Gscale ratio
  int sizing_count = 0;      // Table 2, resized gates
  double area_increase = 0.0;  // Table 2, area increase ratio
};

}  // namespace dvs
