#include "support/backoff.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace dvs {

double BackoffPolicy::delay_ms(int attempt) const {
  double cap = base_ms;
  for (int i = 0; i < attempt && cap < max_ms; ++i) cap *= multiplier;
  cap = std::min(cap, max_ms);
  cap = std::max(cap, 0.0);
  Rng rng(mix_seed(seed, static_cast<std::uint64_t>(attempt)));
  return cap * 0.5 * (1.0 + rng.next_double());
}

}  // namespace dvs
