#include "support/thread_pool.hpp"

#include <atomic>

#include "support/contracts.hpp"

namespace dvs {

namespace {

thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_ = std::vector<Worker>(num_threads);
  for (int i = 0; i < num_threads; ++i)
    workers_[i].thread = std::thread([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (Worker& w : workers_) w.thread.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DVS_EXPECTS(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A task submitted from inside a worker stays local (back of own
    // deque: depth-first, cache-warm); external submissions round-robin.
    const int target = tls_worker_index >= 0
                           ? tls_worker_index
                           : (next_victim_++ % num_threads());
    workers_[target].deque.push_back(std::move(task));
    ++pending_;
    if (pending_ > peak_pending_) peak_pending_ = pending_;
  }
  work_available_.notify_one();
}

bool ThreadPool::next_task(int self, std::function<void()>* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!workers_[self].deque.empty()) {
      *out = std::move(workers_[self].deque.back());
      workers_[self].deque.pop_back();
      return true;
    }
    for (int k = 1; k < num_threads(); ++k) {
      const int victim = (self + k) % num_threads();
      if (!workers_[victim].deque.empty()) {
        *out = std::move(workers_[victim].deque.front());
        workers_[victim].deque.pop_front();
        return true;
      }
    }
    if (stopping_) return false;
    work_available_.wait(lock);
  }
}

void ThreadPool::worker_loop(int self) {
  tls_worker_index = self;
  std::function<void()> task;
  while (next_task(self, &task)) {
    task();
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --pending_;
      ++tasks_executed_;
      DVS_ASSERT(pending_ >= 0);
      if (pending_ == 0) idle_.notify_all();
    }
  }
  tls_worker_index = -1;
}

void ThreadPool::wait_idle() {
  // Waiting from inside a task would deadlock: the waiter's own task can
  // never retire while it blocks here.
  DVS_EXPECTS(tls_worker_index == -1);
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

int ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

ThreadPoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ThreadPoolStats out;
  out.threads = num_threads();
  out.pending = pending_;
  out.peak_pending = peak_pending_;
  out.tasks_executed = tasks_executed_;
  return out;
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // One claimed index per grab keeps load balanced under wildly uneven
  // per-iteration cost (the benchmark matrix spans 3 orders of magnitude).
  auto counter = std::make_shared<std::atomic<int>>(0);
  const int spawn = std::min(n, num_threads());
  for (int t = 0; t < spawn; ++t) {
    submit([counter, n, &fn] {
      for (int i = counter->fetch_add(1); i < n;
           i = counter->fetch_add(1))
        fn(i);
    });
  }
  wait_idle();
}

}  // namespace dvs
