#include "support/rng.hpp"

#include "support/contracts.hpp"

namespace dvs {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DVS_EXPECTS(bound >= 1);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

int Rng::next_int(int lo, int hi) {
  DVS_EXPECTS(lo <= hi);
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // Offsetting by (stream + 1) golden-ratio steps keeps mix_seed(s, 0)
  // distinct from splitmix64's own first output for seed s.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL * stream;
  return splitmix64(x);
}

}  // namespace dvs
