#pragma once

// Per-request tracing: a RequestTrace accumulates named spans measured
// against a single epoch (the moment the request line arrived), and renders
// them as a JSON array suitable for splicing into a response or an NDJSON
// trace log.
//
// Span depth encodes the contract the service relies on:
//   * depth 0 — request *phases* (parse, admission, queue_wait, resolve,
//     cache_lookup, execute, store, respond). Phases are defined by
//     consecutive timestamps, so they never overlap and their durations sum
//     to the request wall time (modulo the few instructions between clock
//     reads).
//   * depth 1 — detail spans nested inside a phase (per-pass execute times
//     from the pipeline runner). These may tile only part of their parent.
//
// RequestTrace is internally locked: batch items append spans from pool
// worker threads while the session thread owns the trace.

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace dvs {

struct TraceSpan {
  std::string name;
  int depth = 0;
  double start_ms = 0.0;  // offset from the trace epoch
  double dur_ms = 0.0;
};

class RequestTrace {
 public:
  using Clock = std::chrono::steady_clock;

  explicit RequestTrace(Clock::time_point epoch) : epoch_(epoch) {}

  Clock::time_point epoch() const { return epoch_; }

  void add(const std::string& name, Clock::time_point start,
           Clock::time_point end, int depth = 0);
  void add_offset(const std::string& name, double start_ms, double dur_ms,
                  int depth = 0);

  // Spans sorted by (start_ms, depth, name); batch workers may have appended
  // them out of order.
  std::vector<TraceSpan> spans() const;

  // JSON array of {"name","depth","start_ms","dur_ms"}, in spans() order.
  Json json() const;

  // Sum of depth-0 durations — by the tiling contract this equals the
  // request wall time.
  double phase_total_ms() const;

 private:
  mutable std::mutex mutex_;
  Clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
};

// Append-only NDJSON sink shared by every session of a daemon; one flushed
// line per write so `tail -f` and crash post-mortems see complete records.
class TraceLog {
 public:
  explicit TraceLog(const std::string& path);  // throws std::runtime_error
  ~TraceLog();
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  void write(const Json& record);
  const std::string& path() const { return path_; }

 private:
  std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace dvs
