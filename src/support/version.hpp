#pragma once

// Single source of truth for the build version reported by `stats`,
// `dvsd_build_info`, and client banners. Bump when the wire protocol or
// report schema changes in a way operators should be able to see from a
// scrape.

namespace dvs {

inline constexpr const char kDvsVersion[] = "0.7.0";

}  // namespace dvs
