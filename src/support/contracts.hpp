// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations abort with a
// message; they indicate programmer error, not recoverable conditions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dvs {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace dvs

#define DVS_EXPECTS(cond)                                              \
  ((cond) ? static_cast<void>(0)                                       \
          : ::dvs::contract_failure("Precondition", #cond, __FILE__,   \
                                    __LINE__))

#define DVS_ENSURES(cond)                                              \
  ((cond) ? static_cast<void>(0)                                       \
          : ::dvs::contract_failure("Postcondition", #cond, __FILE__,  \
                                    __LINE__))

#define DVS_ASSERT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                       \
          : ::dvs::contract_failure("Assertion", #cond, __FILE__,      \
                                    __LINE__))
