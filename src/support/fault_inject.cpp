#include "support/fault_inject.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "support/json.hpp"
#include "support/rng.hpp"

namespace dvs {

struct FaultInjector::State {
  struct Rule {
    std::string point;
    Action action = Action::kNone;
    double probability = 1.0;
  };
  std::vector<Rule> rules;
  std::uint64_t seed = 1;
  int stall_ms = 60'000;
  std::mutex mutex;
  std::unordered_map<std::string, std::uint64_t> arrivals;
};

namespace {

[[noreturn]] void bad_spec(const std::string& entry, const std::string& why) {
  throw std::runtime_error(
      "fault-inject: bad entry '" + entry + "': " + why +
      " (grammar: point=action[@prob],... with actions drop-connection|"
      "stall|corrupt-reply|die-after-accept, plus seed=N, stall_ms=N)");
}

FaultInjector::Action parse_action(const std::string& entry,
                                   const std::string& name) {
  if (name == "drop-connection") return FaultInjector::Action::kDropConnection;
  if (name == "stall") return FaultInjector::Action::kStall;
  if (name == "corrupt-reply") return FaultInjector::Action::kCorruptReply;
  if (name == "die-after-accept")
    return FaultInjector::Action::kDieAfterAccept;
  bad_spec(entry, "unknown action '" + name + "'");
}

}  // namespace

FaultInjector FaultInjector::parse(const std::string& spec) {
  FaultInjector out;
  if (spec.empty()) return out;
  auto state = std::make_shared<State>();
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size())
      bad_spec(entry, "expected key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    try {
      if (key == "seed") {
        state->seed = std::stoull(value);
        continue;
      }
      if (key == "stall_ms") {
        state->stall_ms = std::stoi(value);
        if (state->stall_ms < 0) bad_spec(entry, "stall_ms must be >= 0");
        continue;
      }
      State::Rule rule;
      rule.point = key;
      const std::size_t at = value.find('@');
      rule.action = parse_action(entry, value.substr(0, at));
      if (at != std::string::npos) {
        rule.probability = std::stod(value.substr(at + 1));
        if (rule.probability < 0.0 || rule.probability > 1.0)
          bad_spec(entry, "probability must be in [0, 1]");
      }
      state->rules.push_back(std::move(rule));
    } catch (const std::invalid_argument&) {
      bad_spec(entry, "malformed number");
    } catch (const std::out_of_range&) {
      bad_spec(entry, "number out of range");
    }
  }
  out.state_ = std::move(state);
  return out;
}

FaultInjector FaultInjector::from_env() {
  const char* spec = std::getenv("DVS_FAULT_INJECT");
  return parse(spec == nullptr ? std::string() : std::string(spec));
}

FaultInjector::Action FaultInjector::at(const std::string& point) {
  if (!state_) return Action::kNone;
  std::uint64_t arrival = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    arrival = state_->arrivals[point]++;
  }
  // One decision stream per (seed, point, arrival); rules are drawn in
  // declaration order so overlapping rules on one point resolve
  // deterministically too.
  Rng rng(mix_seed(mix_seed(state_->seed, fnv1a64(point)), arrival));
  for (const State::Rule& rule : state_->rules) {
    if (rule.point != point) continue;
    if (rng.next_double() < rule.probability) return rule.action;
  }
  return Action::kNone;
}

int FaultInjector::stall_ms() const {
  return state_ ? state_->stall_ms : 60'000;
}

const char* fault_action_name(FaultInjector::Action action) {
  switch (action) {
    case FaultInjector::Action::kNone: return "none";
    case FaultInjector::Action::kDropConnection: return "drop-connection";
    case FaultInjector::Action::kStall: return "stall";
    case FaultInjector::Action::kCorruptReply: return "corrupt-reply";
    case FaultInjector::Action::kDieAfterAccept: return "die-after-accept";
  }
  return "none";
}

}  // namespace dvs
