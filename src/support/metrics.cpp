#include "support/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/contracts.hpp"
#include "support/json.hpp"

namespace dvs {

void Gauge::add(double d) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  DVS_EXPECTS(bounds == other.bounds);
  DVS_ASSERT(counts.size() == other.counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= rank) {
      if (i >= bounds.size()) {
        // Overflow bucket has no finite upper edge; clamp to the last bound.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = (i == 0) ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac = (rank - cum) / in_bucket;
      return lo + frac * (hi - lo);
    }
    cum += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DVS_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<double> Histogram::exponential_bounds(double start, double growth,
                                                  int count) {
  DVS_EXPECTS(start > 0 && growth > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= growth;
  }
  return bounds;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_label_set(const MetricLabels& labels) {
  if (labels.empty()) return "";
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ",";
    out += sorted[i].first;
    out += "=\"";
    out += escape_label_value(sorted[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

std::vector<double> MetricsRegistry::default_latency_bounds_ms() {
  // 0.001 ms … ~67 s in powers of two: fine enough near typical cache-hit
  // latencies, wide enough for multi-second cold batches.
  return Histogram::exponential_bounds(0.001, 2.0, 27);
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(const std::string& name) {
  return shards_[fnv1a64(name) % kShards];
}

MetricsRegistry::Instrument& MetricsRegistry::instrument(
    const std::string& name, const std::string& help, Kind kind,
    const MetricLabels& labels) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [fit, inserted] = shard.families.try_emplace(name);
  Family& family = fit->second;
  if (inserted) {
    family.help = help;
    family.kind = kind;
  } else if (family.kind != kind) {
    throw std::logic_error("metric '" + name +
                           "' re-registered as a different instrument kind");
  }
  auto [iit, _] = family.instruments.try_emplace(render_label_set(labels));
  return iit->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const MetricLabels& labels) {
  Shard& shard = shard_for(name);
  Instrument& inst = instrument(name, help, Kind::kCounter, labels);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const MetricLabels& labels) {
  Shard& shard = shard_for(name);
  Instrument& inst = instrument(name, help, Kind::kGauge, labels);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const MetricLabels& labels,
                                      std::vector<double> bounds) {
  Shard& shard = shard_for(name);
  Instrument& inst = instrument(name, help, Kind::kHistogram, labels);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!inst.histogram) inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *inst.histogram;
}

void MetricsRegistry::register_collector(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(collectors_mutex_);
  collectors_.push_back(std::move(fn));
}

void MetricsRegistry::collect() {
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard<std::mutex> lock(collectors_mutex_);
    fns = collectors_;
  }
  for (const auto& fn : fns) fn();
}

namespace {

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  return shortest_double_spelling(v);
}

std::string splice_label(const std::string& rendered, const std::string& extra) {
  // Inserts an extra `k="v"` pair into an already-rendered label set.
  if (rendered.empty()) return "{" + extra + "}";
  std::string out = rendered;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

}  // namespace

std::string MetricsRegistry::exposition() {
  collect();
  // Families are gathered shard by shard into a name-sorted map so the
  // output order is independent of the shard hash.
  std::map<std::string, std::string> chunks;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, family] : shard.families) {
      std::string& out = chunks[name];
      out += "# HELP " + name + " " + family.help + "\n";
      const char* type = family.kind == Kind::kCounter   ? "counter"
                         : family.kind == Kind::kGauge   ? "gauge"
                                                         : "histogram";
      out += "# TYPE " + name + " " + std::string(type) + "\n";
      for (const auto& [label_set, inst] : family.instruments) {
        switch (family.kind) {
          case Kind::kCounter:
            if (!inst.counter) continue;
            out += name + label_set + " " + std::to_string(inst.counter->value()) + "\n";
            break;
          case Kind::kGauge:
            if (!inst.gauge) continue;
            out += name + label_set + " " + format_value(inst.gauge->value()) + "\n";
            break;
          case Kind::kHistogram: {
            if (!inst.histogram) continue;
            const HistogramSnapshot snap = inst.histogram->snapshot();
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < snap.counts.size(); ++i) {
              cum += snap.counts[i];
              const std::string le =
                  i < snap.bounds.size() ? format_value(snap.bounds[i]) : "+Inf";
              out += name + "_bucket" +
                     splice_label(label_set, "le=\"" + le + "\"") + " " +
                     std::to_string(cum) + "\n";
            }
            out += name + "_sum" + label_set + " " + format_value(snap.sum) + "\n";
            out += name + "_count" + label_set + " " + std::to_string(snap.count) + "\n";
            break;
          }
        }
      }
    }
  }
  std::string text;
  for (const auto& [name, chunk] : chunks) text += chunk;
  return text;
}

}  // namespace dvs
