// Unit conventions used across the library, plus small formatting helpers.
//
//   time         : nanoseconds (ns)
//   capacitance  : femtofarads (fF)
//   voltage      : volts (V)
//   frequency    : megahertz (MHz)
//   area         : square micrometres (um^2)
//   power        : microwatts (uW)
//
// With those choices, switching power comes out directly in microwatts:
//   P[uW] = a01 * f[MHz] * C[fF] * V[V]^2 * 1e-3
#pragma once

#include <string>

namespace dvs {

/// 1e-3 factor that converts (MHz * fF * V^2) into microwatts.
inline constexpr double kSwitchPowerToMicrowatt = 1e-3;

/// Formats `v` with `prec` digits after the decimal point.
std::string format_fixed(double v, int prec);

/// Formats a ratio `x` as a percentage with two decimals, e.g. "19.12".
std::string format_percent(double x);

}  // namespace dvs
