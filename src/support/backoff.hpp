// Bounded exponential backoff with deterministic jitter.
//
// One policy object is shared by every retry loop in the system — the
// scheduler's retry-on-different-worker dispatch, the worker agent's
// reconnect loop, and dvs-client's --retries resubmission — so the
// retry behaviour is tuned in exactly one place.  Jitter is a pure
// function of (seed, attempt): two processes with different seeds
// de-synchronize, while a fixed seed makes tests reproducible.
#pragma once

#include <cstdint>

namespace dvs {

struct BackoffPolicy {
  /// Retry attempts *after* the first try; delay_ms(a) is the pause
  /// before retry a (0-based).
  int max_retries = 2;
  double base_ms = 50.0;
  double multiplier = 2.0;
  double max_ms = 2000.0;
  std::uint64_t seed = 0;

  /// Pause before retry `attempt` (0-based): uniform in (cap/2, cap]
  /// where cap = min(max_ms, base_ms * multiplier^attempt).  The
  /// half-open lower bound keeps the expected pause growing with the
  /// exponential curve while the jitter spreads simultaneous retriers
  /// across half a period.  Deterministic in (seed, attempt).
  double delay_ms(int attempt) const;
};

}  // namespace dvs
