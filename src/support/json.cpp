#include "support/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dvs {

namespace {

/// Defense against stack exhaustion from adversarial nesting — the wire
/// protocol never needs more than a handful of levels.
constexpr int kMaxDepth = 64;

}  // namespace

Json::Num Json::Num::from_int(std::int64_t i) {
  Num n;
  if (i >= 0) {
    n.repr = Repr::kUint;
    n.uint_v = static_cast<std::uint64_t>(i);
  } else {
    n.repr = Repr::kInt;
    n.int_v = i;
  }
  return n;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_space();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError(why + " at offset " + std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_space();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object object;
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_space();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_space();
      expect(':');
      Json value = parse_value(depth + 1);
      if (!object.emplace(std::move(key), std::move(value)).second)
        fail("duplicate object key");
      skip_space();
      const char next = peek();
      ++pos_;
      if (next == '}') return Json(std::move(object));
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array array;
    skip_space();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value(depth + 1));
      skip_space();
      const char next = peek();
      ++pos_;
      if (next == ']') return Json(std::move(array));
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string* out, std::uint32_t cp) {
    if (cp <= 0x7f) {
      *out += static_cast<char>(cp);
    } else if (cp <= 0x7ff) {
      *out += static_cast<char>(0xc0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp <= 0xffff) {
      *out += static_cast<char>(0xe0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      *out += static_cast<char>(0xf0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      *out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      value <<= 4;
      if (h >= '0' && h <= '9')
        value |= static_cast<std::uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f')
        value |= static_cast<std::uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        value |= static_cast<std::uint32_t>(h - 'A' + 10);
      else
        fail("bad hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // High surrogate: must pair with a following \uDC00-\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired surrogate");
            pos_ += 2;
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xdc00 || lo > 0xdfff) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            fail("unpaired surrogate");
          }
          append_utf8(&out, cp);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    // RFC 8259 grammar, enforced strictly: -?(0|[1-9][0-9]*) frac? exp?.
    // Leniencies like "+5", "01", ".5" or "5." would let the daemon
    // accept documents every standard client rejects.
    const std::size_t start = pos_;
    bool integral = true;
    const auto digits_run = [&]() -> int {
      int n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits_run() == 0) {
      fail("malformed number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (digits_run() == 0) fail("malformed number");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits_run() == 0) fail("malformed number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    const char* token_end = token.c_str() + token.size();
    errno = 0;
    if (integral) {
      char* parsed_end = nullptr;
      if (token[0] == '-') {
        const std::int64_t v = std::strtoll(token.c_str(), &parsed_end, 10);
        if (errno != ERANGE && parsed_end == token_end) return Json(v);
      } else {
        const std::uint64_t v =
            std::strtoull(token.c_str(), &parsed_end, 10);
        if (errno != ERANGE && parsed_end == token_end) return Json(v);
      }
      errno = 0;  // out of 64-bit range: fall back to double
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token_end) fail("malformed number");
    if (errno == ERANGE && !std::isfinite(d))
      fail("number out of double range");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) { return JsonParser(text).run(); }

bool Json::as_bool() const {
  if (!is_bool()) throw JsonError("not a bool");
  return bool_;
}

double Json::as_double() const {
  if (!is_number()) throw JsonError("not a number");
  switch (num_.repr) {
    case Num::Repr::kDouble: return num_.dbl;
    case Num::Repr::kInt: return static_cast<double>(num_.int_v);
    case Num::Repr::kUint: return static_cast<double>(num_.uint_v);
  }
  return 0.0;
}

std::int64_t Json::as_int() const {
  if (!is_number()) throw JsonError("not a number");
  switch (num_.repr) {
    case Num::Repr::kDouble:
      // Guard the cast: converting an unrepresentable double is UB, and
      // these values arrive from untrusted network input.
      if (!(num_.dbl >= -9223372036854775808.0 &&
            num_.dbl < 9223372036854775808.0))
        throw JsonError("number out of int64 range");
      return static_cast<std::int64_t>(num_.dbl);
    case Num::Repr::kInt: return num_.int_v;
    case Num::Repr::kUint:
      if (num_.uint_v > static_cast<std::uint64_t>(INT64_MAX))
        throw JsonError("number out of int64 range");
      return static_cast<std::int64_t>(num_.uint_v);
  }
  return 0;
}

std::uint64_t Json::as_uint() const {
  if (!is_number()) throw JsonError("not a number");
  switch (num_.repr) {
    case Num::Repr::kDouble:
      if (num_.dbl < 0) throw JsonError("negative number as uint");
      if (!(num_.dbl < 18446744073709551616.0))
        throw JsonError("number out of uint64 range");
      return static_cast<std::uint64_t>(num_.dbl);
    case Num::Repr::kInt:
      throw JsonError("negative number as uint");
    case Num::Repr::kUint:
      return num_.uint_v;
  }
  return 0;
}

const std::string& Json::as_string() const {
  if (!is_string()) throw JsonError("not a string");
  return string_;
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw JsonError("not an array");
  return array_;
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw JsonError("not an object");
  return object_;
}

Json::Array& Json::as_array() {
  if (!is_array()) throw JsonError("not an array");
  return array_;
}

Json::Object& Json::as_object() {
  if (!is_object()) throw JsonError("not an object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void json_append_quoted(std::string* out, std::string_view s) {
  *out += '"';
  for (char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += raw;
        }
    }
  }
  *out += '"';
}

void Json::dump_to(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[40];
      switch (num_.repr) {
        case Num::Repr::kDouble:
          // JSON has no inf/nan; emitting them would corrupt the NDJSON
          // stream (and get cached).  Refuse loudly instead.
          if (!std::isfinite(num_.dbl))
            throw JsonError("cannot serialize non-finite number");
          std::snprintf(buf, sizeof buf, "%.17g", num_.dbl);
          break;
        case Num::Repr::kInt:
          std::snprintf(buf, sizeof buf, "%lld",
                        static_cast<long long>(num_.int_v));
          break;
        case Num::Repr::kUint:
          std::snprintf(buf, sizeof buf, "%llu",
                        static_cast<unsigned long long>(num_.uint_v));
          break;
      }
      *out += buf;
      break;
    }
    case Type::kString:
      json_append_quoted(out, string_);
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& item : array_) {
        if (!first) *out += ',';
        first = false;
        item.dump_to(out);
      }
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) *out += ',';
        first = false;
        json_append_quoted(out, key);
        *out += ':';
        value.dump_to(out);
      }
      *out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out);
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string shortest_double_spelling(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace dvs
