// Work-stealing thread pool for fanning independent analysis tasks (one
// circuit x algorithm cell of the benchmark matrix, batched STA queries,
// ...) across cores.  Each worker owns a deque: it pushes and pops at the
// back, and steals from the front of a sibling when its own deque drains,
// so large tasks submitted early migrate to idle workers without a global
// queue becoming the bottleneck.
//
// Determinism contract: the pool schedules *when* a task runs, never what
// it computes — tasks must not share mutable state and must derive any
// randomness from seeds fixed at submission time.  Under that contract a
// task produces bit-identical results on 1 thread and on N.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvs {

/// A consistent snapshot of the pool's load counters, taken under the pool
/// mutex so `pending <= peak_pending` always holds.
struct ThreadPoolStats {
  int threads = 0;
  int pending = 0;                  // queued + running right now
  int peak_pending = 0;             // high-water mark of `pending`
  std::uint64_t tasks_executed = 0; // tasks finished since construction
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency,
  /// floored at 1).
  explicit ThreadPool(int num_threads = 0);
  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks submitted but not yet finished (queued + running) — the
  /// pool-depth signal behind the service's `stats` report.
  int pending() const;

  /// Load counters (current depth, peak depth, total tasks retired).
  ThreadPoolStats stats() const;

  /// Enqueues a task.  Safe to call from any thread, including from inside
  /// a running task (the task lands on the calling worker's own deque).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished.
  void wait_idle();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits.  Iterations
  /// are claimed dynamically, one at a time, so uneven task sizes balance.
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;  // guarded by ThreadPool mutex
    std::thread thread;
  };

  /// Pops from the calling worker's back or steals from a sibling's
  /// front.  Returns false when the pool is stopping and no work remains.
  bool next_task(int self, std::function<void()>* out);
  void worker_loop(int self);

  std::vector<Worker> workers_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  int pending_ = 0;       // submitted but not yet finished
  int peak_pending_ = 0;  // high-water mark of pending_
  std::uint64_t tasks_executed_ = 0;  // tasks retired by worker_loop
  int next_victim_ = 0;   // round-robin submission cursor
  bool stopping_ = false;
};

}  // namespace dvs
