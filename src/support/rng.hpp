// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component of the library (random-vector power
// estimation, benchmark generators) takes an explicit Rng so that runs are
// reproducible bit-for-bit across platforms; std::mt19937 distributions are
// not guaranteed identical across standard libraries, so we roll our own
// minimal distributions as well.
#pragma once

#include <cstdint>

namespace dvs {

class Rng {
 public:
  /// Seeds the generator with splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) for bound >= 1.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability `p` of true.
  bool next_bool(double p = 0.5);

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi);

 private:
  std::uint64_t s_[4];
};

/// Derives one deterministic child seed from a (parent seed, stream)
/// pair via the splitmix64 finalizer — the canonical way this library
/// keys independent RNG streams (per benchmark circuit, per suite task).
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

}  // namespace dvs
