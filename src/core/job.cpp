#include "core/job.hpp"

#include <utility>

#include "opt/passes.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace dvs {

namespace {

/// Copies a paper cell's single-pass stats into its legacy row columns.
/// The values are read back exactly as the hard-wired flow computed
/// them, so pipeline-backed rows are bit-identical to the seed rows.
void fill_paper_columns(const JobCellResult& cell, CircuitRunResult* row) {
  const PassStats& last = cell.run.passes.back();
  if (cell.label == "cvs") {
    row->cvs_low = last.low_gates;
    row->cvs_improve_pct = cell.improve_pct;
  } else if (cell.label == "dscale") {
    row->dscale_low = last.low_gates;
    row->dscale_lcs = last.level_converters;
    row->dscale_improve_pct = cell.improve_pct;
  } else if (cell.label == "gscale") {
    row->gscale_low = last.low_gates;
    row->gscale_resized =
        static_cast<int>(last.details.at("resized").as_int());
    row->gscale_area_increase = last.details.at("area_increase").as_double();
    row->gscale_seconds = last.cpu_seconds;
    row->gscale_improve_pct = cell.improve_pct;
  }
}

}  // namespace

const char* paper_algo_name(PaperAlgo algo) {
  switch (algo) {
    case PaperAlgo::kCvs: return "cvs";
    case PaperAlgo::kDscale: return "dscale";
    case PaperAlgo::kGscale: return "gscale";
  }
  return "?";
}

JobCell make_paper_cell(PaperAlgo algo, const FlowOptions& flow) {
  JobCell cell;
  cell.label = paper_algo_name(algo);
  switch (algo) {
    case PaperAlgo::kCvs:
      cell.pipeline.append(make_cvs_pass(flow.cvs));
      break;
    case PaperAlgo::kDscale: {
      DscaleOptions dscale = flow.dscale;
      dscale.cvs = flow.cvs;
      cell.pipeline.append(make_dscale_pass(dscale));
      break;
    }
    case PaperAlgo::kGscale: {
      GscaleOptions gscale = flow.gscale;
      gscale.cvs = flow.cvs;
      cell.pipeline.append(make_gscale_pass(gscale));
      break;
    }
  }
  return cell;
}

std::string pipeline_label(const Pipeline& pipeline) {
  return pipeline.size() == 1 ? pipeline.pass(0).name()
                              : std::string("pipeline");
}

FlowOptions derive_cell_flow(const FlowOptions& base,
                             std::uint64_t circuit_seed, PaperAlgo algo) {
  FlowOptions flow = base;
  flow.activity.seed = circuit_seed;
  flow.gscale.random_cut_seed =
      mix_seed(circuit_seed, static_cast<std::uint64_t>(algo) + 1);
  return flow;
}

JobInit make_job_init(const Network& mapped, const Library& lib,
                      const FlowOptions& flow) {
  JobInit init;
  init_flow_row(mapped, lib, flow, &init.row, &init.activity);
  return init;
}

PipelineJobResult run_pipeline_job(const Network& mapped, const Library& lib,
                                   const FlowOptions& base_flow,
                                   std::vector<JobCell> cells,
                                   bool capture_designs,
                                   const JobInit* init) {
  PipelineJobResult out;
  // Activity depends only on the logic and the job-wide options, so the
  // estimate paid for by the original-power measurement is shared by
  // every cell instead of being recomputed per Design — and by every
  // job of the same circuit when the caller hands in a JobInit.
  Activity activity;
  if (init != nullptr) {
    out.row = init->row;
    activity = init->activity;
  } else {
    init_flow_row(mapped, lib, base_flow, &out.row, &activity);
  }
  out.cells.reserve(cells.size());
  for (JobCell& cell : cells) {
    DVS_EXPECTS(!cell.pipeline.empty());
    Design design =
        make_flow_design(mapped, lib, base_flow, out.row.tspec_ns);
    design.adopt_activity(activity);
    JobCellResult result;
    result.label = cell.label;
    result.spec = cell.pipeline.canonical_spec();
    result.run = cell.pipeline.run(design);
    result.improve_pct = improvement_pct(out.row.org_power_uw,
                                         result.run.passes.back().power_uw);
    if (cell.pipeline.size() == 1) fill_paper_columns(result, &out.row);
    if (capture_designs) result.design.emplace(std::move(design));
    out.cells.push_back(std::move(result));
  }
  return out;
}

CircuitRunResult run_single_job(const Network& mapped, const Library& lib,
                                const JobSpec& spec, const JobInit* init) {
  std::vector<JobCell> cells;
  const PaperAlgo algos[] = {PaperAlgo::kCvs, PaperAlgo::kDscale,
                             PaperAlgo::kGscale};
  const bool enabled[] = {spec.run_cvs, spec.run_dscale, spec.run_gscale};
  for (int i = 0; i < 3; ++i)
    if (enabled[i]) cells.push_back(make_paper_cell(algos[i], spec.flow));
  return run_pipeline_job(mapped, lib, spec.flow, std::move(cells), false,
                          init)
      .row;
}

CircuitRunResult run_paper_flow(const Network& mapped, const Library& lib,
                                const FlowOptions& options) {
  JobSpec spec;
  spec.flow = options;
  return run_single_job(mapped, lib, spec);
}

}  // namespace dvs
