#include "core/job.hpp"

#include "support/rng.hpp"

namespace dvs {

FlowOptions derive_cell_flow(const FlowOptions& base,
                             std::uint64_t circuit_seed, PaperAlgo algo) {
  FlowOptions flow = base;
  flow.activity.seed = circuit_seed;
  flow.gscale.random_cut_seed =
      mix_seed(circuit_seed, static_cast<std::uint64_t>(algo) + 1);
  return flow;
}

CircuitRunResult run_single_job(const Network& mapped, const Library& lib,
                                const JobSpec& spec,
                                JobArtifacts* artifacts) {
  CircuitRunResult row;
  init_flow_row(mapped, lib, spec.flow, &row);
  const PaperAlgo algos[] = {PaperAlgo::kCvs, PaperAlgo::kDscale,
                             PaperAlgo::kGscale};
  const bool enabled[] = {spec.run_cvs, spec.run_dscale, spec.run_gscale};
  for (int i = 0; i < 3; ++i) {
    if (!enabled[i]) continue;
    run_flow_algo(mapped, lib, spec.flow, algos[i], &row,
                  artifacts ? artifacts->slot(algos[i]) : nullptr);
  }
  return row;
}

CircuitRunResult run_paper_flow(const Network& mapped, const Library& lib,
                                const FlowOptions& options) {
  JobSpec spec;
  spec.flow = options;
  return run_single_job(mapped, lib, spec);
}

}  // namespace dvs
