#include "core/gscale.hpp"

#include <algorithm>

#include "core/sizing.hpp"
#include "graph/separator.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "timing/cpn.hpp"
#include "timing/graph.hpp"
#include "timing/tcb.hpp"

namespace dvs {

namespace {

struct AppliedResize {
  NodeId id;
  int old_cell;
  double delay_gain;
};

/// Applies every affordable resize in `cut`, then verifies the constraint
/// once and reverts the least useful resizes if the fanin-loading side
/// effect broke a zero-slack path.  Returns the number kept.
int apply_cut_resizes(Design& design, const StaResult& sta,
                      const std::vector<NodeId>& cut, double area_budget,
                      double* area_used) {
  std::vector<AppliedResize> applied;
  double area = design.total_area();
  for (NodeId id : cut) {
    const ResizeOption option = evaluate_upsize(design, sta, id);
    if (!option.available) continue;
    if (area + option.area_penalty > area_budget) continue;
    const int old_cell = design.network().node(id).cell;
    design.network().set_cell(id, option.new_cell);
    area += option.area_penalty;
    applied.push_back({id, old_cell, option.delay_gain});
  }
  if (applied.empty()) return 0;

  std::sort(applied.begin(), applied.end(),
            [](const AppliedResize& a, const AppliedResize& b) {
              return a.delay_gain < b.delay_gain;
            });
  // Candidate states are the revert prefixes (first k resizes undone, in
  // ascending delay-gain order), all known up front — so instead of
  // re-timing after every single revert, score them in lane groups: one
  // multi-lane sweep checks up to kLanes prefixes at once and the
  // smallest feasible prefix wins.  Lane arrivals are bit-identical to
  // the per-revert walks, so the chosen prefix is the same one the
  // sequential loop found.
  MultiLaneSta lanes(design.timing_context(), design.tspec());
  lanes.run();
  std::size_t reverted = 0;
  double final_worst = lanes.base_worst_arrival();
  if (final_worst > design.tspec() + 1e-9) {
    constexpr std::size_t kLanes = 16;
    reverted = applied.size();  // fallback: undo everything
    bool found = false;
    for (std::size_t g0 = 0; g0 < applied.size() && !found; g0 += kLanes) {
      const std::size_t g1 = std::min(applied.size(), g0 + kLanes);
      lanes.reset_lanes();
      for (std::size_t k = g0; k < g1; ++k) {
        const int lane = lanes.add_lane();
        for (std::size_t j = 0; j <= k; ++j)
          lanes.set_cell(lane, applied[j].id, applied[j].old_cell);
      }
      lanes.run();
      for (std::size_t k = g0; k < g1; ++k) {
        final_worst = lanes.worst_arrival(static_cast<int>(k - g0));
        if (final_worst <= design.tspec() + 1e-9) {
          reverted = k + 1;
          found = true;
          break;
        }
      }
    }
    for (std::size_t j = 0; j < reverted; ++j)
      design.network().set_cell(applied[j].id, applied[j].old_cell);
  }
  DVS_ASSERT(final_worst <= design.tspec() + 1e-6);
  *area_used = design.total_area();
  return static_cast<int>(applied.size() - reverted);
}

bool same_tcb(std::vector<NodeId> a, std::vector<NodeId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

GscaleResult run_gscale(Design& design, const GscaleOptions& options) {
  GscaleResult result;
  const double area_budget =
      design.original_area() * (1.0 + options.area_budget_ratio);

  CvsResult cvs = run_cvs(design, options.cvs);
  result.cvs_lowered += cvs.num_lowered;
  std::vector<NodeId> tcb = std::move(cvs.tcb);

  Rng rng(options.random_cut_seed);
  int counter = 0;
  while (options.enable_sizing) {
    if (tcb.empty()) break;  // the whole circuit is already low
    if (design.total_area() >= area_budget) break;

    const StaResult sta = design.run_timing();
    const CriticalPathNetwork cpn = extract_cpn(
        design.timing_context(), sta, tcb, options.cpn_window);
    if (cpn.empty()) break;

    // weight_with_area_versus_time_gain: area penalty per ns gained for a
    // one-step upsize; gates that cannot improve get a prohibitive (but
    // finite, so the cut stays well-defined) weight.
    SeparatorProblem problem;
    problem.num_nodes = static_cast<int>(cpn.nodes.size());
    std::vector<int> index_of(design.network().size(), -1);
    for (int i = 0; i < problem.num_nodes; ++i)
      index_of[cpn.nodes[i]] = i;
    problem.weight.assign(problem.num_nodes, 0.0);
    for (int i = 0; i < problem.num_nodes; ++i) {
      if (options.selector == GscaleOptions::CutSelector::kRandomCut) {
        problem.weight[i] = 0.5 + rng.next_double();
        continue;
      }
      const ResizeOption option =
          evaluate_upsize(design, sta, cpn.nodes[i]);
      problem.weight[i] =
          option.available ? std::max(option.weight, 1e-6) : 1e9;
    }
    for (const auto& [u, v] : cpn.edges)
      problem.edges.emplace_back(index_of[u], index_of[v]);
    for (NodeId s : cpn.sources) problem.sources.push_back(index_of[s]);
    for (NodeId t : cpn.sinks) problem.sinks.push_back(index_of[t]);

    const SeparatorResult cut =
        min_weight_separator(problem, options.flow_algo);
    std::vector<NodeId> cut_nodes;
    for (int i : cut.selected) cut_nodes.push_back(cpn.nodes[i]);

    double area_after = design.total_area();
    result.num_resized += apply_cut_resizes(design, sta, cut_nodes,
                                            area_budget, &area_after);

    CvsResult push = run_cvs(design, options.cvs);
    result.cvs_lowered += push.num_lowered;
    ++result.iterations;

    if (same_tcb(tcb, push.tcb))
      ++counter;
    else
      counter = 0;
    tcb = std::move(push.tcb);
    if (counter > options.max_iter) break;
  }

  result.area_increase_ratio =
      design.original_area() > 0.0
          ? (design.total_area() - design.original_area()) /
                design.original_area()
          : 0.0;
  result.num_resized = design.count_resized();
  return result;
}

}  // namespace dvs
