#include "core/dscale.hpp"

#include <algorithm>

#include "graph/antichain.hpp"
#include "graph/reachability.hpp"
#include "support/contracts.hpp"
#include "support/units.hpp"
#include "timing/graph.hpp"
#include "timing/incremental.hpp"
#include "timing/loads.hpp"

namespace dvs {

namespace {

/// What moving one gate to a deeper rung would change, evaluated against
/// the current committed state (conservative, per the paper's
/// check_timing).
struct LoweringEffect {
  bool feasible = false;      // fits the slack
  double gross_gain_uw = 0.0; // voltage-scaling gain on the gate alone
  double net_gain_uw = 0.0;   // gross gain minus level-converter cost
  double delay_increase = 0.0;
};

/// One (gate, committed rung, strictly deeper target rung) probe of a
/// batched scan round.
struct LoweringProbe {
  NodeId id = kNoNode;
  SupplyId from = 0;
  SupplyId to = 0;
};

/// Per-library constants of the lowering model, hoisted once per Dscale
/// round instead of re-derived per probe: the rung tables (voltage,
/// squared voltage, leakage factor) are filled from the same ladder
/// voltages the per-probe code used to look up, so every term below is
/// the same double it always was.
struct LoweringModel {
  explicit LoweringModel(const Design& design,
                         const std::vector<double>& delay_factor)
      : lib(design.library()),
        ladder(lib.supplies()),
        wire(lib.wire_load()),
        factor(delay_factor),
        v_top(ladder.top()),
        freq(design.freq_mhz()),
        lc(lib.level_converter() >= 0 ? &lib.cell(lib.level_converter())
                                      : nullptr) {
    const VoltageModel& vm = lib.voltage_model();
    const int depth = ladder.depth();
    voltage.resize(depth);
    v2.resize(depth);
    leak.resize(depth);
    for (int r = 0; r < depth; ++r) {
      voltage[r] = ladder.voltage(static_cast<SupplyId>(r));
      v2[r] = voltage[r] * voltage[r];
      leak[r] = vm.leakage_factor(voltage[r]);
    }
  }

  const Library& lib;
  const SupplyLadder& ladder;
  const WireLoadModel& wire;
  const std::vector<double>& factor;
  // Converters restore to the top rung (timing and power model them
  // there), whatever rungs they bridge.
  double v_top;
  double freq;
  const Cell* lc;
  std::vector<double> voltage;
  std::vector<double> v2;
  std::vector<double> leak;
};

/// `graph` is the design's compiled timing graph with a current cell
/// snapshot; `model` carries the hoisted per-rung constants.  `from`
/// is the gate's committed rung, `to` the strictly deeper rung under
/// evaluation.
LoweringEffect evaluate_lowering(const Design& design, const TimingGraph& graph,
                                 const StaResult& sta,
                                 const Activity& activity,
                                 const LoweringModel& model, NodeId id,
                                 double slack_margin, SupplyId from,
                                 SupplyId to) {
  const Network& net = design.network();
  const Library& lib = model.lib;
  const Node& gate = net.node(id);
  DVS_EXPECTS(gate.is_gate() && gate.cell >= 0);
  DVS_EXPECTS(from < to);
  const Cell& cell = lib.cell(gate.cell);
  const double v_top = model.v_top;
  const double f_from = model.factor[from];
  const double f_to = model.factor[to];
  const Cell* lc = model.lc;

  // ---- fanout split after lowering -------------------------------------
  // Gate fanouts left on strictly shallower rungs than `to` move behind a
  // converter; same-or-deeper gates and output ports stay direct.  The
  // compiled entry list carries the matching (sink, pin, cap) triples
  // directly, and its entry order keeps the cap accumulation
  // bit-identical.  The same sweep also reconstructs the converter the
  // gate may *already* carry at `from` (possible on 3+-rung ladders; a
  // top-rung gate never has one), so the timing/power terms below are
  // true deltas, not full new-converter charges.
  double direct_pins = 0.0;
  double lc_pins = 0.0;
  int direct_count = 0;
  int lc_count = 0;
  double old_lc_pins = 0.0;
  int old_lc_count = 0;
  const auto pins = graph.fanout_pins(id);
  const auto caps = graph.fanout_pin_caps(id);
  for (std::size_t e = 0; e < pins.size(); ++e) {
    const NodeId fo = pins[e].sink;
    const bool sink_is_gate = graph.is_gate(fo);
    const SupplyId sink = sink_is_gate ? design.level(fo) : kTopRung;
    if (sink_is_gate && SupplyLadder::converter_needed(to, sink)) {
      lc_pins += caps[e];
      ++lc_count;
    } else {
      direct_pins += caps[e];
      ++direct_count;
    }
    if (sink_is_gate && SupplyLadder::converter_needed(from, sink)) {
      old_lc_pins += caps[e];
      ++old_lc_count;
    }
  }
  for (int k = 0; k < graph.port_fanout_count(id); ++k) {
    direct_pins += 25.0;  // keep in sync with TimingContext default
    ++direct_count;
  }
  const bool needs_lc = lc_count > 0;
  const bool had_lc = old_lc_count > 0;
  if (needs_lc && lc == nullptr)
    return {};  // no converter available: infeasible

  double new_direct = direct_pins;
  int new_direct_count = direct_count;
  double new_lc_load = 0.0;
  if (needs_lc) {
    new_direct += lc->input_cap[0];
    ++new_direct_count;
    new_lc_load = lc_pins + model.wire.wire_cap(lc_count);
  }
  new_direct += model.wire.wire_cap(new_direct_count);
  const double old_lc_load =
      had_lc ? old_lc_pins + model.wire.wire_cap(old_lc_count) : 0.0;

  // ---- timing -----------------------------------------------------------
  double self_increase = 0.0;
  for (const TimingArc& arc : cell.arcs) {
    const double old_rise =
        f_from * (arc.intrinsic_rise + arc.resistance_rise * sta.load[id]);
    const double old_fall =
        f_from * (arc.intrinsic_fall + arc.resistance_fall * sta.load[id]);
    const double new_rise =
        f_to * (arc.intrinsic_rise + arc.resistance_rise * new_direct);
    const double new_fall =
        f_to * (arc.intrinsic_fall + arc.resistance_fall * new_direct);
    self_increase = std::max(self_increase, new_rise - old_rise);
    self_increase = std::max(self_increase, new_fall - old_fall);
  }
  // Converter delay as a delta: the committed arrival/required state
  // (and therefore sta.slack) already absorbs the old converter, so a
  // deepening move pays only the growth of the restored cone.
  double lc_delay = 0.0;
  if (needs_lc) {
    const RiseFall d = arc_delay(lib, *lc, 0, v_top, new_lc_load);
    lc_delay = d.max();
    if (had_lc)
      lc_delay -= arc_delay(lib, *lc, 0, v_top, old_lc_load).max();
  }
  LoweringEffect effect;
  effect.delay_increase =
      std::max(0.0, self_increase) + std::max(0.0, lc_delay);
  effect.feasible =
      effect.delay_increase + slack_margin <= sta.slack[id];

  // ---- power ------------------------------------------------------------
  const double a = activity.alpha01[id];
  const double f = model.freq;
  const double vf2 = model.v2[from];
  const double vt2 = model.v2[to];
  double before =
      a * f * (sta.load[id] + cell.internal_cap) * vf2 *
          kSwitchPowerToMicrowatt +
      cell.leakage * model.leak[from];
  if (had_lc) {
    // The committed state already pays for a converter; count it on the
    // before side so the move is scored on the converter *growth* only.
    before += a * f * (old_lc_load + lc->internal_cap) *
                  (v_top * v_top) * kSwitchPowerToMicrowatt +
              lc->leakage;
  }
  const double after_gate =
      a * f * (new_direct + cell.internal_cap) * vt2 *
          kSwitchPowerToMicrowatt +
      cell.leakage * model.leak[to];
  double lc_cost = 0.0;
  if (needs_lc) {
    // Everything behind the converter (the rerouted pins, its wire, its
    // internal node) still swings at the top rung, plus the converter
    // leaks.
    lc_cost = a * f * (new_lc_load + lc->internal_cap) * (v_top * v_top) *
                  kSwitchPowerToMicrowatt +
              lc->leakage;
  }
  // Paper-literal weight: "the power reduction when Vlow is applied" —
  // the gate's present switched capacitance scaled by Vfrom^2 - Vto^2.
  effect.gross_gain_uw = a * f * (sta.load[id] + cell.internal_cap) *
                         (vf2 - vt2) * kSwitchPowerToMicrowatt;
  // True delta including the converter overhead and the load reshuffle.
  effect.net_gain_uw = before - after_gate - lc_cost;
  return effect;
}

struct Candidate {
  NodeId id;
  double gain;
  SupplyId from;  // committed rung at selection time
  SupplyId to;    // deepest feasible rung
};

/// Raises boundary drivers to the shallowest rung that clears their
/// converter while doing so reduces total power.  Raising a gate speeds
/// it up, but a converter can migrate onto a still-deep fanin, so timing
/// is re-verified per raise (incrementally: each trial touches one gate's
/// neighborhood); the fixpoint loop then reconsiders the migrated
/// boundary.
int trim_unprofitable_boundary(Design& design, IncrementalSta& timer) {
  const Network& net = design.network();
  int raised_total = 0;
  double power = design.run_power().total();
  for (bool changed = true; changed;) {
    changed = false;
    std::vector<NodeId> boundary;
    net.for_each_gate([&](const Node& g) {
      if (design.needs_lc(g.id)) boundary.push_back(g.id);
    });
    for (NodeId id : boundary) {
      const SupplyId previous = design.level(id);
      // The shallowest gate fanout bounds the raise: going exactly there
      // removes the converter with the smallest speed/energy give-back.
      SupplyId raised = previous;
      for (NodeId fo : net.node(id).fanouts) {
        const Node& sink = net.node(fo);
        if (sink.is_gate()) raised = std::min(raised, design.level(fo));
      }
      if (raised == previous) continue;  // boundary moved under the loop
      design.set_level(id, raised);
      timer.on_node_changed(id);
      const double trial = design.run_power().total();
      if (trial < power - 1e-12 &&
          timer.result().meets_constraint(1e-9)) {
        power = trial;
        ++raised_total;
        changed = true;
      } else {
        design.set_level(id, previous);
        timer.on_node_changed(id);
      }
    }
  }
  return raised_total;
}

/// Moves the selected gates to their target rungs, then verifies the
/// constraint and reverts the cheapest members if the conservative
/// per-candidate model missed a second-order interaction (e.g. a fanin's
/// converter losing load).  The incremental timer makes each
/// commit/revert O(affected) instead of a full re-analysis.
int commit_with_repair(Design& design, IncrementalSta& timer,
                       std::vector<Candidate> selected) {
  if (selected.empty()) return 0;
  for (const Candidate& c : selected) {
    design.set_level(c.id, c.to);
    timer.on_node_changed(c.id);
  }
  std::sort(selected.begin(), selected.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.gain < b.gain;
            });
  std::size_t reverted = 0;
  while (!timer.result().meets_constraint(1e-9) &&
         reverted < selected.size()) {
    design.set_level(selected[reverted].id, selected[reverted].from);
    timer.on_node_changed(selected[reverted].id);
    ++reverted;
  }
  DVS_ASSERT(timer.result().meets_constraint(1e-6));
  return static_cast<int>(selected.size() - reverted);
}

}  // namespace

int trim_boundary(Design& design, IncrementalSta& timer) {
  return trim_unprofitable_boundary(design, timer);
}

DscaleResult run_dscale(Design& design, const DscaleOptions& options) {
  DscaleResult result;
  if (options.run_initial_cvs)
    result.cvs_lowered = run_cvs(design, options.cvs).num_lowered;

  const Network& net = design.network();
  const Activity& activity = design.activity();
  const Library& lib = design.library();
  const SupplyLadder& ladder = lib.supplies();
  const SupplyId deepest = ladder.deepest();
  const std::vector<double> factor =
      ladder.delay_factors(lib.voltage_model());
  const LoweringModel model(design, factor);
  // The candidate scans read pin caps off the compiled graph; Dscale
  // itself never resizes, so one sync up front keeps the snapshot
  // current for the whole run.
  const TimingGraph& graph = design.timing_graph();
  graph.sync_cells();

  // One incremental timer lives across all rounds: candidate collection
  // reads its current state, and every commit/revert/trim below notifies
  // it instead of re-running the full STA.
  IncrementalSta timer(design.timing_context(), design.tspec());

  for (;;) {
    if (options.max_rounds > 0 && result.rounds >= options.max_rounds)
      break;
    const StaResult& sta = timer.result();

    // getSlkSet + check_timing + weight_with_power_gain, fused and
    // batched: collect every gate whose move to a deeper rung fits its
    // slack with positive gain, taking the deepest feasible rung per
    // gate.  Instead of walking each gate's rung ladder independently,
    // the scan runs deepest-first rounds over one shared target rung —
    // each round is a homogeneous lane group probing every unresolved
    // gate at that rung with the model constants hoisted — and a gate
    // resolved in an earlier (deeper) round drops out, which is exactly
    // the per-gate "deepest feasible wins" break.  Probe math and probe
    // set are unchanged, so the candidate list is identical.
    std::vector<Candidate> candidates;
    std::vector<NodeId> eligible;
    net.for_each_gate([&](const Node& gate) {
      const SupplyId current = design.level(gate.id);
      if (gate.cell < 0 || current == deepest) return;
      if (sta.slack[gate.id] <= options.slack_margin) return;
      eligible.push_back(gate.id);
    });
    std::vector<Candidate> pick(net.size());
    std::vector<char> resolved(net.size(), 0);
    for (SupplyId target = deepest; target > kTopRung; --target) {
      for (NodeId id : eligible) {
        const SupplyId current = design.level(id);
        if (resolved[id] != 0 || current >= target) continue;
        const LoweringEffect effect =
            evaluate_lowering(design, graph, sta, activity, model, id,
                              options.slack_margin, current, target);
        const double weight = options.lc_aware_weights
                                  ? effect.net_gain_uw
                                  : effect.gross_gain_uw;
        if (effect.feasible && weight > options.min_gain_uw) {
          pick[id] = {id, weight, current, target};
          resolved[id] = 1;
        }
      }
    }
    for (NodeId id : eligible)
      if (resolved[id] != 0) candidates.push_back(pick[id]);
    if (candidates.empty()) break;
    ++result.rounds;

    std::vector<Candidate> selected;
    if (options.selector == DscaleOptions::Selector::kMwisFlow) {
      // Maximum-weight independent set on the transitive graph == maximum
      // weight antichain w.r.t. netlist reachability.  Building the flow
      // network over the original DAG keeps it O(n + e).
      AntichainProblem problem;
      problem.num_nodes = net.size();
      problem.weight.assign(net.size(), 0.0);
      std::vector<const Candidate*> by_id(net.size(), nullptr);
      for (const Candidate& c : candidates) {
        problem.weight[c.id] = c.gain;
        by_id[c.id] = &c;
      }
      net.for_each_node([&](const Node& n) {
        for (NodeId fo : n.fanouts) problem.edges.emplace_back(n.id, fo);
      });
      const AntichainResult mwis =
          max_weight_antichain(problem, options.flow_algo);
      for (int v : mwis.selected) selected.push_back(*by_id[v]);
    } else {
      // Greedy baseline for the ablation: highest gain first, skip
      // anything comparable to an already-picked node.
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.gain > b.gain;
                });
      const Reachability reach(net);
      for (const Candidate& c : candidates) {
        bool independent = true;
        for (const Candidate& s : selected)
          if (reach.comparable(c.id, s.id)) independent = false;
        if (independent) selected.push_back(c);
      }
    }
    const int committed =
        commit_with_repair(design, timer, std::move(selected));
    result.mwis_lowered += committed;
    if (committed == 0) break;  // nothing stuck: avoid spinning
  }
  if (options.trim_unprofitable)
    result.mwis_lowered -= trim_unprofitable_boundary(design, timer);
  return result;
}

}  // namespace dvs
