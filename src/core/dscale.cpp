#include "core/dscale.hpp"

#include <algorithm>

#include "graph/antichain.hpp"
#include "graph/reachability.hpp"
#include "support/contracts.hpp"
#include "support/units.hpp"
#include "timing/graph.hpp"
#include "timing/incremental.hpp"
#include "timing/loads.hpp"

namespace dvs {

namespace {

/// What lowering one gate would change, evaluated against the current
/// committed state (conservative, per the paper's check_timing).
struct LoweringEffect {
  bool feasible = false;      // fits the slack
  double gross_gain_uw = 0.0; // voltage-scaling gain on the gate alone
  double net_gain_uw = 0.0;   // gross gain minus level-converter cost
  double delay_increase = 0.0;
};

/// `graph` is the design's compiled timing graph with a current cell
/// snapshot; `f_high` / `f_low` are the voltage model's delay factors at
/// the two supplies.  Both are hoisted by the caller out of the
/// per-candidate loop.
LoweringEffect evaluate_lowering(const Design& design, const TimingGraph& graph,
                                 const StaResult& sta,
                                 const Activity& activity, NodeId id,
                                 double slack_margin, double f_high,
                                 double f_low) {
  const Network& net = design.network();
  const Library& lib = design.library();
  const Node& gate = net.node(id);
  DVS_EXPECTS(gate.is_gate() && gate.cell >= 0);
  const Cell& cell = lib.cell(gate.cell);
  const double vh = lib.vdd_high();
  const double vl = lib.vdd_low();
  const VoltageModel& vm = lib.voltage_model();
  const Cell* lc = lib.level_converter() >= 0
                       ? &lib.cell(lib.level_converter())
                       : nullptr;

  // ---- fanout split after lowering -------------------------------------
  // Gate fanouts still high move behind a converter; low gates and output
  // ports stay direct.  The compiled entry list carries the matching
  // (sink, pin, cap) triples directly — the seed code rescanned every
  // sink's full fanin list per unique fanout, O(pins^2) on wide nets —
  // and its entry order keeps the cap accumulation bit-identical.
  double direct_pins = 0.0;
  double lc_pins = 0.0;
  int direct_count = 0;
  int lc_count = 0;
  const auto pins = graph.fanout_pins(id);
  const auto caps = graph.fanout_pin_caps(id);
  for (std::size_t e = 0; e < pins.size(); ++e) {
    const NodeId fo = pins[e].sink;
    if (graph.is_gate(fo) && design.level(fo) == VddLevel::kHigh) {
      lc_pins += caps[e];
      ++lc_count;
    } else {
      direct_pins += caps[e];
      ++direct_count;
    }
  }
  for (int k = 0; k < graph.port_fanout_count(id); ++k) {
    direct_pins += 25.0;  // keep in sync with TimingContext default
    ++direct_count;
  }
  const bool needs_lc = lc_count > 0;
  if (needs_lc && lc == nullptr)
    return {};  // no converter available: infeasible

  double new_direct = direct_pins;
  int new_direct_count = direct_count;
  double new_lc_load = 0.0;
  if (needs_lc) {
    new_direct += lc->input_cap[0];
    ++new_direct_count;
    new_lc_load = lc_pins + lib.wire_load().wire_cap(lc_count);
  }
  new_direct += lib.wire_load().wire_cap(new_direct_count);

  // ---- timing -----------------------------------------------------------
  double self_increase = 0.0;
  for (const TimingArc& arc : cell.arcs) {
    const double old_rise =
        f_high * (arc.intrinsic_rise + arc.resistance_rise * sta.load[id]);
    const double old_fall =
        f_high * (arc.intrinsic_fall + arc.resistance_fall * sta.load[id]);
    const double new_rise =
        f_low * (arc.intrinsic_rise + arc.resistance_rise * new_direct);
    const double new_fall =
        f_low * (arc.intrinsic_fall + arc.resistance_fall * new_direct);
    self_increase = std::max(self_increase, new_rise - old_rise);
    self_increase = std::max(self_increase, new_fall - old_fall);
  }
  double lc_delay = 0.0;
  if (needs_lc) {
    const RiseFall d = arc_delay(lib, *lc, 0, vh, new_lc_load);
    lc_delay = d.max();
  }
  LoweringEffect effect;
  effect.delay_increase = std::max(0.0, self_increase) + lc_delay;
  effect.feasible =
      effect.delay_increase + slack_margin <= sta.slack[id];

  // ---- power ------------------------------------------------------------
  const double a = activity.alpha01[id];
  const double f = design.freq_mhz();
  const double vh2 = vh * vh;
  const double vl2 = vl * vl;
  const double before =
      a * f * (sta.load[id] + cell.internal_cap) * vh2 *
          kSwitchPowerToMicrowatt +
      cell.leakage * vm.leakage_factor(vh);
  const double after_gate =
      a * f * (new_direct + cell.internal_cap) * vl2 *
          kSwitchPowerToMicrowatt +
      cell.leakage * vm.leakage_factor(vl);
  double lc_cost = 0.0;
  if (needs_lc) {
    // Everything behind the converter (the rerouted pins, its wire, its
    // internal node) still swings at vdd_high, plus the converter leaks.
    lc_cost = a * f * (new_lc_load + lc->internal_cap) * vh2 *
                  kSwitchPowerToMicrowatt +
              lc->leakage;
  }
  // Paper-literal weight: "the power reduction when Vlow is applied" —
  // the gate's present switched capacitance scaled by Vh^2 - Vl^2.
  effect.gross_gain_uw = a * f * (sta.load[id] + cell.internal_cap) *
                         (vh2 - vl2) * kSwitchPowerToMicrowatt;
  // True delta including the converter overhead and the load reshuffle.
  effect.net_gain_uw = before - after_gate - lc_cost;
  return effect;
}

struct Candidate {
  NodeId id;
  double gain;
};

/// Raises low->high boundary drivers back to vdd_high while doing so
/// reduces total power.  Raising a gate speeds it up, but a converter can
/// migrate onto a still-low fanin, so timing is re-verified per raise
/// (incrementally: each trial touches one gate's neighborhood); the
/// fixpoint loop then reconsiders the migrated boundary.
int trim_unprofitable_boundary(Design& design, IncrementalSta& timer) {
  int raised_total = 0;
  double power = design.run_power().total();
  for (bool changed = true; changed;) {
    changed = false;
    std::vector<NodeId> boundary;
    design.network().for_each_gate([&](const Node& g) {
      if (design.needs_lc(g.id)) boundary.push_back(g.id);
    });
    for (NodeId id : boundary) {
      design.set_level(id, VddLevel::kHigh);
      timer.on_node_changed(id);
      const double trial = design.run_power().total();
      if (trial < power - 1e-12 &&
          timer.result().meets_constraint(1e-9)) {
        power = trial;
        ++raised_total;
        changed = true;
      } else {
        design.set_level(id, VddLevel::kLow);
        timer.on_node_changed(id);
      }
    }
  }
  return raised_total;
}

/// Lowers the selected gates, then verifies the constraint and reverts the
/// cheapest members if the conservative per-candidate model missed a
/// second-order interaction (e.g. a fanin's converter losing load).  The
/// incremental timer makes each commit/revert O(affected) instead of a
/// full re-analysis.
int commit_with_repair(Design& design, IncrementalSta& timer,
                       std::vector<Candidate> selected) {
  if (selected.empty()) return 0;
  for (const Candidate& c : selected) {
    design.set_level(c.id, VddLevel::kLow);
    timer.on_node_changed(c.id);
  }
  std::sort(selected.begin(), selected.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.gain < b.gain;
            });
  std::size_t reverted = 0;
  while (!timer.result().meets_constraint(1e-9) &&
         reverted < selected.size()) {
    design.set_level(selected[reverted].id, VddLevel::kHigh);
    timer.on_node_changed(selected[reverted].id);
    ++reverted;
  }
  DVS_ASSERT(timer.result().meets_constraint(1e-6));
  return static_cast<int>(selected.size() - reverted);
}

}  // namespace

int trim_boundary(Design& design, IncrementalSta& timer) {
  return trim_unprofitable_boundary(design, timer);
}

DscaleResult run_dscale(Design& design, const DscaleOptions& options) {
  DscaleResult result;
  if (options.run_initial_cvs)
    result.cvs_lowered = run_cvs(design, options.cvs).num_lowered;

  const Network& net = design.network();
  const Activity& activity = design.activity();
  const VoltageModel& vm = design.library().voltage_model();
  const double f_high = vm.delay_factor(design.library().vdd_high());
  const double f_low = vm.delay_factor(design.library().vdd_low());
  // The candidate scans read pin caps off the compiled graph; Dscale
  // itself never resizes, so one sync up front keeps the snapshot
  // current for the whole run.
  const TimingGraph& graph = design.timing_graph();
  graph.sync_cells();

  // One incremental timer lives across all rounds: candidate collection
  // reads its current state, and every commit/revert/trim below notifies
  // it instead of re-running the full STA.
  IncrementalSta timer(design.timing_context(), design.tspec());

  for (;;) {
    if (options.max_rounds > 0 && result.rounds >= options.max_rounds)
      break;
    const StaResult& sta = timer.result();

    // getSlkSet + check_timing + weight_with_power_gain, fused: collect
    // every high gate whose lowering fits its slack with positive gain.
    std::vector<Candidate> candidates;
    net.for_each_gate([&](const Node& gate) {
      if (gate.cell < 0 || design.level(gate.id) == VddLevel::kLow) return;
      if (sta.slack[gate.id] <= options.slack_margin) return;
      const LoweringEffect effect =
          evaluate_lowering(design, graph, sta, activity, gate.id,
                            options.slack_margin, f_high, f_low);
      const double weight = options.lc_aware_weights ? effect.net_gain_uw
                                                     : effect.gross_gain_uw;
      if (effect.feasible && weight > options.min_gain_uw)
        candidates.push_back({gate.id, weight});
    });
    if (candidates.empty()) break;
    ++result.rounds;

    std::vector<Candidate> selected;
    if (options.selector == DscaleOptions::Selector::kMwisFlow) {
      // Maximum-weight independent set on the transitive graph == maximum
      // weight antichain w.r.t. netlist reachability.  Building the flow
      // network over the original DAG keeps it O(n + e).
      AntichainProblem problem;
      problem.num_nodes = net.size();
      problem.weight.assign(net.size(), 0.0);
      for (const Candidate& c : candidates)
        problem.weight[c.id] = c.gain;
      net.for_each_node([&](const Node& n) {
        for (NodeId fo : n.fanouts) problem.edges.emplace_back(n.id, fo);
      });
      const AntichainResult mwis =
          max_weight_antichain(problem, options.flow_algo);
      for (int v : mwis.selected)
        selected.push_back({v, problem.weight[v]});
    } else {
      // Greedy baseline for the ablation: highest gain first, skip
      // anything comparable to an already-picked node.
      std::sort(candidates.begin(), candidates.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.gain > b.gain;
                });
      const Reachability reach(net);
      for (const Candidate& c : candidates) {
        bool independent = true;
        for (const Candidate& s : selected)
          if (reach.comparable(c.id, s.id)) independent = false;
        if (independent) selected.push_back(c);
      }
    }
    const int committed =
        commit_with_repair(design, timer, std::move(selected));
    result.mwis_lowered += committed;
    if (committed == 0) break;  // nothing stuck: avoid spinning
  }
  if (options.trim_unprofitable)
    result.mwis_lowered -= trim_unprofitable_boundary(design, timer);
  return result;
}

}  // namespace dvs
