// Level-converter boundary bookkeeping.  A gate needs a converter on its
// output exactly when at least one fanout gate sits on a strictly
// shallower (higher voltage) ladder rung than the gate itself — the
// DC-leakage "driving incompatibility" of the paper, generalized from
// low->high to any upward rung boundary.  Stepping down never needs one.
// Primary outputs are block boundaries: restoration there belongs to the
// surrounding system (flip-flop style converters, as in Usami-Horowitz),
// so driving a port never sets the flag.
#pragma once

#include "core/design.hpp"

namespace dvs {

/// True under the current assignment (pure query, no caching).
bool lc_needed(const Design& design, NodeId id);

/// Rewrites every LC flag from scratch.
void recompute_boundary(Design& design);

/// Refreshes the flags that can change when `id`'s level flips: its own
/// and those of its gate fanins.
void refresh_boundary_around(Design& design, NodeId id);

/// Produces a copy of the design's network with the virtual converters
/// instantiated as real `lvlconv` gates in front of their high-voltage
/// fanouts.  Returns the new network; `low_mask_out`, when non-null,
/// receives the per-node low flags of the new network (converters and
/// high gates are false).
Network materialize_level_converters(const Design& design,
                                     std::vector<char>* low_mask_out);

}  // namespace dvs
