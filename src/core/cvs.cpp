#include "core/cvs.hpp"

#include "support/contracts.hpp"
#include "timing/graph.hpp"
#include "timing/incremental.hpp"
#include "timing/tcb.hpp"

namespace dvs {

namespace {

/// All gate fanouts already low?  (Port fanouts are block boundaries and
/// do not block lowering.)
bool fanouts_all_low(const Design& design, const Node& gate) {
  for (NodeId fo : gate.fanouts) {
    const Node& sink = design.network().node(fo);
    if (sink.is_gate() && design.level(fo) != VddLevel::kLow) return false;
  }
  return true;
}

}  // namespace

CvsResult run_cvs(Design& design, const CvsOptions& options) {
  const Network& net = design.network();
  CvsResult result;

  // The breadth-first traversal from the POs is realized as one reverse
  // topological sweep: every gate is visited after all of its fanouts, so
  // the "all fanouts low" cluster test sees final decisions.  Timing is
  // re-analyzed (incrementally) after each acceptance, which keeps every
  // acceptance sound against the *committed* state (the paper's
  // incurred-penalty check).
  IncrementalSta timer(design.timing_context(), design.tspec());
  const std::vector<NodeId>& order = design.timing_graph().topo_order();
  const Library& lib = design.library();
  const double f_high = lib.voltage_model().delay_factor(lib.vdd_high());
  const double f_low = lib.voltage_model().delay_factor(lib.vdd_low());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Node& gate = net.node(*it);
    if (!gate.is_gate() || gate.cell < 0) continue;
    if (design.level(gate.id) == VddLevel::kLow) continue;
    if (!fanouts_all_low(design, gate)) continue;
    const StaResult& sta = timer.result();
    const double increase = worst_delay_increase(
        f_high, f_low, lib.cell(gate.cell), sta.load[gate.id]);
    if (increase + options.slack_margin > sta.slack[gate.id]) continue;
    design.set_level(gate.id, VddLevel::kLow);
    DVS_ASSERT(!design.needs_lc(gate.id));  // cluster rule: never an LC
    timer.on_node_changed(gate.id);
    DVS_ASSERT(timer.result().meets_constraint(1e-6));
    ++result.num_lowered;
  }
  result.tcb = compute_tcb(design.timing_context(), timer.result());
  return result;
}

bool cvs_cluster_invariant_holds(const Design& design) {
  const Network& net = design.network();
  bool ok = true;
  net.for_each_gate([&](const Node& gate) {
    if (design.level(gate.id) != VddLevel::kLow) return;
    if (!fanouts_all_low(design, gate)) ok = false;
    if (design.needs_lc(gate.id)) ok = false;
  });
  return ok;
}

}  // namespace dvs
