#include "core/cvs.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "timing/graph.hpp"
#include "timing/incremental.hpp"
#include "timing/tcb.hpp"

namespace dvs {

namespace {

/// Deepest rung `gate` may sit on without ever needing a converter: the
/// cluster rule bounds a driver by its shallowest gate fanout (port
/// fanouts are block boundaries and do not bind).
SupplyId cluster_rung_limit(const Design& design, const Node& gate) {
  SupplyId limit = design.supplies().deepest();
  for (NodeId fo : gate.fanouts) {
    const Node& sink = design.network().node(fo);
    if (sink.is_gate()) limit = std::min(limit, design.level(fo));
  }
  return limit;
}

}  // namespace

CvsResult run_cvs(Design& design, const CvsOptions& options) {
  const Network& net = design.network();
  CvsResult result;

  // The breadth-first traversal from the POs is realized as one reverse
  // topological sweep: every gate is visited after all of its fanouts, so
  // the cluster rung limit sees final decisions.  Timing is re-analyzed
  // (incrementally) after each acceptance, which keeps every acceptance
  // sound against the *committed* state (the paper's incurred-penalty
  // check).
  IncrementalSta timer(design.timing_context(), design.tspec());
  const std::vector<NodeId>& order = design.timing_graph().topo_order();
  const Library& lib = design.library();
  // Per-rung delay factors, hoisted out of the per-gate loop.
  const std::vector<double> factor =
      lib.supplies().delay_factors(lib.voltage_model());
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Node& gate = net.node(*it);
    if (!gate.is_gate() || gate.cell < 0) continue;
    const SupplyId current = design.level(gate.id);
    const SupplyId limit = cluster_rung_limit(design, gate);
    if (limit <= current) continue;  // already as deep as the cluster allows
    // Deepest feasible rung first: the furthest the slack lets this gate
    // drop.  For the dual ladder this is exactly the paper's single
    // high->low test.
    for (SupplyId target = limit; target > current; --target) {
      const StaResult& sta = timer.result();
      const double increase = worst_delay_increase(
          factor[current], factor[target], lib.cell(gate.cell),
          sta.load[gate.id]);
      if (increase + options.slack_margin > sta.slack[gate.id]) continue;
      design.set_level(gate.id, target);
      DVS_ASSERT(!design.needs_lc(gate.id));  // cluster rule: never an LC
      timer.on_node_changed(gate.id);
      DVS_ASSERT(timer.result().meets_constraint(1e-6));
      ++result.num_lowered;
      break;
    }
  }
  result.tcb = compute_tcb(design.timing_context(), timer.result());
  return result;
}

bool cvs_cluster_invariant_holds(const Design& design) {
  const Network& net = design.network();
  bool ok = true;
  net.for_each_gate([&](const Node& gate) {
    const SupplyId driver = design.level(gate.id);
    if (driver == kTopRung) return;
    for (NodeId fo : gate.fanouts) {
      const Node& sink = net.node(fo);
      if (sink.is_gate() &&
          SupplyLadder::converter_needed(driver, design.level(fo)))
        ok = false;
    }
    if (design.needs_lc(gate.id)) ok = false;
  });
  return ok;
}

}  // namespace dvs
