// Parallel benchmark-suite engine: fans the full MCNC suite x
// {CVS, Dscale, Gscale} matrix across a work-stealing thread pool and
// aggregates the per-circuit rows into the paper's Table 1 / Table 2
// reports plus a machine-readable JSON document (BENCH_suite.json).
//
// Every matrix cell is an independent task that rebuilds its circuit and
// derives every RNG seed deterministically from (suite seed, circuit
// seed, algorithm), so results are bit-identical regardless of thread
// count or scheduling — `num_threads = 1` is the serial reference path
// and N-thread runs must reproduce it exactly (suite_test.cpp holds the
// engine to that).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "support/paper_ref.hpp"

namespace dvs {

struct McncDescriptor;

struct SuiteOptions {
  /// Base flow configuration; per-task seeds are derived on top of it.
  FlowOptions flow;
  /// Circuits to run (MCNC names); empty = the full 39-circuit suite.
  std::vector<std::string> circuits;
  /// Skip circuits with more gates than this (0 = run everything).
  int max_gates = 0;
  /// Algorithms to run; all three by default.
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
  /// Worker threads (1 = serial reference, 0 = hardware concurrency).
  int num_threads = 0;
  /// Root seed every per-task seed is mixed from.
  std::uint64_t seed = 0x5eed;
};

struct SuiteReport {
  std::vector<CircuitRunResult> rows;  // suite order, one per circuit
  std::vector<std::optional<PaperRow>> papers;  // aligned with rows
  double vdd_high = 0.0;
  double vdd_low = 0.0;
  int num_threads = 0;
  double wall_seconds = 0.0;

  /// Paper-layout tables over the aggregated rows.
  std::string table1() const;
  std::string table2() const;
  /// The BENCH_suite.json document (schema "dvs-bench-suite-v1"; see
  /// README.md for the field list).
  std::string to_json() const;
};

/// Runs the matrix.  `lib` defaults to the compass library at the
/// paper's (5.0V, 4.3V) when null.
SuiteReport run_suite(const SuiteOptions& options = {},
                      const Library* lib = nullptr);

/// Per-cell flow options of one (circuit, algorithm) matrix cell: every
/// seed is a pure function of (suite seed, circuit seed, algorithm),
/// never of scheduling order.  Exposed so the dvsd service derives the
/// exact same options for named-circuit and batch requests — equality
/// with a suite_bench run at the same seed is a protocol guarantee.
FlowOptions suite_task_flow(const SuiteOptions& options,
                            const McncDescriptor& descriptor,
                            PaperAlgo algo);

void write_suite_json(const SuiteReport& report, const std::string& path);

}  // namespace dvs
