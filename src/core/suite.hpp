// Parallel benchmark-suite engine: fans the full MCNC suite x
// {CVS, Dscale, Gscale} matrix across a work-stealing thread pool and
// aggregates the per-circuit rows into the paper's Table 1 / Table 2
// reports plus a machine-readable JSON document (BENCH_suite.json).
//
// Every matrix cell is an independent task that rebuilds its circuit and
// derives every RNG seed deterministically from (suite seed, circuit
// seed, algorithm), so results are bit-identical regardless of thread
// count or scheduling — `num_threads = 1` is the serial reference path
// and N-thread runs must reproduce it exactly (suite_test.cpp holds the
// engine to that).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "opt/pipeline.hpp"
#include "support/paper_ref.hpp"

namespace dvs {

struct McncDescriptor;

struct SuiteOptions {
  /// Base flow configuration; per-task seeds are derived on top of it.
  FlowOptions flow;
  /// Circuits to run (MCNC names); empty = the full 39-circuit suite.
  std::vector<std::string> circuits;
  /// Skip circuits with more gates than this (0 = run everything).
  int max_gates = 0;
  /// Algorithms to run; all three by default.
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
  /// Worker threads (1 = serial reference, 0 = hardware concurrency).
  int num_threads = 0;
  /// Root seed every per-task seed is mixed from.
  std::uint64_t seed = 0x5eed;
  /// Supply-ladder voltages to run the matrix at (strictly descending,
  /// validated through SupplyLadder).  Empty = the library's ladder.
  std::vector<double> supplies;
};

struct SuiteReport {
  std::vector<CircuitRunResult> rows;  // suite order, one per circuit
  std::vector<std::optional<PaperRow>> papers;  // aligned with rows
  /// Full ladder the matrix ran at; vdd_high/vdd_low are its top and
  /// bottom rungs (the legacy dual-Vdd header columns).
  std::vector<double> supplies;
  double vdd_high = 0.0;
  double vdd_low = 0.0;
  int num_threads = 0;
  double wall_seconds = 0.0;

  /// Paper-layout tables over the aggregated rows.
  std::string table1() const;
  std::string table2() const;
  /// The BENCH_suite.json document (schema "dvs-bench-suite-v1"; see
  /// README.md for the field list).
  std::string to_json() const;
};

/// Runs the matrix.  `lib` defaults to the compass library at the
/// paper's (5.0V, 4.3V) when null.
SuiteReport run_suite(const SuiteOptions& options = {},
                      const Library* lib = nullptr);

/// Per-cell flow options of one (circuit, algorithm) matrix cell: every
/// seed is a pure function of (suite seed, circuit seed, algorithm),
/// never of scheduling order.  Exposed so the dvsd service derives the
/// exact same options for named-circuit and batch requests — equality
/// with a suite_bench run at the same seed is a protocol guarantee.
FlowOptions suite_task_flow(const SuiteOptions& options,
                            const McncDescriptor& descriptor,
                            PaperAlgo algo);

void write_suite_json(const SuiteReport& report, const std::string& path);

// ---- pipeline matrices -----------------------------------------------------
// The suite engine generalized over the pass registry: the matrix is
// circuits x pipeline specs instead of circuits x the three hard-wired
// algorithms.  Every pass knob comes from the spec itself (that is what
// makes a spec's canonical form the cell's full identity) — the
// per-algorithm structs in SuiteOptions::flow are deliberately not
// consulted; only the shared knobs (activity, freq_mhz, tspec_relax)
// are.  With those spec'd or defaulted knobs matching, the canonical
// single-pass specs ("cvs", "dscale", "gscale") reproduce the legacy
// matrix cells bit-identically (pipeline_test.cpp holds the engine to
// that); arbitrary specs open hybrid flows like
// "cvs | gscale(area_budget=0.05) | dscale" across the whole suite.

/// One (circuit, pipeline) cell: shared columns plus the executed
/// pipeline's per-pass trajectory.
struct PipelineSuiteCell {
  std::string circuit;
  int num_gates = 0;
  double tspec_ns = 0.0;
  double org_power_uw = 0.0;
  std::string label;       // pass name / "pipeline"
  std::string spec;        // canonical spec of the executed (resolved) cell
  double improve_pct = 0.0;
  PipelineRun run;
};

struct PipelineSuiteReport {
  std::vector<std::string> specs;        // canonical, one per request spec
  std::vector<PipelineSuiteCell> cells;  // circuit-major, spec-minor
  int num_threads = 0;
  double wall_seconds = 0.0;

  /// Human-readable matrix with one trajectory line per executed pass.
  std::string table() const;
  /// Machine-readable document (schema "dvs-bench-pipeline-v1").
  std::string to_json() const;
};

/// Runs the circuits x `pipelines` matrix on the thread pool with the
/// suite engine's determinism contract: every stochastic knob derives
/// from (suite seed, circuit seed, pipeline position), never from
/// scheduling.  `options.run_*` flags and the per-algorithm structs in
/// `options.flow` are ignored (pass knobs belong to the spec, see
/// above); circuit selection, threads, the root seed, and the shared
/// flow knobs (activity vectors, freq_mhz, tspec_relax) come from
/// `options` as in run_suite.
PipelineSuiteReport run_pipeline_suite(
    const SuiteOptions& options, const std::vector<std::string>& pipelines,
    const Library* lib = nullptr);

}  // namespace dvs
