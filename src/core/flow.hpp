// End-to-end experiment driver reproducing the paper's §4 setup: given a
// mapped circuit, fix the timing constraint at the mapped delay (the paper
// maps at minimum delay, relaxes 20%, re-maps with area recovery, and then
// constrains at the resulting delay), measure the original power with
// random simulation, and run CVS / Dscale / Gscale each from a fresh copy.
#pragma once

#include <string>

#include "core/cvs.hpp"
#include "core/design.hpp"
#include "core/dscale.hpp"
#include "core/gscale.hpp"

namespace dvs {

struct FlowOptions {
  CvsOptions cvs;
  DscaleOptions dscale;
  GscaleOptions gscale;
  ActivityOptions activity;
  double freq_mhz = 20.0;
  /// Extra slack handed to the algorithms on top of the mapped delay
  /// (0.0 = the paper's setup: the mapped delay *is* the constraint).
  double tspec_relax = 0.0;
};

/// One row of Table 1 + Table 2, measured.
struct CircuitRunResult {
  std::string name;
  int num_gates = 0;
  double tspec_ns = 0.0;

  double org_power_uw = 0.0;
  double cvs_improve_pct = 0.0;
  double dscale_improve_pct = 0.0;
  double gscale_improve_pct = 0.0;

  int cvs_low = 0;
  int dscale_low = 0;
  int gscale_low = 0;
  int gscale_resized = 0;
  int dscale_lcs = 0;
  double gscale_area_increase = 0.0;
  double gscale_seconds = 0.0;

  double cvs_low_ratio() const {
    return num_gates ? static_cast<double>(cvs_low) / num_gates : 0.0;
  }
  double dscale_low_ratio() const {
    return num_gates ? static_cast<double>(dscale_low) / num_gates : 0.0;
  }
  double gscale_low_ratio() const {
    return num_gates ? static_cast<double>(gscale_low) / num_gates : 0.0;
  }
};

/// The three optimization algorithms of the paper, as enumerable steps so
/// drivers (and the parallel suite engine) can run any matrix cell alone.
enum class PaperAlgo { kCvs, kDscale, kGscale };

/// Fills the shared columns of a row: name, gate count, the timing
/// constraint frozen at the mapped delay, and the original (all-high)
/// power.  Every pipeline cell of the matrix starts from this state.
/// Switching activity is a function of the logic alone, so the estimate
/// the original-power measurement already paid for can be handed out via
/// `activity_out` and adopted by every per-cell Design of the same job
/// (Design::adopt_activity) instead of being recomputed per cell.
void init_flow_row(const Network& mapped, const Library& lib,
                   const FlowOptions& options, CircuitRunResult* row,
                   Activity* activity_out = nullptr);

/// Fresh per-cell starting state: the mapped circuit with every gate at
/// vdd_high, the activity options / frequency applied, and the timing
/// constraint frozen at `tspec`.
Design make_flow_design(const Network& mapped, const Library& lib,
                        const FlowOptions& options, double tspec);

/// 100 * (original - optimized) / original, 0 when original is 0.
double improvement_pct(double original, double optimized);

/// Runs the full paper flow on one mapped circuit (all three algorithms;
/// implemented on run_single_job, see core/job.hpp).
CircuitRunResult run_paper_flow(const Network& mapped, const Library& lib,
                                const FlowOptions& options = {});

}  // namespace dvs
