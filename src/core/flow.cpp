#include "core/flow.hpp"

#include <chrono>

#include "support/contracts.hpp"

namespace dvs {

namespace {

double improvement_pct(double original, double optimized) {
  return original > 0.0 ? 100.0 * (original - optimized) / original : 0.0;
}

Design make_design(const Network& mapped, const Library& lib,
                   const FlowOptions& options, double tspec) {
  Design design(mapped, lib, tspec);
  design.set_activity_options(options.activity);
  design.set_freq_mhz(options.freq_mhz);
  return design;
}

}  // namespace

CircuitRunResult run_paper_flow(const Network& mapped, const Library& lib,
                                const FlowOptions& options) {
  CircuitRunResult row;
  row.name = mapped.name();
  row.num_gates = mapped.num_gates();

  // The constraint: the mapped circuit's own delay (possibly relaxed).
  const StaResult base_sta = run_sta(mapped, lib, -1.0);
  const double tspec =
      base_sta.worst_arrival * (1.0 + options.tspec_relax);
  row.tspec_ns = tspec;

  // Original power: everything at vdd_high.
  Design original = make_design(mapped, lib, options, tspec);
  row.org_power_uw = original.run_power().total();

  // CVS baseline.
  {
    Design design = make_design(mapped, lib, options, tspec);
    run_cvs(design, options.cvs);
    row.cvs_low = design.count_low();
    row.cvs_improve_pct =
        improvement_pct(row.org_power_uw, design.run_power().total());
    DVS_ASSERT(design.run_timing().meets_constraint(1e-6));
  }
  // Dscale.
  {
    Design design = make_design(mapped, lib, options, tspec);
    DscaleOptions dscale = options.dscale;
    dscale.cvs = options.cvs;
    run_dscale(design, dscale);
    row.dscale_low = design.count_low();
    row.dscale_lcs = design.count_lcs();
    row.dscale_improve_pct =
        improvement_pct(row.org_power_uw, design.run_power().total());
    DVS_ASSERT(design.run_timing().meets_constraint(1e-6));
  }
  // Gscale (timed: the paper's CPU column reports Gscale).
  {
    Design design = make_design(mapped, lib, options, tspec);
    GscaleOptions gscale = options.gscale;
    gscale.cvs = options.cvs;
    const auto start = std::chrono::steady_clock::now();
    const GscaleResult res = run_gscale(design, gscale);
    const auto stop = std::chrono::steady_clock::now();
    row.gscale_seconds =
        std::chrono::duration<double>(stop - start).count();
    row.gscale_low = design.count_low();
    row.gscale_resized = res.num_resized;
    row.gscale_area_increase = res.area_increase_ratio;
    row.gscale_improve_pct =
        improvement_pct(row.org_power_uw, design.run_power().total());
    DVS_ASSERT(design.run_timing().meets_constraint(1e-6));
  }
  return row;
}

}  // namespace dvs
