#include "core/flow.hpp"

namespace dvs {

double improvement_pct(double original, double optimized) {
  return original > 0.0 ? 100.0 * (original - optimized) / original : 0.0;
}

Design make_flow_design(const Network& mapped, const Library& lib,
                        const FlowOptions& options, double tspec) {
  Design design(mapped, lib, tspec);
  design.set_activity_options(options.activity);
  design.set_freq_mhz(options.freq_mhz);
  return design;
}

void init_flow_row(const Network& mapped, const Library& lib,
                   const FlowOptions& options, CircuitRunResult* row,
                   Activity* activity_out) {
  row->name = mapped.name();
  row->num_gates = mapped.num_gates();

  // The constraint: the mapped circuit's own delay (possibly relaxed).
  const StaResult base_sta = run_sta(mapped, lib, -1.0);
  row->tspec_ns = base_sta.worst_arrival * (1.0 + options.tspec_relax);

  // Original power: everything at vdd_high.
  Design original = make_flow_design(mapped, lib, options, row->tspec_ns);
  row->org_power_uw = original.run_power().total();
  if (activity_out != nullptr) *activity_out = original.activity();
}

}  // namespace dvs
