#include "core/flow.hpp"

#include <chrono>
#include <ctime>

#include "support/contracts.hpp"

namespace dvs {

namespace {

/// CPU seconds consumed by the calling thread — the paper's CPU column.
/// Unlike wall clock, this stays meaningful when the suite engine runs
/// many circuits concurrently on shared cores.
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double improvement_pct(double original, double optimized) {
  return original > 0.0 ? 100.0 * (original - optimized) / original : 0.0;
}

Design make_design(const Network& mapped, const Library& lib,
                   const FlowOptions& options, double tspec) {
  Design design(mapped, lib, tspec);
  design.set_activity_options(options.activity);
  design.set_freq_mhz(options.freq_mhz);
  return design;
}

}  // namespace

void init_flow_row(const Network& mapped, const Library& lib,
                   const FlowOptions& options, CircuitRunResult* row) {
  row->name = mapped.name();
  row->num_gates = mapped.num_gates();

  // The constraint: the mapped circuit's own delay (possibly relaxed).
  const StaResult base_sta = run_sta(mapped, lib, -1.0);
  row->tspec_ns = base_sta.worst_arrival * (1.0 + options.tspec_relax);

  // Original power: everything at vdd_high.
  Design original = make_design(mapped, lib, options, row->tspec_ns);
  row->org_power_uw = original.run_power().total();
}

void run_flow_algo(const Network& mapped, const Library& lib,
                   const FlowOptions& options, PaperAlgo algo,
                   CircuitRunResult* row,
                   std::optional<Design>* final_design) {
  Design design = make_design(mapped, lib, options, row->tspec_ns);
  switch (algo) {
    case PaperAlgo::kCvs: {
      run_cvs(design, options.cvs);
      row->cvs_low = design.count_low();
      row->cvs_improve_pct =
          improvement_pct(row->org_power_uw, design.run_power().total());
      break;
    }
    case PaperAlgo::kDscale: {
      DscaleOptions dscale = options.dscale;
      dscale.cvs = options.cvs;
      run_dscale(design, dscale);
      row->dscale_low = design.count_low();
      row->dscale_lcs = design.count_lcs();
      row->dscale_improve_pct =
          improvement_pct(row->org_power_uw, design.run_power().total());
      break;
    }
    case PaperAlgo::kGscale: {
      // Timed: the paper's CPU column reports Gscale.
      GscaleOptions gscale = options.gscale;
      gscale.cvs = options.cvs;
      const double start = thread_cpu_seconds();
      const GscaleResult res = run_gscale(design, gscale);
      row->gscale_seconds = thread_cpu_seconds() - start;
      row->gscale_low = design.count_low();
      row->gscale_resized = res.num_resized;
      row->gscale_area_increase = res.area_increase_ratio;
      row->gscale_improve_pct =
          improvement_pct(row->org_power_uw, design.run_power().total());
      break;
    }
  }
  DVS_ASSERT(design.run_timing().meets_constraint(1e-6));
  if (final_design) final_design->emplace(std::move(design));
}

}  // namespace dvs
