// Table formatting for the two experiment benches.  Layouts mirror the
// paper's Table 1 (power improvement) and Table 2 (profiles); when a
// paper-reference row is supplied the measured and published values are
// printed side by side.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "support/paper_ref.hpp"

namespace dvs {

std::string format_table1_header();
std::string format_table1_row(const CircuitRunResult& row,
                              const std::optional<PaperRow>& paper);
std::string format_table1_footer(
    const std::vector<CircuitRunResult>& rows,
    const std::vector<std::optional<PaperRow>>& papers);

std::string format_table2_header();
std::string format_table2_row(const CircuitRunResult& row,
                              const std::optional<PaperRow>& paper);
std::string format_table2_footer(
    const std::vector<CircuitRunResult>& rows,
    const std::vector<std::optional<PaperRow>>& papers);

}  // namespace dvs
