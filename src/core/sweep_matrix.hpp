// The sweep-matrix engine: one implementation of the supply-ladder x
// area-budget x algorithm experiment grid behind the E5/E6 bench drivers
// (bench/sweep_vlow.cpp, bench/sweep_area_budget.cpp) and the dvsd
// `sweep` session verb.  Cells are independent (fresh library copy,
// fresh circuit, per-cell seeds derived with the suite engine's
// discipline), so they fan out on the ThreadPool and the result is
// bit-identical however they were scheduled.
//
// The circuit comes from a callback taking the cell's effective library:
// generator-backed drivers rebuild (and re-map) the circuit at each
// ladder's operating point, while design sessions return a snapshot of
// the edited network whose mapping is pinned by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "support/json.hpp"

namespace dvs {

class ThreadPool;

/// What to run: the grid axes and the shared flow configuration.
struct SweepMatrixSpec {
  /// Supply ladders to sweep (each strictly descending, validated by
  /// SupplyLadder).  Empty = just the base library's ladder.
  std::vector<std::vector<double>> ladders;
  /// Gscale area-budget axis.  Empty = just the base options' budget.
  /// Cvs/Dscale cells ignore it and run once per ladder.
  std::vector<double> area_budgets;
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
  /// Base flow configuration; per-cell seeds are derived from
  /// (circuit_seed, algorithm) via derive_cell_flow, matching the suite
  /// engine and the daemon.
  FlowOptions base;
  std::uint64_t circuit_seed = 0x5eed;
};

/// One measured cell of the grid.
struct SweepCellResult {
  std::vector<double> supplies;
  double area_budget = 0.0;  // meaningful for gscale cells only
  std::string algo;
  /// Per-gate delay penalty of the ladder's bottom rung (percent).
  double delay_penalty_pct = 0.0;

  int gates = 0;
  double tspec_ns = 0.0;
  double org_power_uw = 0.0;
  double power_uw = 0.0;
  double improve_pct = 0.0;
  double arrival_ns = 0.0;
  double area_um2 = 0.0;
  int low = 0;
  int level_converters = 0;
  int resized = 0;
  double area_increase = 0.0;
  /// True when no other cell has both lower power and lower delay.
  bool pareto = false;
};

struct SweepMatrixResult {
  std::vector<SweepCellResult> cells;  // grid order: ladder, algo, budget
  std::vector<int> pareto;             // indices of the power/delay front
};

/// Marks the non-dominated cells of the (power, delay) minimization —
/// a cell is on the front iff no other cell is <= on both axes and
/// strictly < on at least one (exact duplicates stay on the front
/// together) — and returns the front's indices in grid order.
/// Sort-then-sweep, O(n log n); exposed for the membership-identity
/// tests against the quadratic pairwise definition.
std::vector<int> mark_pareto(std::vector<SweepCellResult>& cells);

/// Runs the grid.  `source` is called once per cell with the cell's
/// effective library and must return the circuit to optimize; it must be
/// thread-safe when `pool` is non-null (cells run concurrently).  A null
/// pool runs the cells serially on the calling thread; either way the
/// cells land in deterministic grid order.  Throws on invalid ladders.
SweepMatrixResult run_sweep_matrix(
    const std::function<Network(const Library&)>& source,
    const Library& base_lib, const SweepMatrixSpec& spec,
    ThreadPool* pool = nullptr);

/// {"cells":[...], "pareto":[...], "count":N} — the `sweep` reply body
/// and the bench drivers' --json payload.
Json sweep_matrix_json(const SweepMatrixResult& result);

}  // namespace dvs
