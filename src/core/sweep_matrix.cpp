#include "core/sweep_matrix.hpp"

#include <algorithm>
#include <future>
#include <limits>
#include <optional>
#include <utility>

#include "core/job.hpp"
#include "support/thread_pool.hpp"

namespace dvs {

namespace {

/// One fully-specified grid point, expanded before execution so cells
/// can run in any order and still land deterministically.
struct CellSpec {
  std::vector<double> supplies;
  double budget = 0.0;
  PaperAlgo algo = PaperAlgo::kCvs;
  bool has_budget = false;  // gscale cells only
};

std::vector<CellSpec> expand(const SweepMatrixSpec& spec,
                             const Library& base_lib) {
  std::vector<std::vector<double>> ladders = spec.ladders;
  if (ladders.empty()) ladders.push_back(base_lib.supplies().voltages());
  std::vector<double> budgets = spec.area_budgets;
  if (budgets.empty()) budgets.push_back(spec.base.gscale.area_budget_ratio);

  std::vector<CellSpec> cells;
  for (const std::vector<double>& ladder : ladders) {
    SupplyLadder{ladder};  // validate up front: one bad ladder fails all
    if (spec.run_cvs)
      cells.push_back({ladder, 0.0, PaperAlgo::kCvs, false});
    if (spec.run_dscale)
      cells.push_back({ladder, 0.0, PaperAlgo::kDscale, false});
    if (spec.run_gscale)
      for (double budget : budgets)
        cells.push_back({ladder, budget, PaperAlgo::kGscale, true});
  }
  return cells;
}

SweepCellResult run_cell(
    const std::function<Network(const Library&)>& source,
    const Library& base_lib, const SweepMatrixSpec& spec,
    const CellSpec& cell) {
  // The cell's operating point: the base library retargeted to the
  // cell's ladder (skipping the copy when it already matches).
  SupplyLadder ladder(cell.supplies);
  const Library* lib = &base_lib;
  std::optional<Library> adjusted;
  if (ladder != base_lib.supplies()) {
    adjusted.emplace(base_lib);
    adjusted->set_supply_ladder(std::move(ladder));
    lib = &*adjusted;
  }
  const Network net = source(*lib);

  // The suite engine's per-cell seed derivation, so a sweep cell is
  // comparable to the matching daemon / suite_bench cell.
  FlowOptions flow = derive_cell_flow(spec.base, spec.circuit_seed,
                                      cell.algo);
  if (cell.has_budget) flow.gscale.area_budget_ratio = cell.budget;

  CircuitRunResult row;
  Activity activity;
  init_flow_row(net, *lib, flow, &row, &activity);
  Design design = make_flow_design(net, *lib, flow, row.tspec_ns);
  design.adopt_activity(std::move(activity));

  SweepCellResult out;
  out.supplies = cell.supplies;
  out.area_budget = cell.has_budget ? cell.budget : 0.0;
  out.algo = paper_algo_name(cell.algo);
  out.delay_penalty_pct =
      100.0 *
      (lib->voltage_model().delay_factor(lib->supplies().bottom()) - 1.0);
  out.gates = row.num_gates;
  out.tspec_ns = row.tspec_ns;
  out.org_power_uw = row.org_power_uw;

  switch (cell.algo) {
    case PaperAlgo::kCvs:
      run_cvs(design, flow.cvs);
      break;
    case PaperAlgo::kDscale:
      run_dscale(design, flow.dscale);
      break;
    case PaperAlgo::kGscale: {
      const GscaleResult r = run_gscale(design, flow.gscale);
      out.resized = r.num_resized;
      out.area_increase = r.area_increase_ratio;
      break;
    }
  }

  out.power_uw = design.run_power().total();
  out.improve_pct = improvement_pct(out.org_power_uw, out.power_uw);
  out.arrival_ns = design.run_timing().worst_arrival;
  out.area_um2 = design.total_area();
  out.low = design.count_low();
  out.level_converters = design.count_lcs();
  return out;
}

}  // namespace

std::vector<int> mark_pareto(std::vector<SweepCellResult>& cells) {
  // Sort-then-sweep over (power, arrival) ascending.  A cell is
  // dominated iff some other cell is no worse on both axes and strictly
  // better on one; exact duplicates therefore keep each other on the
  // front, which the equal-power grouping below preserves (a point can
  // only be knocked out by a *strictly* smaller arrival inside its own
  // power group, or by any earlier group's arrival <= its own).
  const std::size_t n = cells.size();
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (cells[a].power_uw != cells[b].power_uw)
      return cells[a].power_uw < cells[b].power_uw;
    return cells[a].arrival_ns < cells[b].arrival_ns;
  });
  double best_prev = std::numeric_limits<double>::infinity();
  std::size_t g = 0;
  while (g < n) {
    std::size_t end = g;
    while (end < n &&
           cells[order[end]].power_uw == cells[order[g]].power_uw)
      ++end;
    const double group_best = cells[order[g]].arrival_ns;  // sorted asc
    for (std::size_t k = g; k < end; ++k) {
      const double a = cells[order[k]].arrival_ns;
      cells[order[k]].pareto = best_prev > a && group_best >= a;
    }
    best_prev = std::min(best_prev, group_best);
    g = end;
  }
  std::vector<int> front;
  for (std::size_t i = 0; i < n; ++i)
    if (cells[i].pareto) front.push_back(static_cast<int>(i));
  return front;
}

SweepMatrixResult run_sweep_matrix(
    const std::function<Network(const Library&)>& source,
    const Library& base_lib, const SweepMatrixSpec& spec,
    ThreadPool* pool) {
  const std::vector<CellSpec> specs = expand(spec, base_lib);
  SweepMatrixResult result;
  result.cells.resize(specs.size());
  if (pool != nullptr && specs.size() > 1) {
    // One pool task per cell; the caller's thread (a session I/O thread
    // or a bench main) blocks on the futures, never a pool worker, so a
    // single-threaded pool cannot deadlock on its own sweep.
    std::vector<std::future<SweepCellResult>> futures(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto promise = std::make_shared<std::promise<SweepCellResult>>();
      futures[i] = promise->get_future();
      const CellSpec* cell = &specs[i];
      pool->submit([&source, &base_lib, &spec, cell, promise] {
        try {
          promise->set_value(run_cell(source, base_lib, spec, *cell));
        } catch (...) {
          promise->set_exception(std::current_exception());
        }
      });
    }
    for (std::size_t i = 0; i < specs.size(); ++i)
      result.cells[i] = futures[i].get();  // rethrows cell failures
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i)
      result.cells[i] = run_cell(source, base_lib, spec, specs[i]);
  }
  result.pareto = mark_pareto(result.cells);
  return result;
}

Json sweep_matrix_json(const SweepMatrixResult& result) {
  Json::Array cells;
  for (const SweepCellResult& cell : result.cells) {
    Json::Object entry;
    Json::Array supplies;
    for (double v : cell.supplies) supplies.emplace_back(v);
    entry["supplies"] = Json(std::move(supplies));
    if (cell.algo == "gscale")
      entry["area_budget"] = Json(cell.area_budget);
    entry["algo"] = Json(cell.algo);
    entry["delay_penalty_pct"] = Json(cell.delay_penalty_pct);
    entry["gates"] = Json(cell.gates);
    entry["tspec_ns"] = Json(cell.tspec_ns);
    entry["org_power_uw"] = Json(cell.org_power_uw);
    entry["power_uw"] = Json(cell.power_uw);
    entry["improve_pct"] = Json(cell.improve_pct);
    entry["arrival_ns"] = Json(cell.arrival_ns);
    entry["area_um2"] = Json(cell.area_um2);
    entry["low"] = Json(cell.low);
    entry["level_converters"] = Json(cell.level_converters);
    entry["resized"] = Json(cell.resized);
    entry["area_increase"] = Json(cell.area_increase);
    entry["pareto"] = Json(cell.pareto);
    cells.emplace_back(std::move(entry));
  }
  Json::Object object;
  object["cells"] = Json(std::move(cells));
  Json::Array front;
  for (int i : result.pareto)
    front.emplace_back(static_cast<std::int64_t>(i));
  object["pareto"] = Json(std::move(front));
  object["count"] =
      Json(static_cast<std::uint64_t>(result.cells.size()));
  return Json(std::move(object));
}

}  // namespace dvs
