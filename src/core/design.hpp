// Design: the central context object for multi-Vdd optimization.  Bundles
// the mapped network, the library, the per-gate supply-ladder assignment,
// the timing constraint, and the derived level-converter bookkeeping, and
// offers timing / power / area evaluation of the *current* state.
//
// Level converters are kept virtual (per-node flags consumed by the STA
// and the power model) so algorithms can retarget voltages freely;
// `materialize_level_converters` (boundary.hpp) instantiates them as real
// gates for export.
#pragma once

#include <memory>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"
#include "power/activity.hpp"
#include "power/power_model.hpp"
#include "timing/graph.hpp"
#include "timing/sta.hpp"

namespace dvs {

class Design {
 public:
  /// Takes ownership of the mapped network.  Every gate starts at the
  /// ladder's top rung.  `tspec < 0` (default) freezes the constraint at
  /// the network's own mapped delay — the paper's experimental setup.
  Design(Network net, const Library& lib, double tspec = -1.0);

  const Network& network() const { return net_; }
  Network& network() { return net_; }
  const Library& library() const { return *lib_; }

  double tspec() const { return tspec_; }
  void set_tspec(double tspec) { tspec_ = tspec; }

  // ---- voltage assignment ----------------------------------------------
  /// Supply ladder shared with the library (rung 0 = highest voltage).
  const SupplyLadder& supplies() const { return lib_->supplies(); }

  SupplyId level(NodeId id) const;
  /// Sets the rung and refreshes boundary flags incrementally around the
  /// node (its own LC flag and its fanins').
  void set_level(NodeId id, SupplyId level);
  /// Gates below the top rung (the paper's "low" column; for a dual
  /// ladder exactly the vdd_low gates).
  int count_low() const;
  /// Gates at one specific rung / at every rung (index = SupplyId).
  int count_at(SupplyId level) const;
  std::vector<int> count_per_level() const;

  /// Per-node supply voltage vector consumed by STA/power (non-gates run
  /// at vdd_high by convention; their entries are never used in arcs).
  const std::vector<double>& node_vdd() const { return node_vdd_; }
  /// Level-converter-on-output flags (derived from the assignment).
  const std::vector<char>& lc_flags() const { return lc_flags_; }

  /// True iff this node currently needs a level converter on its output.
  bool needs_lc(NodeId id) const { return lc_flags_[id] != 0; }
  int count_lcs() const;

  /// Recomputes all LC flags from scratch (after bulk edits).
  void refresh_boundary();

  /// Called after structural network edits (node insertion, sizing does
  /// not require it) to resize the per-node vectors.
  void sync_with_network();

  // ---- sizing ------------------------------------------------------------
  /// Cell each gate carried when the Design was constructed.
  int original_cell(NodeId id) const;
  /// Number of gates whose current cell differs from the original.
  int count_resized() const;

  // ---- evaluation ---------------------------------------------------------
  /// Compiled flat timing graph of the current network, recompiled
  /// automatically when the network's structural version moves (point
  /// changes — supplies, cells, LC flags — patch in place instead).  The
  /// reference stays valid until the next structural edit or relocation
  /// of this Design; contexts from timing_context() share ownership and
  /// outlive recompiles.  Like the graph's sync methods, the lazy
  /// compile/sync here writes through const: timing a shared Design from
  /// several threads at once is not supported.
  const TimingGraph& timing_graph() const;

  TimingContext timing_context() const;
  StaResult run_timing() const;

  /// Switching activity is a function of logic only, so it is computed
  /// once (lazily) and reused across voltage/size changes.
  const Activity& activity() const;
  void set_activity_options(const ActivityOptions& options);
  /// Seeds the lazy activity cache with an estimate computed elsewhere.
  /// Caller contract: `activity` must equal what this design would
  /// compute itself — same logic network, same options, same topological
  /// order — as when several Designs of one job are copies of one mapped
  /// circuit.  A later structural edit (sync_with_network) discards it
  /// and recomputes as usual.
  void adopt_activity(Activity activity);

  PowerBreakdown run_power() const;

  /// Total cell area including virtual level converters (um^2).
  double total_area() const;
  /// Area of the original, all-high, unsized design.
  double original_area() const { return original_area_; }

  double freq_mhz() const { return freq_mhz_; }
  void set_freq_mhz(double f) { freq_mhz_ = f; }

 private:
  friend void recompute_boundary(Design& design);
  friend void refresh_boundary_around(Design& design, NodeId id);

  Network net_;
  const Library* lib_;
  double tspec_ = 0.0;
  double freq_mhz_ = 20.0;
  std::vector<SupplyId> levels_;
  std::vector<double> node_vdd_;
  std::vector<char> lc_flags_;
  std::vector<int> original_cells_;
  double original_area_ = 0.0;
  /// Cache slot for the compiled graph: copies and moves of the Design
  /// start empty (the graph is keyed to the source's network object), so
  /// every other special member can stay defaulted.
  struct GraphSlot {
    GraphSlot() = default;
    GraphSlot(const GraphSlot&) noexcept {}
    GraphSlot(GraphSlot&&) noexcept {}
    GraphSlot& operator=(const GraphSlot&) noexcept {
      graph.reset();
      return *this;
    }
    GraphSlot& operator=(GraphSlot&&) noexcept {
      graph.reset();
      return *this;
    }
    mutable std::shared_ptr<TimingGraph> graph;
  };

  ActivityOptions activity_options_;
  mutable Activity activity_;
  mutable bool activity_valid_ = false;
  GraphSlot graph_;
};

}  // namespace dvs
