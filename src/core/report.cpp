#include "core/report.hpp"

#include <cstdarg>
#include <cstdio>

namespace dvs {

namespace {

std::string line(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace

std::string format_table1_header() {
  return line("%-10s %10s | %8s %8s | %8s %8s | %8s %8s | %7s\n"
              "%-10s %10s | %8s %8s | %8s %8s | %8s %8s | %7s\n",
              "circuit", "OrgPwr(uW)", "CVS%", "paper", "Dscale%", "paper",
              "Gscale%", "paper", "CPU(s)", "-------", "----------",
              "-----", "-----", "-------", "-----", "-------", "-----",
              "------");
}

std::string format_table1_row(const CircuitRunResult& row,
                              const std::optional<PaperRow>& paper) {
  auto ref = [&](double measured, double published) {
    (void)measured;
    return paper ? line("%8.2f", published) : std::string(8, ' ');
  };
  return line("%-10s %10.2f | %8.2f %s | %8.2f %s | %8.2f %s | %7.2f\n",
              row.name.c_str(), row.org_power_uw, row.cvs_improve_pct,
              ref(row.cvs_improve_pct,
                  paper ? paper->cvs_pct : 0.0).c_str(),
              row.dscale_improve_pct,
              ref(row.dscale_improve_pct,
                  paper ? paper->dscale_pct : 0.0).c_str(),
              row.gscale_improve_pct,
              ref(row.gscale_improve_pct,
                  paper ? paper->gscale_pct : 0.0).c_str(),
              row.gscale_seconds);
}

std::string format_table1_footer(
    const std::vector<CircuitRunResult>& rows,
    const std::vector<std::optional<PaperRow>>& papers) {
  double cvs = 0, dscale = 0, gscale = 0;
  double pcvs = 0, pdscale = 0, pgscale = 0;
  int n = 0, pn = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    cvs += rows[i].cvs_improve_pct;
    dscale += rows[i].dscale_improve_pct;
    gscale += rows[i].gscale_improve_pct;
    ++n;
    if (i < papers.size() && papers[i]) {
      pcvs += papers[i]->cvs_pct;
      pdscale += papers[i]->dscale_pct;
      pgscale += papers[i]->gscale_pct;
      ++pn;
    }
  }
  std::string out =
      line("%-10s %10s | %8.2f %8s | %8.2f %8s | %8.2f %8s |\n", "average",
           "", cvs / n, pn ? line("%8.2f", pcvs / pn).c_str() : "",
           dscale / n, pn ? line("%8.2f", pdscale / pn).c_str() : "",
           gscale / n, pn ? line("%8.2f", pgscale / pn).c_str() : "");
  out += line("(paper averages: CVS 10.27, Dscale 12.09, Gscale 19.12)\n");
  return out;
}

std::string format_table2_header() {
  return line("%-10s %5s | %5s %5s %6s | %5s %5s %6s | %5s %5s %6s | "
              "%5s %6s %6s\n",
              "circuit", "gates", "cvs#", "ratio", "paper", "dsc#", "ratio",
              "paper", "gsc#", "ratio", "paper", "sized", "areaInc",
              "paper");
}

std::string format_table2_row(const CircuitRunResult& row,
                              const std::optional<PaperRow>& paper) {
  auto ratio_ref = [&](double published) {
    return paper ? line("%6.2f", published) : std::string(6, ' ');
  };
  return line("%-10s %5d | %5d %5.2f %s | %5d %5.2f %s | %5d %5.2f %s | "
              "%5d %6.2f %s\n",
              row.name.c_str(), row.num_gates, row.cvs_low,
              row.cvs_low_ratio(),
              ratio_ref(paper ? paper->cvs_ratio : 0.0).c_str(),
              row.dscale_low, row.dscale_low_ratio(),
              ratio_ref(paper ? paper->dscale_ratio : 0.0).c_str(),
              row.gscale_low, row.gscale_low_ratio(),
              ratio_ref(paper ? paper->gscale_ratio : 0.0).c_str(),
              row.gscale_resized, row.gscale_area_increase,
              ratio_ref(paper ? paper->area_increase : 0.0).c_str());
}

std::string format_table2_footer(
    const std::vector<CircuitRunResult>& rows,
    const std::vector<std::optional<PaperRow>>& papers) {
  double cvs = 0, dscale = 0, gscale = 0, area = 0;
  double pcvs = 0, pdscale = 0, pgscale = 0, parea = 0;
  int n = 0, pn = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    cvs += rows[i].cvs_low_ratio();
    dscale += rows[i].dscale_low_ratio();
    gscale += rows[i].gscale_low_ratio();
    area += rows[i].gscale_area_increase;
    ++n;
    if (i < papers.size() && papers[i]) {
      pcvs += papers[i]->cvs_ratio;
      pdscale += papers[i]->dscale_ratio;
      pgscale += papers[i]->gscale_ratio;
      parea += papers[i]->area_increase;
      ++pn;
    }
  }
  std::string out = line(
      "%-10s %5s | %5s %5.2f %6s | %5s %5.2f %6s | %5s %5.2f %6s | "
      "%5s %6.2f %6s\n",
      "average", "", "", cvs / n,
      pn ? line("%6.2f", pcvs / pn).c_str() : "", "", dscale / n,
      pn ? line("%6.2f", pdscale / pn).c_str() : "", "", gscale / n,
      pn ? line("%6.2f", pgscale / pn).c_str() : "", "", area / n,
      pn ? line("%6.2f", parea / pn).c_str() : "");
  out += line("(paper averages: CVS 0.37, Dscale 0.45, Gscale 0.70, "
              "area 0.01)\n");
  return out;
}

}  // namespace dvs
