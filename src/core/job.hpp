// The single-job flow runner: one mapped circuit through any subset of
// the paper's three algorithms, producing one Table-1/2 row.  This is the
// ONE code path behind every driver — each matrix cell of the parallel
// suite engine (core/suite.cpp), run_paper_flow, and every dvsd service
// request run through run_single_job, so a result computed by the daemon
// is bit-identical to the same cell of a suite_bench run.
//
// Seed discipline matches the suite engine: every stochastic knob is a
// pure function of (circuit seed, algorithm) via derive_cell_flow, never
// of scheduling or request order.
#pragma once

#include <cstdint>
#include <optional>

#include "core/flow.hpp"

namespace dvs {

/// What to run on one circuit.
struct JobSpec {
  FlowOptions flow;
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
};

/// Optional capture of the optimized Design per algorithm (the service
/// uses this to serialize the optimized netlist / final power-delay-area;
/// the suite engine passes nullptr and pays nothing).
struct JobArtifacts {
  std::optional<Design> cvs;
  std::optional<Design> dscale;
  std::optional<Design> gscale;

  std::optional<Design>* slot(PaperAlgo algo) {
    switch (algo) {
      case PaperAlgo::kCvs: return &cvs;
      case PaperAlgo::kDscale: return &dscale;
      case PaperAlgo::kGscale: return &gscale;
    }
    return nullptr;
  }
};

/// Derives the per-cell flow options from a base configuration: the
/// activity seed is the circuit seed (shared by all algorithms of the
/// circuit, so they measure improvement against the same original
/// power), and algorithm-private randomness (Gscale's ablation cut
/// selector) is mixed from (circuit seed, algorithm).  This is the suite
/// engine's derivation, exposed so the service derives identically.
FlowOptions derive_cell_flow(const FlowOptions& base,
                             std::uint64_t circuit_seed, PaperAlgo algo);

/// Runs the enabled algorithms on a fresh copy of `mapped` each and
/// returns the filled row (shared columns + one column group per enabled
/// algorithm).  `artifacts`, when non-null, receives the final Design of
/// each enabled algorithm.
CircuitRunResult run_single_job(const Network& mapped, const Library& lib,
                                const JobSpec& spec,
                                JobArtifacts* artifacts = nullptr);

}  // namespace dvs
