// The single-job flow runner: one mapped circuit through an ordered
// list of optimization-pass pipelines, producing one Table-1/2 row plus
// per-pass trajectories.  This is the ONE code path behind every driver
// — each matrix cell of the parallel suite engine (core/suite.cpp),
// run_paper_flow, and every dvsd service request run through
// run_pipeline_job, so a result computed by the daemon is bit-identical
// to the same cell of a suite_bench run.
//
// The paper's three algorithms are not special-cased anywhere below
// this line: the legacy three-boolean JobSpec is a thin adapter that
// compiles into the canonical single-pass pipelines ("cvs", "dscale",
// "gscale") via make_paper_cell, and arbitrary registry pipelines run
// through exactly the same machinery.
//
// Seed discipline matches the suite engine: every stochastic knob is a
// pure function of (circuit seed, algorithm/position) via
// derive_cell_flow / Pipeline::resolve_seeds, never of scheduling or
// request order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "opt/pipeline.hpp"

namespace dvs {

/// What to run on one circuit (legacy adapter surface).
struct JobSpec {
  FlowOptions flow;
  bool run_cvs = true;
  bool run_dscale = true;
  bool run_gscale = true;
};

/// One pipeline cell of a job.  `label` is "cvs"/"dscale"/"gscale" for
/// the canonical paper cells (those fill the legacy row columns), the
/// pass name for other single-pass pipelines, and "pipeline" for
/// multi-pass specs.
struct JobCell {
  std::string label;
  Pipeline pipeline;
};

const char* paper_algo_name(PaperAlgo algo);

/// The canonical paper pipeline of one algorithm with `flow`'s options
/// (including already-derived seeds) bound onto the pass — what the
/// legacy JobSpec and the protocol's `algos` field compile to.
JobCell make_paper_cell(PaperAlgo algo, const FlowOptions& flow);

/// Builds `label` for a spec'd pipeline: the pass name when it has one
/// pass, "pipeline" otherwise.
std::string pipeline_label(const Pipeline& pipeline);

/// Result of one executed cell, keyed by cell position: the canonical
/// spec it ran, the per-pass trajectory, the final improvement over the
/// original power, and — when capture was requested — the final
/// optimized Design (voltage assignment, sizing, virtual converters).
struct JobCellResult {
  std::string label;
  std::string spec;
  double improve_pct = 0.0;
  PipelineRun run;
  std::optional<Design> design;
};

struct PipelineJobResult {
  CircuitRunResult row;  // legacy columns filled from paper cells
  std::vector<JobCellResult> cells;  // same order as the request
};

/// Derives the per-cell flow options from a base configuration: the
/// activity seed is the circuit seed (shared by all algorithms of the
/// circuit, so they measure improvement against the same original
/// power), and algorithm-private randomness (Gscale's ablation cut
/// selector) is mixed from (circuit seed, algorithm).  This is the suite
/// engine's derivation, exposed so the service derives identically.
FlowOptions derive_cell_flow(const FlowOptions& base,
                             std::uint64_t circuit_seed, PaperAlgo algo);

/// Precomputed circuit-shared job state: init_flow_row's columns plus
/// the switching-activity estimate.  Both are pure functions of the
/// mapped circuit and the job-wide options (never of the per-algorithm
/// seeds), so one computation can be shared by every job the suite runs
/// on the same circuit — the values are identical to what each job would
/// compute itself.
struct JobInit {
  CircuitRunResult row;
  Activity activity;
};

/// Computes the shared state once (one STA for the constraint, one power
/// measurement, one activity estimate).
JobInit make_job_init(const Network& mapped, const Library& lib,
                      const FlowOptions& flow);

/// Runs every cell on a fresh copy of `mapped` (shared columns from
/// `base_flow`) and returns the filled row plus the per-cell results.
/// `capture_designs` moves each cell's final Design into its result.
/// `init`, when given, supplies the precomputed shared columns/activity
/// instead of recomputing them.
PipelineJobResult run_pipeline_job(const Network& mapped, const Library& lib,
                                   const FlowOptions& base_flow,
                                   std::vector<JobCell> cells,
                                   bool capture_designs = false,
                                   const JobInit* init = nullptr);

/// Legacy three-boolean adapter: compiles `spec` into the canonical
/// paper pipelines and executes them through run_pipeline_job.
CircuitRunResult run_single_job(const Network& mapped, const Library& lib,
                                const JobSpec& spec,
                                const JobInit* init = nullptr);

}  // namespace dvs
