// Clustered Voltage Scaling (Usami & Horowitz, ISLPED'95) — the paper's
// baseline and the inner engine of Gscale, generalized to the supply
// ladder.  Traverses from the primary outputs; a gate may drop to the
// deepest rung that is (a) no deeper than any of its gate fanouts
// (keeping each cluster contingent to the POs, so no internal level
// converter is ever needed) and (b) within its slack.  On the default
// dual ladder this is exactly the paper's high->low test.
#pragma once

#include <vector>

#include "core/design.hpp"

namespace dvs {

struct CvsOptions {
  /// Safety margin subtracted from the slack before accepting (ns).
  double slack_margin = 1e-9;
};

struct CvsResult {
  int num_lowered = 0;  // gates lowered by this invocation
  /// Timing-critical boundary at exit (see timing/tcb.hpp).
  std::vector<NodeId> tcb;
};

/// Runs CVS on the design's current state; safe to call repeatedly (Gscale
/// re-invokes it after every sizing step to push the TCB).
CvsResult run_cvs(Design& design, const CvsOptions& options = {});

/// Invariant checker used by tests: no gate sits deeper than any of its
/// gate fanouts (cluster contingency), and no level converter flag is set.
bool cvs_cluster_invariant_holds(const Design& design);

}  // namespace dvs
