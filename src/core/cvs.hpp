// Clustered Voltage Scaling (Usami & Horowitz, ISLPED'95) — the paper's
// baseline and the inner engine of Gscale.  Traverses from the primary
// outputs; a gate may be lowered only when every gate fanout is already
// low (keeping the low cluster contingent to the POs, so no internal
// level converter is ever needed) and the added delay fits in its slack.
#pragma once

#include <vector>

#include "core/design.hpp"

namespace dvs {

struct CvsOptions {
  /// Safety margin subtracted from the slack before accepting (ns).
  double slack_margin = 1e-9;
};

struct CvsResult {
  int num_lowered = 0;  // gates lowered by this invocation
  /// Timing-critical boundary at exit (see timing/tcb.hpp).
  std::vector<NodeId> tcb;
};

/// Runs CVS on the design's current state; safe to call repeatedly (Gscale
/// re-invokes it after every sizing step to push the TCB).
CvsResult run_cvs(Design& design, const CvsOptions& options = {});

/// Invariant checker used by tests: every low gate's gate-fanouts are all
/// low (cluster contingency), and no level converter flag is set.
bool cvs_cluster_invariant_holds(const Design& design);

}  // namespace dvs
