#include "core/boundary.hpp"

#include "support/contracts.hpp"

namespace dvs {

bool lc_needed(const Design& design, NodeId id) {
  const Network& net = design.network();
  if (!net.is_valid(id) || !net.node(id).is_gate()) return false;
  const SupplyId driver = design.level(id);
  if (driver == kTopRung) return false;  // nothing sits above the top
  for (NodeId fo : net.node(id).fanouts) {
    const Node& sink = net.node(fo);
    if (sink.is_gate() &&
        SupplyLadder::converter_needed(driver, design.level(fo)))
      return true;
  }
  return false;
}

void recompute_boundary(Design& design) {
  design.network().for_each_node([&](const Node& n) {
    design.lc_flags_[n.id] = lc_needed(design, n.id) ? 1 : 0;
  });
}

void refresh_boundary_around(Design& design, NodeId id) {
  design.lc_flags_[id] = lc_needed(design, id) ? 1 : 0;
  for (NodeId fi : design.network().node(id).fanins)
    design.lc_flags_[fi] = lc_needed(design, fi) ? 1 : 0;
}

Network materialize_level_converters(const Design& design,
                                     std::vector<char>* low_mask_out) {
  Network net = design.network();  // deep copy
  const Library& lib = design.library();
  const int lc_cell = lib.level_converter();
  DVS_EXPECTS(lc_cell >= 0);

  const int original_size = net.size();
  std::vector<char> low(original_size, 0);
  for (NodeId id = 0; id < original_size; ++id)
    if (net.is_valid(id) && net.node(id).is_gate() &&
        design.level(id) != kTopRung)
      low[id] = 1;

  for (NodeId id = 0; id < original_size; ++id) {
    if (!design.needs_lc(id)) continue;
    // Gate fanouts on strictly shallower rungs move behind one shared
    // converter; same-or-deeper gates and output ports stay direct.
    const SupplyId driver = design.level(id);
    std::vector<NodeId> moved;
    for (NodeId fo : net.node(id).fanouts) {
      const Node& sink = net.node(fo);
      if (sink.is_gate() && fo < original_size &&
          SupplyLadder::converter_needed(driver, design.level(fo)))
        moved.push_back(fo);
    }
    DVS_ASSERT(!moved.empty());
    net.insert_between(id, moved, {}, tt_buf(), lc_cell,
                       net.node(id).name + "_lc");
  }
  net.check();
  if (low_mask_out != nullptr) {
    low_mask_out->assign(net.size(), 0);
    for (NodeId id = 0; id < original_size; ++id)
      (*low_mask_out)[id] = low[id];
  }
  return net;
}

}  // namespace dvs
