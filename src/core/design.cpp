#include "core/design.hpp"

#include "core/boundary.hpp"
#include "support/contracts.hpp"

namespace dvs {

Design::Design(Network net, const Library& lib, double tspec)
    : net_(std::move(net)), lib_(&lib) {
  const int n = net_.size();
  levels_.assign(n, kTopRung);
  node_vdd_.assign(n, lib.vdd_high());
  lc_flags_.assign(n, 0);
  original_cells_.assign(n, -1);
  net_.for_each_gate([&](const Node& g) {
    original_cells_[g.id] = g.cell;
    if (g.cell >= 0) original_area_ += lib.cell(g.cell).area;
  });
  if (tspec < 0.0) {
    const StaResult sta = run_timing();
    tspec_ = sta.worst_arrival;
  } else {
    tspec_ = tspec;
  }
}

SupplyId Design::level(NodeId id) const {
  DVS_EXPECTS(id >= 0 && id < static_cast<NodeId>(levels_.size()));
  return levels_[id];
}

void Design::set_level(NodeId id, SupplyId level) {
  DVS_EXPECTS(net_.is_valid(id) && net_.node(id).is_gate());
  DVS_EXPECTS(level < supplies().depth());
  levels_[id] = level;
  node_vdd_[id] = supplies().voltage(level);
  // The boundary can change at this node and at each gate fanin.
  refresh_boundary_around(*this, id);
}

int Design::count_low() const {
  int count = 0;
  net_.for_each_gate([&](const Node& g) {
    if (levels_[g.id] != kTopRung) ++count;
  });
  return count;
}

int Design::count_at(SupplyId level) const {
  int count = 0;
  net_.for_each_gate([&](const Node& g) {
    if (levels_[g.id] == level) ++count;
  });
  return count;
}

std::vector<int> Design::count_per_level() const {
  std::vector<int> counts(supplies().depth(), 0);
  net_.for_each_gate([&](const Node& g) { ++counts[levels_[g.id]]; });
  return counts;
}

int Design::count_lcs() const {
  int count = 0;
  net_.for_each_gate([&](const Node& g) {
    if (lc_flags_[g.id]) ++count;
  });
  return count;
}

void Design::refresh_boundary() { recompute_boundary(*this); }

void Design::sync_with_network() {
  const int n = net_.size();
  levels_.resize(n, kTopRung);
  node_vdd_.resize(n, lib_->vdd_high());
  lc_flags_.resize(n, 0);
  original_cells_.resize(n, -1);
  activity_valid_ = false;
  refresh_boundary();
}

int Design::original_cell(NodeId id) const {
  DVS_EXPECTS(id >= 0 && id < static_cast<NodeId>(original_cells_.size()));
  return original_cells_[id];
}

int Design::count_resized() const {
  int count = 0;
  net_.for_each_gate([&](const Node& g) {
    if (original_cells_[g.id] >= 0 && g.cell != original_cells_[g.id])
      ++count;
  });
  return count;
}

const TimingGraph& Design::timing_graph() const {
  if (!graph_.graph || !graph_.graph->describes(net_, *lib_))
    graph_.graph = std::make_shared<TimingGraph>(net_, *lib_);
  return *graph_.graph;
}

TimingContext Design::timing_context() const {
  TimingContext ctx;
  ctx.net = &net_;
  ctx.lib = lib_;
  ctx.node_vdd = node_vdd_;
  ctx.node_level = levels_;
  ctx.lc_on_output = lc_flags_;
  ctx.graph = &timing_graph();
  ctx.graph_owner = graph_.graph;
  return ctx;
}

StaResult Design::run_timing() const {
  return run_sta(timing_context(), tspec_);
}

const Activity& Design::activity() const {
  if (!activity_valid_) {
    activity_ =
        estimate_activity(net_, activity_options_,
                          timing_graph().topo_order());
    activity_valid_ = true;
  }
  return activity_;
}

void Design::set_activity_options(const ActivityOptions& options) {
  activity_options_ = options;
  activity_valid_ = false;
}

void Design::adopt_activity(Activity activity) {
  activity_ = std::move(activity);
  activity_valid_ = true;
}

PowerBreakdown Design::run_power() const {
  PowerContext ctx;
  ctx.net = &net_;
  ctx.lib = lib_;
  ctx.node_vdd = node_vdd_;
  ctx.lc_on_output = lc_flags_;
  ctx.alpha01 = activity().alpha01;
  ctx.freq_mhz = freq_mhz_;
  ctx.graph = &timing_graph();
  return compute_power(ctx);
}

double Design::total_area() const {
  double area = 0.0;
  const int lc = lib_->level_converter();
  net_.for_each_gate([&](const Node& g) {
    if (g.cell >= 0) area += lib_->cell(g.cell).area;
    if (lc_flags_[g.id] && lc >= 0) area += lib_->cell(lc).area;
  });
  return area;
}

}  // namespace dvs
