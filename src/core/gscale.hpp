// Gscale (paper §3): creates new timing slack by up-sizing gates so the
// CVS cluster can grow toward the primary inputs.  Each iteration extracts
// the critical-path network feeding the timing-critical boundary, weights
// every member by area-penalty-per-time-gained for a one-step upsize,
// resizes a minimum-weight separator of the CPN (every critical path sped
// up, no path resized twice), and re-runs CVS to push the TCB.  Stops when
// the area budget is exhausted or maxIter consecutive pushes fail to move
// the TCB.
#pragma once

#include "core/cvs.hpp"
#include "core/design.hpp"
#include "graph/flow_network.hpp"

namespace dvs {

struct GscaleOptions {
  CvsOptions cvs;
  /// Maximum area increase over the original design (paper: 10%).
  double area_budget_ratio = 0.10;
  /// Consecutive TCB-pushes without movement before giving up (paper: 10).
  int max_iter = 10;
  /// Near-critical window for CPN extraction (ns).
  double cpn_window = 0.05;
  FlowAlgo flow_algo = FlowAlgo::kDinic;
  /// Separator-based cut selection; kRandomCut exists for the ablation
  /// benchmark (E4), resizing an equally-sized random CPN subset instead.
  enum class CutSelector { kMinWeightSeparator, kRandomCut } selector =
      CutSelector::kMinWeightSeparator;
  std::uint64_t random_cut_seed = 7;
  /// Disable sizing entirely (ablation: Gscale degenerates to CVS).
  bool enable_sizing = true;
};

struct GscaleResult {
  int cvs_lowered = 0;    // total gates lowered (initial + pushed CVS)
  int num_resized = 0;    // gates whose drive changed
  int iterations = 0;     // TCB-push iterations executed
  double area_increase_ratio = 0.0;  // final vs original area
};

GscaleResult run_gscale(Design& design, const GscaleOptions& options = {});

}  // namespace dvs
