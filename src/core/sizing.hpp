// Gate-sizing support for Gscale: evaluates the area/time trade of moving
// a gate to its next drive variant and applies resizes under an area
// budget with a post-check against the timing constraint.
#pragma once

#include "core/design.hpp"

namespace dvs {

struct ResizeOption {
  bool available = false;
  int new_cell = -1;
  double delay_gain = 0.0;    // ns saved on the gate's own worst arc
  double area_penalty = 0.0;  // um^2 added
  /// The Gscale separator weight: area penalty over timing improvement
  /// (paper: weight_with_area_versus_time_gain).  Infinite when the move
  /// buys no time.
  double weight = 0.0;
};

/// Evaluates upsizing `id` one drive step at its current load and supply.
ResizeOption evaluate_upsize(const Design& design, const StaResult& sta,
                             NodeId id);

/// Applies the resize.  Returns false (and leaves the design untouched)
/// when the resize would break the timing constraint — upsizing loads the
/// fanin drivers, which the weight model does not see.
bool apply_resize_checked(Design& design, NodeId id, int new_cell);

}  // namespace dvs
