#include "core/suite.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>

#include "benchgen/mcnc.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "library/library.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dvs {

namespace {

/// One cell of the circuit x algorithm matrix.
struct SuiteTask {
  int row_index;
  const McncDescriptor* descriptor;
  PaperAlgo algo;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

/// Library resolution shared by the legacy and the pipeline matrix:
/// the caller's library (or the compass default), reladdered onto
/// `options.supplies` when set.  `fallback`/`reladdered` provide the
/// storage; the returned pointer aliases one of them or `lib`.
const Library* effective_library(const SuiteOptions& options,
                                 const Library* lib,
                                 std::optional<Library>* fallback,
                                 std::optional<Library>* reladdered) {
  if (lib == nullptr) lib = &fallback->emplace(build_compass_library());
  if (!options.supplies.empty()) {
    reladdered->emplace(*lib);
    (*reladdered)->set_supply_ladder(SupplyLadder(options.supplies));
    lib = &**reladdered;
  }
  return lib;
}

/// Circuit selection shared by the legacy and the pipeline matrix.
std::vector<const McncDescriptor*> select_circuits(
    const SuiteOptions& options) {
  std::vector<const McncDescriptor*> selected;
  if (options.circuits.empty()) {
    for (const McncDescriptor& d : mcnc_suite()) selected.push_back(&d);
  } else {
    for (const std::string& name : options.circuits) {
      const McncDescriptor* d = find_mcnc(name);
      DVS_EXPECTS(d != nullptr);
      selected.push_back(d);
    }
  }
  if (options.max_gates > 0) {
    std::erase_if(selected, [&](const McncDescriptor* d) {
      return d->gates > options.max_gates;
    });
  }
  return selected;
}

}  // namespace

FlowOptions suite_task_flow(const SuiteOptions& options,
                            const McncDescriptor& descriptor,
                            PaperAlgo algo) {
  return derive_cell_flow(options.flow,
                          mix_seed(options.seed, descriptor.seed), algo);
}

SuiteReport run_suite(const SuiteOptions& options, const Library* lib) {
  std::optional<Library> fallback;
  std::optional<Library> reladdered;
  lib = effective_library(options, lib, &fallback, &reladdered);

  const std::vector<const McncDescriptor*> selected =
      select_circuits(options);

  SuiteReport report;
  report.supplies = lib->supplies().voltages();
  report.vdd_high = lib->vdd_high();
  report.vdd_low = lib->vdd_low();
  report.rows.resize(selected.size());
  report.papers.reserve(selected.size());
  for (const McncDescriptor* d : selected) report.papers.emplace_back(d->paper);

  // ---- build the task matrix --------------------------------------------
  std::vector<SuiteTask> tasks;
  for (int i = 0; i < static_cast<int>(selected.size()); ++i) {
    if (options.run_cvs) tasks.push_back({i, selected[i], PaperAlgo::kCvs});
    if (options.run_dscale)
      tasks.push_back({i, selected[i], PaperAlgo::kDscale});
    if (options.run_gscale)
      tasks.push_back({i, selected[i], PaperAlgo::kGscale});
  }

  // Shared columns (tspec, original power) and the mapped circuit itself
  // are deterministic per circuit and independent of the per-algorithm
  // seeds, so the circuit's three tasks share one build + one JobInit:
  // whichever task arrives first computes them under call_once and the
  // values are identical to what each task would derive privately.
  std::vector<CircuitRunResult> cells(tasks.size());
  struct SharedCircuit {
    std::once_flag once;
    Network net;
    JobInit init;
  };
  std::vector<SharedCircuit> shared(selected.size());

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options.num_threads);
  report.num_threads = pool.num_threads();
  pool.parallel_for(static_cast<int>(tasks.size()), [&](int t) {
    const SuiteTask& task = tasks[t];
    JobSpec spec;
    spec.flow = suite_task_flow(options, *task.descriptor, task.algo);
    spec.run_cvs = task.algo == PaperAlgo::kCvs;
    spec.run_dscale = task.algo == PaperAlgo::kDscale;
    spec.run_gscale = task.algo == PaperAlgo::kGscale;
    SharedCircuit& sc = shared[task.row_index];
    std::call_once(sc.once, [&] {
      sc.net = build_mcnc_circuit(*lib, *task.descriptor);
      sc.init = make_job_init(sc.net, *lib, spec.flow);
    });
    cells[t] = run_single_job(sc.net, *lib, spec, &sc.init);
  });
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

  // ---- merge the cells into per-circuit rows ----------------------------
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const SuiteTask& task = tasks[t];
    CircuitRunResult& row = report.rows[task.row_index];
    const CircuitRunResult& cell = cells[t];
    if (row.name.empty()) {
      row.name = cell.name;
      row.num_gates = cell.num_gates;
      row.tspec_ns = cell.tspec_ns;
      row.org_power_uw = cell.org_power_uw;
    } else {
      // The shared columns are seed-determined; any divergence means a
      // task depended on scheduling, which breaks the whole contract.
      DVS_ASSERT(row.tspec_ns == cell.tspec_ns &&
                 row.org_power_uw == cell.org_power_uw);
    }
    switch (task.algo) {
      case PaperAlgo::kCvs:
        row.cvs_low = cell.cvs_low;
        row.cvs_improve_pct = cell.cvs_improve_pct;
        break;
      case PaperAlgo::kDscale:
        row.dscale_low = cell.dscale_low;
        row.dscale_lcs = cell.dscale_lcs;
        row.dscale_improve_pct = cell.dscale_improve_pct;
        break;
      case PaperAlgo::kGscale:
        row.gscale_low = cell.gscale_low;
        row.gscale_resized = cell.gscale_resized;
        row.gscale_area_increase = cell.gscale_area_increase;
        row.gscale_improve_pct = cell.gscale_improve_pct;
        row.gscale_seconds = cell.gscale_seconds;
        break;
    }
  }
  return report;
}

std::string SuiteReport::table1() const {
  std::string out = format_table1_header();
  for (std::size_t i = 0; i < rows.size(); ++i)
    out += format_table1_row(rows[i], papers[i]);
  out += format_table1_footer(rows, papers);
  return out;
}

std::string SuiteReport::table2() const {
  std::string out = format_table2_header();
  for (std::size_t i = 0; i < rows.size(); ++i)
    out += format_table2_row(rows[i], papers[i]);
  out += format_table2_footer(rows, papers);
  return out;
}

std::string SuiteReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"dvs-bench-suite-v1\",\n";
  out << "  \"supplies\": [";
  for (std::size_t i = 0; i < supplies.size(); ++i)
    out << (i ? ", " : "") << num(supplies[i]);
  out << "],\n";
  out << "  \"vdd_high\": " << num(vdd_high) << ",\n";
  out << "  \"vdd_low\": " << num(vdd_low) << ",\n";
  out << "  \"num_threads\": " << num_threads << ",\n";
  out << "  \"wall_seconds\": " << num(wall_seconds) << ",\n";
  out << "  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CircuitRunResult& r = rows[i];
    out << "    {\"name\": \"" << json_escape(r.name) << "\""
        << ", \"gates\": " << r.num_gates
        << ", \"tspec_ns\": " << num(r.tspec_ns)
        << ", \"org_power_uw\": " << num(r.org_power_uw) << ",\n";
    // kLowGatesKey is the one spelling of the below-top-rung count
    // shared with the protocol and trajectory emitters.
    const std::string low_key = std::string("\"") + kLowGatesKey + "\": ";
    out << "     \"cvs\": {\"improve_pct\": " << num(r.cvs_improve_pct)
        << ", " << low_key << r.cvs_low << "},\n";
    out << "     \"dscale\": {\"improve_pct\": "
        << num(r.dscale_improve_pct) << ", " << low_key << r.dscale_low
        << ", \"level_converters\": " << r.dscale_lcs << "},\n";
    out << "     \"gscale\": {\"improve_pct\": "
        << num(r.gscale_improve_pct) << ", " << low_key << r.gscale_low
        << ", \"resized\": " << r.gscale_resized
        << ", \"area_increase\": " << num(r.gscale_area_increase)
        << ", \"seconds\": " << num(r.gscale_seconds) << "}}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

void write_suite_json(const SuiteReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write suite JSON: " + path);
  out << report.to_json();
}

// ---- pipeline matrices -----------------------------------------------------

PipelineSuiteReport run_pipeline_suite(
    const SuiteOptions& options, const std::vector<std::string>& pipelines,
    const Library* lib) {
  std::optional<Library> fallback;
  std::optional<Library> reladdered;
  lib = effective_library(options, lib, &fallback, &reladdered);
  DVS_EXPECTS(!pipelines.empty());

  PipelineSuiteReport report;
  // Validate every spec up front (a typo fails the whole matrix
  // immediately) and record the circuit-independent canonical form.
  for (const std::string& spec : pipelines)
    report.specs.push_back(Pipeline::parse(spec).canonical_spec());

  const std::vector<const McncDescriptor*> selected =
      select_circuits(options);
  report.cells.resize(selected.size() * pipelines.size());

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options.num_threads);
  report.num_threads = pool.num_threads();
  pool.parallel_for(
      static_cast<int>(report.cells.size()), [&](int t) {
        const McncDescriptor& descriptor =
            *selected[t / pipelines.size()];
        const std::string& spec = pipelines[t % pipelines.size()];
        const std::uint64_t circuit_seed =
            mix_seed(options.seed, descriptor.seed);
        // Parse from the *original* spec per task: which options the
        // spec set explicitly drives seed resolution, and canonical
        // respellings would erase that distinction.
        JobCell cell;
        Pipeline pipeline = Pipeline::parse(spec);
        pipeline.resolve_seeds(circuit_seed);
        cell.label = pipeline_label(pipeline);
        cell.pipeline = std::move(pipeline);

        FlowOptions flow = options.flow;
        flow.activity.seed = circuit_seed;
        std::vector<JobCell> cells;
        cells.push_back(std::move(cell));
        const Network net = build_mcnc_circuit(*lib, descriptor);
        PipelineJobResult job =
            run_pipeline_job(net, *lib, flow, std::move(cells));

        PipelineSuiteCell& out = report.cells[t];
        out.circuit = job.row.name;
        out.num_gates = job.row.num_gates;
        out.tspec_ns = job.row.tspec_ns;
        out.org_power_uw = job.row.org_power_uw;
        out.label = job.cells[0].label;
        out.spec = job.cells[0].spec;
        out.improve_pct = job.cells[0].improve_pct;
        out.run = std::move(job.cells[0].run);
      });
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  return report;
}

std::string PipelineSuiteReport::table() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-10s %-44s %9s %6s %5s %5s %9s\n",
                "circuit", "pipeline", "improve%", "low", "LCs", "resz",
                "cpu_ms");
  out += buf;
  for (const PipelineSuiteCell& cell : cells) {
    const PassStats& last = cell.run.passes.back();
    std::snprintf(buf, sizeof buf,
                  "%-10s %-44.44s %9.2f %6d %5d %5d %9.2f\n",
                  cell.circuit.c_str(), cell.spec.c_str(),
                  cell.improve_pct, last.low_gates, last.level_converters,
                  last.resized, cell.run.cpu_seconds * 1e3);
    out += buf;
    // Trajectory: one line per pass (power/arrival/area after it ran).
    for (const PassStats& p : cell.run.passes) {
      std::snprintf(buf, sizeof buf,
                    "  [%d] %-8s power %9.3f uW  arrival %7.4f ns  area "
                    "%9.1f um2  low %4d  touched %4d",
                    p.position, p.pass.c_str(), p.power_uw, p.arrival_ns,
                    p.area_um2, p.low_gates, p.gates_touched);
      out += buf;
      // Deeper ladders get the per-rung breakdown spelled with the
      // shared rung names ("high v1 ... low").
      const int depth = static_cast<int>(p.level_gates.size());
      if (depth > 2) {
        out += "  [";
        for (SupplyId r = 0; r < depth; ++r) {
          std::snprintf(buf, sizeof buf, "%s%s:%d", r ? " " : "",
                        supply_rung_name(r, depth).c_str(),
                        p.level_gates[r]);
          out += buf;
        }
        out += ']';
      }
      out += '\n';
    }
  }
  return out;
}

std::string PipelineSuiteReport::to_json() const {
  Json::Object doc;
  doc["schema"] = Json("dvs-bench-pipeline-v1");
  doc["num_threads"] = Json(num_threads);
  doc["wall_seconds"] = Json(wall_seconds);
  Json::Array spec_array;
  for (const std::string& spec : specs) spec_array.emplace_back(spec);
  doc["pipelines"] = Json(std::move(spec_array));
  Json::Array cell_array;
  for (const PipelineSuiteCell& cell : cells) {
    Json::Object entry;
    entry["circuit"] = Json(cell.circuit);
    entry["gates"] = Json(cell.num_gates);
    entry["tspec_ns"] = Json(cell.tspec_ns);
    entry["org_power_uw"] = Json(cell.org_power_uw);
    entry["label"] = Json(cell.label);
    entry["spec"] = Json(cell.spec);
    entry["improve_pct"] = Json(cell.improve_pct);
    Json::Array passes;
    for (const PassStats& stats : cell.run.passes)
      passes.emplace_back(pass_stats_json(stats));
    entry["passes"] = Json(std::move(passes));
    cell_array.emplace_back(std::move(entry));
  }
  doc["cells"] = Json(std::move(cell_array));
  return Json(std::move(doc)).dump() + "\n";
}

}  // namespace dvs
