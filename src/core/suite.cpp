#include "core/suite.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "benchgen/mcnc.hpp"
#include "core/job.hpp"
#include "core/report.hpp"
#include "library/library.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dvs {

namespace {

/// One cell of the circuit x algorithm matrix.
struct SuiteTask {
  int row_index;
  const McncDescriptor* descriptor;
  PaperAlgo algo;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

FlowOptions suite_task_flow(const SuiteOptions& options,
                            const McncDescriptor& descriptor,
                            PaperAlgo algo) {
  return derive_cell_flow(options.flow,
                          mix_seed(options.seed, descriptor.seed), algo);
}

SuiteReport run_suite(const SuiteOptions& options, const Library* lib) {
  std::optional<Library> fallback;
  if (lib == nullptr) lib = &fallback.emplace(build_compass_library());

  // ---- select circuits --------------------------------------------------
  std::vector<const McncDescriptor*> selected;
  if (options.circuits.empty()) {
    for (const McncDescriptor& d : mcnc_suite()) selected.push_back(&d);
  } else {
    for (const std::string& name : options.circuits) {
      const McncDescriptor* d = find_mcnc(name);
      DVS_EXPECTS(d != nullptr);
      selected.push_back(d);
    }
  }
  if (options.max_gates > 0) {
    std::erase_if(selected, [&](const McncDescriptor* d) {
      return d->gates > options.max_gates;
    });
  }

  SuiteReport report;
  report.vdd_high = lib->vdd_high();
  report.vdd_low = lib->vdd_low();
  report.rows.resize(selected.size());
  report.papers.reserve(selected.size());
  for (const McncDescriptor* d : selected) report.papers.emplace_back(d->paper);

  // ---- build the task matrix --------------------------------------------
  std::vector<SuiteTask> tasks;
  for (int i = 0; i < static_cast<int>(selected.size()); ++i) {
    if (options.run_cvs) tasks.push_back({i, selected[i], PaperAlgo::kCvs});
    if (options.run_dscale)
      tasks.push_back({i, selected[i], PaperAlgo::kDscale});
    if (options.run_gscale)
      tasks.push_back({i, selected[i], PaperAlgo::kGscale});
  }

  // Shared columns (tspec, original power) are deterministic per circuit,
  // so every cell recomputes them into a private row and the merge below
  // just copies its algorithm columns; no cross-task state exists.
  std::vector<CircuitRunResult> cells(tasks.size());

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(options.num_threads);
  report.num_threads = pool.num_threads();
  pool.parallel_for(static_cast<int>(tasks.size()), [&](int t) {
    const SuiteTask& task = tasks[t];
    JobSpec spec;
    spec.flow = suite_task_flow(options, *task.descriptor, task.algo);
    spec.run_cvs = task.algo == PaperAlgo::kCvs;
    spec.run_dscale = task.algo == PaperAlgo::kDscale;
    spec.run_gscale = task.algo == PaperAlgo::kGscale;
    const Network net = build_mcnc_circuit(*lib, *task.descriptor);
    cells[t] = run_single_job(net, *lib, spec);
  });
  report.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

  // ---- merge the cells into per-circuit rows ----------------------------
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const SuiteTask& task = tasks[t];
    CircuitRunResult& row = report.rows[task.row_index];
    const CircuitRunResult& cell = cells[t];
    if (row.name.empty()) {
      row.name = cell.name;
      row.num_gates = cell.num_gates;
      row.tspec_ns = cell.tspec_ns;
      row.org_power_uw = cell.org_power_uw;
    } else {
      // The shared columns are seed-determined; any divergence means a
      // task depended on scheduling, which breaks the whole contract.
      DVS_ASSERT(row.tspec_ns == cell.tspec_ns &&
                 row.org_power_uw == cell.org_power_uw);
    }
    switch (task.algo) {
      case PaperAlgo::kCvs:
        row.cvs_low = cell.cvs_low;
        row.cvs_improve_pct = cell.cvs_improve_pct;
        break;
      case PaperAlgo::kDscale:
        row.dscale_low = cell.dscale_low;
        row.dscale_lcs = cell.dscale_lcs;
        row.dscale_improve_pct = cell.dscale_improve_pct;
        break;
      case PaperAlgo::kGscale:
        row.gscale_low = cell.gscale_low;
        row.gscale_resized = cell.gscale_resized;
        row.gscale_area_increase = cell.gscale_area_increase;
        row.gscale_improve_pct = cell.gscale_improve_pct;
        row.gscale_seconds = cell.gscale_seconds;
        break;
    }
  }
  return report;
}

std::string SuiteReport::table1() const {
  std::string out = format_table1_header();
  for (std::size_t i = 0; i < rows.size(); ++i)
    out += format_table1_row(rows[i], papers[i]);
  out += format_table1_footer(rows, papers);
  return out;
}

std::string SuiteReport::table2() const {
  std::string out = format_table2_header();
  for (std::size_t i = 0; i < rows.size(); ++i)
    out += format_table2_row(rows[i], papers[i]);
  out += format_table2_footer(rows, papers);
  return out;
}

std::string SuiteReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"dvs-bench-suite-v1\",\n";
  out << "  \"vdd_high\": " << num(vdd_high) << ",\n";
  out << "  \"vdd_low\": " << num(vdd_low) << ",\n";
  out << "  \"num_threads\": " << num_threads << ",\n";
  out << "  \"wall_seconds\": " << num(wall_seconds) << ",\n";
  out << "  \"circuits\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CircuitRunResult& r = rows[i];
    out << "    {\"name\": \"" << json_escape(r.name) << "\""
        << ", \"gates\": " << r.num_gates
        << ", \"tspec_ns\": " << num(r.tspec_ns)
        << ", \"org_power_uw\": " << num(r.org_power_uw) << ",\n";
    out << "     \"cvs\": {\"improve_pct\": " << num(r.cvs_improve_pct)
        << ", \"low\": " << r.cvs_low << "},\n";
    out << "     \"dscale\": {\"improve_pct\": "
        << num(r.dscale_improve_pct) << ", \"low\": " << r.dscale_low
        << ", \"level_converters\": " << r.dscale_lcs << "},\n";
    out << "     \"gscale\": {\"improve_pct\": "
        << num(r.gscale_improve_pct) << ", \"low\": " << r.gscale_low
        << ", \"resized\": " << r.gscale_resized
        << ", \"area_increase\": " << num(r.gscale_area_increase)
        << ", \"seconds\": " << num(r.gscale_seconds) << "}}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

void write_suite_json(const SuiteReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write suite JSON: " + path);
  out << report.to_json();
}

}  // namespace dvs
