// Dscale (paper §2): voltage scaling on the non-critical part of the
// circuit beyond the CVS cluster.  Each round collects every gate whose
// lowering — including the level converter a new low->high boundary
// requires — fits its timing slack and yields a positive power gain,
// weights candidates by that gain, and lowers a maximum-weight antichain
// of them (no two on a common path, so slack is never double-spent).
// Rounds repeat until no candidate remains.
#pragma once

#include "core/cvs.hpp"
#include "core/design.hpp"
#include "graph/flow_network.hpp"

namespace dvs {

class IncrementalSta;

struct DscaleOptions {
  CvsOptions cvs;
  /// Minimum weight (uW) for a gate to become a candidate.
  double min_gain_uw = 1e-6;
  /// Paper-faithful weighting uses the *gross* power reduction of applying
  /// Vlow to the gate ("the power reduction when Vlow is applied"); the
  /// level-converter cost then shows up only in the final measurement —
  /// the paper itself notes the extra gates "can not be completely turned
  /// into power savings".  Setting this true charges each candidate its
  /// converter power up front (ablation E3b): more conservative, fewer
  /// gates lowered.
  bool lc_aware_weights = false;
  /// Safety margin subtracted from slack (ns).
  double slack_margin = 1e-9;
  /// Bound on MWIS rounds (0 = unbounded, the paper's loop-to-fixpoint).
  int max_rounds = 0;
  /// Independent-set engine; the greedy variant exists for the ablation
  /// benchmark (E3 in DESIGN.md).
  enum class Selector { kMwisFlow, kGreedy } selector = Selector::kMwisFlow;
  FlowAlgo flow_algo = FlowAlgo::kDinic;
  /// Run the initial CVS pass (the paper always does; the ablation bench
  /// disables it to isolate the MWIS contribution).
  bool run_initial_cvs = true;
  /// Final cleanup: raise back boundary gates whose converter costs more
  /// than their cluster saves (raising is always timing-safe).  Keeps
  /// Dscale never-worse-than-CVS, matching the paper's Table 1.
  bool trim_unprofitable = true;
};

struct DscaleResult {
  int cvs_lowered = 0;   // gates lowered by the initial CVS pass
  int mwis_lowered = 0;  // gates lowered by the MWIS rounds
  int rounds = 0;        // MWIS iterations executed
};

DscaleResult run_dscale(Design& design, const DscaleOptions& options = {});

/// Dscale's final cleanup as a standalone primitive (the registry's
/// `trim` pass): raises low->high boundary drivers back to vdd_high
/// while doing so reduces total power, re-verifying timing per raise
/// through `timer`.  Returns the number of gates raised.
int trim_boundary(Design& design, IncrementalSta& timer);

}  // namespace dvs
