#include "core/sizing.hpp"

#include <limits>

#include "support/contracts.hpp"

namespace dvs {

ResizeOption evaluate_upsize(const Design& design, const StaResult& sta,
                             NodeId id) {
  ResizeOption option;
  const Network& net = design.network();
  const Library& lib = design.library();
  const Node& gate = net.node(id);
  if (!gate.is_gate() || gate.cell < 0) return option;
  const int bigger = lib.upsize(gate.cell);
  if (bigger < 0) return option;  // already at maximum drive

  const Cell& now = lib.cell(gate.cell);
  const Cell& next = lib.cell(bigger);
  const double vdd = design.node_vdd()[id];
  const double vf = lib.voltage_model().delay_factor(vdd);
  const double load = sta.load[id];

  double worst_now = 0.0;
  double worst_next = 0.0;
  for (int pin = 0; pin < now.num_inputs(); ++pin) {
    const TimingArc& a = now.arcs[pin];
    const TimingArc& b = next.arcs[pin];
    worst_now = std::max(worst_now,
                         vf * std::max(a.intrinsic_rise +
                                           a.resistance_rise * load,
                                       a.intrinsic_fall +
                                           a.resistance_fall * load));
    worst_next = std::max(worst_next,
                          vf * std::max(b.intrinsic_rise +
                                            b.resistance_rise * load,
                                        b.intrinsic_fall +
                                            b.resistance_fall * load));
  }
  option.new_cell = bigger;
  option.delay_gain = worst_now - worst_next;
  option.area_penalty = next.area - now.area;
  option.available = option.delay_gain > 1e-9;
  option.weight = option.available
                      ? option.area_penalty / option.delay_gain
                      : std::numeric_limits<double>::infinity();
  return option;
}

bool apply_resize_checked(Design& design, NodeId id, int new_cell) {
  Network& net = design.network();
  const int old_cell = net.node(id).cell;
  DVS_EXPECTS(old_cell >= 0 && new_cell >= 0);
  DVS_EXPECTS(design.library().cell(old_cell).function ==
              design.library().cell(new_cell).function);
  net.set_cell(id, new_cell);
  const StaResult sta = design.run_timing();
  if (!sta.meets_constraint(1e-9)) {
    net.set_cell(id, old_cell);
    return false;
  }
  return true;
}

}  // namespace dvs
