#include "synth/mapper.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "netlist/topo.hpp"
#include "support/contracts.hpp"
#include "synth/decompose.hpp"
#include "synth/sweep.hpp"
#include "timing/sta.hpp"

namespace dvs {

namespace {

/// Small builder for hand-written pattern trees.
class PatternBuilder {
 public:
  explicit PatternBuilder(std::string cell_base, int num_vars) {
    pattern_.cell_base = std::move(cell_base);
    pattern_.num_vars = num_vars;
  }
  int leaf(int var) {
    pattern_.nodes.push_back({PatternNode::Kind::kLeaf, -1, -1, var});
    return static_cast<int>(pattern_.nodes.size()) - 1;
  }
  int inv(int child) {
    pattern_.nodes.push_back({PatternNode::Kind::kInv, child, -1, -1});
    return static_cast<int>(pattern_.nodes.size()) - 1;
  }
  int nand(int a, int b) {
    pattern_.nodes.push_back({PatternNode::Kind::kNand, a, b, -1});
    return static_cast<int>(pattern_.nodes.size()) - 1;
  }
  Pattern finish(int root) {
    pattern_.root = root;
    return std::move(pattern_);
  }

 private:
  Pattern pattern_;
};

std::vector<Pattern> build_patterns() {
  std::vector<Pattern> out;
  auto add = [&](const char* base, int vars, auto&& body) {
    PatternBuilder b(base, vars);
    out.push_back(b.finish(body(b)));
  };

  add("inv", 1, [](PatternBuilder& b) { return b.inv(b.leaf(0)); });
  add("buf", 1,
      [](PatternBuilder& b) { return b.inv(b.inv(b.leaf(0))); });
  add("nand2", 2,
      [](PatternBuilder& b) { return b.nand(b.leaf(0), b.leaf(1)); });
  add("and2", 2, [](PatternBuilder& b) {
    return b.inv(b.nand(b.leaf(0), b.leaf(1)));
  });
  add("or2", 2, [](PatternBuilder& b) {
    return b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)));
  });
  add("nor2", 2, [](PatternBuilder& b) {
    return b.inv(b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1))));
  });
  add("nand3", 3, [](PatternBuilder& b) {
    return b.nand(b.inv(b.nand(b.leaf(0), b.leaf(1))), b.leaf(2));
  });
  add("and3", 3, [](PatternBuilder& b) {
    return b.inv(b.nand(b.inv(b.nand(b.leaf(0), b.leaf(1))), b.leaf(2)));
  });
  add("or3", 3, [](PatternBuilder& b) {
    return b.nand(b.inv(b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)))),
                  b.inv(b.leaf(2)));
  });
  add("nor3", 3, [](PatternBuilder& b) {
    return b.inv(
        b.nand(b.inv(b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)))),
               b.inv(b.leaf(2))));
  });
  add("nand4", 4, [](PatternBuilder& b) {
    return b.nand(b.inv(b.nand(b.leaf(0), b.leaf(1))),
                  b.inv(b.nand(b.leaf(2), b.leaf(3))));
  });
  add("and4", 4, [](PatternBuilder& b) {
    return b.inv(b.nand(b.inv(b.nand(b.leaf(0), b.leaf(1))),
                        b.inv(b.nand(b.leaf(2), b.leaf(3)))));
  });
  add("or4", 4, [](PatternBuilder& b) {
    return b.nand(b.inv(b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)))),
                  b.inv(b.nand(b.inv(b.leaf(2)), b.inv(b.leaf(3)))));
  });
  add("nor4", 4, [](PatternBuilder& b) {
    return b.inv(
        b.nand(b.inv(b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)))),
               b.inv(b.nand(b.inv(b.leaf(2)), b.inv(b.leaf(3))))));
  });
  add("aoi21", 3, [](PatternBuilder& b) {
    return b.inv(b.nand(b.nand(b.leaf(0), b.leaf(1)), b.inv(b.leaf(2))));
  });
  add("oai21", 3, [](PatternBuilder& b) {
    return b.nand(b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1))), b.leaf(2));
  });
  add("aoi22", 4, [](PatternBuilder& b) {
    return b.inv(b.nand(b.nand(b.leaf(0), b.leaf(1)),
                        b.nand(b.leaf(2), b.leaf(3))));
  });
  // !((a|b)(c|d)) == NAND(or(a,b), or(c,d)).
  add("oai22", 4, [](PatternBuilder& b) {
    const int or01 = b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)));
    const int or23 = b.nand(b.inv(b.leaf(2)), b.inv(b.leaf(3)));
    return b.nand(or01, or23);
  });
  // !(ab | c | d) == INV(NAND(INV(ab|c), INV(d))) with
  // ab|c == NAND(NAND(a,b), INV(c)).
  add("aoi211", 4, [](PatternBuilder& b) {
    const int ab_or_c =
        b.nand(b.nand(b.leaf(0), b.leaf(1)), b.inv(b.leaf(2)));
    return b.inv(b.nand(b.inv(ab_or_c), b.inv(b.leaf(3))));
  });
  add("oai211", 4, [](PatternBuilder& b) {
    // !((a|b) c d) = NAND(AND(or(a,b), c), d)
    const int or01 = b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)));
    return b.nand(b.inv(b.nand(or01, b.leaf(2))), b.leaf(3));
  });
  add("xor2", 2, [](PatternBuilder& b) {
    return b.nand(b.nand(b.leaf(0), b.inv(b.leaf(1))),
                  b.nand(b.inv(b.leaf(0)), b.leaf(1)));
  });
  add("xnor2", 2, [](PatternBuilder& b) {
    return b.inv(b.nand(b.nand(b.leaf(0), b.inv(b.leaf(1))),
                        b.nand(b.inv(b.leaf(0)), b.leaf(1))));
  });
  add("mux2", 3, [](PatternBuilder& b) {
    // pins (a, b, s): out = s ? b : a
    return b.nand(b.nand(b.leaf(0), b.inv(b.leaf(2))),
                  b.nand(b.leaf(1), b.leaf(2)));
  });
  add("maj3", 3, [](PatternBuilder& b) {
    // ab + c(a+b)
    const int or01 = b.nand(b.inv(b.leaf(0)), b.inv(b.leaf(1)));
    return b.nand(b.nand(b.leaf(0), b.leaf(1)),
                  b.nand(b.leaf(2), or01));
  });
  return out;
}

bool eval_pattern_node(const Pattern& p, int index,
                       std::uint32_t assignment) {
  const PatternNode& n = p.nodes[index];
  switch (n.kind) {
    case PatternNode::Kind::kLeaf:
      return (assignment >> n.var) & 1u;
    case PatternNode::Kind::kInv:
      return !eval_pattern_node(p, n.child0, assignment);
    case PatternNode::Kind::kNand:
    default:
      return !(eval_pattern_node(p, n.child0, assignment) &&
               eval_pattern_node(p, n.child1, assignment));
  }
}

// ---- structural matching ------------------------------------------------

struct Match {
  const Pattern* pattern = nullptr;
  int cell = -1;                  // concrete library cell chosen
  std::vector<NodeId> leaf_of_var;  // subject node bound to each pin
};

class Matcher {
 public:
  Matcher(const Network& net, const Library& lib, MapObjective objective)
      : net_(net), lib_(lib), objective_(objective) {
    for (const Pattern& p : mapper_patterns()) {
      const int smallest = lib_.smallest_of(p.cell_base);
      if (smallest < 0) continue;
      int cell = smallest;
      if (objective_ == MapObjective::kDelay) {
        const auto variants = lib_.variants_of(smallest);
        if (variants.size() > 1) cell = variants[1];
      }
      patterns_.emplace_back(&p, cell);
    }
  }

  std::vector<Match> matches_at(NodeId root) const {
    std::vector<Match> result;
    for (const auto& [pattern, cell] : patterns_) {
      std::vector<NodeId> bind(pattern->num_vars, kNoNode);
      if (try_match(*pattern, pattern->root, root, /*is_root=*/true,
                    bind)) {
        Match m;
        m.pattern = pattern;
        m.cell = cell;
        m.leaf_of_var = std::move(bind);
        result.push_back(std::move(m));
      }
    }
    return result;
  }

 private:
  bool try_match(const Pattern& p, int pindex, NodeId s, bool is_root,
                 std::vector<NodeId>& bind) const {
    const PatternNode& pn = p.nodes[pindex];
    if (pn.kind == PatternNode::Kind::kLeaf) {
      if (bind[pn.var] == kNoNode) {
        bind[pn.var] = s;
        return true;
      }
      return bind[pn.var] == s;
    }
    const Node& node = net_.node(s);
    if (!node.is_gate()) return false;
    // Interior subject nodes consumed by the pattern must be
    // single-fanout (classic tree-covering rule).
    if (!is_root && node.fanouts.size() != 1) return false;
    if (pn.kind == PatternNode::Kind::kInv) {
      if (!(node.function == tt_inv())) return false;
      return try_match(p, pn.child0, node.fanins[0], false, bind);
    }
    if (!(node.function == tt_nand(2))) return false;
    // NAND is commutative: try both child orders with backtracking.
    std::vector<NodeId> saved = bind;
    if (try_match(p, pn.child0, node.fanins[0], false, bind) &&
        try_match(p, pn.child1, node.fanins[1], false, bind))
      return true;
    bind = saved;
    if (try_match(p, pn.child0, node.fanins[1], false, bind) &&
        try_match(p, pn.child1, node.fanins[0], false, bind))
      return true;
    bind = saved;
    return false;
  }

  const Network& net_;
  const Library& lib_;
  MapObjective objective_;
  std::vector<std::pair<const Pattern*, int>> patterns_;
};

// ---- covering -------------------------------------------------------------

class Cover {
 public:
  Cover(const Network& subject, const Library& lib, MapObjective objective)
      : subject_(subject),
        lib_(lib),
        objective_(objective),
        matcher_(subject, lib, objective) {}

  MapResult run() {
    best_cost_.assign(subject_.size(),
                      std::numeric_limits<double>::infinity());
    best_match_.assign(subject_.size(), Match{});

    for (NodeId id : topo_order(subject_)) {
      const Node& n = subject_.node(id);
      if (!n.is_gate()) {
        best_cost_[id] = 0.0;
        continue;
      }
      for (Match& m : matcher_.matches_at(id)) {
        double cost;
        const Cell& cell = lib_.cell(m.cell);
        if (objective_ == MapObjective::kArea) {
          cost = cell.area;
          for (NodeId leaf : m.leaf_of_var) cost += best_cost_[leaf];
        } else {
          cost = 0.0;
          for (int var = 0;
               var < static_cast<int>(m.leaf_of_var.size()); ++var) {
            const NodeId leaf = m.leaf_of_var[var];
            const RiseFall d =
                arc_delay(lib_, cell, var, lib_.vdd_high(),
                          kNominalLoad);
            cost = std::max(cost, best_cost_[leaf] + d.max());
          }
        }
        if (cost < best_cost_[id]) {
          best_cost_[id] = cost;
          best_match_[id] = std::move(m);
        }
      }
      DVS_ASSERT(best_match_[id].pattern != nullptr);
    }

    MapResult result{Network(subject_.name()), 0.0, 0.0};
    for (NodeId id : subject_.inputs())
      emitted_[id] = result.mapped.add_input(subject_.node(id).name);
    for (const OutputPort& port : subject_.outputs()) {
      result.mapped.add_output(port.name, emit(port.driver, result));
      result.estimated_delay =
          std::max(result.estimated_delay, best_cost_[port.driver]);
    }
    result.mapped.sweep_dangling();
    result.mapped.check();
    result.area = 0.0;
    result.mapped.for_each_gate([&](const Node& g) {
      if (g.cell >= 0) result.area += lib_.cell(g.cell).area;
    });
    return result;
  }

 private:
  static constexpr double kNominalLoad = 12.0;  // fF, load estimate

  NodeId emit(NodeId id, MapResult& result) {
    if (auto it = emitted_.find(id); it != emitted_.end())
      return it->second;
    const Node& n = subject_.node(id);
    NodeId out;
    if (n.is_constant()) {
      out = result.mapped.add_constant(n.constant_value, n.name);
    } else {
      const Match& m = best_match_[id];
      DVS_ASSERT(m.pattern != nullptr);
      std::vector<NodeId> fanins;
      for (NodeId leaf : m.leaf_of_var)
        fanins.push_back(emit(leaf, result));
      out = result.mapped.add_gate(lib_.cell(m.cell).function, fanins,
                                   m.cell, n.name);
    }
    emitted_[id] = out;
    return out;
  }

  const Network& subject_;
  const Library& lib_;
  MapObjective objective_;
  Matcher matcher_;
  std::vector<double> best_cost_;
  std::vector<Match> best_match_;
  std::map<NodeId, NodeId> emitted_;
};

}  // namespace

const std::vector<Pattern>& mapper_patterns() {
  static const std::vector<Pattern> kPatterns = build_patterns();
  return kPatterns;
}

bool pattern_eval(const Pattern& pattern, std::uint32_t assignment) {
  return eval_pattern_node(pattern, pattern.root, assignment);
}

MapResult map_network(const Network& net, const Library& lib,
                      MapObjective objective) {
  Network prepared = net;  // copy: sweeping mutates
  sweep_network(prepared);
  Network subject = decompose_to_nand2(prepared);
  sweep_network(subject);
  return Cover(subject, lib, objective).run();
}

PaperSetupResult map_paper_setup(const Network& net, const Library& lib,
                                 double relax) {
  MapResult delay_map = map_network(net, lib, MapObjective::kDelay);
  const StaResult delay_sta = run_sta(delay_map.mapped, lib, -1.0);
  PaperSetupResult result;
  result.tmin = delay_sta.worst_arrival;
  result.tspec = result.tmin * (1.0 + relax);

  MapResult area_map = map_network(net, lib, MapObjective::kArea);
  const StaResult area_sta = run_sta(area_map.mapped, lib, -1.0);
  if (area_sta.worst_arrival <= result.tspec)
    result.mapped = std::move(area_map.mapped);
  else
    result.mapped = std::move(delay_map.mapped);
  return result;
}

}  // namespace dvs
