// DAGON-style technology mapper: the NAND2/INV subject graph is broken
// into trees at multi-fanout points, and each tree is covered by
// dynamic programming over a hand-written pattern forest (one structural
// NAND/INV tree per library cell family, verified against the cell truth
// table by the tests).  Two objectives are provided; the paper's setup
// ("map -n1 -AFG" at minimum delay, then re-map with 20% relaxed timing
// for area recovery) is reproduced by `map_paper_setup`.
#pragma once

#include <string>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

enum class MapObjective { kDelay, kArea };

struct MapResult {
  Network mapped;
  double estimated_delay = 0.0;  // mapper's internal arrival estimate (ns)
  double area = 0.0;             // total mapped cell area (um^2)
};

/// Maps an unmapped (or arbitrary) network onto the library.  The input is
/// swept and decomposed to NAND2/INV internally.
MapResult map_network(const Network& net, const Library& lib,
                      MapObjective objective);

struct PaperSetupResult {
  Network mapped;      // the circuit handed to the algorithms
  double tmin = 0.0;   // STA delay of the minimum-delay mapping (ns)
  double tspec = 0.0;  // 1.2 * tmin, the relaxed constraint
};

/// Minimum-delay map, relax by `relax` (paper: 0.2), then area-recovery
/// map; falls back to the delay mapping if area recovery busts the
/// constraint.  The returned tspec is what the algorithms should use.
PaperSetupResult map_paper_setup(const Network& net, const Library& lib,
                                 double relax = 0.2);

/// The mapper's pattern forest (exposed so the tests can verify every
/// pattern's logic against its cell).
struct PatternNode {
  enum class Kind { kNand, kInv, kLeaf } kind = Kind::kLeaf;
  int child0 = -1;
  int child1 = -1;
  int var = -1;  // for kLeaf: the cell pin this leaf binds
};
struct Pattern {
  std::string cell_base;       // library base name, smallest drive used
  std::vector<PatternNode> nodes;
  int root = -1;
  int num_vars = 0;
};
const std::vector<Pattern>& mapper_patterns();

/// Evaluates a pattern on an input assignment (tests).
bool pattern_eval(const Pattern& pattern, std::uint32_t assignment);

}  // namespace dvs
