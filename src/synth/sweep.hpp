// Light technology-independent cleanup, standing in for the parts of SIS
// script.rugged the flow depends on: constant propagation, inverter-pair
// and buffer elision, and dangling-logic removal.  Runs to fixpoint.
#pragma once

#include "netlist/network.hpp"

namespace dvs {

struct SweepStats {
  int constants_folded = 0;
  int buffers_removed = 0;
  int inverter_pairs_removed = 0;
  int dangling_removed = 0;

  int total() const {
    return constants_folded + buffers_removed + inverter_pairs_removed +
           dangling_removed;
  }
};

SweepStats sweep_network(Network& net);

}  // namespace dvs
