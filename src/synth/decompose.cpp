#include "synth/decompose.hpp"

#include <algorithm>
#include <map>

#include "netlist/topo.hpp"
#include "support/contracts.hpp"

namespace dvs {

namespace {

bool cube_matches(const Cube& cube, std::uint32_t pattern) {
  for (std::size_t i = 0; i < cube.size(); ++i) {
    if (cube[i] == 2) continue;
    if (cube[i] != ((pattern >> i) & 1u)) return false;
  }
  return true;
}

/// Two cubes merge when they differ in exactly one literal position.
bool try_merge(const Cube& a, const Cube& b, Cube* merged) {
  int diff = -1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (a[i] == 2 || b[i] == 2) return false;  // different support
    if (diff >= 0) return false;
    diff = static_cast<int>(i);
  }
  if (diff < 0) return false;  // identical
  *merged = a;
  (*merged)[diff] = 2;
  return true;
}

}  // namespace

std::vector<Cube> extract_cubes(const TruthTable& tt) {
  std::vector<Cube> cover;
  const int k = tt.num_vars;
  for (std::uint32_t p = 0; p < (1u << k); ++p) {
    if (!tt.eval(p)) continue;
    Cube cube(k);
    for (int i = 0; i < k; ++i) cube[i] = (p >> i) & 1u;
    cover.push_back(std::move(cube));
  }
  // Iterated pairwise merging; not minimum, but compact enough for the
  // <=6-input functions the netlist carries.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Cube> next;
    std::vector<char> used(cover.size(), 0);
    for (std::size_t i = 0; i < cover.size(); ++i) {
      for (std::size_t j = i + 1; j < cover.size(); ++j) {
        Cube merged;
        if (try_merge(cover[i], cover[j], &merged)) {
          if (std::find(next.begin(), next.end(), merged) == next.end())
            next.push_back(std::move(merged));
          used[i] = used[j] = 1;
          changed = true;
        }
      }
    }
    for (std::size_t i = 0; i < cover.size(); ++i)
      if (!used[i]) next.push_back(cover[i]);
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    cover = std::move(next);
  }
  // Drop cubes covered by the rest (cheap redundancy cleanup).
  for (std::size_t i = 0; i < cover.size();) {
    bool redundant = true;
    for (std::uint32_t p = 0; p < (1u << k) && redundant; ++p) {
      if (!cube_matches(cover[i], p)) continue;
      bool covered_elsewhere = false;
      for (std::size_t j = 0; j < cover.size(); ++j)
        if (j != i && cube_matches(cover[j], p)) covered_elsewhere = true;
      if (!covered_elsewhere) redundant = false;
    }
    if (redundant)
      cover.erase(cover.begin() + static_cast<long>(i));
    else
      ++i;
  }
  return cover;
}

bool cover_eval(const std::vector<Cube>& cover, std::uint32_t pattern) {
  for (const Cube& cube : cover)
    if (cube_matches(cube, pattern)) return true;
  return false;
}

namespace {

class Decomposer {
 public:
  explicit Decomposer(const Network& src)
      : src_(src), dst_(src.name()) {}

  Network run() {
    for (NodeId id : src_.inputs())
      map_[id] = dst_.add_input(src_.node(id).name);
    for (NodeId id : topo_order(src_)) {
      const Node& n = src_.node(id);
      if (n.is_input()) continue;
      if (n.is_constant()) {
        map_[id] = dst_.add_constant(n.constant_value, n.name);
        continue;
      }
      map_[id] = build_gate(n);
    }
    for (const OutputPort& port : src_.outputs())
      dst_.add_output(port.name, map_.at(port.driver));
    dst_.sweep_dangling();
    dst_.check();
    return std::move(dst_);
  }

 private:
  NodeId inverted(NodeId id) {
    auto [it, inserted] = inv_of_.emplace(id, kNoNode);
    if (inserted) it->second = dst_.add_gate(tt_inv(), {id});
    return it->second;
  }

  NodeId nand2(NodeId a, NodeId b) {
    return dst_.add_gate(tt_nand(2), {a, b});
  }

  NodeId and_tree(std::vector<NodeId> items) {
    DVS_EXPECTS(!items.empty());
    while (items.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < items.size(); i += 2)
        next.push_back(inverted(nand2(items[i], items[i + 1])));
      if (items.size() % 2) next.push_back(items.back());
      items = std::move(next);
    }
    return items.front();
  }

  NodeId or_tree(std::vector<NodeId> items) {
    DVS_EXPECTS(!items.empty());
    while (items.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < items.size(); i += 2)
        next.push_back(nand2(inverted(items[i]), inverted(items[i + 1])));
      if (items.size() % 2) next.push_back(items.back());
      items = std::move(next);
    }
    return items.front();
  }

  NodeId build_gate(const Node& n) {
    const std::vector<Cube> cover = extract_cubes(n.function);
    if (cover.empty()) return dst_.add_constant(false);
    std::vector<NodeId> terms;
    for (const Cube& cube : cover) {
      std::vector<NodeId> literals;
      for (std::size_t i = 0; i < cube.size(); ++i) {
        if (cube[i] == 2) continue;
        const NodeId f = map_.at(n.fanins[i]);
        literals.push_back(cube[i] ? f : inverted(f));
      }
      if (literals.empty()) return dst_.add_constant(true);
      terms.push_back(and_tree(std::move(literals)));
    }
    return or_tree(std::move(terms));
  }

  const Network& src_;
  Network dst_;
  std::map<NodeId, NodeId> map_;
  std::map<NodeId, NodeId> inv_of_;
};

}  // namespace

Network decompose_to_nand2(const Network& net) {
  return Decomposer(net).run();
}

}  // namespace dvs
