#include "synth/sweep.hpp"

#include "support/contracts.hpp"

namespace dvs {

namespace {

/// Shannon cofactor: restricts `var` to `value`, dropping it from the
/// support.
TruthTable cofactor(const TruthTable& tt, int var, bool value) {
  DVS_EXPECTS(var >= 0 && var < tt.num_vars);
  TruthTable out{0, tt.num_vars - 1};
  for (std::uint32_t p = 0; p < (1u << out.num_vars); ++p) {
    const std::uint32_t low = p & ((1u << var) - 1);
    const std::uint32_t high = (p >> var) << (var + 1);
    const std::uint32_t full =
        high | (value ? (1u << var) : 0u) | low;
    if (tt.eval(full)) out.bits |= 1ULL << p;
  }
  return out;
}

bool is_constant_tt(const TruthTable& tt, bool* value) {
  if ((tt.bits & tt.mask()) == 0) {
    *value = false;
    return true;
  }
  if ((tt.bits & tt.mask()) == tt.mask()) {
    *value = true;
    return true;
  }
  return false;
}

}  // namespace

SweepStats sweep_network(Network& net) {
  SweepStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    // Snapshot ids: the loop mutates the network.
    std::vector<NodeId> ids;
    net.for_each_gate([&](const Node& n) { ids.push_back(n.id); });

    for (NodeId id : ids) {
      if (!net.is_valid(id)) continue;
      Node& n = net.node(id);
      if (!n.is_gate()) continue;

      // ---- constant-input folding -----------------------------------
      bool folded = false;
      for (std::size_t pin = 0; pin < n.fanins.size(); ++pin) {
        const Node& fi = net.node(n.fanins[pin]);
        if (!fi.is_constant()) continue;
        TruthTable reduced = cofactor(n.function, static_cast<int>(pin),
                                      fi.constant_value);
        std::vector<NodeId> fanins = n.fanins;
        fanins.erase(fanins.begin() + static_cast<long>(pin));
        const NodeId replacement =
            net.add_gate(reduced, fanins, -1, n.name + "_cf");
        net.replace_uses(id, replacement);
        ++stats.constants_folded;
        folded = true;
        changed = true;
        break;
      }
      if (folded) continue;

      // ---- degenerate functions ---------------------------------------
      bool const_value = false;
      if (is_constant_tt(n.function, &const_value)) {
        const NodeId replacement =
            net.add_constant(const_value, n.name + "_k");
        net.replace_uses(id, replacement);
        ++stats.constants_folded;
        changed = true;
        continue;
      }
      if (n.function == tt_buf()) {
        const NodeId src = n.fanins[0];
        net.replace_uses(id, src);
        ++stats.buffers_removed;
        changed = true;
        continue;
      }
      // ---- inverter pairs ---------------------------------------------
      if (n.function == tt_inv()) {
        const Node& fi = net.node(n.fanins[0]);
        if (fi.is_gate() && fi.function == tt_inv()) {
          net.replace_uses(id, fi.fanins[0]);
          ++stats.inverter_pairs_removed;
          changed = true;
          continue;
        }
      }
    }
    stats.dangling_removed += net.sweep_dangling();
  }
  net.check();
  return stats;
}

}  // namespace dvs
