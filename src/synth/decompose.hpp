// Technology-independent structuring: truth table -> merged SOP cubes ->
// NAND2/INV subject graph.  This is the front half of the SIS-style
// mapping flow (the paper runs script.rugged + map; we run sweep +
// decompose + the tree mapper in synth/mapper.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"

namespace dvs {

/// One product term: per-variable literal, 0 = complemented, 1 = positive,
/// 2 = absent (don't care).
using Cube = std::vector<std::uint8_t>;

/// On-set cover of `tt` with pairwise-merged cubes (Quine-McCluskey style
/// combining, without the covering-table minimization).  Empty cover means
/// constant 0; a single all-don't-care cube means constant 1.
std::vector<Cube> extract_cubes(const TruthTable& tt);

/// Evaluates a cover on an input pattern (for tests).
bool cover_eval(const std::vector<Cube>& cover, std::uint32_t pattern);

/// Rewrites the network into 2-input NAND + inverter gates (constants and
/// single-literal functions excepted).  The result is unmapped (cell = -1)
/// and logically equivalent output-by-output.
Network decompose_to_nand2(const Network& net);

}  // namespace dvs
