// The built-in passes behind the registry names:
//   cvs     — clustered voltage scaling (core/cvs.hpp)
//   dscale  — MWIS-based voltage scaling with level converters
//   gscale  — separator-based gate sizing growing the CVS cluster
//   trim    — the boundary-trim cleanup as a standalone pass (raises
//             low->high boundary drivers whose converter costs more than
//             their cluster saves)
//   measure — no-op probe that records a power/delay/area trajectory
//             point between other passes
#pragma once

#include <memory>

#include "core/cvs.hpp"
#include "core/dscale.hpp"
#include "core/gscale.hpp"
#include "opt/pass.hpp"

namespace dvs {

class PassRegistry;

/// Registers the five built-ins; called once by pass_registry().
void register_builtin_passes(PassRegistry& registry);

/// Pre-configured pass instances for the legacy FlowOptions adapter
/// (core/job.cpp): the pass carries exactly the options the hard-wired
/// flow used, so adapter-built pipelines reproduce rows bit-identically.
std::unique_ptr<Pass> make_cvs_pass(const CvsOptions& options);
std::unique_ptr<Pass> make_dscale_pass(const DscaleOptions& options);
std::unique_ptr<Pass> make_gscale_pass(const GscaleOptions& options);

}  // namespace dvs
