#include "opt/passes.hpp"

#include <utility>

#include "core/design.hpp"
#include "opt/registry.hpp"
#include "support/rng.hpp"
#include "timing/incremental.hpp"

namespace dvs {

namespace {

// ---- cvs -------------------------------------------------------------------

const OptionSchema& cvs_schema() {
  static const OptionSchema kSchema = [] {
    OptionSchema s("cvs");
    s.number("slack_margin", &CvsOptions::slack_margin, 0.0, 1.0);
    return s;
  }();
  return kSchema;
}

class CvsPass final : public Pass {
 public:
  CvsPass() : Pass("cvs") {}
  explicit CvsPass(const CvsOptions& options)
      : Pass("cvs"), options_(options) {}

  const OptionSchema& schema() const override { return cvs_schema(); }
  void* options_blob() override { return &options_; }

  void run(Design& design, PassStats* stats) override {
    const CvsResult result = run_cvs(design, options_);
    stats->details["lowered"] = Json(result.num_lowered);
  }

 private:
  CvsOptions options_;
};

// ---- dscale ----------------------------------------------------------------

const OptionSchema& dscale_schema() {
  static const OptionSchema kSchema = [] {
    OptionSchema s("dscale");
    s.number("slack_margin", &DscaleOptions::slack_margin, 0.0, 1.0);
    s.number("min_gain_uw", &DscaleOptions::min_gain_uw, 0.0, 1e9);
    s.boolean("lc_aware_weights", &DscaleOptions::lc_aware_weights);
    s.integer("max_rounds", &DscaleOptions::max_rounds, 0, 1 << 20);
    s.choice("selector", &DscaleOptions::selector,
             {{"mwis", DscaleOptions::Selector::kMwisFlow},
              {"greedy", DscaleOptions::Selector::kGreedy}});
    s.choice("flow_algo", &DscaleOptions::flow_algo,
             {{"dinic", FlowAlgo::kDinic},
              {"edmonds_karp", FlowAlgo::kEdmondsKarp}});
    s.boolean("run_initial_cvs", &DscaleOptions::run_initial_cvs);
    s.boolean("trim_unprofitable", &DscaleOptions::trim_unprofitable);
    s.number(
        "cvs_slack_margin",
        [](void* opts) -> double& {
          return static_cast<DscaleOptions*>(opts)->cvs.slack_margin;
        },
        0.0, 1.0);
    return s;
  }();
  return kSchema;
}

class DscalePass final : public Pass {
 public:
  DscalePass() : Pass("dscale") {}
  explicit DscalePass(const DscaleOptions& options)
      : Pass("dscale"), options_(options) {}

  const OptionSchema& schema() const override { return dscale_schema(); }
  void* options_blob() override { return &options_; }

  void run(Design& design, PassStats* stats) override {
    const DscaleResult result = run_dscale(design, options_);
    stats->details["cvs_lowered"] = Json(result.cvs_lowered);
    stats->details["mwis_lowered"] = Json(result.mwis_lowered);
    stats->details["rounds"] = Json(result.rounds);
  }

 private:
  DscaleOptions options_;
};

// ---- gscale ----------------------------------------------------------------

const OptionSchema& gscale_schema() {
  static const OptionSchema kSchema = [] {
    OptionSchema s("gscale");
    s.number("area_budget", &GscaleOptions::area_budget_ratio, 0.0, 10.0);
    s.integer("max_iter", &GscaleOptions::max_iter, 1, 1 << 20);
    s.number("cpn_window", &GscaleOptions::cpn_window, 0.0, 1e3);
    s.choice("flow_algo", &GscaleOptions::flow_algo,
             {{"dinic", FlowAlgo::kDinic},
              {"edmonds_karp", FlowAlgo::kEdmondsKarp}});
    s.choice("selector", &GscaleOptions::selector,
             {{"separator", GscaleOptions::CutSelector::kMinWeightSeparator},
              {"random", GscaleOptions::CutSelector::kRandomCut}});
    s.seed("random_cut_seed", &GscaleOptions::random_cut_seed);
    s.boolean("enable_sizing", &GscaleOptions::enable_sizing);
    s.number(
        "cvs_slack_margin",
        [](void* opts) -> double& {
          return static_cast<GscaleOptions*>(opts)->cvs.slack_margin;
        },
        0.0, 1.0);
    return s;
  }();
  return kSchema;
}

class GscalePass final : public Pass {
 public:
  GscalePass() : Pass("gscale") {}
  explicit GscalePass(const GscaleOptions& options)
      : Pass("gscale"), options_(options) {
    // Adapter-provided options carry an already-derived cut seed; mark
    // it explicit so resolve_seeds never second-guesses the caller.
    mark_set("random_cut_seed");
  }

  const OptionSchema& schema() const override { return gscale_schema(); }
  void* options_blob() override { return &options_; }

  void resolve_seeds(std::uint64_t circuit_seed, int position) override {
    // Stream 3 at position 0 is the suite engine's legacy derivation
    // (mix_seed(circuit_seed, kGscale + 1)), so a spec'd "gscale"
    // pipeline is bit-identical to — and cache-aliases with — the
    // hard-wired gscale cell; later positions get their own streams.
    if (!is_set("random_cut_seed"))
      options_.random_cut_seed =
          mix_seed(circuit_seed, 3 + static_cast<std::uint64_t>(position));
  }

  void run(Design& design, PassStats* stats) override {
    const GscaleResult result = run_gscale(design, options_);
    stats->details["cvs_lowered"] = Json(result.cvs_lowered);
    stats->details["resized"] = Json(result.num_resized);
    stats->details["iterations"] = Json(result.iterations);
    stats->details["area_increase"] = Json(result.area_increase_ratio);
  }

 private:
  GscaleOptions options_;
};

// ---- trim ------------------------------------------------------------------

struct TrimOptions {};  // trim_boundary has no knobs (yet)

const OptionSchema& trim_schema() {
  static const OptionSchema kSchema{"trim"};
  return kSchema;
}

class TrimPass final : public Pass {
 public:
  TrimPass() : Pass("trim") {}

  const OptionSchema& schema() const override { return trim_schema(); }
  void* options_blob() override { return &options_; }

  void run(Design& design, PassStats* stats) override {
    IncrementalSta timer(design.timing_context(), design.tspec());
    stats->details["raised"] = Json(trim_boundary(design, timer));
  }

 private:
  TrimOptions options_;
};

// ---- measure ---------------------------------------------------------------

struct MeasureOptions {};

const OptionSchema& measure_schema() {
  static const OptionSchema kSchema{"measure"};
  return kSchema;
}

/// Does nothing: exists so a pipeline can record a trajectory point
/// (power/delay/area are captured by the pipeline around every pass).
class MeasurePass final : public Pass {
 public:
  MeasurePass() : Pass("measure") {}

  const OptionSchema& schema() const override { return measure_schema(); }
  void* options_blob() override { return &options_; }

  void run(Design&, PassStats*) override {}

 private:
  MeasureOptions options_;
};

}  // namespace

void register_builtin_passes(PassRegistry& registry) {
  registry.register_pass("cvs", [] { return std::make_unique<CvsPass>(); });
  registry.register_pass("dscale",
                         [] { return std::make_unique<DscalePass>(); });
  registry.register_pass("gscale",
                         [] { return std::make_unique<GscalePass>(); });
  registry.register_pass("trim", [] { return std::make_unique<TrimPass>(); });
  registry.register_pass("measure",
                         [] { return std::make_unique<MeasurePass>(); });
}

std::unique_ptr<Pass> make_cvs_pass(const CvsOptions& options) {
  return std::make_unique<CvsPass>(options);
}

std::unique_ptr<Pass> make_dscale_pass(const DscaleOptions& options) {
  return std::make_unique<DscalePass>(options);
}

std::unique_ptr<Pass> make_gscale_pass(const GscaleOptions& options) {
  return std::make_unique<GscalePass>(options);
}

}  // namespace dvs
