// Declarative typed-options schema for optimization passes and protocol
// option blocks.  A schema is a list of named, typed, range-checked
// fields bound to the members of a concrete options struct; one schema
// instance serves every layer that used to hand-roll the same checks:
//
//   parse      — apply a Json object onto the struct (unknown keys and
//                out-of-range values throw OptionError with the exact
//                messages the dvsd protocol always used);
//   validate   — re-check the current struct values against the ranges;
//   canonical  — dump *every* field explicitly into a sorted Json object,
//                so two configurations mean the same thing iff their
//                canonical dumps are byte-identical;
//   fingerprint— FNV-1a over the canonical dump, the cache-key ingredient.
//
// Fields are declared once per pass (see opt/passes.cpp) with member
// pointers; nested members bind through the accessor overloads.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace dvs {

class OptionError : public std::runtime_error {
 public:
  explicit OptionError(const std::string& message)
      : std::runtime_error(message) {}
};

class OptionSchema {
 public:
  /// `owner` names the schema in error messages ("unknown field 'x' in
  /// <owner>") — pass name or protocol block name.
  explicit OptionSchema(std::string owner) : owner_(std::move(owner)) {}

  // ---- field declarations -------------------------------------------------
  // Each returns *this so schemas read as a declaration list.  The
  // accessor receives the options blob the schema is later applied to;
  // the member-pointer overloads are the common case, the std::function
  // overloads reach nested members (e.g. DscaleOptions::cvs.slack_margin).

  using DoubleRef = std::function<double&(void*)>;
  using IntRef = std::function<int&(void*)>;
  using UintRef = std::function<std::uint64_t&(void*)>;
  using BoolRef = std::function<bool&(void*)>;

  /// Finite double in [lo, hi]; `open_min` makes the lower bound strict
  /// (freq_mhz-style "> 0" checks).
  OptionSchema& number(const char* name, DoubleRef ref, double lo, double hi,
                       bool open_min = false);
  template <class O>
  OptionSchema& number(const char* name, double O::* member, double lo,
                       double hi, bool open_min = false) {
    return number(name, member_ref<double>(member), lo, hi, open_min);
  }

  /// Integer in [lo, hi] (range-checked in 64 bits before narrowing).
  OptionSchema& integer(const char* name, IntRef ref, std::int64_t lo,
                        std::int64_t hi);
  template <class O>
  OptionSchema& integer(const char* name, int O::* member, std::int64_t lo,
                        std::int64_t hi) {
    return integer(name, member_ref<int>(member), lo, hi);
  }

  /// Unsigned 64-bit seed; any value is valid.
  OptionSchema& seed(const char* name, UintRef ref);
  template <class O>
  OptionSchema& seed(const char* name, std::uint64_t O::* member) {
    return seed(name, member_ref<std::uint64_t>(member));
  }

  OptionSchema& boolean(const char* name, BoolRef ref);
  template <class O>
  OptionSchema& boolean(const char* name, bool O::* member) {
    return boolean(name, member_ref<bool>(member));
  }

  /// Free-form field: the callbacks own parsing (throwing their own
  /// schema-verbatim errors), the canonical dump, and the range check.
  /// Used for structured values (e.g. the protocol's supply ladder)
  /// that the scalar field kinds cannot express.
  OptionSchema& custom(const char* name,
                       std::function<void(void*, const Json&)> set,
                       std::function<Json(const void*)> get,
                       std::function<bool(const void*)> in_range);

  /// Enumerated choice: the wire value is one of the given strings, the
  /// struct member is the paired enum value.
  template <class O, class E>
  OptionSchema& choice(const char* name, E O::* member,
                       std::vector<std::pair<std::string, E>> choices) {
    std::vector<std::string> names;
    for (const auto& [n, v] : choices) names.push_back(n);
    return choice_impl(
        name, std::move(names),
        [member, choices](const void* opts) -> std::size_t {
          const E value = static_cast<const O*>(opts)->*member;
          for (std::size_t i = 0; i < choices.size(); ++i)
            if (choices[i].second == value) return i;
          return 0;  // unreachable for schema-managed structs
        },
        [member, choices](void* opts, std::size_t index) {
          static_cast<O*>(opts)->*member = choices[index].second;
        });
  }

  // ---- operations ---------------------------------------------------------

  /// Applies `object` onto `opts`.  Unknown keys throw
  /// OptionError("unknown field 'k' in <owner>"); range violations throw
  /// OptionError("<name> out of range"); wrong JSON types throw JsonError.
  /// Returns the keys that were explicitly present.
  std::set<std::string> apply(void* opts, const Json::Object& object) const;

  /// Re-checks the current struct values (after programmatic edits).
  void validate(const void* opts) const;

  /// Every field, explicitly, sorted by name (Json::Object is a map).
  Json::Object canonical(const void* opts) const;

  /// fnv1a64 over the canonical dump — stable across field order,
  /// defaulted-vs-explicit spelling, and whitespace.
  std::uint64_t fingerprint(const void* opts) const;

  const std::string& owner() const { return owner_; }

  /// Field names in declaration order (docs / introspection).
  std::vector<std::string> field_names() const;

 private:
  struct Field {
    std::string name;
    /// Parses + range-checks the Json value into the blob.
    std::function<void(void*, const Json&)> set;
    /// Reads the blob back as the canonical Json value.
    std::function<Json(const void*)> get;
    /// Range-check of the current value ("" = ok, else the field name
    /// whose range failed).
    std::function<bool(const void*)> in_range;
  };

  template <class T, class O>
  static std::function<T&(void*)> member_ref(T O::* member) {
    return [member](void* opts) -> T& {
      return static_cast<O*>(opts)->*member;
    };
  }

  OptionSchema& choice_impl(
      const char* name, std::vector<std::string> names,
      std::function<std::size_t(const void*)> get_index,
      std::function<void(void*, std::size_t)> set_index);

  Field& add(const char* name);
  [[noreturn]] void out_of_range(const std::string& name) const;

  std::string owner_;
  std::vector<Field> fields_;
};

}  // namespace dvs
