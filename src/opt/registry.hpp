// Process-wide pass registry: name -> factory.  The built-in passes
// (cvs, dscale, gscale, trim, measure — opt/passes.cpp) are registered
// on first use; additional engines register at static-init or startup
// time and immediately become addressable from pipeline specs, the
// suite engine, the dvsd protocol, and every CLI without further
// plumbing.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "opt/pass.hpp"

namespace dvs {

class PassRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Pass>()>;

  /// Throws OptionError on duplicate names (a silently shadowed engine
  /// would change what cached fingerprints mean).
  void register_pass(const std::string& name, Factory factory);

  bool contains(const std::string& name) const;

  /// New instance with default options.  Throws
  /// OptionError("unknown pass '<name>'") when unregistered.
  std::unique_ptr<Pass> create(const std::string& name) const;

  /// Registered names, sorted (docs, error messages, introspection).
  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// The process-wide registry, with the built-in passes pre-registered.
PassRegistry& pass_registry();

}  // namespace dvs
