#include "opt/registry.hpp"

#include <algorithm>

#include "opt/passes.hpp"

namespace dvs {

void PassRegistry::register_pass(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, _] : factories_)
    if (existing == name)
      throw OptionError("pass '" + name + "' is already registered");
  factories_.emplace_back(name, std::move(factory));
}

bool PassRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [existing, _] : factories_)
    if (existing == name) return true;
  return false;
}

std::unique_ptr<Pass> PassRegistry::create(const std::string& name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, f] : factories_)
      if (existing == name) factory = f;
  }
  if (!factory) throw OptionError("unknown pass '" + name + "'");
  return factory();
}

std::vector<std::string> PassRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, _] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

PassRegistry& pass_registry() {
  static PassRegistry* kRegistry = [] {
    auto* registry = new PassRegistry;
    register_builtin_passes(*registry);
    return registry;
  }();
  return *kRegistry;
}

}  // namespace dvs
