// The optimization-pass interface: a named transformation of a Design
// with typed options bound through an OptionSchema.  Passes are created
// by the PassRegistry (opt/registry.hpp) and composed into Pipelines
// (opt/pipeline.hpp); the paper's three algorithms, the boundary-trim
// cleanup, and a no-op measurement probe are the built-ins
// (opt/passes.cpp), and new engines register without touching any
// driver, the suite engine, or the service.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "opt/option_schema.hpp"

namespace dvs {

class Design;

/// Instrumentation for one executed pass: the power/delay/area
/// trajectory point *after* the pass ran, the state counters, and the
/// pass-specific detail counters (rounds, iterations, ...).
struct PassStats {
  std::string pass;          // registered name
  int position = -1;         // index in the pipeline
  double cpu_seconds = 0.0;  // thread CPU time inside run()

  /// Wall-clock window of run(), for request tracing only — the wire
  /// trajectory (pass_stats_json) deliberately reports cpu_seconds, so
  /// cached bodies and suite rows stay byte-identical whether or not a
  /// trace was requested.
  std::chrono::steady_clock::time_point wall_start{};
  std::chrono::steady_clock::time_point wall_end{};

  double power_uw = 0.0;
  double arrival_ns = 0.0;
  double area_um2 = 0.0;
  int low_gates = 0;
  /// Gate count per supply-ladder rung (index = SupplyId); sums to the
  /// design's gate count, with low_gates = everything past index 0.
  std::vector<int> level_gates;
  int level_converters = 0;
  int resized = 0;
  /// Gates whose supply or drive changed across this pass.
  int gates_touched = 0;

  Json::Object details;
};

class Pass {
 public:
  virtual ~Pass() = default;

  /// The registered name ("cvs", "dscale", ...).
  const std::string& name() const { return name_; }

  virtual const OptionSchema& schema() const = 0;
  virtual void* options_blob() = 0;
  const void* options_blob() const {
    return const_cast<Pass*>(this)->options_blob();
  }

  /// Applies a spec's option object through the schema and remembers
  /// which keys the caller set explicitly (seed resolution respects
  /// explicit values).  Throws OptionError on unknown keys / bad ranges.
  void configure(const Json::Object& object) {
    for (const std::string& key : schema().apply(options_blob(), object))
      explicit_keys_.insert(key);
  }

  /// True iff `key` was explicitly set by configure()/mark_set().
  bool is_set(const std::string& key) const {
    return explicit_keys_.count(key) != 0;
  }
  void mark_set(const std::string& key) { explicit_keys_.insert(key); }

  /// Every option, explicitly, in canonical (sorted) form.
  Json::Object canonical_options() const {
    return schema().canonical(options_blob());
  }

  /// Derives stochastic knobs that were not explicitly configured from
  /// (circuit seed, pipeline position) — the suite engine's seed
  /// discipline, so results never depend on scheduling or request order.
  virtual void resolve_seeds(std::uint64_t /*circuit_seed*/,
                             int /*position*/) {}

  /// Runs the pass on the design in place.  `stats` arrives with the
  /// generic fields cleared; the pass fills `details` only — the
  /// pipeline captures the trajectory point and counters around it.
  virtual void run(Design& design, PassStats* stats) = 0;

 protected:
  explicit Pass(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
  std::set<std::string> explicit_keys_;
};

}  // namespace dvs
