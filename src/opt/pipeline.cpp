#include "opt/pipeline.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <utility>

#include "core/design.hpp"
#include "support/contracts.hpp"

namespace dvs {

namespace {

/// CPU seconds consumed by the calling thread — the paper's CPU column.
/// Unlike wall clock, this stays meaningful when the suite engine runs
/// many pipeline cells concurrently on shared cores.
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// One (supply rung, cell) entry per node id; gates only are filled.
std::vector<std::pair<SupplyId, int>> gate_state(const Design& design) {
  std::vector<std::pair<SupplyId, int>> state(
      design.network().size(), {kTopRung, -1});
  design.network().for_each_gate([&](const Node& n) {
    state[n.id] = {design.level(n.id), n.cell};
  });
  return state;
}

/// Grammar cursor over a spec string.
struct SpecCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool done() {
    skip_ws();
    return pos >= text.size();
  }
  bool accept(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void expect(char c, const std::string& where) {
    if (!accept(c))
      throw PipelineError(std::string("pipeline: expected '") + c +
                          "' in " + where);
  }
  std::string word(const char* what) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < text.size() && is_word_char(text[pos])) ++pos;
    if (pos == start)
      throw PipelineError(std::string("pipeline: expected ") + what);
    return text.substr(start, pos - start);
  }
};

/// One grammar value: quoted string, or a bare token classified by the
/// JSON parser (number / true / false) with identifiers as strings.
Json parse_value(SpecCursor& cursor) {
  cursor.skip_ws();
  if (cursor.pos < cursor.text.size() && cursor.text[cursor.pos] == '"') {
    const std::size_t close = cursor.text.find('"', cursor.pos + 1);
    if (close == std::string::npos)
      throw PipelineError("pipeline: unterminated string");
    Json value(cursor.text.substr(cursor.pos + 1, close - cursor.pos - 1));
    cursor.pos = close + 1;
    return value;
  }
  const std::size_t start = cursor.pos;
  while (cursor.pos < cursor.text.size()) {
    const char c = cursor.text[cursor.pos];
    if (c == ',' || c == ')' || c == '|' ||
        std::isspace(static_cast<unsigned char>(c)))
      break;
    ++cursor.pos;
  }
  if (cursor.pos == start)
    throw PipelineError("pipeline: expected a value");
  const std::string token = cursor.text.substr(start, cursor.pos - start);
  try {
    return Json::parse(token);  // number / true / false / null
  } catch (const JsonError&) {
    return Json(token);  // identifier (enum choice)
  }
}

/// True iff the string renders as a bare grammar identifier.
bool is_identifier(const std::string& s) {
  if (s.empty() || s == "true" || s == "false" || s == "null") return false;
  if (std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s)
    if (!is_word_char(c)) return false;
  return true;
}

std::string value_spec(const Json& value) {
  if (value.is_string()) {
    const std::string& s = value.as_string();
    return is_identifier(s) ? s : "\"" + s + "\"";
  }
  if (value.is_number()) {
    std::string text = value.dump();
    if (text.find_first_of(".eE") == std::string::npos)
      return text;  // exact integer representation
    // Shortest-roundtrip spelling so canonical specs read "1e-09"
    // instead of 17-digit noise while parse(canonical_spec()) stays a
    // fixpoint.  (The fingerprint hashes canonical_json().dump(), not
    // this spelling.)
    return shortest_double_spelling(value.as_double());
  }
  return value.dump();  // bools
}

}  // namespace

Pipeline Pipeline::parse(const std::string& spec,
                         const PassRegistry& registry) {
  Pipeline pipeline;
  SpecCursor cursor{spec};
  if (cursor.done()) throw PipelineError("pipeline: empty spec");
  do {
    const std::string name = cursor.word("a pass name");
    std::unique_ptr<Pass> pass = registry.create(name);
    if (cursor.accept('(')) {
      Json::Object options;
      if (!cursor.accept(')')) {
        do {
          const std::string key = cursor.word("an option name");
          cursor.expect('=', name + "() options");
          options[key] = parse_value(cursor);
        } while (cursor.accept(','));
        cursor.expect(')', name + "() options");
      }
      pass->configure(options);
    }
    pipeline.append(std::move(pass));
  } while (cursor.accept('|'));
  if (!cursor.done())
    throw PipelineError("pipeline: trailing characters after spec");
  return pipeline;
}

Pipeline Pipeline::from_spec(const Json& spec, const PassRegistry& registry) {
  if (spec.is_string()) return parse(spec.as_string(), registry);
  if (!spec.is_array())
    throw PipelineError("pipeline must be a string or an array");
  Pipeline pipeline;
  for (const Json& stage : spec.as_array()) {
    if (stage.is_string()) {
      pipeline.append(registry.create(stage.as_string()));
      continue;
    }
    if (!stage.is_object())
      throw PipelineError(
          "pipeline stage must be a pass name or an object");
    const Json* name = stage.find("pass");
    if (name == nullptr)
      throw PipelineError("pipeline stage without 'pass'");
    for (const auto& [key, _] : stage.as_object())
      if (key != "pass" && key != "options")
        throw PipelineError("unknown field '" + key +
                            "' in pipeline stage");
    std::unique_ptr<Pass> pass = registry.create(name->as_string());
    if (const Json* options = stage.find("options"))
      pass->configure(options->as_object());
    pipeline.append(std::move(pass));
  }
  if (pipeline.empty()) throw PipelineError("pipeline: empty spec");
  return pipeline;
}

void Pipeline::append(std::unique_ptr<Pass> pass) {
  DVS_EXPECTS(pass != nullptr);
  passes_.push_back(std::move(pass));
}

Json Pipeline::canonical_json() const {
  Json::Array stages;
  for (const auto& pass : passes_) {
    Json::Object stage;
    stage["pass"] = Json(pass->name());
    stage["options"] = Json(pass->canonical_options());
    stages.emplace_back(std::move(stage));
  }
  return Json(std::move(stages));
}

std::string Pipeline::canonical_spec() const {
  std::string out;
  for (const auto& pass : passes_) {
    if (!out.empty()) out += " | ";
    out += pass->name();
    const Json::Object options = pass->canonical_options();
    if (options.empty()) continue;
    out += '(';
    bool first = true;
    for (const auto& [key, value] : options) {
      if (!first) out += ", ";
      first = false;
      out += key + "=" + value_spec(value);
    }
    out += ')';
  }
  return out;
}

std::uint64_t Pipeline::fingerprint() const {
  return fnv1a64(canonical_json().dump());
}

void Pipeline::resolve_seeds(std::uint64_t circuit_seed) {
  for (std::size_t i = 0; i < passes_.size(); ++i)
    passes_[i]->resolve_seeds(circuit_seed, static_cast<int>(i));
}

PipelineRun Pipeline::run(Design& design) {
  PipelineRun out;
  out.passes.reserve(passes_.size());
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    Pass& pass = *passes_[i];
    PassStats stats;
    stats.pass = pass.name();
    stats.position = static_cast<int>(i);
    const auto before = gate_state(design);

    const double start = thread_cpu_seconds();
    stats.wall_start = std::chrono::steady_clock::now();
    pass.run(design, &stats);
    stats.wall_end = std::chrono::steady_clock::now();
    stats.cpu_seconds = thread_cpu_seconds() - start;

    stats.power_uw = design.run_power().total();
    const StaResult timing = design.run_timing();
    stats.arrival_ns = timing.worst_arrival;
    stats.area_um2 = design.total_area();
    stats.low_gates = design.count_low();
    stats.level_gates = design.count_per_level();
    stats.level_converters = design.count_lcs();
    stats.resized = design.count_resized();
    const auto after = gate_state(design);
    for (std::size_t n = 0; n < after.size(); ++n)
      if (before[n] != after[n]) ++stats.gates_touched;

    // Every built-in pass maintains the constraint; a pass that breaks
    // it has a bug, and silently reporting its "savings" would be worse
    // than stopping.
    DVS_ASSERT(timing.meets_constraint(1e-6));

    out.cpu_seconds += stats.cpu_seconds;
    out.passes.push_back(std::move(stats));
  }
  return out;
}

Json pass_stats_json(const PassStats& stats) {
  Json::Object point;
  point["pass"] = Json(stats.pass);
  point["cpu_ms"] = Json(stats.cpu_seconds * 1e3);
  point["power_uw"] = Json(stats.power_uw);
  point["arrival_ns"] = Json(stats.arrival_ns);
  point["area_um2"] = Json(stats.area_um2);
  point[kLowGatesKey] = Json(stats.low_gates);
  point["levels"] = supply_counts_json(stats.level_gates);
  point["level_converters"] = Json(stats.level_converters);
  point["resized"] = Json(stats.resized);
  point["gates_touched"] = Json(stats.gates_touched);
  point["details"] = Json(stats.details);
  return Json(std::move(point));
}

}  // namespace dvs
