#include "opt/option_schema.hpp"

#include <cmath>

namespace dvs {

OptionSchema::Field& OptionSchema::add(const char* name) {
  for (const Field& field : fields_)
    if (field.name == name)
      throw OptionError("duplicate field '" + std::string(name) + "' in " +
                        owner_);
  fields_.push_back(Field{name, {}, {}, {}});
  return fields_.back();
}

void OptionSchema::out_of_range(const std::string& name) const {
  throw OptionError(name + " out of range");
}

OptionSchema& OptionSchema::number(const char* name, DoubleRef ref, double lo,
                                   double hi, bool open_min) {
  Field& field = add(name);
  const std::string label = name;
  auto ok = [lo, hi, open_min](double v) {
    return std::isfinite(v) && (open_min ? v > lo : v >= lo) && v <= hi;
  };
  field.set = [this, ref, ok, label](void* opts, const Json& value) {
    const double v = value.as_double();
    if (!ok(v)) out_of_range(label);
    ref(opts) = v;
  };
  field.get = [ref](const void* opts) {
    return Json(ref(const_cast<void*>(opts)));
  };
  field.in_range = [ref, ok](const void* opts) {
    return ok(ref(const_cast<void*>(opts)));
  };
  return *this;
}

OptionSchema& OptionSchema::integer(const char* name, IntRef ref,
                                    std::int64_t lo, std::int64_t hi) {
  Field& field = add(name);
  const std::string label = name;
  field.set = [this, ref, lo, hi, label](void* opts, const Json& value) {
    // Range-check in 64 bits; a narrowing cast first would let wrapped
    // values slip through.
    const std::int64_t v = value.as_int();
    if (v < lo || v > hi) out_of_range(label);
    ref(opts) = static_cast<int>(v);
  };
  field.get = [ref](const void* opts) {
    return Json(static_cast<std::int64_t>(ref(const_cast<void*>(opts))));
  };
  field.in_range = [ref, lo, hi](const void* opts) {
    const std::int64_t v = ref(const_cast<void*>(opts));
    return v >= lo && v <= hi;
  };
  return *this;
}

OptionSchema& OptionSchema::seed(const char* name, UintRef ref) {
  Field& field = add(name);
  field.set = [ref](void* opts, const Json& value) {
    ref(opts) = value.as_uint();
  };
  field.get = [ref](const void* opts) {
    return Json(ref(const_cast<void*>(opts)));
  };
  field.in_range = [](const void*) { return true; };
  return *this;
}

OptionSchema& OptionSchema::boolean(const char* name, BoolRef ref) {
  Field& field = add(name);
  field.set = [ref](void* opts, const Json& value) {
    ref(opts) = value.as_bool();
  };
  field.get = [ref](const void* opts) {
    return Json(ref(const_cast<void*>(opts)));
  };
  field.in_range = [](const void*) { return true; };
  return *this;
}

OptionSchema& OptionSchema::custom(
    const char* name, std::function<void(void*, const Json&)> set,
    std::function<Json(const void*)> get,
    std::function<bool(const void*)> in_range) {
  Field& field = add(name);
  field.set = std::move(set);
  field.get = std::move(get);
  field.in_range = std::move(in_range);
  return *this;
}

OptionSchema& OptionSchema::choice_impl(
    const char* name, std::vector<std::string> names,
    std::function<std::size_t(const void*)> get_index,
    std::function<void(void*, std::size_t)> set_index) {
  Field& field = add(name);
  const std::string label = name;
  field.set = [this, names, set_index, label](void* opts,
                                              const Json& value) {
    const std::string& text = value.as_string();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == text) {
        set_index(opts, i);
        return;
      }
    }
    std::string known;
    for (const std::string& n : names)
      known += (known.empty() ? "" : "|") + n;
    throw OptionError(label + " must be one of " + known + " in " + owner_);
  };
  field.get = [names, get_index](const void* opts) {
    return Json(names[get_index(opts)]);
  };
  field.in_range = [](const void*) { return true; };
  return *this;
}

std::set<std::string> OptionSchema::apply(void* opts,
                                          const Json::Object& object) const {
  // Reject unknown keys first so a typo'd name fails loudly instead of
  // the request silently running defaults.
  std::set<std::string> applied;
  for (const auto& [key, value] : object) {
    const Field* match = nullptr;
    for (const Field& field : fields_)
      if (field.name == key) match = &field;
    if (match == nullptr)
      throw OptionError("unknown field '" + key + "' in " + owner_);
    match->set(opts, value);
    applied.insert(key);
  }
  return applied;
}

void OptionSchema::validate(const void* opts) const {
  for (const Field& field : fields_)
    if (!field.in_range(opts)) out_of_range(field.name);
}

Json::Object OptionSchema::canonical(const void* opts) const {
  Json::Object object;
  for (const Field& field : fields_) object[field.name] = field.get(opts);
  return object;
}

std::uint64_t OptionSchema::fingerprint(const void* opts) const {
  return fnv1a64(Json(canonical(opts)).dump());
}

std::vector<std::string> OptionSchema::field_names() const {
  std::vector<std::string> names;
  for (const Field& field : fields_) names.push_back(field.name);
  return names;
}

}  // namespace dvs
