// Composable optimization pipeline: an ordered list of registry-created
// passes parsed from a declarative spec and run on a Design with
// per-pass instrumentation (thread CPU time, power/delay/area
// trajectory, gates touched).
//
// Two spec forms, interchangeable:
//
//   compact string grammar    "cvs | gscale(area_budget=0.05) | dscale"
//       pipeline := stage ('|' stage)*
//       stage    := name [ '(' [key '=' value {',' key '=' value}] ')' ]
//       value    := number | true | false | identifier | "quoted string"
//
//   JSON                      ["cvs", {"pass":"gscale",
//                                      "options":{"area_budget":0.05}},
//                              "dscale"]
//
// canonical_json() dumps every pass with every option explicit (sorted
// keys), so two specs mean the same pipeline iff their canonical dumps
// are byte-identical; fingerprint() hashes that dump and is the
// options half of the dvsd result-cache key.  parse -> canonical ->
// reparse is a fixpoint (pipeline_test.cpp holds it to that).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "opt/pass.hpp"
#include "opt/registry.hpp"

namespace dvs {

class Design;

class PipelineError : public std::runtime_error {
 public:
  explicit PipelineError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Instrumentation of one Pipeline::run: one PassStats per pass, in
/// pipeline order.
struct PipelineRun {
  std::vector<PassStats> passes;
  double cpu_seconds = 0.0;  // sum over the passes
};

class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Parses the compact string grammar.  Throws PipelineError on
  /// malformed specs, OptionError on unknown passes/options/ranges.
  static Pipeline parse(const std::string& spec,
                        const PassRegistry& registry = pass_registry());

  /// Accepts either spec form: a grammar string or a JSON array whose
  /// elements are pass names or {"pass": name, "options": {...}}.
  static Pipeline from_spec(const Json& spec,
                            const PassRegistry& registry = pass_registry());

  void append(std::unique_ptr<Pass> pass);

  std::size_t size() const { return passes_.size(); }
  bool empty() const { return passes_.empty(); }
  Pass& pass(std::size_t i) { return *passes_[i]; }
  const Pass& pass(std::size_t i) const { return *passes_[i]; }

  /// [{"pass": name, "options": {every field, explicit}}, ...].
  Json canonical_json() const;

  /// The string-grammar spelling of canonical_json(); reparses to an
  /// identical pipeline.
  std::string canonical_spec() const;

  /// fnv1a64 over canonical_json().dump() — the cache-key ingredient.
  std::uint64_t fingerprint() const;

  /// Derives unset stochastic knobs per (circuit seed, position); call
  /// before run() and before canonical_json() when the canonical form
  /// feeds a cache key (derived seeds are part of the job's identity).
  void resolve_seeds(std::uint64_t circuit_seed);

  /// Runs every pass in order on `design`, asserting the timing
  /// constraint still holds after each one, and returns the per-pass
  /// trajectory.
  PipelineRun run(Design& design);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Serializes one trajectory point for reports and the wire protocol:
/// {"pass","cpu_ms","power_uw","arrival_ns","area_um2","low","levels",
///  "level_converters","resized","gates_touched","details"} — "levels"
/// is the per-rung gate histogram (index = SupplyId).
Json pass_stats_json(const PassStats& stats);

}  // namespace dvs
