// Switching-activity estimation.  The paper uses the generic SIS power
// estimator: random simulation at 20 MHz.  `estimate_activity` reproduces
// that (zero-delay random-vector simulation, counting 0->1 transitions per
// net); `propagate_probabilities` is a fast correlation-free analytic
// alternative used for cross-checks and as a cheap estimator in examples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/network.hpp"

namespace dvs {

struct ActivityOptions {
  int num_vectors = 4096;          // simulated clock cycles
  std::uint64_t seed = 1;          // RNG seed (deterministic runs)
  double input_one_probability = 0.5;
};

struct Activity {
  /// Average number of 0->1 transitions per clock cycle, per node output
  /// (the alpha_{0->1} of the paper's equation (1)).
  std::vector<double> alpha01;
  /// Signal probability P(node == 1), per node.
  std::vector<double> prob_one;
};

/// Random-simulation estimate (SIS-like).
Activity estimate_activity(const Network& net,
                           const ActivityOptions& options = {});

/// Same estimate over a caller-provided topological order (e.g. the one
/// cached on the compiled timing graph), skipping the internal sort.
Activity estimate_activity(const Network& net, const ActivityOptions& options,
                           std::span<const NodeId> topo);

/// Analytic estimate assuming spatial and temporal independence:
/// prob_one via truth-table propagation, alpha01 = p(1-p).
Activity propagate_probabilities(const Network& net,
                                 double input_one_probability = 0.5);

}  // namespace dvs
