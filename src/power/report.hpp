// Human-readable power report used by examples and the experiment driver.
#pragma once

#include <string>

#include "power/power_model.hpp"

namespace dvs {

/// Multi-line breakdown: switching / internal / converter / leakage /
/// total, plus the `top_n` hottest nodes.
std::string format_power_report(const Network& net,
                                const PowerBreakdown& power, int top_n = 5);

}  // namespace dvs
