#include "power/report.hpp"

#include <algorithm>
#include <sstream>

#include "support/units.hpp"

namespace dvs {

std::string format_power_report(const Network& net,
                                const PowerBreakdown& power, int top_n) {
  std::ostringstream out;
  out << "power report for '" << net.name() << "' (uW)\n"
      << "  switching : " << format_fixed(power.switching, 3) << "\n"
      << "  internal  : " << format_fixed(power.internal, 3) << "\n"
      << "  converters: " << format_fixed(power.converter, 3) << "\n"
      << "  leakage   : " << format_fixed(power.leakage, 3) << "\n"
      << "  total     : " << format_fixed(power.total(), 3) << "\n";

  std::vector<NodeId> hottest;
  net.for_each_node([&](const Node& n) { hottest.push_back(n.id); });
  std::sort(hottest.begin(), hottest.end(), [&](NodeId a, NodeId b) {
    return power.node_power[a] > power.node_power[b];
  });
  const int count = std::min<int>(top_n, static_cast<int>(hottest.size()));
  if (count > 0) out << "  hottest nodes:\n";
  for (int i = 0; i < count; ++i) {
    const Node& n = net.node(hottest[i]);
    out << "    " << n.name << " : "
        << format_fixed(power.node_power[n.id], 3) << "\n";
  }
  return out.str();
}

}  // namespace dvs
