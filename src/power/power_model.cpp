#include "power/power_model.hpp"

#include "support/contracts.hpp"
#include "support/units.hpp"
#include "timing/loads.hpp"

namespace dvs {

PowerBreakdown compute_power(const PowerContext& ctx) {
  DVS_EXPECTS(ctx.net != nullptr && ctx.lib != nullptr);
  const Network& net = *ctx.net;
  const Library& lib = *ctx.lib;
  const int n = net.size();
  DVS_EXPECTS(static_cast<int>(ctx.node_vdd.size()) >= n);
  DVS_EXPECTS(static_cast<int>(ctx.alpha01.size()) >= n);

  LoadContext lctx{ctx.net, ctx.lib, ctx.node_vdd, ctx.lc_on_output,
                   ctx.output_port_load, ctx.graph};
  const NodeLoads loads = compute_loads(lctx);

  PowerBreakdown p;
  p.node_power.assign(n, 0.0);
  const double vdd_high = lib.vdd_high();
  const Cell* lc_cell =
      lib.level_converter() >= 0 ? &lib.cell(lib.level_converter()) : nullptr;

  net.for_each_node([&](const Node& node) {
    if (node.is_constant()) return;  // never switches
    // Primary-input nets are charged to the upstream block that drives
    // them: no Vdd choice inside this design can change their energy, so
    // counting them would only dilute the improvement percentages.
    if (node.is_input()) return;
    const double a = ctx.alpha01[node.id];
    const double vdd = ctx.node_vdd[node.id];
    const double v2 = vdd * vdd;
    double mine = 0.0;

    const double sw = a * ctx.freq_mhz * loads.direct[node.id] * v2 *
                      kSwitchPowerToMicrowatt;
    p.switching += sw;
    mine += sw;

    if (node.is_gate() && node.cell >= 0) {
      const Cell& cell = lib.cell(node.cell);
      const double internal = a * ctx.freq_mhz * cell.internal_cap * v2 *
                              kSwitchPowerToMicrowatt;
      const double leak =
          cell.leakage * lib.voltage_model().leakage_factor(vdd);
      p.internal += internal;
      p.leakage += leak;
      mine += internal + leak;
    }

    if (loads.lc_fanout_pins[node.id] > 0) {
      DVS_ASSERT(lc_cell != nullptr);
      // The converter's output stage and internal node run at Vdd_high;
      // it switches as often as its driver does.
      const double vh2 = vdd_high * vdd_high;
      const double conv =
          a * ctx.freq_mhz *
              (loads.lc[node.id] + lc_cell->internal_cap) * vh2 *
              kSwitchPowerToMicrowatt +
          lc_cell->leakage;
      p.converter += conv;
      mine += conv;
    }
    p.node_power[node.id] = mine;
  });
  return p;
}

PowerBreakdown compute_power(const Network& net, const Library& lib,
                             const Activity& activity, double freq_mhz) {
  std::vector<double> vdd(net.size(), lib.vdd_high());
  PowerContext ctx;
  ctx.net = &net;
  ctx.lib = &lib;
  ctx.node_vdd = vdd;
  ctx.alpha01 = activity.alpha01;
  ctx.freq_mhz = freq_mhz;
  return compute_power(ctx);
}

}  // namespace dvs
