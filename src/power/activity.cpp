#include "power/activity.hpp"

#include <bit>

#include "netlist/topo.hpp"
#include "sim/bitsim.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace dvs {

namespace {

Activity estimate_with(const Network& net, const ActivityOptions& options,
                       const BitSimulator& sim) {
  DVS_EXPECTS(options.num_vectors >= 2);
  const int n = net.size();
  Activity act;
  act.alpha01.assign(n, 0.0);
  act.prob_one.assign(n, 0.0);

  Rng rng(options.seed);
  const int num_words = (options.num_vectors + 63) / 64;

  std::vector<std::uint64_t> inputs(net.inputs().size());
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> last_bits(n, 0);
  std::vector<long> rises(n, 0);
  std::vector<long> ones(n, 0);
  long cycles = 0;

  auto random_word = [&]() {
    if (options.input_one_probability == 0.5) return rng.next_u64();
    std::uint64_t w = 0;
    for (int b = 0; b < 64; ++b)
      if (rng.next_bool(options.input_one_probability)) w |= 1ULL << b;
    return w;
  };

  for (int word = 0; word < num_words; ++word) {
    for (auto& in : inputs) in = random_word();
    sim.simulate_into(inputs, values);
    const int bits_this_word =
        std::min(64, options.num_vectors - word * 64);
    const std::uint64_t live_mask =
        bits_this_word == 64 ? ~0ULL : ((1ULL << bits_this_word) - 1);
    net.for_each_node([&](const Node& node) {
      const std::uint64_t v = values[node.id] & live_mask;
      // Transitions between adjacent patterns within the word, plus the
      // seam from the previous word's last pattern.
      std::uint64_t prev = v << 1;
      if (word > 0) prev |= last_bits[node.id];
      const std::uint64_t considered =
          word == 0 ? (live_mask & ~1ULL) : live_mask;
      rises[node.id] +=
          std::popcount(~prev & v & considered);
      ones[node.id] += std::popcount(v);
      last_bits[node.id] = (values[node.id] >> (bits_this_word - 1)) & 1ULL;
    });
    cycles += bits_this_word;
  }

  const long transitions = cycles - 1;
  net.for_each_node([&](const Node& node) {
    act.alpha01[node.id] =
        static_cast<double>(rises[node.id]) / transitions;
    act.prob_one[node.id] = static_cast<double>(ones[node.id]) / cycles;
  });
  return act;
}

}  // namespace

Activity estimate_activity(const Network& net,
                           const ActivityOptions& options) {
  return estimate_with(net, options, BitSimulator(net));
}

Activity estimate_activity(const Network& net, const ActivityOptions& options,
                           std::span<const NodeId> topo) {
  return estimate_with(net, options, BitSimulator(net, topo));
}

Activity propagate_probabilities(const Network& net,
                                 double input_one_probability) {
  DVS_EXPECTS(input_one_probability >= 0.0 &&
              input_one_probability <= 1.0);
  const int n = net.size();
  Activity act;
  act.alpha01.assign(n, 0.0);
  act.prob_one.assign(n, 0.0);

  for (NodeId id : topo_order(net)) {
    const Node& node = net.node(id);
    double p = 0.0;
    if (node.is_input()) {
      p = input_one_probability;
    } else if (node.is_constant()) {
      p = node.constant_value ? 1.0 : 0.0;
    } else {
      const int k = node.function.num_vars;
      for (std::uint32_t pattern = 0; pattern < (1u << k); ++pattern) {
        if (!node.function.eval(pattern)) continue;
        double term = 1.0;
        for (int i = 0; i < k; ++i) {
          const double pi = act.prob_one[node.fanins[i]];
          term *= ((pattern >> i) & 1u) ? pi : (1.0 - pi);
        }
        p += term;
      }
    }
    act.prob_one[id] = p;
    // Temporal independence: P(0 then 1) = (1-p) * p.  Constants and any
    // fully-settled node get zero activity automatically.
    act.alpha01[id] = p * (1.0 - p);
  }
  return act;
}

}  // namespace dvs
