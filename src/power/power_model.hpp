// Power evaluation per the paper's equation (1):
//   P_switch = a01 * f_clk * C_load * Vdd^2
// extended with internal switching capacitance, level-converter power
// (their load and internal nodes swing at Vdd_high), and cell leakage.
// Units per support/units.hpp: MHz * fF * V^2 * 1e-3 = uW.
#pragma once

#include <span>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"
#include "power/activity.hpp"

namespace dvs {

class TimingGraph;

struct PowerContext {
  const Network* net = nullptr;
  const Library* lib = nullptr;
  std::span<const double> node_vdd;
  std::span<const char> lc_on_output;
  std::span<const double> alpha01;  // per node, from activity estimation
  double freq_mhz = 20.0;           // the paper's 20 MHz random simulation
  double output_port_load = 25.0;   // fF, kept consistent with the STA
  /// Optional compiled graph for the load computation's flat fast path.
  const TimingGraph* graph = nullptr;
};

struct PowerBreakdown {
  double switching = 0.0;  // uW, net (external) switching power
  double internal = 0.0;   // uW, internal-node switching
  double converter = 0.0;  // uW, level-converter switching + internal
  double leakage = 0.0;    // uW
  /// Total power attributed to each node (its own output net + internal +
  /// its LC, if any).  Indexed by NodeId.
  std::vector<double> node_power;

  double total() const {
    return switching + internal + converter + leakage;
  }
};

PowerBreakdown compute_power(const PowerContext& ctx);

/// Uniform single-supply convenience (all nodes at vdd_high, no LCs).
PowerBreakdown compute_power(const Network& net, const Library& lib,
                             const Activity& activity,
                             double freq_mhz = 20.0);

}  // namespace dvs
