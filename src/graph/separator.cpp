#include "graph/separator.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace dvs {

SeparatorResult min_weight_separator(const SeparatorProblem& problem,
                                     FlowAlgo algo) {
  const int n = problem.num_nodes;
  DVS_EXPECTS(static_cast<int>(problem.weight.size()) == n);
  DVS_EXPECTS(!problem.sources.empty() && !problem.sinks.empty());
  for (double w : problem.weight) DVS_EXPECTS(w > 0.0);

  FlowNetwork net;
  const int s = net.add_vertex();
  const int t = net.add_vertex();
  const int base = net.add_vertices(2 * n);
  auto v_in = [&](int v) { return base + 2 * v; };
  auto v_out = [&](int v) { return base + 2 * v + 1; };

  for (int v = 0; v < n; ++v)
    net.add_arc(v_in(v), v_out(v), problem.weight[v]);
  for (const auto& [u, v] : problem.edges) {
    DVS_EXPECTS(u >= 0 && u < n && v >= 0 && v < n && u != v);
    net.add_arc(v_out(u), v_in(v), kFlowInf);
  }
  for (int src : problem.sources) net.add_arc(s, v_in(src), kFlowInf);
  for (int snk : problem.sinks) net.add_arc(v_out(snk), t, kFlowInf);

  const double cut_value = max_flow(net, s, t, algo);

  const std::vector<char> s_side = net.residual_reachable(s);
  SeparatorResult result;
  for (int v = 0; v < n; ++v) {
    if (s_side[v_in(v)] && !s_side[v_out(v)]) {
      result.selected.push_back(v);
      result.total_weight += problem.weight[v];
    }
  }
  DVS_ENSURES(std::abs(result.total_weight - cut_value) <=
              1e-6 * (1.0 + cut_value));
  DVS_ENSURES(is_separator(problem, result.selected));
  return result;
}

bool is_separator(const SeparatorProblem& problem,
                  const std::vector<int>& cut) {
  std::vector<char> removed(problem.num_nodes, 0);
  for (int v : cut) removed[v] = 1;
  std::vector<std::vector<int>> adj(problem.num_nodes);
  for (const auto& [u, v] : problem.edges) adj[u].push_back(v);

  std::vector<char> seen(problem.num_nodes, 0);
  std::vector<int> stack;
  for (int src : problem.sources) {
    if (!removed[src] && !seen[src]) {
      seen[src] = 1;
      stack.push_back(src);
    }
  }
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int w : adj[v]) {
      if (!removed[w] && !seen[w]) {
        seen[w] = 1;
        stack.push_back(w);
      }
    }
  }
  for (int snk : problem.sinks)
    if (!removed[snk] && seen[snk]) return false;
  return true;
}

}  // namespace dvs
