// Bitset transitive closure over a Network, used by the Dscale tests to
// verify the antichain property and available to clients that need
// explicit "same path" queries.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"

namespace dvs {

class Reachability {
 public:
  explicit Reachability(const Network& net);

  /// True iff there is a directed path from `from` to `to` (reflexive:
  /// reaches(v, v) is true).
  bool reaches(NodeId from, NodeId to) const;

  /// True iff the two nodes lie on a common directed path.
  bool comparable(NodeId a, NodeId b) const {
    return reaches(a, b) || reaches(b, a);
  }

 private:
  int words_ = 0;
  std::vector<std::uint64_t> bits_;  // bits_[v * words_ ...] = cone of v
};

}  // namespace dvs
