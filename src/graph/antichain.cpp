#include "graph/antichain.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "support/contracts.hpp"

namespace dvs {

AntichainResult max_weight_antichain(const AntichainProblem& problem,
                                     FlowAlgo algo) {
  const int n = problem.num_nodes;
  DVS_EXPECTS(static_cast<int>(problem.weight.size()) == n);
  for (double w : problem.weight) DVS_EXPECTS(w >= 0.0);

  // The feasible min-flow starting point routes w(v) units along the
  // dedicated chain s -> v_in -> v_out -> t for every weighted node.  The
  // network below *is* that flow's residual, phrased as a fresh max-flow
  // problem from t to s; every unit pushed merges two chains into one and
  // thus cancels one unit of total flow.
  //
  // Vertex layout: 0 = s, 1 = t, then (v_in, v_out) pairs.
  FlowNetwork net;
  const int s = net.add_vertex();
  const int t = net.add_vertex();
  const int base = net.add_vertices(2 * n);
  auto v_in = [&](int v) { return base + 2 * v; };
  auto v_out = [&](int v) { return base + 2 * v + 1; };

  double total_weight = 0.0;
  for (int v = 0; v < n; ++v) {
    net.add_arc(v_in(v), v_out(v), kFlowInf);  // raise coverage freely
    if (problem.weight[v] > 0.0) {
      net.add_arc(t, v_out(v), problem.weight[v]);  // un-route ... -> t
      net.add_arc(v_in(v), s, problem.weight[v]);   // un-route s -> ...
      total_weight += problem.weight[v];
    }
  }
  for (const auto& [u, v] : problem.edges) {
    DVS_EXPECTS(u >= 0 && u < n && v >= 0 && v < n && u != v);
    net.add_arc(v_out(u), v_in(v), kFlowInf);  // extend a chain along a DAG edge
  }

  const double cancelled = max_flow(net, t, s, algo);

  // Min-cut side containing t; the antichain is the set of weighted nodes
  // whose out-half is on the t side while the in-half is not.
  const std::vector<char> t_side = net.residual_reachable(t);
  AntichainResult result;
  for (int v = 0; v < n; ++v) {
    if (problem.weight[v] <= 0.0) continue;
    if (t_side[v_out(v)] && !t_side[v_in(v)]) {
      result.selected.push_back(v);
      result.total_weight += problem.weight[v];
    }
  }
  // Weighted Dilworth: max antichain = min flow = initial flow - cancelled.
  DVS_ENSURES(std::abs(result.total_weight - (total_weight - cancelled)) <=
              1e-6 * (1.0 + total_weight));
  return result;
}

namespace {

/// Reachability closure as adjacency-of-bools, for the brute-force oracle.
std::vector<std::vector<char>> closure(const AntichainProblem& p) {
  std::vector<std::vector<char>> reach(
      p.num_nodes, std::vector<char>(p.num_nodes, 0));
  std::vector<std::vector<int>> adj(p.num_nodes);
  for (const auto& [u, v] : p.edges) adj[u].push_back(v);
  for (int start = 0; start < p.num_nodes; ++start) {
    std::vector<int> stack{start};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int w : adj[v]) {
        if (!reach[start][w]) {
          reach[start][w] = 1;
          stack.push_back(w);
        }
      }
    }
  }
  return reach;
}

}  // namespace

AntichainResult max_weight_antichain_bruteforce(
    const AntichainProblem& problem) {
  const int n = problem.num_nodes;
  DVS_EXPECTS(n <= 20);
  const auto reach = closure(problem);
  AntichainResult best;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    double weight = 0.0;
    bool ok = true;
    for (int v = 0; v < n && ok; ++v) {
      if (!(mask & (1u << v))) continue;
      if (problem.weight[v] <= 0.0) {
        ok = false;
        break;
      }
      weight += problem.weight[v];
      for (int u = 0; u < v && ok; ++u) {
        if (!(mask & (1u << u))) continue;
        if (reach[u][v] || reach[v][u]) ok = false;
      }
    }
    if (ok && weight > best.total_weight) {
      best.total_weight = weight;
      best.selected.clear();
      for (int v = 0; v < n; ++v)
        if (mask & (1u << v)) best.selected.push_back(v);
    }
  }
  return best;
}

}  // namespace dvs
