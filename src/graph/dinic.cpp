// Dinic's algorithm: BFS level graph + DFS blocking flow.  The library's
// default max-flow engine (the paper's complexity discussion assumes
// Goldberg-Tarjan-class performance; Dinic is near-linear on the shallow,
// unit-ish networks our reductions produce).
#include <queue>

#include "graph/flow_network.hpp"
#include "support/contracts.hpp"

namespace dvs {

namespace {

class Dinic {
 public:
  Dinic(FlowNetwork& net, int source, int sink)
      : net_(net), source_(source), sink_(sink) {}

  double run() {
    double total = 0.0;
    while (build_levels()) {
      iter_.assign(net_.num_vertices(), 0);
      for (;;) {
        const double pushed = push(source_, kFlowInf);
        if (pushed <= kFlowEps) break;
        total += pushed;
      }
    }
    return total;
  }

 private:
  bool build_levels() {
    level_.assign(net_.num_vertices(), -1);
    std::queue<int> queue;
    level_[source_] = 0;
    queue.push(source_);
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop();
      for (const FlowNetwork::Arc& arc : net_.arcs_of(v)) {
        if (arc.cap > kFlowEps && level_[arc.to] < 0) {
          level_[arc.to] = level_[v] + 1;
          queue.push(arc.to);
        }
      }
    }
    return level_[sink_] >= 0;
  }

  double push(int v, double limit) {
    if (v == sink_) return limit;
    for (int& i = iter_[v]; i < static_cast<int>(net_.arcs_of(v).size());
         ++i) {
      FlowNetwork::Arc& arc = net_.arcs_of(v)[i];
      if (arc.cap <= kFlowEps || level_[arc.to] != level_[v] + 1) continue;
      const double pushed = push(arc.to, std::min(limit, arc.cap));
      if (pushed > kFlowEps) {
        arc.cap -= pushed;
        net_.arcs_of(arc.to)[arc.rev].cap += pushed;
        return pushed;
      }
    }
    return 0.0;
  }

  FlowNetwork& net_;
  int source_;
  int sink_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace

double dinic_max_flow(FlowNetwork& net, int source, int sink) {
  DVS_EXPECTS(source != sink);
  return Dinic(net, source, sink).run();
}

}  // namespace dvs
