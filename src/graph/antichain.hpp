// Maximum-weight antichain on a DAG — exactly the "maximum-weighted
// independent set on the transitive graph" the paper's Dscale uses [3]:
// no two selected nodes may lie on a common directed path.
//
// Solved exactly with the Ford-Fulkerson weighted-Dilworth construction:
// the minimum flow covering each weighted node w(v) times by chains equals
// the maximum antichain weight; we start from the trivial feasible flow
// (one dedicated chain bundle per node) and cancel it with a max-flow run
// on the residual network, then read the antichain off the final min cut.
// Working on the original DAG (pass-through vertices for zero-weight
// nodes) keeps the network at O(n + e) instead of the O(n^2) transitive
// closure.
#pragma once

#include <utility>
#include <vector>

#include "graph/flow_network.hpp"

namespace dvs {

struct AntichainProblem {
  int num_nodes = 0;
  /// DAG edges (from, to); reachability through them defines "same path".
  std::vector<std::pair<int, int>> edges;
  /// Non-negative weights; zero-weight nodes are never selected but still
  /// transmit the path relation.
  std::vector<double> weight;
};

struct AntichainResult {
  std::vector<int> selected;  // ascending node indices
  double total_weight = 0.0;
};

AntichainResult max_weight_antichain(const AntichainProblem& problem,
                                     FlowAlgo algo = FlowAlgo::kDinic);

/// Exponential-time exact reference used by the property tests.
AntichainResult max_weight_antichain_bruteforce(
    const AntichainProblem& problem);

}  // namespace dvs
