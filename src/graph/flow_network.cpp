#include "graph/flow_network.hpp"

#include "support/contracts.hpp"

namespace dvs {

int FlowNetwork::add_vertex() {
  adj_.emplace_back();
  return num_vertices() - 1;
}

int FlowNetwork::add_vertices(int count) {
  DVS_EXPECTS(count >= 0);
  const int first = num_vertices();
  adj_.resize(adj_.size() + static_cast<std::size_t>(count));
  return first;
}

int FlowNetwork::add_arc(int from, int to, double cap) {
  DVS_EXPECTS(from >= 0 && from < num_vertices());
  DVS_EXPECTS(to >= 0 && to < num_vertices());
  DVS_EXPECTS(cap >= 0.0);
  const int fwd = static_cast<int>(adj_[from].size());
  const int bwd = static_cast<int>(adj_[to].size()) + (from == to ? 1 : 0);
  adj_[from].push_back(Arc{to, cap, bwd});
  adj_[to].push_back(Arc{from, 0.0, fwd});
  return fwd;
}

double FlowNetwork::flow_on(int from, int index) const {
  const Arc& arc = adj_[from][index];
  return adj_[arc.to][arc.rev].cap;
}

std::vector<char> FlowNetwork::residual_reachable(int source) const {
  std::vector<char> seen(num_vertices(), 0);
  std::vector<int> stack{source};
  seen[source] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const Arc& arc : adj_[v]) {
      if (arc.cap > kFlowEps && !seen[arc.to]) {
        seen[arc.to] = 1;
        stack.push_back(arc.to);
      }
    }
  }
  return seen;
}

}  // namespace dvs
