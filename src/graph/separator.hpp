// Minimum-weight vertex separator on a DAG (paper §3,
// min_weight_separator): the cheapest set of nodes whose removal
// disconnects every source-to-sink path.  Gscale resizes such a separator
// of the critical-path network so that every critical path is sped up
// while no path donates two resized gates.
//
// Classic node-splitting reduction to edge min-cut: v becomes
// (v_in -> v_out) with capacity w(v); DAG edges get infinite capacity.
// Source and sink nodes are themselves eligible separator members (their
// split arcs carry finite weight like everyone else's).
#pragma once

#include <utility>
#include <vector>

#include "graph/flow_network.hpp"

namespace dvs {

struct SeparatorProblem {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;  // DAG edges (from, to)
  std::vector<double> weight;              // > 0 for every node
  std::vector<int> sources;
  std::vector<int> sinks;
};

struct SeparatorResult {
  std::vector<int> selected;  // ascending node indices
  double total_weight = 0.0;
};

SeparatorResult min_weight_separator(const SeparatorProblem& problem,
                                     FlowAlgo algo = FlowAlgo::kDinic);

/// True iff removing `cut` disconnects all source->sink paths; used by
/// tests and kept cheap enough for release-mode assertions.
bool is_separator(const SeparatorProblem& problem,
                  const std::vector<int>& cut);

}  // namespace dvs
