// Edmonds-Karp: shortest augmenting paths by BFS.  This is the algorithm
// the paper cites ([2], CLR chapter 27) for min_weight_separator; we keep
// it as an alternative backend and cross-check it against Dinic in the
// tests and benchmarks.
#include <queue>

#include "graph/flow_network.hpp"
#include "support/contracts.hpp"

namespace dvs {

double edmonds_karp_max_flow(FlowNetwork& net, int source, int sink) {
  DVS_EXPECTS(source != sink);
  const int n = net.num_vertices();
  double total = 0.0;
  // prev_arc[v] = (vertex, arc index) used to reach v in the BFS tree.
  std::vector<std::pair<int, int>> prev(n);
  std::vector<char> seen(n);

  for (;;) {
    std::fill(seen.begin(), seen.end(), 0);
    std::queue<int> queue;
    queue.push(source);
    seen[source] = 1;
    bool found = false;
    while (!queue.empty() && !found) {
      const int v = queue.front();
      queue.pop();
      const auto& arcs = net.arcs_of(v);
      for (int i = 0; i < static_cast<int>(arcs.size()); ++i) {
        const FlowNetwork::Arc& arc = arcs[i];
        if (arc.cap <= kFlowEps || seen[arc.to]) continue;
        seen[arc.to] = 1;
        prev[arc.to] = {v, i};
        if (arc.to == sink) {
          found = true;
          break;
        }
        queue.push(arc.to);
      }
    }
    if (!found) break;

    double bottleneck = kFlowInf;
    for (int v = sink; v != source;) {
      const auto [u, i] = prev[v];
      bottleneck = std::min(bottleneck, net.arcs_of(u)[i].cap);
      v = u;
    }
    for (int v = sink; v != source;) {
      const auto [u, i] = prev[v];
      FlowNetwork::Arc& arc = net.arcs_of(u)[i];
      arc.cap -= bottleneck;
      net.arcs_of(arc.to)[arc.rev].cap += bottleneck;
      v = u;
    }
    total += bottleneck;
  }
  return total;
}

}  // namespace dvs
