#include "graph/reachability.hpp"

#include "netlist/topo.hpp"
#include "support/contracts.hpp"

namespace dvs {

Reachability::Reachability(const Network& net) {
  const int n = net.size();
  words_ = (n + 63) / 64;
  bits_.assign(static_cast<std::size_t>(n) * words_, 0);
  // Reverse topological sweep: a node reaches itself plus everything its
  // fanouts reach.
  const std::vector<NodeId> order = topo_order(net);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    std::uint64_t* row = &bits_[static_cast<std::size_t>(v) * words_];
    row[v / 64] |= 1ULL << (v % 64);
    for (NodeId fo : net.node(v).fanouts) {
      const std::uint64_t* src = &bits_[static_cast<std::size_t>(fo) * words_];
      for (int w = 0; w < words_; ++w) row[w] |= src[w];
    }
  }
}

bool Reachability::reaches(NodeId from, NodeId to) const {
  DVS_EXPECTS(from >= 0 && to >= 0);
  DVS_EXPECTS(static_cast<std::size_t>(from) * words_ < bits_.size());
  return (bits_[static_cast<std::size_t>(from) * words_ + to / 64] >>
          (to % 64)) &
         1ULL;
}

}  // namespace dvs
