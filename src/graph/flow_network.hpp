// Residual flow network shared by the Dinic and Edmonds-Karp solvers.
// Capacities are doubles (the algorithms' termination bounds are
// structural, not capacity-dependent), compared against kFlowEps.
#pragma once

#include <vector>

namespace dvs {

inline constexpr double kFlowEps = 1e-9;
inline constexpr double kFlowInf = 1e18;

class FlowNetwork {
 public:
  struct Arc {
    int to = 0;
    double cap = 0.0;  // remaining residual capacity
    int rev = 0;       // index of the reverse arc in arcs_of(to)
  };

  int add_vertex();
  int add_vertices(int count);
  int num_vertices() const { return static_cast<int>(adj_.size()); }

  /// Adds a directed arc and its zero-capacity residual twin.
  /// Returns the arc's index within arcs_of(from).
  int add_arc(int from, int to, double cap);

  const std::vector<Arc>& arcs_of(int v) const { return adj_[v]; }
  std::vector<Arc>& arcs_of(int v) { return adj_[v]; }

  /// Flow currently pushed through the arc `index` of vertex `from`
  /// (reverse twin's accumulated capacity).
  double flow_on(int from, int index) const;

  /// Vertices reachable from `source` through arcs with residual capacity;
  /// after a max-flow run this is the source side of a minimum cut.
  std::vector<char> residual_reachable(int source) const;

 private:
  std::vector<std::vector<Arc>> adj_;
};

/// Interface both solvers implement; returns the max-flow value and leaves
/// the network holding the residual state.
double dinic_max_flow(FlowNetwork& net, int source, int sink);
double edmonds_karp_max_flow(FlowNetwork& net, int source, int sink);

enum class FlowAlgo { kDinic, kEdmondsKarp };

inline double max_flow(FlowNetwork& net, int source, int sink,
                       FlowAlgo algo) {
  return algo == FlowAlgo::kDinic ? dinic_max_flow(net, source, sink)
                                  : edmonds_karp_max_flow(net, source, sink);
}

}  // namespace dvs
