#include "library/supply.hpp"

#include <bit>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace dvs {

namespace {

void validate_ladder(const std::vector<double>& voltages) {
  if (voltages.size() < static_cast<std::size_t>(SupplyLadder::kMinRungs) ||
      voltages.size() > static_cast<std::size_t>(SupplyLadder::kMaxRungs))
    throw SupplyError("supplies must list between 2 and 8 voltages");
  for (double v : voltages)
    if (!std::isfinite(v) || v < SupplyLadder::kMinVoltage ||
        v > SupplyLadder::kMaxVoltage)
      throw SupplyError("supplies out of range");
  for (std::size_t i = 1; i < voltages.size(); ++i)
    if (!(voltages[i] < voltages[i - 1]))
      throw SupplyError("supplies must be strictly descending");
}

}  // namespace

SupplyLadder::SupplyLadder(std::vector<double> voltages)
    : voltages_(std::move(voltages)) {
  validate_ladder(voltages_);
}

double SupplyLadder::voltage(SupplyId rung) const {
  DVS_EXPECTS(rung < voltages_.size());
  return voltages_[rung];
}

int SupplyLadder::rung_of(double vdd) const {
  for (std::size_t r = 0; r < voltages_.size(); ++r)
    if (voltages_[r] == vdd) return static_cast<int>(r);
  return -1;
}

std::vector<double> SupplyLadder::delay_factors(const VoltageModel& vm) const {
  std::vector<double> factors;
  factors.reserve(voltages_.size());
  for (double v : voltages_) factors.push_back(vm.delay_factor(v));
  return factors;
}

std::vector<double> SupplyLadder::energy_factors(const VoltageModel& vm) const {
  std::vector<double> factors;
  factors.reserve(voltages_.size());
  for (double v : voltages_) factors.push_back(vm.energy_factor(v));
  return factors;
}

std::string SupplyLadder::spec() const {
  std::string out;
  for (double v : voltages_) {
    if (!out.empty()) out += ',';
    out += shortest_double_spelling(v);
  }
  return out;
}

Json SupplyLadder::to_json() const {
  Json::Array rungs;
  for (double v : voltages_) rungs.emplace_back(v);
  return Json(std::move(rungs));
}

std::uint64_t SupplyLadder::fingerprint() const {
  std::uint64_t h = 0x5add0e0000cafe01ULL;
  h = mix_seed(h, voltages_.size());
  for (double v : voltages_)
    h = mix_seed(h, std::bit_cast<std::uint64_t>(v));
  return h;
}

SupplyLadder parse_supply_ladder(const std::string& text) {
  std::vector<double> voltages;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    const char* begin = entry.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    // Reject empty entries and trailing junk ("5V", "5 4.3", "").
    while (end != nullptr && *end != '\0' &&
           std::isspace(static_cast<unsigned char>(*end)))
      ++end;
    if (end == begin || end == nullptr || *end != '\0')
      throw SupplyError("supplies out of range");
    voltages.push_back(v);
    if (comma == text.size()) break;
    pos = comma + 1;
  }
  return SupplyLadder(std::move(voltages));
}

SupplyLadder supply_ladder_from_json(const Json& value) {
  if (value.is_string()) return parse_supply_ladder(value.as_string());
  std::vector<double> voltages;
  for (const Json& entry : value.as_array())
    voltages.push_back(entry.as_double());
  return SupplyLadder(std::move(voltages));
}

std::string supply_rung_name(SupplyId rung, int depth) {
  if (rung == kTopRung) return "high";
  if (static_cast<int>(rung) == depth - 1) return "low";
  return "v" + std::to_string(static_cast<int>(rung));
}

Json supply_counts_json(const std::vector<int>& counts) {
  Json::Array out;
  for (int c : counts) out.emplace_back(static_cast<std::int64_t>(c));
  return Json(std::move(out));
}

}  // namespace dvs
