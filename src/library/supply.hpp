// The supply ladder: an ordered list of supply voltages ("rungs") the
// design may assign per gate, generalizing the paper's fixed dual-Vdd
// (5.0V, 4.3V) operating point to N levels.
//
// Rung 0 is the highest (nominal) voltage and indices grow as voltage
// drops, so "deeper" always means "lower voltage, cheaper energy, slower
// gate".  The level-converter policy is positional: a converter is
// required on a driver's output exactly when a strictly deeper (lower
// voltage) driver feeds a strictly shallower (higher voltage) sink —
// stepping down needs nothing, stepping up needs restoration.  Converters
// themselves run at the top rung, matching the power/timing models.
//
// The ladder is part of the Library's operating point: its canonical
// fingerprint is folded into Library::fingerprint, which is how the dvsd
// result cache distinguishes jobs run at different ladders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "library/voltage_model.hpp"
#include "support/json.hpp"

namespace dvs {

/// Rung index into a SupplyLadder.  0 = highest voltage.
using SupplyId = std::uint8_t;

inline constexpr SupplyId kTopRung = 0;

/// Validation failures carry the exact message the dvsd protocol schema
/// reports, so every surface (daemon options, suite_bench / dvs-client
/// --supplies flags) rejects a bad ladder with identical text.
class SupplyError : public std::runtime_error {
 public:
  explicit SupplyError(const std::string& message)
      : std::runtime_error(message) {}
};

class SupplyLadder {
 public:
  static constexpr int kMinRungs = 2;
  static constexpr int kMaxRungs = 8;
  static constexpr double kMinVoltage = 1.0;   // V
  static constexpr double kMaxVoltage = 10.0;  // V

  /// The paper's dual-supply operating point.
  SupplyLadder() : voltages_{5.0, 4.3} {}

  /// Strictly descending voltages, kMinRungs..kMaxRungs entries, each in
  /// [kMinVoltage, kMaxVoltage].  Throws SupplyError (schema text).
  explicit SupplyLadder(std::vector<double> voltages);

  int depth() const { return static_cast<int>(voltages_.size()); }
  SupplyId deepest() const { return static_cast<SupplyId>(depth() - 1); }

  double voltage(SupplyId rung) const;
  double top() const { return voltages_.front(); }
  double bottom() const { return voltages_.back(); }
  const std::vector<double>& voltages() const { return voltages_; }

  /// Rung whose voltage equals `vdd` exactly (the per-node supply vectors
  /// are assigned from voltage(), so exact comparison is sound), or -1.
  int rung_of(double vdd) const;

  /// Converter policy: a driver at `driver` feeding a sink at `sink`
  /// needs level restoration iff the sink sits on a strictly shallower
  /// (higher voltage) rung.
  static bool converter_needed(SupplyId driver, SupplyId sink) {
    return sink < driver;
  }

  /// Per-rung delay factors under `vm` (vm.delay_factor at each rung's
  /// voltage), indexable by SupplyId.  Hot loops hoist this once per
  /// sweep instead of re-evaluating the alpha-power model per gate.
  std::vector<double> delay_factors(const VoltageModel& vm) const;

  /// Per-rung dynamic-energy factors: (voltage / vm.vdd_nominal)^2.
  std::vector<double> energy_factors(const VoltageModel& vm) const;

  /// Canonical comma-separated spelling ("5,4.3,3.6": shortest double
  /// spelling that round-trips, no spaces) — parse(spec()) is a fixpoint.
  std::string spec() const;

  /// Canonical JSON array of rung voltages.
  Json to_json() const;

  /// 64-bit hash over the canonical voltages; equal ladders (however
  /// they were spelled on the way in) hash equal.
  std::uint64_t fingerprint() const;

  bool operator==(const SupplyLadder&) const = default;

 private:
  std::vector<double> voltages_;
};

/// Parses "5.0,4.3,3.6" (also accepts whitespace around entries).
/// Throws SupplyError with the schema-verbatim texts:
///   "supplies must list between 2 and 8 voltages"
///   "supplies must be strictly descending"
///   "supplies out of range"
SupplyLadder parse_supply_ladder(const std::string& text);

/// Protocol form: a JSON string in the comma-separated grammar or an
/// array of numbers.  Same validation and error texts as the parser.
SupplyLadder supply_ladder_from_json(const Json& value);

// ---- shared wire spellings --------------------------------------------------
// Every JSON emitter spells the per-design supply columns through these
// helpers instead of scattering "low" literals per call site.

/// Key of the "gates below the top rung" count in result/bench rows.
inline constexpr const char* kLowGatesKey = "low";

/// Human name of a rung: "high" for the top rung, "low" for the deepest,
/// "v<index>" for intermediate rungs of deeper ladders.
std::string supply_rung_name(SupplyId rung, int depth);

/// Canonical JSON array of per-rung gate counts (index = SupplyId).
Json supply_counts_json(const std::vector<int>& counts);

}  // namespace dvs
