// Builds the 72-cell analytic stand-in for the COMPASS 0.6um single-poly
// double-metal library used in the paper (see DESIGN.md "Substitutions").
//
// Cell families and drive-variant policy follow the paper: cells with
// inverted outputs carry three sizes (d0/d1/d2), cells with non-inverted
// outputs carry two (d0/d1).  Electrical numbers are representative of a
// 0.6um process: minimum inverter ~0.1ns intrinsic, ~6 ohm-k equivalent
// drive (0.006 ns/fF), ~6 fF of input capacitance.  The exact values do
// not matter to the algorithms; their monotone structure (stacks are
// slower, bigger drives are faster but heavier) does.
#include <cmath>

#include "library/library.hpp"
#include "support/contracts.hpp"

namespace dvs {

namespace {

struct BaseSpec {
  std::string name;
  TruthTable function;
  double intrinsic;    // ns, d0 nominal
  double resistance;   // ns/fF, d0
  double pin_cap;      // fF, d0
  double area;         // um^2, d0
  double internal_cap; // fF, d0
  int num_sizes;
};

/// Per-size scaling of the d0 numbers.
struct SizeScale {
  double res;   // divide resistance
  double cap;   // multiply pin + internal caps
  double area;  // multiply area
};

// Drive steps trade output resistance for modest input-capacitance and
// area growth (output-stage sizing; the input gate poly grows much less
// than the drive).  Keeping the cap growth small is what makes Gscale's
// size-for-slack trade profitable, mirroring the paper's tiny (~1%)
// area overhead for its sizing.
constexpr SizeScale kSizes[3] = {
    {1.0, 1.0, 1.0}, {1.7, 1.12, 1.25}, {2.6, 1.25, 1.55}};

ArcSense sense_of(const TruthTable& tt, int var) {
  const bool pos = is_positive_unate(tt, var);
  const bool neg = is_negative_unate(tt, var);
  if (pos && !neg) return ArcSense::kPositiveUnate;
  if (neg && !pos) return ArcSense::kNegativeUnate;
  return ArcSense::kNonUnate;
}

void add_family(Library& lib, const BaseSpec& spec) {
  for (int size = 0; size < spec.num_sizes; ++size) {
    const SizeScale& s = kSizes[size];
    Cell c;
    c.name = spec.name + "_d" + std::to_string(size);
    c.base_name = spec.name;
    c.drive_index = size;
    c.function = spec.function;
    c.area = spec.area * s.area;
    c.internal_cap = spec.internal_cap * s.cap;
    c.leakage = 0.004 * spec.area * s.area / 20.0;  // ~leakage per area
    const int k = spec.function.num_vars;
    for (int pin = 0; pin < k; ++pin) {
      // Later pins sit closer to the output transistor: slightly less
      // intrinsic delay, matching typical datasheet pin ordering.
      const double pin_skew = 1.0 + 0.04 * (k - 1 - pin);
      c.input_cap.push_back(spec.pin_cap * s.cap);
      TimingArc arc;
      arc.sense = sense_of(spec.function, pin);
      arc.intrinsic_rise = spec.intrinsic * pin_skew * 1.10;
      arc.intrinsic_fall = spec.intrinsic * pin_skew * 0.90;
      arc.resistance_rise = spec.resistance / s.res * 1.15;
      arc.resistance_fall = spec.resistance / s.res * 0.85;
      c.arcs.push_back(arc);
    }
    lib.add_cell(std::move(c));
  }
}

/// NAND-style stack penalty: k series transistors on one network.
double stack(double base, int k, double per_stage) {
  return base * (1.0 + per_stage * (k - 1));
}

}  // namespace

Library build_compass_library() {
  Library lib("compass06-like");
  lib.voltage_model() = VoltageModel{5.0, 0.8, 1.3};
  lib.set_supplies(5.0, 4.3);

  const double kInvIntr = 0.10;   // ns
  const double kInvRes = 0.0060;  // ns/fF
  const double kCap = 6.0;        // fF

  std::vector<BaseSpec> bases;

  // ---- inverting families: three sizes --------------------------------
  bases.push_back({"inv", tt_inv(), kInvIntr, kInvRes, kCap, 20, 2.0, 3});
  for (int k = 2; k <= 5; ++k) {
    bases.push_back({"nand" + std::to_string(k), tt_nand(k),
                     stack(kInvIntr, k, 0.22), stack(kInvRes, k, 0.28),
                     kCap * 1.05, 18.0 + 9.0 * k, 2.0 + 0.8 * k, 3});
    bases.push_back({"nor" + std::to_string(k), tt_nor(k),
                     stack(kInvIntr, k, 0.30), stack(kInvRes, k, 0.40),
                     kCap * 1.10, 20.0 + 10.0 * k, 2.2 + 0.9 * k, 3});
  }
  bases.push_back({"aoi21", tt_aoi21(), 0.16, 0.0090, 6.6, 46, 3.6, 3});
  bases.push_back({"oai21", tt_oai21(), 0.16, 0.0092, 6.6, 46, 3.6, 3});
  bases.push_back({"aoi22", tt_aoi22(), 0.19, 0.0102, 6.8, 58, 4.4, 3});
  bases.push_back({"oai22", tt_oai22(), 0.19, 0.0104, 6.8, 58, 4.4, 3});
  bases.push_back({"aoi211", tt_aoi211(), 0.21, 0.0112, 6.9, 64, 4.8, 3});
  bases.push_back({"oai211", tt_oai211(), 0.21, 0.0114, 6.9, 64, 4.8, 3});
  bases.push_back({"xnor2", tt_xnor(2), 0.20, 0.0100, 9.0, 62, 5.0, 3});
  bases.push_back({"xnor3", tt_xnor(3), 0.30, 0.0135, 9.5, 96, 7.5, 3});

  // ---- non-inverting families: two sizes -------------------------------
  bases.push_back({"buf", tt_buf(), 0.20, 0.0052, 5.4, 32, 3.2, 2});
  for (int k = 2; k <= 4; ++k) {
    bases.push_back({"and" + std::to_string(k), tt_and(k),
                     stack(kInvIntr, k, 0.20) + 0.11,
                     kInvRes * 1.05, 5.6, 30.0 + 9.0 * k,
                     3.4 + 0.8 * k, 2});
    bases.push_back({"or" + std::to_string(k), tt_or(k),
                     stack(kInvIntr, k, 0.27) + 0.11,
                     kInvRes * 1.05, 5.8, 32.0 + 10.0 * k,
                     3.6 + 0.9 * k, 2});
  }
  bases.push_back({"xor2", tt_xor(2), 0.22, 0.0096, 8.6, 64, 5.2, 2});
  bases.push_back({"mux2", tt_mux2(), 0.24, 0.0094, 7.4, 70, 5.4, 2});
  bases.push_back({"maj3", tt_maj3(), 0.26, 0.0100, 7.8, 78, 5.8, 2});

  // ---- single-size filler to land on exactly 72 combinational cells ----
  bases.push_back({"xor3", tt_xor(3), 0.33, 0.0128, 9.2, 100, 7.8, 1});

  for (const BaseSpec& spec : bases) add_family(lib, spec);
  DVS_ENSURES(lib.num_cells() == 72);

  // ---- level converter (not one of the 72 combinational cells) ---------
  // Compact pass-transistor restoring driver in the style of Wang et al.
  // [10]: light input, small internal node, moderate delay.  The paper's
  // own data implies cheap converters (Dscale's extra gates nearly all
  // turn into savings on cluster-shaped regions).
  {
    Cell lc;
    lc.name = "lvlconv";
    lc.base_name = "lvlconv";
    lc.drive_index = 0;
    lc.function = tt_buf();
    lc.area = 34.0;
    lc.internal_cap = 1.0;
    lc.leakage = 0.01;
    lc.is_level_converter = true;
    lc.input_cap.push_back(2.2);
    TimingArc arc;
    arc.sense = ArcSense::kPositiveUnate;
    arc.intrinsic_rise = 0.20;
    arc.intrinsic_fall = 0.17;
    arc.resistance_rise = 0.0066;
    arc.resistance_fall = 0.0058;
    lc.arcs.push_back(arc);
    lib.set_level_converter(lib.add_cell(std::move(lc)));
  }
  return lib;
}

}  // namespace dvs
