// Cell library container: cell storage, name lookup, drive-variant groups
// (for gate sizing), function matching (for the technology mapper), the
// voltage model, the supply ladder (the multi-Vdd operating point), and a
// wire-load model.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "library/cell.hpp"
#include "library/supply.hpp"
#include "library/voltage_model.hpp"

namespace dvs {

/// Fanout-count based wire capacitance estimate (fF).
struct WireLoadModel {
  double base = 1.0;
  double per_fanout = 1.0;

  double wire_cap(int fanout_count) const {
    return fanout_count > 0 ? base + per_fanout * fanout_count : 0.0;
  }
};

class Library {
 public:
  explicit Library(std::string name = "lib") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers a cell; cells of the same base_name become drive variants
  /// of one group, kept sorted by drive_index.  Returns the cell id.
  int add_cell(Cell cell);

  int num_cells() const { return static_cast<int>(cells_.size()); }
  const Cell& cell(int id) const;

  /// Cell id by exact name, or -1.
  int find(std::string_view name) const;

  /// All drive variants of `cell_id`'s group, ascending drive.
  std::span<const int> variants_of(int cell_id) const;

  /// Next-larger / next-smaller variant, or -1 at the extremes.
  int upsize(int cell_id) const;
  int downsize(int cell_id) const;

  /// Smallest-drive cell ids whose function equals `tt` exactly.
  std::vector<int> cells_matching(const TruthTable& tt) const;

  /// Smallest-drive cell with the given base name, or -1.
  int smallest_of(std::string_view base_name) const;

  // ---- operating point -----------------------------------------------
  /// Dual-supply convenience: installs the two-rung ladder {high, low}.
  void set_supplies(double vdd_high, double vdd_low);
  /// Installs an arbitrary ladder.  Throws SupplyError when the deepest
  /// rung does not clear the voltage model's threshold.
  void set_supply_ladder(SupplyLadder ladder);
  const SupplyLadder& supplies() const { return ladder_; }
  /// Top / deepest rung voltages (the dual-Vdd surface most call sites
  /// still speak; identical to supplies().top() / .bottom()).
  double vdd_high() const { return ladder_.top(); }
  double vdd_low() const { return ladder_.bottom(); }

  const VoltageModel& voltage_model() const { return vmodel_; }
  VoltageModel& voltage_model() { return vmodel_; }

  const WireLoadModel& wire_load() const { return wire_; }
  WireLoadModel& wire_load() { return wire_; }

  /// Designated level-converter cell (see compass.cpp), or -1.
  int level_converter() const { return lc_cell_; }
  void set_level_converter(int cell_id);

  /// 64-bit content hash over everything that can change an optimization
  /// result: every cell's function, timing arcs, caps, area and leakage,
  /// the operating point, the voltage model and the wire-load model.  The
  /// dvsd result cache keys on it so results computed against one library
  /// are never replayed against another.
  std::uint64_t fingerprint() const;

 private:
  std::string name_;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, int> by_name_;
  std::unordered_map<std::string, std::vector<int>> groups_;
  VoltageModel vmodel_;
  WireLoadModel wire_;
  SupplyLadder ladder_;  // defaults to the paper's {5.0, 4.3}
  int lc_cell_ = -1;
};

/// Builds the 72-cell COMPASS-0.6um-like library described in DESIGN.md,
/// plus the dedicated level-converter cell (not counted in the 72).
Library build_compass_library();

}  // namespace dvs
