// Supply-voltage dependence of delay and energy.
//
// The paper re-characterizes each COMPASS cell at Vlow with SPICE.  We
// replace that with the alpha-power-law MOSFET model (Sakurai-Newton):
//
//   delay(V)  ∝  V / (V - Vt)^alpha
//   energy(V) ∝  V^2
//
// normalized so both factors are 1.0 at the nominal (characterization)
// supply.  With the paper's (5V, 4.3V) pair, Vt = 0.8V and alpha = 1.3 the
// model yields a 9% delay penalty and a 26% dynamic-energy saving for a
// lowered gate — the same trade the paper's SPICE data embodies.
#pragma once

namespace dvs {

struct VoltageModel {
  double vdd_nominal = 5.0;  // V, the characterization supply
  double vt = 0.8;           // V, threshold voltage
  double alpha = 1.3;        // velocity-saturation exponent

  /// Multiplies nominal delays; >1 when vdd < nominal.
  double delay_factor(double vdd) const;

  /// Multiplies nominal switching energy: (vdd / nominal)^2.
  double energy_factor(double vdd) const;

  /// Multiplies nominal leakage; roughly linear in vdd.
  double leakage_factor(double vdd) const;
};

}  // namespace dvs
