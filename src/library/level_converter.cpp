#include "library/level_converter.hpp"

#include <algorithm>

#include "support/contracts.hpp"
#include "timing/sta.hpp"

namespace dvs {

bool has_level_converter(const Library& lib) {
  return lib.level_converter() >= 0;
}

const Cell& level_converter_cell(const Library& lib) {
  DVS_EXPECTS(has_level_converter(lib));
  return lib.cell(lib.level_converter());
}

double level_converter_delay(const Library& lib, double load_ff) {
  const Cell& lc = level_converter_cell(lib);
  const RiseFall d = arc_delay(lib, lc, 0, lib.vdd_high(), load_ff);
  return d.max();
}

double level_converter_overhead_cap(const Library& lib) {
  const Cell& lc = level_converter_cell(lib);
  return lc.internal_cap + lc.input_cap[0];
}

}  // namespace dvs
