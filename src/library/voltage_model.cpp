#include "library/voltage_model.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace dvs {

double VoltageModel::delay_factor(double vdd) const {
  DVS_EXPECTS(vdd > vt);
  const double nominal = vdd_nominal / std::pow(vdd_nominal - vt, alpha);
  const double scaled = vdd / std::pow(vdd - vt, alpha);
  return scaled / nominal;
}

double VoltageModel::energy_factor(double vdd) const {
  DVS_EXPECTS(vdd > 0.0);
  const double r = vdd / vdd_nominal;
  return r * r;
}

double VoltageModel::leakage_factor(double vdd) const {
  DVS_EXPECTS(vdd > 0.0);
  return vdd / vdd_nominal;
}

}  // namespace dvs
