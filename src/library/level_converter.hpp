// Convenience queries for the library's designated level-converter cell.
#pragma once

#include "library/library.hpp"

namespace dvs {

/// True iff the library provides a level converter.
bool has_level_converter(const Library& lib);

/// The converter cell; precondition: has_level_converter(lib).
const Cell& level_converter_cell(const Library& lib);

/// Worst-case converter delay into `load_ff` at the library's vdd_high.
double level_converter_delay(const Library& lib, double load_ff);

/// Energy-equivalent capacitance the converter adds per driver transition
/// (its internal node plus its input pin), in fF.
double level_converter_overhead_cap(const Library& lib);

}  // namespace dvs
