// Standard-cell model: per-pin capacitance, pin-to-pin timing arcs with a
// linear (intrinsic + resistance * load) delay model, area, and internal
// switching capacitance.  Timing numbers are characterized at the library's
// nominal supply; the VoltageModel scales them to other supplies.
#pragma once

#include <string>
#include <vector>

#include "netlist/network.hpp"

namespace dvs {

enum class ArcSense : std::uint8_t {
  kPositiveUnate,  // input rise -> output rise
  kNegativeUnate,  // input rise -> output fall
  kNonUnate,       // either transition can cause either edge (e.g. XOR)
};

/// Pin-to-pin delay arc, one per input pin.  Units: ns, ns/fF.
struct TimingArc {
  ArcSense sense = ArcSense::kNegativeUnate;
  double intrinsic_rise = 0.0;
  double intrinsic_fall = 0.0;
  double resistance_rise = 0.0;  // output-rise drive resistance
  double resistance_fall = 0.0;
};

struct Cell {
  std::string name;       // unique, e.g. "nand2_d1"
  std::string base_name;  // function family, e.g. "nand2"
  int drive_index = 0;    // 0 = smallest
  TruthTable function;
  double area = 0.0;                // um^2
  std::vector<double> input_cap;    // fF, one per pin
  std::vector<TimingArc> arcs;      // one per pin
  double internal_cap = 0.0;        // fF of internal switching capacitance
  double leakage = 0.0;             // uW at nominal supply
  bool is_level_converter = false;

  int num_inputs() const { return function.num_vars; }
  bool inverting() const {
    // A cell is "inverting" if its function is negative unate in every
    // input (NAND/NOR/AOI/OAI/INV family).
    for (int i = 0; i < function.num_vars; ++i)
      if (!is_negative_unate(function, i)) return false;
    return function.num_vars > 0;
  }
};

}  // namespace dvs
