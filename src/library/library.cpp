#include "library/library.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace dvs {

int Library::add_cell(Cell cell) {
  DVS_EXPECTS(!cell.name.empty());
  DVS_EXPECTS(by_name_.find(cell.name) == by_name_.end());
  DVS_EXPECTS(static_cast<int>(cell.input_cap.size()) ==
              cell.function.num_vars);
  DVS_EXPECTS(cell.input_cap.size() == cell.arcs.size());
  const int id = static_cast<int>(cells_.size());
  by_name_.emplace(cell.name, id);
  std::vector<int>& group = groups_[cell.base_name];
  group.push_back(id);
  cells_.push_back(std::move(cell));
  std::sort(group.begin(), group.end(), [this](int a, int b) {
    return cells_[a].drive_index < cells_[b].drive_index;
  });
  return id;
}

const Cell& Library::cell(int id) const {
  DVS_EXPECTS(id >= 0 && id < num_cells());
  return cells_[id];
}

int Library::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? -1 : it->second;
}

std::span<const int> Library::variants_of(int cell_id) const {
  const Cell& c = cell(cell_id);
  auto it = groups_.find(c.base_name);
  DVS_ASSERT(it != groups_.end());
  return it->second;
}

int Library::upsize(int cell_id) const {
  const auto group = variants_of(cell_id);
  auto it = std::find(group.begin(), group.end(), cell_id);
  DVS_ASSERT(it != group.end());
  return std::next(it) == group.end() ? -1 : *std::next(it);
}

int Library::downsize(int cell_id) const {
  const auto group = variants_of(cell_id);
  auto it = std::find(group.begin(), group.end(), cell_id);
  DVS_ASSERT(it != group.end());
  return it == group.begin() ? -1 : *std::prev(it);
}

std::vector<int> Library::cells_matching(const TruthTable& tt) const {
  std::vector<int> result;
  for (int id = 0; id < num_cells(); ++id) {
    const Cell& c = cells_[id];
    if (c.drive_index == 0 && !c.is_level_converter && c.function == tt)
      result.push_back(id);
  }
  return result;
}

int Library::smallest_of(std::string_view base_name) const {
  auto it = groups_.find(std::string(base_name));
  if (it == groups_.end() || it->second.empty()) return -1;
  return it->second.front();
}

void Library::set_supplies(double vdd_high, double vdd_low) {
  DVS_EXPECTS(vdd_high > vdd_low);
  DVS_EXPECTS(vdd_low > vmodel_.vt);
  vdd_high_ = vdd_high;
  vdd_low_ = vdd_low;
}

void Library::set_level_converter(int cell_id) {
  DVS_EXPECTS(cell(cell_id).is_level_converter);
  lc_cell_ = cell_id;
}

}  // namespace dvs
