#include "library/library.hpp"

#include <algorithm>
#include <bit>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace dvs {

namespace {

std::uint64_t mix_double(std::uint64_t h, double v) {
  return mix_seed(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  h = mix_seed(h, s.size());
  for (char c : s) h = mix_seed(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace

int Library::add_cell(Cell cell) {
  DVS_EXPECTS(!cell.name.empty());
  DVS_EXPECTS(by_name_.find(cell.name) == by_name_.end());
  DVS_EXPECTS(static_cast<int>(cell.input_cap.size()) ==
              cell.function.num_vars);
  DVS_EXPECTS(cell.input_cap.size() == cell.arcs.size());
  const int id = static_cast<int>(cells_.size());
  by_name_.emplace(cell.name, id);
  std::vector<int>& group = groups_[cell.base_name];
  group.push_back(id);
  cells_.push_back(std::move(cell));
  std::sort(group.begin(), group.end(), [this](int a, int b) {
    return cells_[a].drive_index < cells_[b].drive_index;
  });
  return id;
}

const Cell& Library::cell(int id) const {
  DVS_EXPECTS(id >= 0 && id < num_cells());
  return cells_[id];
}

int Library::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? -1 : it->second;
}

std::span<const int> Library::variants_of(int cell_id) const {
  const Cell& c = cell(cell_id);
  auto it = groups_.find(c.base_name);
  DVS_ASSERT(it != groups_.end());
  return it->second;
}

int Library::upsize(int cell_id) const {
  const auto group = variants_of(cell_id);
  auto it = std::find(group.begin(), group.end(), cell_id);
  DVS_ASSERT(it != group.end());
  return std::next(it) == group.end() ? -1 : *std::next(it);
}

int Library::downsize(int cell_id) const {
  const auto group = variants_of(cell_id);
  auto it = std::find(group.begin(), group.end(), cell_id);
  DVS_ASSERT(it != group.end());
  return it == group.begin() ? -1 : *std::prev(it);
}

std::vector<int> Library::cells_matching(const TruthTable& tt) const {
  std::vector<int> result;
  for (int id = 0; id < num_cells(); ++id) {
    const Cell& c = cells_[id];
    if (c.drive_index == 0 && !c.is_level_converter && c.function == tt)
      result.push_back(id);
  }
  return result;
}

int Library::smallest_of(std::string_view base_name) const {
  auto it = groups_.find(std::string(base_name));
  if (it == groups_.end() || it->second.empty()) return -1;
  return it->second.front();
}

void Library::set_supplies(double vdd_high, double vdd_low) {
  set_supply_ladder(SupplyLadder({vdd_high, vdd_low}));
}

void Library::set_supply_ladder(SupplyLadder ladder) {
  // The ladder itself validated its shape; the threshold is a property
  // of this library's voltage model, checked here.
  if (ladder.bottom() <= vmodel_.vt)
    throw SupplyError("supplies out of range");
  ladder_ = std::move(ladder);
}

void Library::set_level_converter(int cell_id) {
  DVS_EXPECTS(cell(cell_id).is_level_converter);
  lc_cell_ = cell_id;
}

std::uint64_t Library::fingerprint() const {
  std::uint64_t h = 0x11b1a5f0cafe0001ULL;
  h = mix_string(h, name_);
  h = mix_seed(h, ladder_.fingerprint());  // canonical supply ladder
  h = mix_double(h, vmodel_.vdd_nominal);
  h = mix_double(h, vmodel_.vt);
  h = mix_double(h, vmodel_.alpha);
  h = mix_double(h, wire_.base);
  h = mix_double(h, wire_.per_fanout);
  h = mix_seed(h, static_cast<std::uint64_t>(lc_cell_ + 1));
  h = mix_seed(h, static_cast<std::uint64_t>(cells_.size()));
  for (const Cell& c : cells_) {
    h = mix_string(h, c.name);
    h = mix_seed(h, static_cast<std::uint64_t>(c.drive_index));
    h = mix_seed(h, static_cast<std::uint64_t>(c.function.num_vars));
    h = mix_seed(h, c.function.bits & c.function.mask());
    h = mix_double(h, c.area);
    h = mix_double(h, c.internal_cap);
    h = mix_double(h, c.leakage);
    h = mix_seed(h, c.is_level_converter ? 1 : 0);
    for (double cap : c.input_cap) h = mix_double(h, cap);
    for (const TimingArc& arc : c.arcs) {
      h = mix_seed(h, static_cast<std::uint64_t>(arc.sense));
      h = mix_double(h, arc.intrinsic_rise);
      h = mix_double(h, arc.intrinsic_fall);
      h = mix_double(h, arc.resistance_rise);
      h = mix_double(h, arc.resistance_fall);
    }
  }
  return h;
}

}  // namespace dvs
