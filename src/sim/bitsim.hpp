// 64-way bit-parallel functional simulation: each 64-bit word carries 64
// independent input patterns through the network at once.  This is the
// engine behind the SIS-style random-simulation power estimator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/network.hpp"

namespace dvs {

class BitSimulator {
 public:
  /// Computes the evaluation order itself (one topological sort).
  explicit BitSimulator(const Network& net);
  /// Reuses a caller-provided topological order (e.g. the one cached on
  /// Design's compiled timing graph) instead of recomputing it.
  BitSimulator(const Network& net, std::span<const NodeId> order);

  const Network& network() const { return *net_; }

  /// Simulates one 64-pattern batch.  `input_words[i]` holds the patterns
  /// for `network().inputs()[i]`.  Returns the value word of every node,
  /// indexed by NodeId (dead slots are zero).
  std::vector<std::uint64_t> simulate(
      std::span<const std::uint64_t> input_words) const;

  /// In-place variant that reuses the caller's buffer.
  void simulate_into(std::span<const std::uint64_t> input_words,
                     std::vector<std::uint64_t>& values) const;

  /// Single-pattern convenience: evaluates the network on one input
  /// assignment and returns each output port's value.
  std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

 private:
  const Network* net_;
  std::vector<NodeId> order_;
};

}  // namespace dvs
