#include "sim/bitsim.hpp"

#include "netlist/topo.hpp"
#include "support/contracts.hpp"

namespace dvs {

BitSimulator::BitSimulator(const Network& net)
    : net_(&net), order_(topo_order(net)) {}

BitSimulator::BitSimulator(const Network& net,
                           std::span<const NodeId> order)
    : net_(&net), order_(order.begin(), order.end()) {
  DVS_EXPECTS(static_cast<int>(order_.size()) == net.num_live_nodes());
}

void BitSimulator::simulate_into(std::span<const std::uint64_t> input_words,
                                 std::vector<std::uint64_t>& values) const {
  const Network& net = *net_;
  DVS_EXPECTS(input_words.size() == net.inputs().size());
  values.assign(net.size(), 0);
  for (std::size_t i = 0; i < input_words.size(); ++i)
    values[net.inputs()[i]] = input_words[i];

  for (NodeId id : order_) {
    const Node& n = net.node(id);
    if (n.is_input()) continue;
    if (n.is_constant()) {
      values[id] = n.constant_value ? ~0ULL : 0ULL;
      continue;
    }
    // Sum-of-minterms evaluation: for every on-set pattern, AND together
    // the appropriately complemented fanin words.
    const int k = n.function.num_vars;
    std::uint64_t out = 0;
    if (k == 0) {
      out = (n.function.bits & 1ULL) ? ~0ULL : 0ULL;
    } else {
      for (std::uint32_t p = 0; p < (1u << k); ++p) {
        if (!((n.function.bits >> p) & 1ULL)) continue;
        std::uint64_t term = ~0ULL;
        for (int i = 0; i < k; ++i) {
          const std::uint64_t v = values[n.fanins[i]];
          term &= ((p >> i) & 1u) ? v : ~v;
        }
        out |= term;
      }
    }
    values[id] = out;
  }
}

std::vector<std::uint64_t> BitSimulator::simulate(
    std::span<const std::uint64_t> input_words) const {
  std::vector<std::uint64_t> values;
  simulate_into(input_words, values);
  return values;
}

std::vector<bool> BitSimulator::evaluate(
    const std::vector<bool>& inputs) const {
  DVS_EXPECTS(inputs.size() == net_->inputs().size());
  std::vector<std::uint64_t> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    words[i] = inputs[i] ? 1ULL : 0ULL;
  const std::vector<std::uint64_t> values = simulate(words);
  std::vector<bool> out;
  out.reserve(net_->outputs().size());
  for (const OutputPort& port : net_->outputs())
    out.push_back((values[port.driver] & 1ULL) != 0);
  return out;
}

}  // namespace dvs
