// Hybrid circuit generator: a zero-slack balanced "grid" core (critical
// fraction) plus a shallower random-logic region rich in timing slack.
// The critical fraction dials the CVS low-voltage ratio, which is how the
// MCNC stand-ins reproduce each circuit's Table 2 profile shape.
#pragma once

#include <cstdint>
#include <string>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

struct HybridSpec {
  int gates = 200;
  int pis = 20;
  int pos = 10;
  /// Fraction of gates in the zero-slack core (0 = all slack-rich random
  /// logic, 1 = fully balanced).
  double critical_fraction = 0.5;
  /// Slack-branch share within the core (see GridSpec).
  double slack_branch_fraction = 0.06;
  bool maxed_sizes = false;
  std::uint64_t seed = 1;
};

Network build_hybrid_circuit(const Library& lib, const HybridSpec& spec,
                             std::string name);

}  // namespace dvs
