#include "benchgen/random_dag.hpp"

#include <algorithm>
#include <cmath>

#include "benchgen/structured.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"
#include "timing/sta.hpp"

namespace dvs {

namespace {

/// Cell base-name pools per fanin arity for the random-logic region.
/// Deliberately light cells: the region must stay comfortably faster than
/// the zero-slack core, which is what gives it its slack.
const std::vector<std::string>& pool(int arity) {
  static const std::vector<std::string> p1{"inv", "buf"};
  static const std::vector<std::string> p2{"nand2", "nor2", "and2", "or2",
                                           "xor2"};
  static const std::vector<std::string> p3{"nand3", "nor3", "and3", "or3",
                                           "aoi21", "oai21", "mux2",
                                           "maj3"};
  static const std::vector<std::string> p4{"nand4", "nor4", "and4", "or4",
                                           "aoi22", "oai22", "aoi211",
                                           "oai211"};
  switch (arity) {
    case 1: return p1;
    case 2: return p2;
    case 3: return p3;
    default: return p4;
  }
}

int pick_cell(const Library& lib, int arity, bool maxed, Rng& rng) {
  const auto& names = pool(arity);
  const int smallest =
      lib.smallest_of(names[rng.next_below(names.size())]);
  DVS_ASSERT(smallest >= 0);
  if (!maxed) return smallest;
  const auto variants = lib.variants_of(smallest);
  return variants.back();
}

int pick_arity(Rng& rng) {
  const double r = rng.next_double();
  if (r < 0.15) return 1;
  if (r < 0.65) return 2;
  if (r < 0.90) return 3;
  return 4;
}

struct RandomRegion {
  std::vector<NodeId> tails;  // fanout-less gates (natural PO drivers)
  std::vector<NodeId> all;    // every gate of the region
};

/// Adds `gate_budget` gates of layered random logic into `net`, `depth`
/// levels deep, drawing leaves from `pis`.
RandomRegion add_random_region(Network& net, const Library& lib,
                               std::span<const NodeId> pis,
                               int gate_budget, int depth, bool maxed,
                               Rng& rng) {
  RandomRegion region;
  std::vector<NodeId> hungry;  // gates with no fanout yet

  auto take_hungry = [&]() -> NodeId {
    if (hungry.empty()) return kNoNode;
    const std::size_t k = rng.next_below(hungry.size());
    const NodeId id = hungry[k];
    hungry[k] = hungry.back();
    hungry.pop_back();
    return id;
  };

  int built = 0;
  for (int level = 1; level <= depth && built < gate_budget; ++level) {
    const int budget = gate_budget - built;
    const int levels_left = depth - level + 1;
    const int width = std::max(
        1, std::min(budget - (levels_left - 1),
                    (budget + levels_left - 1) / levels_left));
    for (int g = 0; g < width && built < gate_budget; ++g) {
      const int arity = pick_arity(rng);
      const int cell = pick_cell(lib, arity, maxed, rng);
      std::vector<NodeId> fanins;
      for (int pin = 0; pin < arity; ++pin) {
        NodeId f = kNoNode;
        for (int attempt = 0; attempt < 4; ++attempt) {
          NodeId candidate = kNoNode;
          if (level > 1 && rng.next_bool(0.7)) candidate = take_hungry();
          if (candidate == kNoNode && level > 1 && !region.all.empty() &&
              rng.next_bool(0.4))
            candidate = region.all[rng.next_below(region.all.size())];
          if (candidate == kNoNode)
            candidate = pis[rng.next_below(pis.size())];
          if (std::find(fanins.begin(), fanins.end(), candidate) ==
              fanins.end()) {
            f = candidate;
            break;
          }
          // A rejected hungry node keeps its hungry status.
          if (std::find(region.all.begin(), region.all.end(),
                        candidate) != region.all.end() &&
              std::find(hungry.begin(), hungry.end(), candidate) ==
                  hungry.end())
            hungry.push_back(candidate);
        }
        if (f != kNoNode) fanins.push_back(f);
      }
      // Duplicates can be unavoidable on tiny PI sets; use the collected
      // distinct fanins with a cell of matching arity.
      NodeId id;
      if (static_cast<int>(fanins.size()) == arity) {
        id = net.add_gate(lib.cell(cell).function, fanins, cell);
      } else {
        DVS_ASSERT(!fanins.empty());
        const int k = std::min<int>(4, static_cast<int>(fanins.size()));
        fanins.resize(k);
        const int fallback = pick_cell(lib, k, maxed, rng);
        id = net.add_gate(lib.cell(fallback).function, fanins, fallback);
      }
      region.all.push_back(id);
      hungry.push_back(id);
      ++built;
    }
  }
  region.tails = std::move(hungry);
  return region;
}

}  // namespace

Network build_hybrid_circuit(const Library& lib, const HybridSpec& spec,
                             std::string name) {
  DVS_EXPECTS(spec.gates >= 4);
  DVS_EXPECTS(spec.pis >= 2 && spec.pos >= 1);
  DVS_EXPECTS(spec.critical_fraction >= 0.0 &&
              spec.critical_fraction <= 1.0);
  Network core_net(std::move(name));
  Rng rng(spec.seed);

  std::vector<NodeId> pis;
  for (int i = 0; i < spec.pis; ++i)
    pis.push_back(core_net.add_input("pi" + std::to_string(i)));

  // ---- zero-slack core ---------------------------------------------------
  int core_gates =
      static_cast<int>(std::lround(spec.gates * spec.critical_fraction));
  int core_chains = std::clamp(
      static_cast<int>(std::lround(spec.pos * spec.critical_fraction)), 1,
      std::max(1, spec.pos - 1));
  core_gates = std::max(core_gates, 2 * std::max(2, core_chains));
  core_gates = std::min(core_gates, spec.gates);
  core_chains = std::min(core_chains, std::max(1, core_gates / 4));
  const GridPart core =
      add_grid_part(core_net, lib, pis, core_gates, core_chains, 0,
                    spec.slack_branch_fraction, spec.maxed_sizes, rng);

  // Core delay: the constraint the finished circuit must be limited by.
  double core_delay = 0.0;
  {
    Network probe = core_net;
    for (std::size_t p = 0; p < core.po_drivers.size(); ++p)
      probe.add_output("p" + std::to_string(p), core.po_drivers[p]);
    core_delay = run_sta(probe, lib, -1.0).worst_arrival;
  }

  // ---- slack-rich random region -------------------------------------------
  // Built at decreasing depths until its own worst path stays safely
  // below the core delay, so the core keeps defining the constraint and
  // the region keeps its slack.
  const int random_gates = spec.gates - core.gates_built;
  int depth_r = std::max(
      2, static_cast<int>(std::lround(core.depth * 0.45)));
  Network net = core_net;
  for (int attempt = 0; ; ++attempt) {
    net = core_net;  // fresh copy of the core
    Rng region_rng(spec.seed + 7777 * (attempt + 1));
    const RandomRegion region = add_random_region(
        net, lib, pis, random_gates, depth_r, spec.maxed_sizes,
        region_rng);

    // Final port assignment (it loads the region, so it must be part of
    // the fit check below): core tails, region tails, then internal taps
    // until the port budget is met.
    int port = 0;
    for (NodeId driver : core.po_drivers)
      net.add_output("po" + std::to_string(port++), driver);
    for (NodeId tail : region.tails)
      net.add_output("po" + std::to_string(port++), tail);
    std::size_t tap = 0;
    while (port < spec.pos && tap < region.all.size())
      net.add_output("po" + std::to_string(port++), region.all[tap++]);

    if (region.all.empty()) break;
    const StaResult sta = run_sta(net, lib, -1.0);
    double worst_random = 0.0;
    for (NodeId id : region.all)
      worst_random = std::max(worst_random, sta.arrival[id].max());
    if (worst_random <= 0.8 * core_delay || depth_r <= 1) break;
    --depth_r;
  }

  net.check();
  return net;
}

}  // namespace dvs
