#include "benchgen/mcnc.hpp"

#include <algorithm>

#include "benchgen/random_dag.hpp"
#include "benchgen/structured.hpp"
#include "support/contracts.hpp"

namespace dvs {

namespace {

constexpr CircuitFamily kB = CircuitFamily::kBalanced;
constexpr CircuitFamily kA = CircuitFamily::kAdder;
constexpr CircuitFamily kH = CircuitFamily::kHybrid;

// One row per circuit, in the paper's table order.  PaperRow fields:
// {OrgPwr, CVS%, Dscale%, Gscale%, CPU, cvs_r, dsc_r, gsc_r, sized, area}.
// PI/PO counts are the real benchmark interface sizes where known
// (ISCAS85) and representative values otherwise; the substitution note in
// DESIGN.md covers this.
const McncDescriptor kSuite[] = {
    {"C1355", 390, 41, 32, kB, false, 1001,
     {321.88, 0.00, 1.98, 21.41, 7.02, 0.00, 0.07, 0.73, 58, 0.01}},
    {"C2670", 583, 233, 140, kH, false, 1002,
     {447.58, 14.62, 18.27, 22.56, 20.03, 0.48, 0.58, 0.84, 6, 0.00}},
    {"C3540", 996, 50, 22, kH, false, 1003,
     {657.90, 2.12, 2.73, 13.63, 27.04, 0.07, 0.10, 0.53, 9, 0.00}},
    {"C432", 159, 36, 7, kB, false, 1004,
     {108.66, 0.00, 4.20, 13.83, 1.01, 0.00, 0.18, 0.44, 9, 0.01}},
    {"C499", 390, 41, 32, kB, false, 1005,
     {326.32, 0.00, 1.77, 15.78, 6.02, 0.00, 0.09, 0.55, 56, 0.01}},
    {"C5315", 1318, 178, 123, kH, false, 1006,
     {1089.07, 9.42, 12.25, 23.75, 84.08, 0.38, 0.47, 0.91, 23, 0.00}},
    {"C7552", 1957, 207, 108, kH, false, 1007,
     {1615.53, 9.08, 11.46, 18.96, 130.12, 0.28, 0.38, 0.65, 82, 0.01}},
    {"C880", 295, 60, 26, kH, false, 1008,
     {228.49, 17.02, 17.94, 19.09, 4.01, 0.55, 0.63, 0.64, 7, 0.01}},
    {"alu2", 291, 10, 6, kH, false, 1009,
     {144.87, 6.33, 8.15, 16.74, 3.01, 0.18, 0.26, 0.57, 17, 0.01}},
    {"alu4", 573, 14, 8, kH, false, 1010,
     {245.74, 5.45, 6.95, 17.74, 13.03, 0.18, 0.24, 0.71, 31, 0.02}},
    {"apex6", 664, 135, 99, kH, false, 1011,
     {346.72, 18.02, 20.15, 24.70, 22.03, 0.72, 0.84, 0.93, 4, 0.00}},
    {"apex7", 217, 49, 37, kH, false, 1012,
     {127.61, 19.53, 21.33, 21.56, 2.01, 0.70, 0.82, 0.79, 2, 0.01}},
    {"b9", 111, 41, 21, kH, false, 1013,
     {67.61, 12.63, 15.95, 19.72, 1.50, 0.50, 0.69, 0.77, 6, 0.03}},
    {"dalu", 706, 75, 16, kH, false, 1014,
     {250.21, 18.63, 18.63, 21.76, 19.03, 0.61, 0.61, 0.73, 12, 0.00}},
    {"des", 2795, 256, 245, kH, false, 1015,
     {1615.72, 18.78, 20.72, 22.10, 347.26, 0.73, 0.83, 0.85, 115, 0.01}},
    {"f51m", 81, 8, 8, kB, false, 1016,
     {69.74, 0.00, 1.80, 16.32, 1.00, 0.00, 0.07, 0.58, 6, 0.02}},
    {"i1", 35, 25, 16, kH, false, 1017,
     {18.54, 13.57, 15.69, 19.10, 0.70, 0.60, 0.71, 0.74, 2, 0.02}},
    {"i10", 2121, 257, 224, kH, false, 1018,
     {997.01, 9.28, 11.18, 20.02, 185.14, 0.35, 0.48, 0.77, 14, 0.00}},
    {"i2", 102, 201, 1, kB, true, 1019,
     {50.20, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0.00, 0, 0.00}},
    {"i3", 114, 132, 6, kH, true, 1020,
     {109.61, 0.43, 0.43, 0.43, 1.70, 0.05, 0.05, 0.05, 0, 0.00}},
    {"i5", 199, 133, 66, kH, false, 1021,
     {146.99, 6.36, 8.35, 13.08, 1.80, 0.24, 0.38, 0.50, 1, 0.00}},
    {"i6", 456, 138, 67, kH, false, 1022,
     {222.70, 3.04, 3.04, 25.74, 15.02, 0.11, 0.11, 0.98, 13, 0.01}},
    {"k2", 880, 45, 45, kH, false, 1023,
     {179.22, 9.22, 11.64, 24.00, 35.04, 0.27, 0.39, 0.92, 15, 0.01}},
    {"lal", 86, 26, 19, kH, false, 1024,
     {41.48, 20.65, 23.54, 23.86, 1.02, 0.71, 0.86, 0.93, 6, 0.03}},
    {"mux", 60, 21, 1, kB, false, 1025,
     {30.20, 0.00, 1.73, 17.03, 1.00, 0.00, 0.07, 0.55, 4, 0.04}},
    {"my_adder", 179, 119, 62, kA, false, 1026,
     {132.19, 11.80, 12.03, 13.24, 1.01, 0.42, 0.44, 0.47, 3, 0.02}},
    {"pair", 1351, 173, 137, kH, false, 1027,
     {926.39, 19.93, 20.86, 21.67, 74.06, 0.70, 0.72, 0.77, 14, 0.00}},
    {"pcle", 68, 19, 9, kH, true, 1028,
     {42.15, 19.58, 19.58, 19.58, 1.00, 0.62, 0.62, 0.62, 0, 0.00}},
    {"pm1", 43, 16, 13, kH, false, 1029,
     {14.64, 8.76, 11.17, 23.37, 1.00, 0.37, 0.53, 0.91, 4, 0.05}},
    {"rot", 585, 135, 107, kH, false, 1030,
     {388.74, 13.88, 18.22, 22.21, 18.02, 0.49, 0.68, 0.83, 2, 0.00}},
    {"sct", 73, 19, 15, kH, false, 1031,
     {40.32, 7.21, 9.01, 21.21, 0.95, 0.26, 0.34, 0.81, 11, 0.05}},
    {"term1", 136, 34, 10, kH, false, 1032,
     {83.40, 9.60, 12.12, 17.53, 1.00, 0.38, 0.54, 0.73, 13, 0.03}},
    {"too_large", 253, 38, 3, kH, false, 1033,
     {117.71, 12.48, 15.91, 23.82, 3.01, 0.39, 0.50, 0.90, 7, 0.00}},
    {"vda", 485, 17, 39, kH, false, 1034,
     {137.94, 14.04, 14.96, 15.62, 6.01, 0.35, 0.39, 0.44, 16, 0.01}},
    {"x1", 260, 51, 35, kH, false, 1035,
     {150.51, 19.60, 21.06, 25.00, 4.01, 0.72, 0.76, 0.95, 8, 0.01}},
    {"x2", 39, 10, 7, kH, false, 1036,
     {23.44, 6.51, 8.54, 22.74, 1.00, 0.26, 0.36, 0.85, 3, 0.02}},
    {"x3", 625, 135, 99, kH, false, 1037,
     {382.57, 22.99, 23.84, 25.16, 20.02, 0.82, 0.87, 0.95, 11, 0.00}},
    {"x4", 270, 94, 71, kH, false, 1038,
     {154.36, 20.04, 20.74, 22.42, 4.01, 0.79, 0.83, 0.87, 3, 0.00}},
    {"z4ml", 41, 7, 4, kB, false, 1039,
     {30.94, 0.00, 3.71, 19.16, 0.54, 0.00, 0.15, 0.73, 7, 0.06}},
};

}  // namespace

std::span<const McncDescriptor> mcnc_suite() { return kSuite; }

const McncDescriptor* find_mcnc(std::string_view name) {
  for (const McncDescriptor& d : kSuite)
    if (name == d.name) return &d;
  return nullptr;
}

double hybrid_critical_fraction(const McncDescriptor& d) {
  // The paper's CVS ratio is (to first order) the share of gates with
  // usable slack that are reachable from the POs; our hybrid generator
  // realizes it as 1 - critical_fraction of the gates (nearly all of the
  // slack-rich region ends up lowerable).
  return std::clamp(1.0 - 1.05 * d.paper.cvs_ratio, 0.05, 0.95);
}

Network build_mcnc_circuit(const Library& lib, const McncDescriptor& d) {
  switch (d.family) {
    case CircuitFamily::kBalanced: {
      GridSpec spec;
      spec.gates = d.gates;
      spec.pis = d.pis;
      spec.pos = d.pos;
      spec.slack_branch_fraction =
          std::max(0.04, d.paper.dscale_ratio * 1.3);
      spec.maxed_sizes = d.maxed_sizes;
      spec.seed = d.seed;
      return build_balanced_grid(lib, spec, d.name);
    }
    case CircuitFamily::kAdder: {
      // 3 gates per bit; the two auxiliary gates land on 179 exactly.
      const int bits = (d.gates - 2) / 3;
      Network net = build_ripple_adder(lib, bits, d.name, d.maxed_sizes);
      const int and2 = lib.find("and2_d0");
      const int or2 = lib.find("or2_d0");
      DVS_ASSERT(and2 >= 0 && or2 >= 0);
      const NodeId a0 = net.inputs()[0];
      const NodeId b0 = net.inputs()[bits];
      const NodeId a1 = net.inputs()[1];
      const NodeId b1 = net.inputs()[bits + 1];
      net.add_output("aux0", net.add_gate(lib.cell(and2).function,
                                          {a0, b0}, and2));
      net.add_output("aux1", net.add_gate(lib.cell(or2).function,
                                          {a1, b1}, or2));
      DVS_ENSURES(net.num_gates() == d.gates);
      return net;
    }
    case CircuitFamily::kHybrid:
    default: {
      HybridSpec spec;
      spec.gates = d.gates;
      spec.pis = d.pis;
      spec.pos = d.pos;
      spec.critical_fraction = hybrid_critical_fraction(d);
      spec.maxed_sizes = d.maxed_sizes;
      spec.seed = d.seed;
      return build_hybrid_circuit(lib, spec, d.name);
    }
  }
}

}  // namespace dvs
