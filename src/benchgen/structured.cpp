#include "benchgen/structured.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace dvs {

namespace {

/// Odd levels are "injection" levels: the second pin reads a fresh primary
/// input through an XNOR, which re-randomizes every column (p stays 1/2)
/// and stops the cross-column correlation collapse that would otherwise
/// freeze switching activity deep in the mesh.  Even levels cross-couple
/// neighbouring columns through NAND/NOR.
bool is_injection_level(int level) { return level % 2 == 1; }

/// Cell used at mesh level `l` (1-based).  One cell per level keeps every
/// full-depth path identical, which is what pins the slack to zero.
int level_cell(const Library& lib, int level, bool maxed) {
  const char* base = "xnor2";
  if (!is_injection_level(level))
    base = ((level / 2) % 2 == 0) ? "nand2" : "nor2";
  const std::string name = std::string(base) + (maxed ? "_d2" : "_d0");
  const int cell = lib.find(name);
  DVS_ASSERT(cell >= 0);
  return cell;
}

}  // namespace

// The grid is a cross-coupled mesh of `w` columns by `depth` levels: every
// gate takes its first pin from its own column one level up and its second
// ("cross") pin from a rotated neighbour column, so all level-l outputs
// arrive simultaneously and every gate sits on a full-depth path (zero
// slack when the constraint equals the mesh delay).  Leftover gate budget
// becomes side chains that steal a cross pin: exact-length chains stay
// zero-slack (critical filler), short ones carry real slack (the Dscale
// fodder controlled by branch_fraction).
GridPart add_grid_part(Network& net, const Library& lib,
                       std::span<const NodeId> pis, int gates,
                       int num_chains, int depth, double branch_fraction,
                       bool maxed_sizes, Rng& rng) {
  DVS_EXPECTS(!pis.empty());
  DVS_EXPECTS(num_chains >= 1);
  const int w = std::min(std::max(2, num_chains), std::max(2, gates / 2));
  DVS_EXPECTS(gates >= 2 * w);
  auto pi = [&]() { return pis[rng.next_below(pis.size())]; };

  if (depth <= 0) {
    depth = static_cast<int>(std::lround(
        gates * (1.0 - branch_fraction) / w));
    depth = std::clamp(depth, 4, 30);
  }
  depth = std::max(2, std::min(depth, gates / w));

  GridPart part;
  part.depth = depth;

  // ---- mesh core --------------------------------------------------------
  std::vector<NodeId> previous, current;
  // Cross pins that a side chain may steal: (gate, its level).
  std::vector<std::pair<NodeId, int>> slots;
  for (int level = 1; level <= depth; ++level) {
    const int cell = level_cell(lib, level, maxed_sizes);
    const int rotate = w > 1 ? rng.next_int(1, w - 1) : 0;
    current.clear();
    for (int col = 0; col < w; ++col) {
      std::vector<NodeId> fanins;
      if (level == 1)
        fanins = {pi(), pi()};
      else if (is_injection_level(level))
        fanins = {previous[col], pi()};
      else
        fanins = {previous[col], previous[(col + rotate) % w]};
      const NodeId id =
          net.add_gate(lib.cell(cell).function, fanins, cell);
      current.push_back(id);
      if (level >= 2) slots.emplace_back(id, level);
      ++part.gates_built;
    }
    previous = current;
  }
  part.po_drivers = previous;

  // ---- side chains ------------------------------------------------------
  auto build_chain = [&](int length) {
    NodeId prev = kNoNode;
    for (int level = 1; level <= length; ++level) {
      const int cell = level_cell(lib, level, maxed_sizes);
      std::vector<NodeId> fanins =
          level == 1 ? std::vector<NodeId>{pi(), pi()}
                     : std::vector<NodeId>{prev, pi()};
      prev = net.add_gate(lib.cell(cell).function, fanins, cell);
      if (level >= 2) slots.emplace_back(prev, level);
      ++part.gates_built;
    }
    return prev;
  };
  auto take_slot = [&](int lo, int hi) {
    std::vector<std::size_t> eligible;
    for (std::size_t i = 0; i < slots.size(); ++i)
      if (slots[i].second >= lo && slots[i].second <= hi)
        eligible.push_back(i);
    if (eligible.empty()) return std::pair<NodeId, int>{kNoNode, 0};
    const std::size_t k = eligible[rng.next_below(eligible.size())];
    const auto slot = slots[k];
    slots[k] = slots.back();
    slots.pop_back();
    return slot;
  };
  auto attach = [&](NodeId host, NodeId tail) {
    net.replace_fanin(host, net.node(host).fanins[1], tail);
  };

  int remaining = gates - part.gates_built;
  int slack_budget = std::min(
      remaining, static_cast<int>(std::lround(gates * branch_fraction)));
  int critical_budget = remaining - slack_budget;

  // Exact-length chains into a level-(l) pin arrive with the mesh: near
  // zero slack.  Side-chain gates carry lighter loads than mesh gates, so
  // the residual slack grows with the attachment level; capping the level
  // keeps it below what a lowering (plus its converter) would need.
  while (critical_budget > 0) {
    const auto [host, l] = take_slot(2, std::min(6, critical_budget + 1));
    if (host == kNoNode) break;
    attach(host, build_chain(l - 1));
    critical_budget -= (l - 1);
  }
  slack_budget += critical_budget;  // whatever could not be placed

  // Short chains arrive early: their gates carry real slack, but the host
  // pin stays non-critical, so the mesh timing is untouched.
  while (slack_budget > 0) {
    const auto [host, l] = take_slot(3, depth);
    if (host == kNoNode) break;
    const int b =
        std::min(slack_budget, std::max(1, l - 2 - rng.next_int(0, 1)));
    attach(host, build_chain(b));
    slack_budget -= b;
  }
  while (slack_budget > 0) {  // degenerate shallow grids
    const auto [host, l] = take_slot(2, depth);
    if (host == kNoNode) break;
    (void)l;
    attach(host, build_chain(1));
    --slack_budget;
  }
  return part;
}

Network build_balanced_grid(const Library& lib, const GridSpec& spec,
                            std::string name) {
  DVS_EXPECTS(spec.gates >= 2 * spec.pos);
  DVS_EXPECTS(spec.pis >= 2 && spec.pos >= 1);
  Network net(std::move(name));
  Rng rng(spec.seed);

  std::vector<NodeId> pis;
  for (int i = 0; i < spec.pis; ++i)
    pis.push_back(net.add_input("pi" + std::to_string(i)));

  const GridPart part =
      add_grid_part(net, lib, pis, spec.gates, spec.pos, spec.depth,
                    spec.slack_branch_fraction, spec.maxed_sizes, rng);
  // The mesh needs at least two columns; every column tail must drive a
  // port (a dangling tail would hand its whole column to the sweeper), so
  // single-output specs get one extra port.
  for (std::size_t p = 0; p < part.po_drivers.size(); ++p)
    net.add_output("po" + std::to_string(p), part.po_drivers[p]);
  DVS_ENSURES(net.num_gates() <= spec.gates);
  net.check();
  return net;
}

Network build_ripple_adder(const Library& lib, int bits, std::string name,
                           bool maxed_sizes) {
  DVS_EXPECTS(bits >= 1);
  Network net(std::move(name));
  const int xor_cell = lib.find(maxed_sizes ? "xor2_d1" : "xor2_d0");
  const int maj_cell = lib.find(maxed_sizes ? "maj3_d1" : "maj3_d0");
  DVS_ASSERT(xor_cell >= 0 && maj_cell >= 0);

  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i)
    a.push_back(net.add_input("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i)
    b.push_back(net.add_input("b" + std::to_string(i)));
  NodeId carry = net.add_input("cin");

  for (int i = 0; i < bits; ++i) {
    const NodeId half = net.add_gate(lib.cell(xor_cell).function,
                                     {a[i], b[i]}, xor_cell);
    const NodeId sum = net.add_gate(lib.cell(xor_cell).function,
                                    {half, carry}, xor_cell);
    net.add_output("s" + std::to_string(i), sum);
    carry = net.add_gate(lib.cell(maj_cell).function, {a[i], b[i], carry},
                         maj_cell);
  }
  net.add_output("cout", carry);
  net.check();
  return net;
}

Network build_parity_tree(const Library& lib, int width, std::string name) {
  DVS_EXPECTS(width >= 2);
  Network net(std::move(name));
  const int xor_cell = lib.find("xor2_d0");
  DVS_ASSERT(xor_cell >= 0);
  std::vector<NodeId> layer;
  for (int i = 0; i < width; ++i)
    layer.push_back(net.add_input("in" + std::to_string(i)));
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(net.add_gate(lib.cell(xor_cell).function,
                                  {layer[i], layer[i + 1]}, xor_cell));
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  net.add_output("parity", layer.front());
  net.check();
  return net;
}

Network build_mux_tree(const Library& lib, int levels, std::string name) {
  DVS_EXPECTS(levels >= 1 && levels <= 10);
  Network net(std::move(name));
  const int mux_cell = lib.find("mux2_d0");
  DVS_ASSERT(mux_cell >= 0);
  std::vector<NodeId> data;
  for (int i = 0; i < (1 << levels); ++i)
    data.push_back(net.add_input("d" + std::to_string(i)));
  std::vector<NodeId> sel;
  for (int i = 0; i < levels; ++i)
    sel.push_back(net.add_input("s" + std::to_string(i)));
  for (int l = 0; l < levels; ++l) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < data.size(); i += 2)
      next.push_back(net.add_gate(lib.cell(mux_cell).function,
                                  {data[i], data[i + 1], sel[l]},
                                  mux_cell));
    data = std::move(next);
  }
  net.add_output("out", data.front());
  net.check();
  return net;
}

}  // namespace dvs
