// The 39-circuit MCNC benchmark suite of the paper, as deterministic
// generator-backed stand-ins (see DESIGN.md "Substitutions").  Each entry
// carries the published Table 1 / Table 2 values for side-by-side
// reporting, plus the structural family chosen to reproduce the circuit's
// qualitative profile:
//   kBalanced — every output path critical (the paper's CVS=0 circuits)
//   kAdder    — ripple-carry adder (my_adder)
//   kHybrid   — zero-slack core + slack-rich random logic; the critical
//               fraction is calibrated from the paper's CVS low ratio
// `maxed_sizes` marks circuits mapped to their largest drive variants,
// which reproduces the paper's circuits where Gscale finds nothing to
// resize (i2, i3, pcle).
#pragma once

#include <span>
#include <string_view>

#include "library/library.hpp"
#include "netlist/network.hpp"
#include "support/paper_ref.hpp"

namespace dvs {

enum class CircuitFamily { kBalanced, kAdder, kHybrid };

struct McncDescriptor {
  const char* name;
  int gates;  // paper Table 2, "Org"
  int pis;
  int pos;
  CircuitFamily family;
  bool maxed_sizes;
  std::uint64_t seed;
  PaperRow paper;
};

/// All 39 circuits, in the paper's table order.
std::span<const McncDescriptor> mcnc_suite();

/// Descriptor by circuit name, or nullptr.
const McncDescriptor* find_mcnc(std::string_view name);

/// Builds the mapped stand-in circuit for one descriptor.
Network build_mcnc_circuit(const Library& lib,
                           const McncDescriptor& descriptor);

/// Critical fraction used for kHybrid circuits, derived from the paper's
/// CVS low-voltage ratio (exposed for tests and calibration benches).
double hybrid_critical_fraction(const McncDescriptor& descriptor);

}  // namespace dvs
