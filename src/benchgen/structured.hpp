// Structured circuit families.  `build_balanced_grid` produces circuits in
// which every gate lies on a full-depth (zero-slack) path except for an
// adjustable fraction of slack-bearing side branches — the structural
// signature of the paper's CVS=0 circuits (C1355, C432, C499, f51m, mux,
// z4ml, i2).  The small arithmetic builders are used by my_adder, the
// examples and the tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "library/library.hpp"
#include "netlist/network.hpp"

namespace dvs {

struct GridSpec {
  int gates = 100;
  int pis = 16;
  int pos = 4;
  /// Logic depth; 0 = derived from the gate budget.
  int depth = 0;
  /// Fraction of gates placed on slack-bearing branches (Dscale fodder).
  double slack_branch_fraction = 0.12;
  /// Map every gate onto its largest drive variant, leaving Gscale no
  /// room to create slack (the i2 signature).
  bool maxed_sizes = false;
  std::uint64_t seed = 1;
};

/// Balanced grid: `pos` full-depth chains (one per output) with
/// exact-length merge chains keeping every spine gate at zero slack, plus
/// short branches with real slack.  Gate count is hit exactly.
Network build_balanced_grid(const Library& lib, const GridSpec& spec,
                            std::string name);

class Rng;

/// Lower-level entry used by the hybrid generator: adds a balanced grid
/// into an existing network, drawing leaf inputs from `pis`.  Returns the
/// chain tails (one per requested output chain) and the depth used.
struct GridPart {
  std::vector<NodeId> po_drivers;
  int gates_built = 0;
  int depth = 0;
};
GridPart add_grid_part(Network& net, const Library& lib,
                       std::span<const NodeId> pis, int gates,
                       int num_chains, int depth, double branch_fraction,
                       bool maxed_sizes, Rng& rng);

/// Ripple-carry adder: xor2/xor2/maj3 per bit.  Sum trees carry slack,
/// the majority carry chain is critical — the my_adder signature.
Network build_ripple_adder(const Library& lib, int bits, std::string name,
                           bool maxed_sizes = false);

/// Balanced XOR parity tree over `width` inputs (single output).
Network build_parity_tree(const Library& lib, int width, std::string name);

/// 2^levels : 1 multiplexer tree built from mux2 cells.
Network build_mux_tree(const Library& lib, int levels, std::string name);

}  // namespace dvs
