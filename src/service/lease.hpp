// Per-job leases for the distributed dispatch path.
//
// The scheduler grants a lease when it hands a job to a worker; the
// dispatching request thread blocks in await() until the worker's
// channel settles the lease (result or error), the worker is lost, the
// lease deadline passes, or the scheduler starts draining.  A lease is
// forfeited the moment await() returns — a result arriving late (a
// stalled worker finally answering after its lease expired) finds no
// lease and is ignored, which is what makes "retry on another worker"
// safe against duplicated execution: both may compute (jobs are pure),
// only one settles.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace dvs {

struct LeaseOutcome {
  enum class Kind {
    kBody,        // payload = the serialized, checksum-verified body
    kJobError,    // worker executed and failed; payload = message
    kCorrupt,     // reply checksum mismatch (retryable)
    kWorkerLost,  // channel closed / heartbeat expired (retryable)
    kExpired,     // lease deadline passed (retryable)
    kCancelled,   // scheduler draining or stopping (go local, no retry)
  };
  Kind kind = Kind::kCancelled;
  std::string payload;
};

class LeaseTable {
 public:
  /// Grants a new lease bound to `worker_id`; never returns 0.
  std::uint64_t grant(std::uint64_t worker_id);

  /// Settles a pending lease (worker channel thread).  False when the
  /// lease is unknown — already settled, expired, or failed over.
  bool settle(std::uint64_t lease, LeaseOutcome outcome);

  /// Drops a lease that was never sent anywhere (send failed).
  void forfeit(std::uint64_t lease);

  /// Blocks until the lease settles, `deadline` passes (kExpired), or
  /// `cancelled()` turns true (kCancelled, polled every ~50ms).  The
  /// lease is removed before returning, whatever the outcome.
  LeaseOutcome await(std::uint64_t lease,
                     std::chrono::steady_clock::time_point deadline,
                     const std::function<bool()>& cancelled);

  /// Settles every lease bound to `worker_id` as kWorkerLost.
  void fail_worker(std::uint64_t worker_id, const std::string& message);

  /// Settles every pending lease as kCancelled (drain path).
  void fail_all(const std::string& message);

 private:
  struct Pending {
    std::uint64_t worker = 0;
    std::optional<LeaseOutcome> outcome;
  };

  std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_ = 1;
};

}  // namespace dvs
