// ECO design sessions: the daemon-global registry of named, refcounted
// design handles behind the open_design / edit / reoptimize / sweep /
// close_design protocol verbs (README.md "ECO sessions").
//
// A handle owns a loaded Design (network + supply assignment), the
// pinned flow configuration (tspec, seeds, activity options, effective
// library), and a maintained IncrementalSta so a point edit (rung, cell
// swap, resize) re-evaluates in O(affected) instead of re-simulating
// the world.  Structural edits (level-converter insertion/removal) drop
// the timer and mark the handle dirty; the next reoptimize recompiles
// the timing graph from scratch — the incremental-vs-recompile decision
// rule is structural_version-exact, never heuristic (DESIGN.md).
//
// Lifecycle: handles are refcounted (opening an existing name attaches,
// closing decrements, freed at zero), lazily garbage-collected after
// config.idle_ms of disuse, and evicted oldest-idle-first when their
// estimated resident bytes exceed config.max_bytes.  Closed / expired /
// evicted handles leave tombstones so late requests get a precise,
// protocol-verbatim error instead of a generic "unknown handle".
//
// Thread model: a registry mutex guards the handle map, tombstones, and
// counters; each handle carries its own mutex serializing verbs on that
// design.  Lock order is registry -> handle, and the registry mutex is
// never held while blocking on a handle (GC probes with try_lock), so
// long verbs on one design never stall the others.  The registry is
// service-agnostic on purpose — tests and benches drive it directly,
// exactly like execute_optimize.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/design.hpp"
#include "core/flow.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/trace.hpp"
#include "timing/incremental.hpp"

namespace dvs {

class ThreadPool;
class ResultCache;
class DiskCacheEngine;

struct DesignSessionConfig {
  /// Idle expiry: a handle untouched this long is expired by the lazy
  /// GC that runs on every registry operation (0 = never).
  std::uint64_t idle_ms = 600'000;
  /// Resident-byte budget across all open designs; exceeding it evicts
  /// the oldest-idle handles first (0 = unlimited).
  std::size_t max_bytes = 1ull << 30;
  /// Hard cap on simultaneously open handles.
  std::size_t max_open = 256;
};

/// What a reoptimize produced.  Evaluate mode (no pipeline/algos) fills
/// `fields` completely; pipeline mode additionally carries the cached
/// serialized body (spliced into the response without re-parsing, like
/// optimize results) and the cache tier that answered.
struct DesignReoptimizeResult {
  Json::Object fields;
  std::shared_ptr<const std::string> body;  // pipeline mode only
  const char* cache = nullptr;              // "hit" / "disk" / "miss"
};

/// Monotonic counters + point-in-time gauges, mirrored into the metrics
/// registry by the service's collector and surfaced in `stats`.
struct DesignRegistryStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t expired = 0;   // idle-GC expiries
  std::uint64_t evicted = 0;   // byte-budget evictions
  std::uint64_t edits = 0;
  std::uint64_t reoptimize_incremental = 0;
  std::uint64_t reoptimize_full = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t sweep_cells = 0;
  std::size_t open_now = 0;
  std::size_t resident_bytes = 0;
};

class DesignRegistry {
 public:
  /// Opaque per-design state (defined in the .cpp; public only so file-
  /// local helpers there can name it).
  struct Handle;

  /// `pool` fans sweep cells out (null = serial); `cache`/`disk` back
  /// pipeline-reoptimize results (null = uncached).  All three may be
  /// null for direct use in tests.
  DesignRegistry(const Library* lib, DesignSessionConfig config,
                 ThreadPool* pool = nullptr, ResultCache* cache = nullptr,
                 DiskCacheEngine* disk = nullptr);
  ~DesignRegistry();

  DesignRegistry(const DesignRegistry&) = delete;
  DesignRegistry& operator=(const DesignRegistry&) = delete;

  // Each verb returns the response body fields (everything but
  // type/id); failures throw ProtocolError with the wire-exact message.
  Json::Object open(const OpenDesignRequest& request);
  Json::Object edit(const EditRequest& request);
  DesignReoptimizeResult reoptimize(const ReoptimizeRequest& request,
                                    RequestTrace* trace = nullptr);
  Json::Object sweep(const SweepRequest& request);
  Json::Object close(const CloseDesignRequest& request);

  /// Graceful-drain gate: after this, open/edit/reoptimize/sweep are
  /// refused ("draining: design sessions are closing") while
  /// close_design keeps working, so in-flight clients can release their
  /// handles before the service force-closes the rest.
  void begin_drain();

  /// Frees every handle (drain teardown).
  void close_all();

  std::size_t open_count() const;
  DesignRegistryStats stats() const;

 private:
  /// Looks up a live handle (GC first, drain check, tombstone-aware
  /// errors) and stamps its last_used.
  std::shared_ptr<Handle> acquire(const std::string& name,
                                  bool allow_while_draining = false);
  /// Expires idle handles and enforces the byte budget.  Registry mutex
  /// must be held; handles are probed with try_lock so an in-flight
  /// verb is never reaped mid-operation.
  void gc_locked(std::chrono::steady_clock::time_point now);
  void retire_locked(const std::string& name, int tombstone);

  const Library* lib_;
  DesignSessionConfig config_;
  ThreadPool* pool_;
  ResultCache* cache_;
  DiskCacheEngine* disk_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Handle>> handles_;
  /// Why a name is gone (values from the Tombstone enum in the .cpp),
  /// so stale clients get the precise story.
  std::unordered_map<std::string, int> tombstones_;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  DesignRegistryStats stats_;
};

}  // namespace dvs
