// One client connection of the dvsd service: reads NDJSON requests,
// dispatches them, writes NDJSON responses.  The session thread does
// I/O and cache lookups only — flow computation is submitted to the
// shared ThreadPool, and batch items stream back out-of-order through
// the session's write lock as workers finish them.
//
// Error containment: every per-request failure (malformed JSON, unknown
// fields, bad netlists, unknown circuits) turns into an {"type":"error"}
// response and the connection keeps serving — a client mistake must
// never take the daemon or even its own connection down.
//
// Overload control: new optimize/batch requests are refused with a
// structured "overloaded" error while ServiceCore's admission gate is
// shut; a batch keeps at most max_inflight_per_connection items in the
// pool at once (the rest feed in as items finish); a request's
// deadline_ms is checked when its job is dequeued.  On graceful drain
// (SIGTERM) a busy session finishes and answers its in-flight request
// before closing.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>

#include "service/protocol.hpp"
#include "support/socket.hpp"
#include "support/trace.hpp"

namespace dvs {

struct ServiceCore;

/// Outcome of one optimization job, ready for response assembly.  The
/// body (serialized report/metrics object) is shared with the cache.
struct OptimizeOutcome {
  /// Which cache tier answered: "miss" = computed fresh, "hit" = the
  /// in-memory LRU, "disk" = the persistent tier (promoted to memory).
  enum class Tier { kMiss, kMemory, kDisk };

  std::shared_ptr<const std::string> body;
  Tier tier = Tier::kMiss;
  /// Non-empty when a fleet worker computed the body (its announced
  /// name) — surfaced as the response's "executor" field.
  std::string executor;
  /// When execute_optimize returned — the start of the caller's
  /// "respond" trace span (future wake-up + serialization + send).
  std::chrono::steady_clock::time_point finished{};

  bool cache_hit() const { return tier != Tier::kMiss; }
};

/// The wire spelling of an outcome's tier ("miss" / "hit" / "disk").
const char* cache_tier_name(OptimizeOutcome::Tier tier);

/// Runs one optimize job on the calling thread: resolve the circuit,
/// hash it, consult both cache tiers, run the flow on a miss, store the
/// body (memory + write-behind disk).  Throws on invalid requests;
/// never mutates connection state (shared by the optimize path, batch
/// items, the in-process bench, and tests).  With a non-null `trace`,
/// appends the resolve / cache_lookup / execute / store phase spans plus
/// depth-1 per-pass spans; always records the cache-lookup histograms.
/// With `allow_remote` (and a scheduler with live workers), cache
/// misses are dispatched to the fleet first, falling back to local
/// computation whenever the fleet cannot answer; workers call with
/// allow_remote=false so a job is never re-dispatched.
OptimizeOutcome execute_optimize(ServiceCore& core,
                                 const OptimizeRequest& request,
                                 RequestTrace* trace = nullptr,
                                 bool allow_remote = true);

/// Runs the pipeline cells on `mapped` and assembles the shared
/// result-body object (report / metrics / trajectory) — the one body
/// layout behind optimize responses, batch items, fleet jobs, and
/// design-session pipeline reoptimizes.  With a non-null `trace`,
/// appends the depth-1 per-pass spans.  `result_out` (optional)
/// receives the executed cells, final Designs included, for callers
/// that need more than the body (netlist export).
Json::Object pipeline_body_object(const Network& mapped, const Library& lib,
                                  const FlowOptions& base_flow,
                                  std::vector<JobCell> cells,
                                  RequestTrace* trace,
                                  PipelineJobResult* result_out = nullptr);

class Session {
 public:
  Session(ServiceCore* core, Socket socket);

  /// Serves the connection until EOF, error, or service stop.
  void run();

  /// Unblocks a blocked recv/send from another thread (forced stop).
  void shutdown();

  /// Graceful-drain request: an idle session is unblocked (and closes)
  /// immediately; a busy one finishes and answers its in-flight
  /// request, then closes instead of reading the next one.
  void request_drain();

  bool finished() const { return finished_.load(); }

  /// Serialized send of one NDJSON line.  Public for the Scheduler,
  /// which answers and commands a registered worker over the worker's
  /// own session socket.
  void write_line(const std::string& line);

 private:
  /// Parses and dispatches one request line; returns true when the
  /// request asked for daemon shutdown.
  bool serve_line(const std::string& line);
  /// `received`/`parsed` bracket parse_request — the first trace phase.
  void handle(const Request& request,
              std::chrono::steady_clock::time_point received,
              std::chrono::steady_clock::time_point parsed);
  void handle_optimize(const Request& request,
                       std::chrono::steady_clock::time_point received,
                       std::chrono::steady_clock::time_point parsed);
  void handle_batch(const Request& request);
  void handle_stats(const Request& request);
  void handle_metrics(const Request& request);
  /// ECO session verbs (service/design_session.hpp).  open_design and
  /// reoptimize run on the pool behind the admission gate (they can
  /// carry full compiles / pipeline runs); edit and close_design answer
  /// inline on this thread (ms-scale); sweep orchestrates inline and
  /// fans its cells onto the pool.
  void handle_design(const Request& request,
                     std::chrono::steady_clock::time_point received);

  ServiceCore* core_;
  Socket socket_;
  std::mutex write_mutex_;
  std::atomic<bool> finished_{false};

  /// Guards the busy/draining handshake between run() and
  /// request_drain(): shutdown() is only safe to fire while the session
  /// is not mid-request, or its response would be cut off.
  std::mutex state_mutex_;
  bool busy_ = false;
  bool draining_ = false;

  /// Set when this connection registered as a fleet worker: run() hands
  /// the channel to the Scheduler after the (idle) handshake completes.
  bool worker_mode_ = false;
  RegisterWorkerRequest worker_info_;
};

}  // namespace dvs
