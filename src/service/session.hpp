// One client connection of the dvsd service: reads NDJSON requests,
// dispatches them, writes NDJSON responses.  The session thread does
// I/O and cache lookups only — flow computation is submitted to the
// shared ThreadPool, and batch items stream back out-of-order through
// the session's write lock as workers finish them.
//
// Error containment: every per-request failure (malformed JSON, unknown
// fields, bad netlists, unknown circuits) turns into an {"type":"error"}
// response and the connection keeps serving — a client mistake must
// never take the daemon or even its own connection down.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "service/protocol.hpp"
#include "support/socket.hpp"

namespace dvs {

struct ServiceCore;

/// Outcome of one optimization job, ready for response assembly.  The
/// body (serialized report/metrics object) is shared with the cache.
struct OptimizeOutcome {
  std::shared_ptr<const std::string> body;
  bool cache_hit = false;
};

/// Runs one optimize job on the calling thread: resolve the circuit,
/// hash it, consult the cache, run the flow on a miss, store the body.
/// Throws on invalid requests; never mutates connection state (shared by
/// the optimize path, batch items, the in-process bench, and tests).
OptimizeOutcome execute_optimize(ServiceCore& core,
                                 const OptimizeRequest& request);

class Session {
 public:
  Session(ServiceCore* core, Socket socket);

  /// Serves the connection until EOF, error, or service stop.
  void run();

  /// Unblocks a blocked recv/send from another thread (service stop).
  void shutdown();

  bool finished() const { return finished_.load(); }

 private:
  void write_line(const std::string& line);
  void handle(const Request& request);
  void handle_optimize(const Request& request);
  void handle_batch(const Request& request);
  void handle_stats(const Request& request);

  ServiceCore* core_;
  Socket socket_;
  std::mutex write_mutex_;
  std::atomic<bool> finished_{false};
};

}  // namespace dvs
