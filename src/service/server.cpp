#include "service/server.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "service/scheduler.hpp"
#include "service/session.hpp"
#include "service/worker.hpp"
#include "support/version.hpp"

namespace dvs {

void ServiceCore::init(const Library* injected) {
  lib = injected != nullptr ? injected
                            : &owned_lib.emplace(build_compass_library());
  pool.emplace(config.num_threads);
  cache.emplace(config.cache_bytes);
  if (!config.cache_dir.empty()) disk.emplace(config.cache_dir);
  backlog_watermark =
      config.max_backlog > 0
          ? config.max_backlog
          : static_cast<std::size_t>(pool->num_threads()) * 8;
  DesignSessionConfig design_config;
  design_config.idle_ms = config.session_idle_ms;
  design_config.max_bytes = config.design_bytes;
  design_config.max_open = config.max_open_designs;
  designs.emplace(lib, design_config, &*pool, &*cache,
                  disk ? &*disk : nullptr);
  lib_fingerprint = lib->fingerprint();
  started = std::chrono::steady_clock::now();
  init_metrics();
  if (!config.trace_log_path.empty())
    trace_log.emplace(config.trace_log_path);
  if (config.scheduler) scheduler = std::make_shared<Scheduler>(this);
}

void ServiceCore::init_metrics() {
  ServiceMetrics& m = metrics;
  m.requests_total = &registry.counter(
      "dvsd_requests_total", "Protocol requests parsed (any type).");
  m.connections_total = &registry.counter(
      "dvsd_connections_total", "Client connections accepted.");
  m.jobs_completed = &registry.counter(
      "dvsd_jobs_completed_total", "Optimize jobs answered successfully.");
  m.jobs_failed = &registry.counter(
      "dvsd_jobs_failed_total", "Optimize jobs that raised an error.");
  m.overload_rejections = &registry.counter(
      "dvsd_overload_rejections_total",
      "Requests rejected by the admission gate.");
  m.deadline_expired = &registry.counter(
      "dvsd_deadline_expired_total",
      "Jobs whose deadline_ms expired while queued.");
  m.line_too_long = &registry.counter(
      "dvsd_line_too_long_total",
      "Connections dropped for exceeding the NDJSON line cap.");
  m.sessions_active =
      &registry.gauge("dvsd_sessions_active", "Live client sessions.");
  m.inflight_jobs = &registry.gauge(
      "dvsd_inflight_jobs", "Jobs submitted to the pool, not yet finished.");
  m.backlog_watermark = &registry.gauge(
      "dvsd_backlog_watermark", "Admission gate threshold on inflight jobs.");
  m.backlog_watermark->set(static_cast<double>(backlog_watermark));
  m.queue_wait_ms = &registry.histogram(
      "dvsd_queue_wait_ms", "Submission-to-dequeue wait per job (ms).");
  m.service_ms_optimize = &registry.histogram(
      "dvsd_service_ms", "Request wall time (ms).", {{"type", "optimize"}});
  m.service_ms_batch_item = &registry.histogram(
      "dvsd_service_ms", "Request wall time (ms).", {{"type", "batch_item"}});
  m.cache_lookup_memory_ms = &registry.histogram(
      "dvsd_cache_lookup_ms", "Result-cache probe time (ms).",
      {{"tier", "memory"}});
  m.cache_lookup_disk_ms = &registry.histogram(
      "dvsd_cache_lookup_ms", "Result-cache probe time (ms).",
      {{"tier", "disk"}});
  m.service_ms_design = &registry.histogram(
      "dvsd_service_ms", "Request wall time (ms).", {{"type", "design"}});
  registry.gauge("dvsd_build_info", "Constant 1; the version label is the payload.",
                 {{"version", kDvsVersion}})
      .set(1.0);

  // Mirrored instruments: the caches and the pool keep their own
  // authoritative counters; this collector copies them into the registry
  // at the top of every exposition()/stats read.
  Counter& mem_hits = registry.counter(
      "dvsd_cache_hits_total", "Result-cache hits.", {{"tier", "memory"}});
  Counter& mem_misses = registry.counter(
      "dvsd_cache_misses_total", "Result-cache misses.", {{"tier", "memory"}});
  Counter& disk_hits = registry.counter(
      "dvsd_cache_hits_total", "Result-cache hits.", {{"tier", "disk"}});
  Counter& disk_misses = registry.counter(
      "dvsd_cache_misses_total", "Result-cache misses.", {{"tier", "disk"}});
  Counter& evictions = registry.counter(
      "dvsd_cache_evictions_total", "Memory-tier LRU evictions.");
  Counter& rejected = registry.counter(
      "dvsd_cache_rejected_total",
      "Payloads too large for the memory budget.");
  Gauge& entries = registry.gauge(
      "dvsd_cache_entries", "Memory-tier resident entries.");
  Gauge& bytes = registry.gauge(
      "dvsd_cache_bytes", "Memory-tier resident payload bytes.");
  Gauge& capacity = registry.gauge(
      "dvsd_cache_capacity_bytes", "Memory-tier byte budget.");
  Counter& disk_writes = registry.counter(
      "dvsd_disk_writes_total", "Disk-tier entries persisted.");
  Counter& disk_write_errors = registry.counter(
      "dvsd_disk_write_errors_total", "Disk-tier failed writes.");
  Counter& disk_bytes_written = registry.counter(
      "dvsd_disk_bytes_written_total", "Disk-tier payload bytes persisted.");
  Gauge& pool_threads =
      registry.gauge("dvsd_pool_threads", "Flow worker threads.");
  Gauge& pool_depth = registry.gauge(
      "dvsd_pool_depth", "Pool tasks queued or running right now.");
  Gauge& pool_peak = registry.gauge(
      "dvsd_pool_depth_peak", "High-water mark of dvsd_pool_depth.");
  Counter& pool_tasks = registry.counter(
      "dvsd_pool_tasks_total", "Pool tasks retired since startup.");
  Gauge& uptime =
      registry.gauge("dvsd_uptime_seconds", "Seconds since service start.");
  // ECO design-session instruments, mirrored from the registry's stats.
  Gauge& sessions_open = registry.gauge(
      "dvsd_sessions_open", "Open design handles (ECO sessions).");
  Gauge& designs_bytes = registry.gauge(
      "dvsd_designs_resident_bytes",
      "Estimated resident bytes of open designs.");
  Counter& design_opened = registry.counter(
      "dvsd_design_opened_total", "open_design requests honored.");
  Counter& design_closed = registry.counter(
      "dvsd_design_closed_total", "Design handles fully closed.");
  Counter& design_expired = registry.counter(
      "dvsd_design_expired_total", "Design handles expired by the idle GC.");
  Counter& design_evicted = registry.counter(
      "dvsd_design_evicted_total",
      "Design handles evicted under the byte budget.");
  Counter& design_edits = registry.counter(
      "dvsd_design_edits_total", "Design edits applied.");
  Counter& design_reopt_incr = registry.counter(
      "dvsd_design_reoptimize_total", "Design reoptimizations served.",
      {{"mode", "incremental"}});
  Counter& design_reopt_full = registry.counter(
      "dvsd_design_reoptimize_total", "Design reoptimizations served.",
      {{"mode", "full"}});
  Counter& design_sweep_cells = registry.counter(
      "dvsd_design_sweep_cells_total", "Sweep matrix cells computed.");
  registry.register_collector([this, &mem_hits, &mem_misses, &disk_hits,
                               &disk_misses, &evictions, &rejected, &entries,
                               &bytes, &capacity, &disk_writes,
                               &disk_write_errors, &disk_bytes_written,
                               &pool_threads, &pool_depth, &pool_peak,
                               &pool_tasks, &uptime, &sessions_open,
                               &designs_bytes, &design_opened, &design_closed,
                               &design_expired, &design_evicted,
                               &design_edits, &design_reopt_incr,
                               &design_reopt_full, &design_sweep_cells] {
    const CacheStats cs = cache->stats();
    mem_hits.set(cs.hits);
    mem_misses.set(cs.misses);
    evictions.set(cs.evictions);
    rejected.set(cs.rejected);
    entries.set(static_cast<double>(cs.entries));
    bytes.set(static_cast<double>(cs.bytes));
    capacity.set(static_cast<double>(cs.capacity_bytes));
    const DiskCacheStats ds = disk ? disk->stats() : DiskCacheStats{};
    disk_hits.set(ds.hits);
    disk_misses.set(ds.misses);
    disk_writes.set(ds.writes);
    disk_write_errors.set(ds.write_errors);
    disk_bytes_written.set(ds.bytes_written);
    const ThreadPoolStats ps = pool->stats();
    pool_threads.set(ps.threads);
    pool_depth.set(ps.pending);
    pool_peak.set(ps.peak_pending);
    pool_tasks.set(ps.tasks_executed);
    uptime.set(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
                   .count());
    const DesignRegistryStats drs =
        designs ? designs->stats() : DesignRegistryStats{};
    sessions_open.set(static_cast<double>(drs.open_now));
    designs_bytes.set(static_cast<double>(drs.resident_bytes));
    design_opened.set(drs.opened);
    design_closed.set(drs.closed);
    design_expired.set(drs.expired);
    design_evicted.set(drs.evicted);
    design_edits.set(drs.edits);
    design_reopt_incr.set(drs.reoptimize_incremental);
    design_reopt_full.set(drs.reoptimize_full);
    design_sweep_cells.set(drs.sweep_cells);
  });
}

Service::Service(ServiceConfig config, const Library* lib) {
  core_.config = std::move(config);
  core_.init(lib);
  core_.request_stop = [this] { request_stop(); };
}

Service::~Service() { stop(); }

void Service::start() {
  listener_ = core_.config.unix_path.empty()
                  ? ListenSocket::listen_tcp(core_.config.tcp_port)
                  : ListenSocket::listen_unix(core_.config.unix_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (core_.config.metrics_port >= 0) {
    metrics_listener_ = ListenSocket::listen_tcp(core_.config.metrics_port);
    metrics_thread_ = std::thread([this] { metrics_loop(); });
  }
  if (!core_.config.join.empty()) {
    WorkerAgentConfig agent_config;
    agent_config.connect = core_.config.join;
    agent_config.name = core_.config.worker_name;
    agent_config.capacity = core_.config.worker_capacity;
    agent_config.heartbeat_ms = core_.config.heartbeat_ms;
    agent_config.faults = core_.config.fault_spec.empty()
                              ? FaultInjector::from_env()
                              : FaultInjector::parse(core_.config.fault_spec);
    agent_config.verbose = core_.config.verbose;
    agent_ = std::make_shared<WorkerAgent>(&core_, std::move(agent_config));
    agent_->start();
  }
}

void Service::metrics_loop() {
  // Scrapes are rare and the payload is small, so one connection at a
  // time, answered inline, is plenty — and keeps the endpoint from ever
  // competing with job traffic for threads.
  while (!core_.stopping.load()) {
    Socket socket;
    try {
      socket = metrics_listener_.accept_connection();
    } catch (const SocketError&) {
      if (core_.stopping.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (!socket.valid()) break;  // listener shut down
    if (core_.stopping.load()) break;
    try {
      // Drain the request head; the path is irrelevant — every GET gets
      // the exposition.
      LineReader reader(&socket, 64 * 1024);
      std::string line;
      while (reader.read_line(&line)) {
        if (line.empty() || line == "\r") break;
      }
      const std::string body = core_.registry.exposition();
      std::string response =
          "HTTP/1.0 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n" +
          body;
      socket.send_all(response);
    } catch (const SocketError&) {
      // A half-closed scraper is its problem, not the daemon's.
    }
  }
}

void Service::accept_loop() {
  while (!core_.stopping.load()) {
    Socket socket;
    try {
      socket = listener_.accept_connection();
    } catch (const SocketError& e) {
      // An unexpected accept() errno must not tear the daemon down: a
      // deaf-but-logged retry loop beats a silently dead service.  The
      // transient family (EINTR, ECONNABORTED, resource pressure, the
      // network-error batch) is already retried inside
      // accept_connection; this is the catch-all above it.
      if (core_.stopping.load()) break;
      std::fprintf(stderr, "dvsd: accept failed: %s (retrying)\n",
                   e.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (!socket.valid()) break;  // listener shut down
    if (core_.stopping.load()) break;
    core_.metrics.connections_total->inc();
    if (core_.config.verbose)
      std::fprintf(stderr, "dvsd: connection #%llu\n",
                   static_cast<unsigned long long>(
                       core_.metrics.connections_total->value()));
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
    Connection conn;
    conn.session = std::make_unique<Session>(&core_, std::move(socket));
    Session* session = conn.session.get();
    conn.thread = std::thread([session] { session->run(); });
    connections_.push_back(std::move(conn));
  }
}

void Service::reap_finished_locked() {
  std::erase_if(connections_, [](Connection& conn) {
    if (!conn.session->finished()) return false;
    conn.thread.join();
    return true;
  });
}

void Service::request_stop() {
  // Called from session threads, other threads, or a signal handler:
  // only async-signal-safe work here (atomics and shutdown()).
  if (core_.stopping.exchange(true)) return;
  listener_.shutdown_listener();
  metrics_listener_.shutdown_listener();
  if (agent_) agent_->request_stop();  // atomics + shutdown(): still safe
}

void Service::wait() {
  // Polls the stop flag instead of waiting on a condition variable:
  // request_stop() must stay async-signal-safe, so it cannot notify.
  // Each tick also reaps finished sessions, so an idle daemon releases
  // dead connections' threads and fds without needing a new accept.
  while (!core_.stopping.load()) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      if (stopped_) return;
      stop_cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
  }
}

void Service::stop() {
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // Leave the fleet first: the agent finishes (and answers) its leased
  // jobs, so a scheduler shutting down never strands work it accepted.
  if (agent_) agent_->stop();
  // Stop granting leases before draining sessions: in-flight dispatches
  // get kCancelled and fall back to local execution, so every busy
  // session below can still answer its request.
  if (core_.scheduler) core_.scheduler->begin_drain();
  // Refuse new design-session verbs (close_design keeps working) so the
  // drain window below is spent finishing work, not accepting more; the
  // surviving handles are force-closed once the sessions are gone.
  if (core_.designs) core_.designs->begin_drain();
  // Graceful drain: idle sessions are unblocked immediately, busy ones
  // get to finish — and answer — their in-flight request (a mid-batch
  // client receives every item and the batch_done).  Only stragglers
  // that outlive the drain budget have their sockets forced shut.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& conn : connections_) conn.session->request_drain();
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(core_.config.drain_timeout_ms);
  for (;;) {
    bool all_finished = true;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (Connection& conn : connections_)
        if (!conn.session->finished()) {
          all_finished = false;
          break;
        }
    }
    if (all_finished || std::chrono::steady_clock::now() >= deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& conn : connections_) conn.session->shutdown();
    // Sessions wait for their in-flight pool work before exiting, so
    // joining them also drains every job this service submitted.
    for (Connection& conn : connections_)
      if (conn.thread.joinable()) conn.thread.join();
    connections_.clear();
  }
  // Every connection is gone, so no design verb can be in flight: free
  // the handles clients did not close within the drain window.
  if (core_.designs) core_.designs->close_all();
  // Sessions are gone but fire-and-forget pool work may linger; the
  // scheduler's sweeper and the metrics collector read pool stats until
  // the core is torn down, so quiesce the pool before stopping them.
  if (core_.pool) core_.pool->wait_idle();
  if (core_.scheduler) core_.scheduler->stop();
  // Every job has finished; persist what the write-behind queue holds
  // so the next daemon run warm-starts from this one's work.
  if (core_.disk) core_.disk->flush();
  {
    std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
}

}  // namespace dvs
