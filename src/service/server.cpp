#include "service/server.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "service/session.hpp"

namespace dvs {

Service::Service(ServiceConfig config, const Library* lib) {
  core_.config = std::move(config);
  if (lib == nullptr) lib = &core_.owned_lib.emplace(build_compass_library());
  core_.lib = lib;
  core_.pool.emplace(core_.config.num_threads);
  core_.cache.emplace(core_.config.cache_bytes);
  if (!core_.config.cache_dir.empty())
    core_.disk.emplace(core_.config.cache_dir);
  core_.backlog_watermark =
      core_.config.max_backlog > 0
          ? core_.config.max_backlog
          : static_cast<std::size_t>(core_.pool->num_threads()) * 8;
  core_.lib_fingerprint = core_.lib->fingerprint();
  core_.started = std::chrono::steady_clock::now();
  core_.request_stop = [this] { request_stop(); };
}

Service::~Service() { stop(); }

void Service::start() {
  listener_ = core_.config.unix_path.empty()
                  ? ListenSocket::listen_tcp(core_.config.tcp_port)
                  : ListenSocket::listen_unix(core_.config.unix_path);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Service::accept_loop() {
  while (!core_.stopping.load()) {
    Socket socket;
    try {
      socket = listener_.accept_connection();
    } catch (const SocketError& e) {
      // An unexpected accept() errno must not tear the daemon down: a
      // deaf-but-logged retry loop beats a silently dead service.  The
      // transient family (EINTR, ECONNABORTED, resource pressure, the
      // network-error batch) is already retried inside
      // accept_connection; this is the catch-all above it.
      if (core_.stopping.load()) break;
      std::fprintf(stderr, "dvsd: accept failed: %s (retrying)\n",
                   e.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    if (!socket.valid()) break;  // listener shut down
    if (core_.stopping.load()) break;
    core_.connections.fetch_add(1);
    if (core_.config.verbose)
      std::fprintf(stderr, "dvsd: connection #%llu\n",
                   static_cast<unsigned long long>(
                       core_.connections.load()));
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
    Connection conn;
    conn.session = std::make_unique<Session>(&core_, std::move(socket));
    Session* session = conn.session.get();
    conn.thread = std::thread([session] { session->run(); });
    connections_.push_back(std::move(conn));
  }
}

void Service::reap_finished_locked() {
  std::erase_if(connections_, [](Connection& conn) {
    if (!conn.session->finished()) return false;
    conn.thread.join();
    return true;
  });
}

void Service::request_stop() {
  // Called from session threads, other threads, or a signal handler:
  // only async-signal-safe work here (atomics and shutdown()).
  if (core_.stopping.exchange(true)) return;
  listener_.shutdown_listener();
}

void Service::wait() {
  // Polls the stop flag instead of waiting on a condition variable:
  // request_stop() must stay async-signal-safe, so it cannot notify.
  // Each tick also reaps finished sessions, so an idle daemon releases
  // dead connections' threads and fds without needing a new accept.
  while (!core_.stopping.load()) {
    {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      if (stopped_) return;
      stop_cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    reap_finished_locked();
  }
}

void Service::stop() {
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Graceful drain: idle sessions are unblocked immediately, busy ones
  // get to finish — and answer — their in-flight request (a mid-batch
  // client receives every item and the batch_done).  Only stragglers
  // that outlive the drain budget have their sockets forced shut.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& conn : connections_) conn.session->request_drain();
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(core_.config.drain_timeout_ms);
  for (;;) {
    bool all_finished = true;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (Connection& conn : connections_)
        if (!conn.session->finished()) {
          all_finished = false;
          break;
        }
    }
    if (all_finished || std::chrono::steady_clock::now() >= deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& conn : connections_) conn.session->shutdown();
    // Sessions wait for their in-flight pool work before exiting, so
    // joining them also drains every job this service submitted.
    for (Connection& conn : connections_)
      if (conn.thread.joinable()) conn.thread.join();
    connections_.clear();
  }
  // Every job has finished; persist what the write-behind queue holds
  // so the next daemon run warm-starts from this one's work.
  if (core_.disk) core_.disk->flush();
  {
    std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
}

}  // namespace dvs
