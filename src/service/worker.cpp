#include "service/worker.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "support/json.hpp"

namespace dvs {

namespace {

using Action = FaultInjector::Action;

/// Makes the body fail its checksum while staying valid JSON (the
/// corruption model is bit-rot in the payload, not a broken channel):
/// the first digit is bumped, so the scheduler parses the line fine and
/// the mismatch is caught exactly where real corruption would be.
void corrupt_body(std::string* body) {
  const std::size_t pos = body->find_first_of("0123456789");
  if (pos == std::string::npos) {
    body->push_back(' ');
    return;
  }
  char& c = (*body)[pos];
  c = c == '9' ? '0' : static_cast<char>(c + 1);
}

/// Decrements a counter on every exit path of handle_job.
struct InflightGuard {
  std::atomic<int>* counter;
  ~InflightGuard() { counter->fetch_sub(1, std::memory_order_relaxed); }
};

}  // namespace

void WorkerAgent::Channel::send_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mutex);
  socket.send_all(line);
}

WorkerAgent::WorkerAgent(ServiceCore* core, WorkerAgentConfig config)
    : core_(core), config_(std::move(config)) {
  if (config_.connect.empty())
    throw std::runtime_error("worker agent needs a scheduler address");
  if (config_.heartbeat_ms < 10) config_.heartbeat_ms = 10;
}

WorkerAgent::~WorkerAgent() { stop(); }

void WorkerAgent::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { run_loop(); });
}

void WorkerAgent::request_stop() noexcept {
  stopping_.store(true);
  const int fd = channel_fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void WorkerAgent::stop() {
  request_stop();
  sleep_cv_.notify_all();
  heartbeat_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // In-flight leased jobs still hold the channel; let them finish (a
  // stalled fault sleep exits early on the stop flag) so the caller can
  // tear the core down safely.
  while (inflight_.load() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

void WorkerAgent::run_loop() {
  BackoffPolicy backoff;
  backoff.base_ms = 100.0;
  backoff.max_ms = 2000.0;
  backoff.seed = fnv1a64(config_.name + "|" + config_.connect);
  int failures = 0;
  while (!stopping_.load()) {
    bool registered = false;
    try {
      serve_cycle(&registered);
    } catch (const std::exception& e) {
      if (config_.verbose)
        std::fprintf(stderr, "dvs-worker: %s\n", e.what());
    }
    if (registered) failures = 0;
    if (stopping_.load()) break;
    interruptible_sleep(static_cast<int>(
        backoff.delay_ms(std::min(failures++, 8))));
  }
}

void WorkerAgent::serve_cycle(bool* registered) {
  const std::string& addr = config_.connect;
  auto channel = std::make_shared<Channel>();
  if (addr.find('/') != std::string::npos) {
    channel->socket = Socket::connect_unix(addr, config_.connect_timeout_ms);
  } else {
    const std::size_t colon = addr.rfind(':');
    const std::string host =
        colon == std::string::npos || colon == 0 ? "127.0.0.1"
                                                 : addr.substr(0, colon);
    const std::string port_text =
        colon == std::string::npos ? addr : addr.substr(colon + 1);
    int port = 0;
    try {
      port = std::stoi(port_text);
    } catch (const std::exception&) {
      throw std::runtime_error("bad scheduler address '" + addr + "'");
    }
    channel->socket =
        Socket::connect_tcp(host, port, config_.connect_timeout_ms);
  }
  channel_fd_.store(channel->socket.fd());
  // request_stop between the connect and the store above: make sure the
  // new channel doesn't outlive the stop request.
  if (stopping_.load()) {
    channel_fd_.store(-1);
    return;
  }

  const int capacity =
      config_.capacity > 0 ? config_.capacity : core_->pool->num_threads();
  {
    Json::Object reg;
    reg["type"] = Json("register_worker");
    if (!config_.name.empty()) reg["name"] = Json(config_.name);
    reg["capacity"] = Json(static_cast<std::int64_t>(capacity));
    channel->send_line(Json(std::move(reg)).dump() + "\n");
  }

  LineReader reader(&channel->socket, core_->config.max_line_bytes);
  std::string line;
  if (!reader.read_line(&line))
    throw std::runtime_error("scheduler closed during registration");
  const Json ack = Json::parse(line);
  const Json* ack_type = ack.find("type");
  if (ack_type == nullptr || ack_type->as_string() != "registered") {
    const Json* message = ack.find("message");
    throw std::runtime_error(
        "registration refused: " +
        (message != nullptr ? message->as_string() : line));
  }
  if (registered != nullptr) *registered = true;
  if (config_.verbose) {
    const Json* name = ack.find("name");
    std::fprintf(stderr, "dvs-worker: registered as %s (capacity %d)\n",
                 name != nullptr ? name->as_string().c_str() : "?", capacity);
  }
  connected_.store(true);

  std::thread heartbeat([this, channel] { heartbeat_loop(channel); });

  if (config_.faults.at("register") != Action::kNone) {
    // Scripted infant mortality: die right after being accepted into
    // the fleet, whatever the configured action.
    channel->socket.shutdown_both();
  } else {
    try {
      while (!stopping_.load() && reader.read_line(&line)) {
        if (line.empty()) continue;
        const Json message = Json::parse(line);
        const Json* type = message.find("type");
        if (type == nullptr || type->as_string() != "job") continue;
        const Json* lease = message.find("lease");
        const Json* request = message.find("request");
        if (lease == nullptr || request == nullptr) continue;
        const Action accept_action = config_.faults.at("job-accept");
        if (accept_action == Action::kDropConnection ||
            accept_action == Action::kDieAfterAccept)
          break;
        inflight_.fetch_add(1, std::memory_order_relaxed);
        core_->pool->submit([this, channel, lease_id = lease->as_uint(),
                             request_line = request->dump()] {
          handle_job(channel, lease_id, request_line);
        });
      }
    } catch (const std::exception& e) {
      if (config_.verbose)
        std::fprintf(stderr, "dvs-worker: channel error: %s\n", e.what());
    }
  }

  connected_.store(false);
  channel_fd_.store(-1);
  channel->socket.shutdown_both();
  heartbeat_cv_.notify_all();
  heartbeat.join();
}

void WorkerAgent::heartbeat_loop(const std::shared_ptr<Channel>& channel) {
  const int capacity =
      config_.capacity > 0 ? config_.capacity : core_->pool->num_threads();
  std::unique_lock<std::mutex> lock(heartbeat_mutex_);
  while (!heartbeat_cv_.wait_for(
      lock, std::chrono::milliseconds(config_.heartbeat_ms),
      [this] { return stopping_.load() || !connected_.load(); })) {
    lock.unlock();
    try {
      channel->send_line(fleet_heartbeat_line(inflight_.load(), capacity));
    } catch (const SocketError&) {
      lock.lock();
      break;
    }
    lock.lock();
  }
}

void WorkerAgent::handle_job(const std::shared_ptr<Channel>& channel,
                             std::uint64_t lease,
                             const std::string& request_line) {
  InflightGuard guard{&inflight_};
  std::string reply;
  try {
    const Request request = parse_request(request_line);
    if (request.type != RequestType::kOptimize)
      throw ProtocolError("fleet job must carry an optimize request");
    const OptimizeOutcome outcome = execute_optimize(
        *core_, request.optimize, nullptr, /*allow_remote=*/false);
    std::string body = *outcome.body;
    const Action action = config_.faults.at("job-reply");
    if (action == Action::kStall)
      interruptible_sleep(config_.faults.stall_ms());
    if (action == Action::kDropConnection ||
        action == Action::kDieAfterAccept) {
      channel->socket.shutdown_both();
      return;
    }
    const std::uint64_t checksum = fnv1a64(body);
    if (action == Action::kCorruptReply) corrupt_body(&body);
    reply = fleet_result_line(lease, body, checksum);
    jobs_executed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    reply = fleet_error_line(lease, e.what());
  }
  try {
    channel->send_line(reply);
  } catch (const SocketError&) {
    // The channel died while we computed; the scheduler has already
    // failed the lease over.
  }
}

void WorkerAgent::interruptible_sleep(int ms) {
  if (ms <= 0) return;
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  sleep_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                     [this] { return stopping_.load(); });
}

}  // namespace dvs
