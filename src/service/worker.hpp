// Fleet worker agent: connects to a dvsd scheduler, registers, and
// executes leased jobs on a ServiceCore's ThreadPool.
//
// Three embeddings share this class:
//   - the standalone `dvs-worker` binary (a core with no listener),
//   - `dvsd --join ADDR` (the daemon lends its own core to a fleet
//     while still serving local clients),
//   - in-process workers in tests and the service bench.
//
// Robustness posture: the agent is a reconnect loop.  A lost scheduler,
// a refused connect, or a dropped registration just schedules the next
// attempt with bounded backoff; stop() interrupts any sleep or blocked
// read promptly.  Jobs execute through the shared execute_optimize path
// with remote dispatch disabled (a worker never re-dispatches), so a
// worker's answer bytes are identical to what the scheduler would have
// computed locally — which is what makes fleet answers cacheable and
// bit-reproducible.
//
// Fault injection (support/fault_inject.hpp) is evaluated at the
// `register`, `job-accept`, and `job-reply` points so chaos tests can
// script worker misbehaviour deterministically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "support/backoff.hpp"
#include "support/fault_inject.hpp"
#include "support/socket.hpp"

namespace dvs {

struct ServiceCore;

struct WorkerAgentConfig {
  /// Scheduler address: "host:port", ":port", or a Unix-socket path
  /// (anything containing '/').
  std::string connect;
  /// Announced identity; empty = the scheduler assigns "worker-<id>".
  std::string name;
  /// Max concurrently leased jobs (0 = the core's pool thread count).
  int capacity = 0;
  int heartbeat_ms = 500;
  /// Connect timeout per attempt; reconnects use bounded backoff.
  int connect_timeout_ms = 2000;
  FaultInjector faults;
  bool verbose = false;
};

class WorkerAgent {
 public:
  /// `core` must outlive the agent and must already be initialized
  /// (pool/cache up).  The agent only reads core->config for execution.
  WorkerAgent(ServiceCore* core, WorkerAgentConfig config);
  ~WorkerAgent();

  WorkerAgent(const WorkerAgent&) = delete;
  WorkerAgent& operator=(const WorkerAgent&) = delete;

  /// Spawns the connect/register/serve loop.
  void start();

  /// Async-signal-safe stop trigger: flips the stop flag and shuts the
  /// active channel socket (atomics + one syscall, no locks).
  void request_stop() noexcept;

  /// request_stop + joins the agent thread and waits for in-flight
  /// leased jobs to leave the pool.  Idempotent; the dtor calls it.
  void stop();

  bool connected() const { return connected_.load(); }
  std::uint64_t jobs_executed() const { return jobs_executed_.load(); }

 private:
  /// One live connection: the socket plus its write lock, shared with
  /// in-flight job tasks so a reconnect never yanks the socket out from
  /// under a reply in progress.
  struct Channel {
    Socket socket;
    std::mutex write_mutex;
    void send_line(const std::string& line);
  };

  void run_loop();
  /// One connect + register + serve cycle; sets *registered once the
  /// scheduler acks.  Returns on any disconnect; throws on setup
  /// failures (caught by run_loop).
  void serve_cycle(bool* registered);
  void heartbeat_loop(const std::shared_ptr<Channel>& channel);
  void handle_job(const std::shared_ptr<Channel>& channel,
                  std::uint64_t lease, const std::string& request_line);
  /// Sleeps up to `ms`, returning early when stop is requested.
  void interruptible_sleep(int ms);

  ServiceCore* core_;
  WorkerAgentConfig config_;

  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};
  std::atomic<int> channel_fd_{-1};  // for the signal-safe shutdown
  std::atomic<int> inflight_{0};
  std::atomic<std::uint64_t> jobs_executed_{0};

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;

  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
};

}  // namespace dvs
