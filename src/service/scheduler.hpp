// Fleet scheduler for dvsd (--scheduler): registers workers over the
// existing NDJSON listener, leases jobs to them, and falls back to
// local execution whenever the fleet cannot answer.
//
// yadcc-shaped worker lifecycle, scaled to this protocol:
//   - No static worker list.  A worker is a connection that sent
//     {"type":"register_worker"}; the same socket then carries
//     heartbeats and leased jobs (see protocol.hpp "fleet wire
//     format").  A worker that misses the heartbeat window is expired:
//     its channel is shut down and every lease it held is requeued.
//   - Dispatch grants a per-job lease with a deadline.  The requesting
//     pool thread blocks on the lease; a worker crash, stall, corrupt
//     reply, or lease expiry surfaces as a retryable failure.
//   - Retries are bounded (exponential backoff + deterministic jitter)
//     and prefer a *different* worker than the one that just failed.
//     When retries are exhausted, no worker is eligible, or the
//     scheduler is draining, run_remote returns nullopt and the caller
//     computes on its own ThreadPool — no job ever fails because of
//     fleet state.
//
// Every transition is wired into the metrics registry
// (dvsd_workers_*, dvsd_dispatch*, dvsd_lease_expired_total,
// dvsd_corrupt_replies_total, dvsd_fallback_local_total) and into
// depth-1 "dispatch:<worker>" trace spans under the request's execute
// phase.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/lease.hpp"
#include "service/protocol.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/socket.hpp"
#include "support/trace.hpp"

namespace dvs {

struct ServiceCore;
class Session;

class Scheduler {
 public:
  /// Registers the fleet instruments in core->registry and starts the
  /// heartbeat sweeper.  `core` must outlive the scheduler.
  explicit Scheduler(ServiceCore* core);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs a registered worker's channel on the calling session thread:
  /// acks the registration, then consumes heartbeats and job
  /// results/errors until the worker disconnects, misses its heartbeat
  /// window, or the scheduler drains.  On exit the worker is
  /// unregistered and its leases are requeued (kWorkerLost).
  void serve_worker(const RegisterWorkerRequest& info, Session* session,
                    LineReader* reader);

  struct RemoteResult {
    std::string body;    // serialized result body, checksum-verified
    std::string worker;  // who computed it (the "executor" wire field)
  };

  /// Dispatches one job to the fleet with the bounded retry policy.
  /// Blocks the calling (pool) thread.  nullopt = compute locally.
  std::optional<RemoteResult> run_remote(const OptimizeRequest& request,
                                         RequestTrace* trace);

  /// True when at least one live worker is registered (dispatch might
  /// succeed).  False while draining.
  bool has_workers() const;

  /// Stops dispatching, cancels every pending lease, and shuts all
  /// worker channels.  Called at the head of Service::stop(); NOT
  /// async-signal-safe (takes locks).
  void begin_drain();

  /// begin_drain + joins the sweeper.  Idempotent; the dtor calls it.
  void stop();

  /// The "fleet" block of the stats reply: counters plus a per-worker
  /// snapshot.
  Json stats_json() const;

 private:
  struct WorkerEntry {
    std::uint64_t id = 0;
    std::string name;
    std::atomic<int> capacity{1};
    std::atomic<int> inflight{0};
    std::atomic<std::uint64_t> jobs_ok{0};
    std::atomic<std::uint64_t> jobs_failed{0};
    /// steady_clock time_since_epoch of the last heartbeat (or any
    /// channel traffic), in nanoseconds.
    std::atomic<std::int64_t> last_seen_ns{0};
    std::atomic<bool> expired{false};

    /// Guards `session` (null once the channel thread returned) and
    /// serializes sends.  Never taken while holding workers_mutex_.
    std::mutex channel_mutex;
    Session* session = nullptr;

    /// False once the channel is gone or the send failed.
    bool send(const std::string& line);
    void shutdown_channel();
  };

  std::shared_ptr<WorkerEntry> pick_worker(std::uint64_t exclude_id);
  void update_fleet_gauges_locked();
  void sweep_loop();

  ServiceCore* core_;
  LeaseTable leases_;

  mutable std::mutex workers_mutex_;
  std::vector<std::shared_ptr<WorkerEntry>> workers_;
  std::uint64_t next_worker_id_ = 1;

  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> dispatch_seq_{0};  // backoff jitter stream

  std::mutex sweep_mutex_;
  std::condition_variable sweep_cv_;
  bool sweep_stop_ = false;
  std::thread sweeper_;

  Counter* workers_registered_ = nullptr;
  Counter* workers_expired_ = nullptr;
  Counter* workers_lost_ = nullptr;
  Counter* heartbeats_ = nullptr;
  Counter* dispatches_ = nullptr;
  Counter* dispatch_retries_ = nullptr;
  Counter* remote_ok_ = nullptr;
  Counter* remote_job_errors_ = nullptr;
  Counter* lease_expired_ = nullptr;
  Counter* corrupt_replies_ = nullptr;
  Counter* fallback_local_ = nullptr;
  Gauge* workers_active_ = nullptr;
  Gauge* fleet_capacity_ = nullptr;
  Histogram* remote_ms_ = nullptr;
};

}  // namespace dvs
