// Disk tier of the dvsd result cache (yadcc's disk_cache_engine shape,
// scaled to one process): content-addressed files under a --cache-dir,
// one file per CacheKey, holding the serialized result payload verbatim
// — which is what makes a warm hit after a daemon restart bit-identical
// to the cold answer.
//
// Writes are write-behind: store() enqueues and returns, a dedicated
// writer thread persists entries as temp-file + rename.  No fsync —
// a crash may lose recent entries (they are just cache), but the rename
// guarantees a reader never observes a torn file.  Reads (load) happen
// inline on the calling job thread; the caller promotes a disk hit into
// the in-memory ResultCache.
//
// Each file starts with a one-line header, `dvsr1 <fnv1a64-hex> <size>`,
// followed by the payload verbatim.  load() verifies the header against
// the bytes that follow; any mismatch — truncation, bit-rot, a foreign
// or pre-header file — is counted as `corrupt`, unlinked, and reported
// as a miss, so a damaged entry is recomputed instead of being fed to a
// client.  (The rename makes torn files unlikely; the checksum makes
// them and every other corruption mode harmless.)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "service/cache.hpp"

namespace dvs {

struct DiskCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writes = 0;        // files persisted
  std::uint64_t write_errors = 0;  // failed persists (entry dropped)
  std::uint64_t bytes_written = 0;  // payload bytes (headers excluded)
  std::uint64_t corrupt = 0;  // checksum/size mismatches unlinked on load
};

class DiskCacheEngine {
 public:
  using Payload = std::shared_ptr<const std::string>;

  /// Creates `dir` (and parents) if needed and starts the writer
  /// thread.  Throws std::runtime_error when the directory cannot be
  /// created or is not writable.
  explicit DiskCacheEngine(std::string dir);

  /// Flushes the write queue, then joins the writer.
  ~DiskCacheEngine();

  DiskCacheEngine(const DiskCacheEngine&) = delete;
  DiskCacheEngine& operator=(const DiskCacheEngine&) = delete;

  /// Reads the payload for `key` from disk; nullptr on miss (counts a
  /// miss).  A torn, unreadable, or checksum-mismatched file is a miss,
  /// never an error; corrupted files are unlinked so they are recomputed
  /// exactly once.
  Payload load(const CacheKey& key);

  /// Enqueues the payload for write-behind persistence and returns
  /// immediately.  Re-storing a key overwrites its file atomically.
  void store(const CacheKey& key, Payload payload);

  /// Blocks until every store() enqueued so far has hit disk (the
  /// graceful-drain path calls this before process exit).
  void flush();

  DiskCacheStats stats() const;

  const std::string& dir() const { return dir_; }

  /// Content-addressed file name for a key (stable across runs and
  /// builds: four fixed-width hex components).
  static std::string file_name(const CacheKey& key);

 private:
  void writer_loop();

  std::string dir_;
  std::string tmp_path_;  // per-process scratch file, renamed into place

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // writer wake-up
  std::condition_variable idle_cv_;   // flush() wake-up
  std::deque<std::pair<CacheKey, Payload>> queue_;
  bool stopping_ = false;
  bool write_in_progress_ = false;
  DiskCacheStats stats_;
  std::thread writer_;
};

}  // namespace dvs
