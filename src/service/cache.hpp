// Content-addressed result cache for the dvsd optimization service.
//
// The expensive unit of work is "run the dual-Vdd flow on one circuit";
// its result is a pure function of (what the netlist computes, how it is
// sized, the canonicalized flow options, the library).  Those four
// ingredients — topology_hash, mapping_fingerprint (netlist/stats.hpp),
// an FNV-1a over the canonical options JSON, and Library::fingerprint —
// form the key, so the same circuit submitted as BLIF text, as Verilog
// text, or by MCNC name hits the same entry (serialization round trips
// do not change the hashes).
//
// Capacity is accounted in BYTES of resident payload, not entries: one
// batch of large netlists must not blow the daemon's memory just because
// it fits an entry count.  Eviction is LRU by bytes, a payload larger
// than the whole budget is rejected outright, and get/put are
// thread-safe (one mutex — the guarded work is pointer swaps, never flow
// runs).  Hit/miss/eviction/rejection/byte counters feed the protocol's
// `stats` request.  This is the in-memory tier; DiskCacheEngine
// (service/disk_cache.hpp) persists the same payloads under it.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace dvs {

struct CacheKey {
  std::uint64_t topology = 0;  // topology_hash of the submitted netlist
  std::uint64_t mapping = 0;   // mapping_fingerprint (0 = unmapped)
  std::uint64_t options = 0;   // fnv1a64 of canonical options JSON
  std::uint64_t library = 0;   // Library::fingerprint

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const {
    // The components are already splitmix/FNV outputs; fold, don't re-mix.
    std::uint64_t h = k.topology;
    h = h * 0x9e3779b97f4a7c15ULL + k.mapping;
    h = h * 0x9e3779b97f4a7c15ULL + k.options;
    h = h * 0x9e3779b97f4a7c15ULL + k.library;
    return static_cast<std::size_t>(h);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Payloads larger than the whole byte budget, turned away by put().
  std::uint64_t rejected = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;  // resident payload bytes
  std::size_t capacity_bytes = 0;
};

/// Thread-safe byte-budgeted LRU map from CacheKey to an opaque payload
/// (the service stores the serialized result object, replayed verbatim
/// on a hit).  Payloads are shared immutably: a hit is a refcount bump
/// under the lock, never a multi-MB copy inside the critical section.
class ResultCache {
 public:
  using Payload = std::shared_ptr<const std::string>;

  /// `capacity_bytes` = maximum resident payload bytes (>= 1).
  explicit ResultCache(std::size_t capacity_bytes);

  /// Shared payload on hit (bumps recency, counts a hit); nullptr on
  /// miss (counts a miss).
  Payload get(const CacheKey& key);

  /// Inserts or refreshes; evicts least-recently-used entries until the
  /// byte budget holds.  Replacing an existing key's payload is not an
  /// eviction.  A payload larger than the whole budget is rejected
  /// (returns false, counted in stats().rejected) — and if the key held
  /// a smaller stale payload, that entry is dropped rather than served.
  bool put(const CacheKey& key, Payload payload);

  CacheStats stats() const;

 private:
  using LruList = std::list<std::pair<CacheKey, Payload>>;

  /// Drops the entry behind `it` and returns bytes to the budget.
  /// Caller holds the lock.
  void erase_locked(LruList::iterator it);

  mutable std::mutex mutex_;
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  LruList lru_;  // front = most recent
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace dvs
