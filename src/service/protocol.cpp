#include "service/protocol.hpp"

#include <cstdio>
#include <set>
#include <utility>

#include "opt/option_schema.hpp"
#include "opt/pipeline.hpp"

namespace dvs {

namespace {

/// Rejects unknown keys so every accepted request has one canonical
/// meaning (and typos fail loudly instead of silently running defaults).
void check_known_keys(const Json::Object& object,
                      const std::set<std::string>& known,
                      const std::string& where) {
  for (const auto& [key, value] : object) {
    if (!known.count(key))
      throw ProtocolError("unknown field '" + key + "' in " + where);
  }
}

/// The protocol's job-option block, declared once: the same schema
/// parses, range-checks, and canonicalizes, with the error text the
/// protocol always used ("unknown field 'x' in options",
/// "<name> out of range").
const OptionSchema& job_options_schema() {
  static const OptionSchema kSchema = [] {
    OptionSchema s("options");
    s.seed("seed", &JobOptions::seed);
    s.number("freq_mhz", &JobOptions::freq_mhz, 0.0, 1e6,
             /*open_min=*/true);
    s.number("tspec_relax", &JobOptions::tspec_relax, 0.0, 100.0);
    s.integer("vectors", &JobOptions::vectors, 1, 1 << 22);
    s.custom(
        "supplies",
        [](void* opts, const Json& value) {
          // SupplyLadder validation is the schema for this field; its
          // SupplyError texts are the protocol's error messages.
          static_cast<JobOptions*>(opts)->supplies =
              supply_ladder_from_json(value).voltages();
        },
        [](const void* opts) {
          const auto& supplies =
              static_cast<const JobOptions*>(opts)->supplies;
          Json::Array rungs;
          for (double v : supplies) rungs.emplace_back(v);
          return Json(std::move(rungs));
        },
        [](const void* opts) {
          const auto& supplies =
              static_cast<const JobOptions*>(opts)->supplies;
          if (supplies.empty()) return true;  // library default
          try {
            SupplyLadder ladder(supplies);
            return true;
          } catch (const SupplyError&) {
            return false;
          }
        });
    return s;
  }();
  return kSchema;
}

JobOptions parse_options(const Json& json) {
  JobOptions options;
  job_options_schema().apply(&options, json.as_object());
  return options;
}

void parse_algos(const Json& json, bool* cvs, bool* dscale, bool* gscale) {
  *cvs = *dscale = *gscale = false;
  for (const Json& algo : json.as_array()) {
    const std::string& name = algo.as_string();
    if (name == "cvs")
      *cvs = true;
    else if (name == "dscale")
      *dscale = true;
    else if (name == "gscale")
      *gscale = true;
    else if (name == "all")
      *cvs = *dscale = *gscale = true;
    else
      throw ProtocolError("unknown algorithm '" + name + "'");
  }
  if (!*cvs && !*dscale && !*gscale)
    throw ProtocolError("empty algorithm list");
}

std::string parse_format(const Json& json) {
  const std::string& format = json.as_string();
  if (format != "blif" && format != "verilog")
    throw ProtocolError("format must be 'blif' or 'verilog'");
  return format;
}

Json num_field(double v) { return Json(v); }

std::uint64_t parse_deadline_ms(const Json& json) {
  const std::uint64_t deadline = json.as_uint();
  if (deadline > 86'400'000ULL)  // 24h: anything longer is a typo
    throw ProtocolError("deadline_ms out of range");
  return deadline;
}

/// Design-session handle fields: the handle grammar is shared by
/// open_design's optional `name` and every other verb's required
/// `design`.
std::string parse_design_name(const Json& json, const char* field) {
  const std::string& name = json.as_string();
  if (name.empty() || name.size() > 64)
    throw ProtocolError(std::string(field) +
                        " must be 1-64 characters of [A-Za-z0-9_.-]");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok)
      throw ProtocolError(std::string(field) +
                          " must be 1-64 characters of [A-Za-z0-9_.-]");
  }
  return name;
}

std::string required_design(const Json& json, const char* where) {
  const Json* v = json.find("design");
  if (!v)
    throw ProtocolError(std::string(where) + " needs a 'design' handle");
  return parse_design_name(*v, "design");
}

DesignEdit parse_edit(const Json& json, std::size_t index) {
  if (!json.is_object())
    throw ProtocolError("edit " + std::to_string(index) +
                        " must be an object");
  check_known_keys(json.as_object(), {"op", "gate", "rung", "cell"},
                   "edit " + std::to_string(index));
  DesignEdit edit;
  const Json* op = json.find("op");
  if (!op)
    throw ProtocolError("edit " + std::to_string(index) + " without 'op'");
  const std::string& name = op->as_string();
  if (name == "rung")
    edit.op = DesignEdit::Op::kRung;
  else if (name == "cell")
    edit.op = DesignEdit::Op::kCell;
  else if (name == "upsize")
    edit.op = DesignEdit::Op::kUpsize;
  else if (name == "downsize")
    edit.op = DesignEdit::Op::kDownsize;
  else if (name == "insert_lc")
    edit.op = DesignEdit::Op::kInsertLc;
  else if (name == "remove_lc")
    edit.op = DesignEdit::Op::kRemoveLc;
  else
    throw ProtocolError("unknown edit op '" + name + "'");
  const Json* gate = json.find("gate");
  if (!gate)
    throw ProtocolError("edit " + std::to_string(index) +
                        " without 'gate'");
  edit.gate = *gate;
  if (edit.op == DesignEdit::Op::kRung) {
    const Json* rung = json.find("rung");
    if (!rung)
      throw ProtocolError("edit op 'rung' needs a 'rung' index");
    const std::int64_t value = rung->as_int();
    if (value < 0 || value > 7)  // SupplyLadder::kMaxRungs - 1
      throw ProtocolError("rung out of range");
    edit.rung = static_cast<int>(value);
  } else if (json.find("rung") != nullptr) {
    throw ProtocolError("'rung' only applies to edit op 'rung'");
  }
  if (edit.op == DesignEdit::Op::kCell) {
    const Json* cell = json.find("cell");
    if (!cell) throw ProtocolError("edit op 'cell' needs a 'cell' name");
    edit.cell = cell->as_string();
    if (edit.cell.empty()) throw ProtocolError("empty cell name");
  } else if (json.find("cell") != nullptr) {
    throw ProtocolError("'cell' only applies to edit op 'cell'");
  }
  return edit;
}

}  // namespace

FlowOptions JobOptions::to_flow_options() const {
  FlowOptions flow;
  flow.freq_mhz = freq_mhz;
  flow.tspec_relax = tspec_relax;
  flow.activity.num_vectors = vectors;
  flow.activity.seed = seed;  // re-derived per circuit by the job runner
  return flow;
}

Request parse_request(const std::string& line) {
  const Json json = Json::parse(line);
  if (!json.is_object()) throw ProtocolError("request must be an object");
  const Json* type_field = json.find("type");
  if (!type_field) throw ProtocolError("request without 'type'");
  const std::string& type = type_field->as_string();

  Request request;
  if (const Json* id = json.find("id")) request.id = *id;

  if (type == "ping" || type == "stats" || type == "metrics" ||
      type == "shutdown") {
    check_known_keys(json.as_object(), {"type", "id"}, type);
    request.type = type == "ping"      ? RequestType::kPing
                   : type == "stats"   ? RequestType::kStats
                   : type == "metrics" ? RequestType::kMetrics
                                       : RequestType::kShutdown;
    return request;
  }

  if (type == "optimize") {
    check_known_keys(json.as_object(),
                     {"type", "id", "circuit", "netlist", "format", "algos",
                      "pipeline", "options", "return_netlist", "use_cache",
                      "deadline_ms", "trace"},
                     "optimize");
    request.type = RequestType::kOptimize;
    OptimizeRequest& opt = request.optimize;
    if (const Json* v = json.find("circuit")) opt.circuit = v->as_string();
    if (const Json* v = json.find("netlist")) opt.netlist = v->as_string();
    if (opt.circuit.empty() == opt.netlist.empty())
      throw ProtocolError(
          "optimize needs exactly one of 'circuit' or 'netlist'");
    if (const Json* v = json.find("format")) opt.format = parse_format(*v);
    if (const Json* v = json.find("algos"))
      parse_algos(*v, &opt.run_cvs, &opt.run_dscale, &opt.run_gscale);
    if (const Json* v = json.find("pipeline")) {
      if (json.find("algos") != nullptr)
        throw ProtocolError("optimize takes 'algos' or 'pipeline', not both");
      Pipeline::from_spec(*v);  // fail fast on bad specs
      opt.pipeline = *v;
    }
    if (const Json* v = json.find("options")) opt.options = parse_options(*v);
    if (const Json* v = json.find("return_netlist"))
      opt.return_netlist = v->as_bool();
    if (const Json* v = json.find("use_cache")) opt.use_cache = v->as_bool();
    if (const Json* v = json.find("deadline_ms"))
      opt.deadline_ms = parse_deadline_ms(*v);
    if (const Json* v = json.find("trace")) opt.trace = v->as_bool();
    if (opt.return_netlist && opt.pipeline.is_null() &&
        (opt.run_cvs + opt.run_dscale + opt.run_gscale) != 1)
      throw ProtocolError(
          "return_netlist requires exactly one algorithm");
    return request;
  }

  if (type == "register_worker") {
    check_known_keys(json.as_object(), {"type", "id", "name", "capacity"},
                     "register_worker");
    request.type = RequestType::kRegisterWorker;
    if (const Json* v = json.find("name"))
      request.register_worker.name = v->as_string();
    if (const Json* v = json.find("capacity")) {
      const std::int64_t capacity = v->as_int();
      if (capacity < 1 || capacity > 4096)
        throw ProtocolError("capacity out of range");
      request.register_worker.capacity = static_cast<int>(capacity);
    }
    return request;
  }

  if (type == "batch") {
    check_known_keys(json.as_object(),
                     {"type", "id", "circuits", "all", "max_gates", "algos",
                      "pipeline", "options", "use_cache", "deadline_ms",
                      "trace"},
                     "batch");
    request.type = RequestType::kBatch;
    BatchRequest& batch = request.batch;
    if (const Json* v = json.find("circuits"))
      for (const Json& name : v->as_array())
        batch.circuits.push_back(name.as_string());
    if (const Json* v = json.find("all")) batch.all = v->as_bool();
    if (const Json* v = json.find("max_gates")) {
      const std::int64_t max_gates = v->as_int();
      if (max_gates < 0 || max_gates > (1 << 30))
        throw ProtocolError("max_gates out of range");
      batch.max_gates = static_cast<int>(max_gates);
    }
    if (batch.circuits.empty() && !batch.all)
      throw ProtocolError("batch needs 'circuits' or 'all': true");
    if (!batch.circuits.empty() && batch.all)
      throw ProtocolError("batch takes 'circuits' or 'all', not both");
    if (const Json* v = json.find("algos"))
      parse_algos(*v, &batch.run_cvs, &batch.run_dscale, &batch.run_gscale);
    if (const Json* v = json.find("pipeline")) {
      if (json.find("algos") != nullptr)
        throw ProtocolError("batch takes 'algos' or 'pipeline', not both");
      Pipeline::from_spec(*v);  // fail fast on bad specs
      batch.pipeline = *v;
    }
    if (const Json* v = json.find("options"))
      batch.options = parse_options(*v);
    if (const Json* v = json.find("use_cache"))
      batch.use_cache = v->as_bool();
    if (const Json* v = json.find("deadline_ms"))
      batch.deadline_ms = parse_deadline_ms(*v);
    if (const Json* v = json.find("trace")) batch.trace = v->as_bool();
    return request;
  }

  if (type == "open_design") {
    check_known_keys(json.as_object(),
                     {"type", "id", "name", "circuit", "netlist", "format",
                      "options"},
                     "open_design");
    request.type = RequestType::kOpenDesign;
    OpenDesignRequest& open = request.open_design;
    if (const Json* v = json.find("name"))
      open.name = parse_design_name(*v, "name");
    if (const Json* v = json.find("circuit")) open.circuit = v->as_string();
    if (const Json* v = json.find("netlist")) open.netlist = v->as_string();
    if (open.circuit.empty() == open.netlist.empty())
      throw ProtocolError(
          "open_design needs exactly one of 'circuit' or 'netlist'");
    if (const Json* v = json.find("format")) open.format = parse_format(*v);
    if (const Json* v = json.find("options"))
      open.options = parse_options(*v);
    return request;
  }

  if (type == "edit") {
    check_known_keys(json.as_object(), {"type", "id", "design", "edits"},
                     "edit");
    request.type = RequestType::kEdit;
    request.edit.design = required_design(json, "edit");
    const Json* edits = json.find("edits");
    if (!edits || edits->as_array().empty())
      throw ProtocolError("edit needs a non-empty 'edits' array");
    const Json::Array& array = edits->as_array();
    for (std::size_t i = 0; i < array.size(); ++i)
      request.edit.edits.push_back(parse_edit(array[i], i));
    return request;
  }

  if (type == "reoptimize") {
    check_known_keys(json.as_object(),
                     {"type", "id", "design", "mode", "algos", "pipeline",
                      "use_cache", "trace"},
                     "reoptimize");
    request.type = RequestType::kReoptimize;
    ReoptimizeRequest& reopt = request.reoptimize;
    reopt.design = required_design(json, "reoptimize");
    if (const Json* v = json.find("mode")) {
      reopt.mode = v->as_string();
      if (reopt.mode != "auto" && reopt.mode != "incremental" &&
          reopt.mode != "full")
        throw ProtocolError(
            "mode must be 'auto', 'incremental', or 'full'");
    }
    if (const Json* v = json.find("algos")) {
      reopt.has_algos = true;
      parse_algos(*v, &reopt.run_cvs, &reopt.run_dscale,
                  &reopt.run_gscale);
    }
    if (const Json* v = json.find("pipeline")) {
      if (reopt.has_algos)
        throw ProtocolError(
            "reoptimize takes 'algos' or 'pipeline', not both");
      Pipeline::from_spec(*v);  // fail fast on bad specs
      reopt.pipeline = *v;
    }
    if (const Json* v = json.find("use_cache"))
      reopt.use_cache = v->as_bool();
    if (const Json* v = json.find("trace")) reopt.trace = v->as_bool();
    return request;
  }

  if (type == "sweep") {
    check_known_keys(json.as_object(),
                     {"type", "id", "design", "ladders", "vlow",
                      "area_budgets", "algos"},
                     "sweep");
    request.type = RequestType::kSweep;
    SweepRequest& sweep = request.sweep;
    sweep.design = required_design(json, "sweep");
    if (const Json* v = json.find("ladders"))
      for (const Json& ladder : v->as_array())
        sweep.ladders.push_back(supply_ladder_from_json(ladder).voltages());
    if (const Json* v = json.find("vlow"))
      for (const Json& entry : v->as_array()) {
        const double vlow = entry.as_double();
        if (vlow <= 0.0) throw ProtocolError("vlow must be positive");
        sweep.vlow.push_back(vlow);
      }
    if (const Json* v = json.find("area_budgets"))
      for (const Json& entry : v->as_array()) {
        const double budget = entry.as_double();
        if (budget < 0.0 || budget > 10.0)
          throw ProtocolError("area budget out of range");
        sweep.area_budgets.push_back(budget);
      }
    if (const Json* v = json.find("algos"))
      parse_algos(*v, &sweep.run_cvs, &sweep.run_dscale,
                  &sweep.run_gscale);
    return request;
  }

  if (type == "close_design") {
    check_known_keys(json.as_object(), {"type", "id", "design"},
                     "close_design");
    request.type = RequestType::kCloseDesign;
    request.close_design.design = required_design(json, "close_design");
    return request;
  }

  throw ProtocolError("unknown request type '" + type + "'");
}

std::vector<JobCell> build_job_cells(const OptimizeRequest& request,
                                     std::uint64_t circuit_seed) {
  std::vector<JobCell> cells;
  if (!request.pipeline.is_null()) {
    Pipeline pipeline = Pipeline::from_spec(request.pipeline);
    pipeline.resolve_seeds(circuit_seed);
    JobCell cell;
    cell.label = pipeline_label(pipeline);
    cell.pipeline = std::move(pipeline);
    cells.push_back(std::move(cell));
    return cells;
  }
  // Legacy algos mode: one canonical paper pipeline per enabled
  // algorithm, each from a fresh copy — the suite engine's matrix cell.
  const FlowOptions base = request.options.to_flow_options();
  const PaperAlgo algos[] = {PaperAlgo::kCvs, PaperAlgo::kDscale,
                             PaperAlgo::kGscale};
  const bool enabled[] = {request.run_cvs, request.run_dscale,
                          request.run_gscale};
  for (int i = 0; i < 3; ++i)
    if (enabled[i])
      cells.push_back(make_paper_cell(
          algos[i], derive_cell_flow(base, circuit_seed, algos[i])));
  return cells;
}

std::string canonical_job_json(const OptimizeRequest& request,
                               std::uint64_t circuit_seed,
                               const SupplyLadder& default_supplies) {
  std::vector<JobCell> cells = build_job_cells(request, circuit_seed);
  Json::Object object;
  Json::Array cell_array;
  for (const JobCell& cell : cells) {
    Json::Object entry;
    entry["label"] = Json(cell.label);
    entry["passes"] = cell.pipeline.canonical_json();
    cell_array.emplace_back(std::move(entry));
  }
  object["cells"] = Json(std::move(cell_array));
  object["circuit_seed"] = Json(circuit_seed);
  object["freq_mhz"] = Json(request.options.freq_mhz);
  object["tspec_relax"] = Json(request.options.tspec_relax);
  object["vectors"] = Json(request.options.vectors);
  // Always the *effective* ladder: an absent field, the explicit default
  // ladder, and any spelling of the same voltages canonicalize alike.
  const SupplyLadder effective =
      request.options.supplies.empty() ? default_supplies
                                       : SupplyLadder(request.options.supplies);
  object["supplies"] = effective.to_json();
  object["return_netlist"] = Json(request.return_netlist);
  if (request.return_netlist)
    object["netlist_format"] = Json(request.format);
  return Json(std::move(object)).dump();
}

Json report_json(const CircuitRunResult& row, bool with_cvs,
                 bool with_dscale, bool with_gscale) {
  Json::Object report;
  report["name"] = Json(row.name);
  report["gates"] = Json(row.num_gates);
  report["tspec_ns"] = num_field(row.tspec_ns);
  report["org_power_uw"] = num_field(row.org_power_uw);
  if (with_cvs) {
    Json::Object cvs;
    cvs["improve_pct"] = num_field(row.cvs_improve_pct);
    cvs[kLowGatesKey] = Json(row.cvs_low);
    report["cvs"] = Json(std::move(cvs));
  }
  if (with_dscale) {
    Json::Object dscale;
    dscale["improve_pct"] = num_field(row.dscale_improve_pct);
    dscale[kLowGatesKey] = Json(row.dscale_low);
    dscale["level_converters"] = Json(row.dscale_lcs);
    report["dscale"] = Json(std::move(dscale));
  }
  if (with_gscale) {
    Json::Object gscale;
    gscale["improve_pct"] = num_field(row.gscale_improve_pct);
    gscale[kLowGatesKey] = Json(row.gscale_low);
    gscale["resized"] = Json(row.gscale_resized);
    gscale["area_increase"] = num_field(row.gscale_area_increase);
    gscale["seconds"] = num_field(row.gscale_seconds);
    report["gscale"] = Json(std::move(gscale));
  }
  return Json(std::move(report));
}

Json::Object response_head(const std::string& type, const Json& id) {
  Json::Object fields;
  fields["type"] = Json(type);
  fields["id"] = id;
  return fields;
}

std::string error_response(const Json& id, const std::string& message,
                           const std::string& code) {
  Json::Object fields = response_head("error", id);
  fields["message"] = Json(message);
  if (!code.empty()) fields["code"] = Json(code);
  return finish_response(std::move(fields));
}

std::string finish_response(Json::Object fields) {
  return Json(std::move(fields)).dump() + "\n";
}

std::string finish_response_with_body(Json::Object head,
                                      const std::string& body) {
  std::string out = Json(std::move(head)).dump();  // "{...}", never "{}"
  if (body.size() > 2) {
    out.pop_back();  // drop the head's '}'
    out += ',';
    out.append(body, 1, std::string::npos);  // skip the body's '{'
  }
  out += '\n';
  return out;
}

std::string optimize_request_json(const OptimizeRequest& request) {
  Json::Object object;
  object["type"] = Json("optimize");
  if (!request.circuit.empty()) object["circuit"] = Json(request.circuit);
  if (!request.netlist.empty()) object["netlist"] = Json(request.netlist);
  object["format"] = Json(request.format);
  if (!request.pipeline.is_null()) {
    object["pipeline"] = request.pipeline;
  } else {
    Json::Array algos;
    if (request.run_cvs) algos.emplace_back("cvs");
    if (request.run_dscale) algos.emplace_back("dscale");
    if (request.run_gscale) algos.emplace_back("gscale");
    object["algos"] = Json(std::move(algos));
  }
  Json::Object options;
  options["seed"] = Json(request.options.seed);
  options["freq_mhz"] = Json(request.options.freq_mhz);
  options["tspec_relax"] = Json(request.options.tspec_relax);
  options["vectors"] = Json(request.options.vectors);
  if (!request.options.supplies.empty()) {
    Json::Array rungs;
    for (double v : request.options.supplies) rungs.emplace_back(v);
    options["supplies"] = Json(std::move(rungs));
  }
  object["options"] = Json(std::move(options));
  object["return_netlist"] = Json(request.return_netlist);
  // The worker runs its own cache; a scheduler-side miss may still be a
  // worker-side hit, and the bodies are bit-identical either way.
  object["use_cache"] = Json(request.use_cache);
  return Json(std::move(object)).dump();
}

std::string fleet_job_line(std::uint64_t lease,
                           const std::string& request_json) {
  std::string out = "{\"type\":\"job\",\"lease\":" + std::to_string(lease) +
                    ",\"request\":";
  out += request_json;
  out += "}\n";
  return out;
}

std::string fleet_heartbeat_line(int load, int capacity) {
  Json::Object object;
  object["type"] = Json("heartbeat");
  object["load"] = Json(static_cast<std::int64_t>(load));
  object["capacity"] = Json(static_cast<std::int64_t>(capacity));
  return Json(std::move(object)).dump() + "\n";
}

std::string fleet_result_line(std::uint64_t lease, const std::string& body,
                              std::uint64_t checksum) {
  Json::Object object;
  object["type"] = Json("job_result");
  object["lease"] = Json(lease);
  object["checksum"] = Json(checksum_hex(checksum));
  object["body"] = Json(body);
  return Json(std::move(object)).dump() + "\n";
}

std::string fleet_error_line(std::uint64_t lease,
                             const std::string& message) {
  Json::Object object;
  object["type"] = Json("job_error");
  object["lease"] = Json(lease);
  object["message"] = Json(message);
  return Json(std::move(object)).dump() + "\n";
}

std::string checksum_hex(std::uint64_t checksum) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(checksum));
  return std::string(buf, 16);
}

}  // namespace dvs
