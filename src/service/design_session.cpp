#include "service/design_session.hpp"

#include <algorithm>
#include <utility>

#include "benchgen/mcnc.hpp"
#include "core/job.hpp"
#include "core/sweep_matrix.hpp"
#include "netlist/blif.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"
#include "service/cache.hpp"
#include "service/disk_cache.hpp"
#include "service/session.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "synth/mapper.hpp"
#include "synth/sweep.hpp"

namespace dvs {

namespace {

using Clock = std::chrono::steady_clock;

/// Why a retired handle name is gone (tombstones_ values).
enum Tombstone : int { kClosed, kExpired, kEvicted };

bool design_fully_mapped(const Network& net) {
  bool mapped = true;
  net.for_each_gate([&](const Node& n) {
    if (n.cell < 0) mapped = false;
  });
  return mapped;
}

}  // namespace

/// One open design: the loaded Design plus everything pinned at open
/// time so every later verb re-derives nothing — the effective library
/// (stable address for the Design's lifetime), the frozen tspec, the
/// derived seeds, the original cells (the sizing baseline "resized"
/// counts against, immune to full-evaluate Design rebuilds), and the
/// maintained incremental timer.  `mutex` serializes verbs on this
/// design; refs / last_used / bytes are guarded by the registry mutex.
struct DesignRegistry::Handle {
  std::mutex mutex;

  std::string name;
  std::string circuit;  // MCNC name or "<inline>"
  std::uint64_t circuit_seed = 0;
  JobOptions options;       // as opened (sweeps re-derive from these)
  FlowOptions base_flow;    // derive_cell_flow(options, seed, kCvs)
  double tspec = 0.0;       // frozen at open: mapped delay * (1+relax)
  double org_power_uw = 0.0;

  /// Effective library: the registry's, or the ladder-adjusted copy.
  std::optional<SupplyLadder> custom_ladder;
  std::optional<Library> custom_lib;
  const Library* lib = nullptr;
  std::uint64_t lib_fp = 0;

  std::optional<Design> design;
  /// Maintained incremental timer; dropped (null) by structural edits
  /// and rebuilt by the next full evaluation.  While present, its
  /// context spans point into `design`'s vectors — which is why any
  /// edit that resizes them must reset it first.
  std::unique_ptr<IncrementalSta> ista;
  bool structural_dirty = false;

  /// Sizing baseline per node id (-1 = not an original gate; inserted
  /// level converters land here).
  std::vector<int> original_cells;

  /// Lazy name -> id map for string gate addresses, rebuilt when the
  /// network's structural version moves.
  std::unordered_map<std::string, NodeId> gate_names;
  std::uint64_t gate_names_version = ~0ull;

  // Guarded by the registry mutex:
  int refs = 0;
  Clock::time_point last_used{};
  std::size_t bytes = 0;
  std::uint64_t edits = 0;

  int count_resized() const {
    int resized = 0;
    design->network().for_each_gate([&](const Node& n) {
      const int original = n.id < static_cast<NodeId>(original_cells.size())
                               ? original_cells[n.id]
                               : -1;
      if (original >= 0 && n.cell != original) ++resized;
    });
    return resized;
  }
};

namespace {

/// Resident-footprint estimate of one handle: network storage, the
/// Design's per-node vectors, and ~64 B/node for the compiled timing
/// graph + activity + STA state.  An estimate is enough — the budget
/// exists to bound memory, not to account it to the byte.
std::size_t estimate_bytes(const DesignRegistry::Handle& handle) {
  const Network& net = handle.design->network();
  std::size_t bytes = sizeof(DesignRegistry::Handle);
  bytes += static_cast<std::size_t>(net.size()) * (sizeof(Node) + 64);
  net.for_each_node([&](const Node& n) {
    bytes += n.name.size() +
             (n.fanins.size() + n.fanouts.size()) * sizeof(NodeId);
  });
  bytes += static_cast<std::size_t>(net.size()) *
           (sizeof(SupplyId) + sizeof(double) + sizeof(char) + sizeof(int));
  if (handle.ista)
    bytes += static_cast<std::size_t>(net.size()) *
             (3 * sizeof(RiseFall) + 3 * sizeof(double));
  if (handle.custom_lib) bytes += 1u << 16;  // library copy, roughly
  return bytes;
}

Json supplies_json(const Library& lib) {
  Json::Array supplies;
  for (double v : lib.supplies().voltages()) supplies.emplace_back(v);
  return Json(std::move(supplies));
}

/// The gate a DesignEdit addresses, by id or by name.  Throws the
/// protocol-verbatim unknown-gate / not-a-gate errors.
NodeId resolve_gate(DesignRegistry::Handle& handle, const Json& gate) {
  const Network& net = handle.design->network();
  NodeId id = kNoNode;
  std::string label;
  if (gate.is_string()) {
    label = "'" + gate.as_string() + "'";
    if (handle.gate_names_version != net.structural_version()) {
      handle.gate_names.clear();
      net.for_each_node([&](const Node& n) {
        if (!n.name.empty()) handle.gate_names[n.name] = n.id;
      });
      handle.gate_names_version = net.structural_version();
    }
    auto it = handle.gate_names.find(gate.as_string());
    if (it != handle.gate_names.end()) id = it->second;
  } else {
    id = static_cast<NodeId>(gate.as_int());
    label = "'" + std::to_string(id) + "'";
  }
  if (id == kNoNode || !net.is_valid(id))
    throw ProtocolError("unknown gate " + label + " in design '" +
                        handle.name + "'");
  if (!net.node(id).is_gate())
    throw ProtocolError("node " + label + " of design '" + handle.name +
                        "' is not a gate");
  return id;
}

/// Applies one edit to the handle's design (handle mutex held).  Point
/// edits notify the incremental timer; structural edits resync the
/// Design's vectors and drop the timer (its spans just went stale).
void apply_edit(DesignRegistry::Handle& handle, const DesignEdit& edit,
                bool* structural) {
  Design& design = *handle.design;
  Network& net = design.network();
  const Library& lib = *handle.lib;
  const NodeId id = resolve_gate(handle, edit.gate);
  const Node& node = net.node(id);
  const auto notify = [&] {
    if (handle.ista) handle.ista->on_node_changed(id);
  };
  const auto set_cell = [&](int cell) {
    net.set_cell(id, cell);
    notify();
  };
  const auto resync = [&] {
    design.sync_with_network();
    handle.original_cells.resize(net.size(), -1);
    handle.ista.reset();
    handle.structural_dirty = true;
    *structural = true;
  };
  switch (edit.op) {
    case DesignEdit::Op::kRung: {
      if (edit.rung >= lib.supplies().depth())
        throw ProtocolError(
            "rung " + std::to_string(edit.rung) + " out of range for a " +
            std::to_string(lib.supplies().depth()) + "-rung ladder");
      design.set_level(id, static_cast<SupplyId>(edit.rung));
      notify();
      break;
    }
    case DesignEdit::Op::kCell: {
      const int cell = lib.find(edit.cell);
      if (cell < 0)
        throw ProtocolError("unknown cell '" + edit.cell + "'");
      const std::span<const int> variants = lib.variants_of(node.cell);
      if (std::find(variants.begin(), variants.end(), cell) ==
          variants.end())
        throw ProtocolError("cell '" + edit.cell +
                            "' is not a drive variant of gate '" +
                            node.name + "'");
      set_cell(cell);
      break;
    }
    case DesignEdit::Op::kUpsize: {
      const int cell = lib.upsize(node.cell);
      if (cell < 0)
        throw ProtocolError("gate '" + node.name +
                            "' is already at the largest drive");
      set_cell(cell);
      break;
    }
    case DesignEdit::Op::kDownsize: {
      const int cell = lib.downsize(node.cell);
      if (cell < 0)
        throw ProtocolError("gate '" + node.name +
                            "' is already at the smallest drive");
      set_cell(cell);
      break;
    }
    case DesignEdit::Op::kInsertLc: {
      if (lib.level_converter() < 0)
        throw ProtocolError("library has no level-converter cell");
      std::vector<NodeId> moved;
      for_each_unique_fanout(node, [&](NodeId fo) { moved.push_back(fo); });
      std::vector<int> moved_ports;
      const std::vector<OutputPort>& outputs = net.outputs();
      for (std::size_t p = 0; p < outputs.size(); ++p)
        if (outputs[p].driver == id)
          moved_ports.push_back(static_cast<int>(p));
      if (moved.empty() && moved_ports.empty())
        throw ProtocolError("gate '" + node.name +
                            "' has no fanouts to convert");
      const std::string lc_name =
          "lc_" + node.name + "_" + std::to_string(net.structural_version());
      net.insert_between(id, moved, moved_ports, tt_buf(),
                         lib.level_converter(), lc_name);
      resync();
      break;
    }
    case DesignEdit::Op::kRemoveLc: {
      if (node.cell != lib.level_converter() || node.fanins.size() != 1)
        throw ProtocolError("gate '" + node.name +
                            "' is not a removable level converter");
      net.replace_uses(id, node.fanins.front());
      resync();
      break;
    }
  }
}

}  // namespace

DesignRegistry::DesignRegistry(const Library* lib,
                               DesignSessionConfig config, ThreadPool* pool,
                               ResultCache* cache, DiskCacheEngine* disk)
    : lib_(lib), config_(config), pool_(pool), cache_(cache), disk_(disk) {}

DesignRegistry::~DesignRegistry() = default;

void DesignRegistry::retire_locked(const std::string& name, int tombstone) {
  auto it = handles_.find(name);
  if (it == handles_.end()) return;
  stats_.resident_bytes -= it->second->bytes;
  switch (static_cast<Tombstone>(tombstone)) {
    case kClosed:
      ++stats_.closed;
      break;
    case kExpired:
      ++stats_.expired;
      break;
    case kEvicted:
      ++stats_.evicted;
      break;
  }
  tombstones_[name] = tombstone;
  handles_.erase(it);
  stats_.open_now = handles_.size();
}

void DesignRegistry::gc_locked(Clock::time_point now) {
  // Idle expiry: anything untouched past the deadline goes, unless a
  // verb is mid-flight on it (try_lock fails -> skip this round).
  if (config_.idle_ms > 0) {
    std::vector<std::string> expired;
    for (const auto& [name, handle] : handles_) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now - handle->last_used)
                            .count();
      if (idle < static_cast<long long>(config_.idle_ms)) continue;
      if (!handle->mutex.try_lock()) continue;
      handle->mutex.unlock();
      expired.push_back(name);
    }
    for (const std::string& name : expired) retire_locked(name, kExpired);
  }
  // Byte budget: evict oldest-idle first until under budget.  The
  // try_lock skip keeps the handle a verb is currently using resident.
  if (config_.max_bytes == 0) return;
  while (stats_.resident_bytes > config_.max_bytes && handles_.size() > 1) {
    std::string victim;
    Clock::time_point oldest = Clock::time_point::max();
    for (const auto& [name, handle] : handles_) {
      if (handle->last_used >= oldest) continue;
      if (!handle->mutex.try_lock()) continue;
      handle->mutex.unlock();
      victim = name;
      oldest = handle->last_used;
    }
    if (victim.empty()) return;  // everything busy; try again next op
    retire_locked(victim, kEvicted);
  }
}

std::shared_ptr<DesignRegistry::Handle> DesignRegistry::acquire(
    const std::string& name, bool allow_while_draining) {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  gc_locked(now);
  auto it = handles_.find(name);
  if (it == handles_.end()) {
    auto tomb = tombstones_.find(name);
    if (tomb != tombstones_.end()) {
      switch (static_cast<Tombstone>(tomb->second)) {
        case kClosed:
          throw ProtocolError("design '" + name + "' is closed");
        case kExpired:
          throw ProtocolError("design '" + name +
                              "' expired after idle timeout");
        case kEvicted:
          throw ProtocolError("design '" + name +
                              "' was evicted under the design byte budget");
      }
    }
    throw ProtocolError("unknown design handle '" + name + "'");
  }
  if (draining_ && !allow_while_draining)
    throw ProtocolError("draining: design sessions are closing");
  it->second->last_used = now;
  return it->second;
}

Json::Object DesignRegistry::open(const OpenDesignRequest& request) {
  const Clock::time_point now = Clock::now();
  std::shared_ptr<Handle> handle;
  std::string name = request.name;
  bool attached = false;
  std::unique_lock<std::mutex> build_lock;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    gc_locked(now);
    if (draining_)
      throw ProtocolError("draining: design sessions are closing");
    if (!name.empty()) {
      auto it = handles_.find(name);
      if (it != handles_.end()) {
        handle = it->second;
        attached = true;
      }
    } else {
      name = "d" + std::to_string(next_id_++);
    }
    if (!handle) {
      if (handles_.size() >= config_.max_open)
        throw ProtocolError("too many open designs: " +
                            std::to_string(handles_.size()) +
                            " open at cap " +
                            std::to_string(config_.max_open));
      handle = std::make_shared<Handle>();
      handle->name = name;
      // Publish locked: lookups during the build below block on the
      // handle mutex (GC skips via try_lock) until the design is ready.
      build_lock = std::unique_lock<std::mutex>(handle->mutex);
      handles_.emplace(name, handle);
      tombstones_.erase(name);  // a reopened name is simply live again
      stats_.open_now = handles_.size();
    }
    handle->refs += 1;
    handle->last_used = now;
    ++stats_.opened;
  }

  if (!attached) {
    try {
      handle->circuit =
          request.circuit.empty() ? "<inline>" : request.circuit;
      handle->options = request.options;
      handle->lib = lib_;
      handle->lib_fp = lib_->fingerprint();
      if (!request.options.supplies.empty()) {
        SupplyLadder ladder(request.options.supplies);
        if (ladder != lib_->supplies()) {
          handle->custom_ladder.emplace(std::move(ladder));
          handle->custom_lib.emplace(*lib_);
          handle->custom_lib->set_supply_ladder(*handle->custom_ladder);
          handle->lib = &*handle->custom_lib;
          handle->lib_fp = handle->lib->fingerprint();
        }
      }
      const Library& lib = *handle->lib;
      Network mapped;
      if (!request.circuit.empty()) {
        const McncDescriptor* descriptor = find_mcnc(request.circuit);
        if (descriptor == nullptr)
          throw ProtocolError("unknown MCNC circuit '" + request.circuit +
                              "'");
        handle->circuit_seed =
            mix_seed(request.options.seed, descriptor->seed);
        mapped = build_mcnc_circuit(lib, *descriptor);
      } else {
        handle->circuit_seed = request.options.seed;
        Network submitted = request.format == "verilog"
                                ? read_verilog_string(request.netlist, lib)
                                : read_blif_string(request.netlist);
        if (design_fully_mapped(submitted) && submitted.num_gates() > 0) {
          mapped = std::move(submitted);
        } else {
          sweep_network(submitted);
          mapped = map_paper_setup(submitted, lib).mapped;
        }
        if (mapped.num_gates() == 0)
          throw ProtocolError("netlist has no gates to optimize");
      }
      handle->base_flow =
          derive_cell_flow(request.options.to_flow_options(),
                           handle->circuit_seed, PaperAlgo::kCvs);
      CircuitRunResult row;
      Activity activity;
      init_flow_row(mapped, lib, handle->base_flow, &row, &activity);
      handle->tspec = row.tspec_ns;
      handle->org_power_uw = row.org_power_uw;
      handle->design.emplace(
          make_flow_design(mapped, lib, handle->base_flow, handle->tspec));
      handle->design->adopt_activity(std::move(activity));
      const Network& net = handle->design->network();
      handle->original_cells.assign(net.size(), -1);
      net.for_each_gate(
          [&](const Node& n) { handle->original_cells[n.id] = n.cell; });
    } catch (...) {
      // Unpublish the placeholder; late lookups get "unknown handle",
      // exactly as if the open never happened.  Taking the registry
      // mutex while holding the (fresh, unshared-by-waiters-only)
      // handle mutex is safe: no path blocks on a handle mutex while
      // holding the registry mutex.
      std::lock_guard<std::mutex> lock(mutex_);
      --stats_.opened;
      auto it = handles_.find(name);
      if (it != handles_.end() && it->second == handle) {
        handles_.erase(it);
        stats_.open_now = handles_.size();
      }
      throw;
    }
    const std::size_t bytes = estimate_bytes(*handle);
    std::lock_guard<std::mutex> lock(mutex_);
    handle->bytes = bytes;
    stats_.resident_bytes += bytes;
    gc_locked(now);  // the new resident may push others over budget
  }

  // Attach path: take the handle mutex now (build path already holds
  // it) so the reply reads settled fields.  An attacher that raced a
  // build which then failed finds an unpublished, design-less handle.
  std::unique_lock<std::mutex> reply_lock;
  if (!build_lock.owns_lock()) {
    reply_lock = std::unique_lock<std::mutex>(handle->mutex);
    if (!handle->design) {
      std::lock_guard<std::mutex> lock(mutex_);
      --stats_.opened;
      throw ProtocolError("unknown design handle '" + name + "'");
    }
  }

  Json::Object fields;
  fields["design"] = Json(handle->name);
  fields["circuit"] = Json(handle->circuit);
  fields["attached"] = Json(attached);
  fields["gates"] = Json(handle->design->network().num_gates());
  fields["structural_version"] =
      Json(handle->design->network().structural_version());
  fields["tspec_ns"] = Json(handle->tspec);
  fields["org_power_uw"] = Json(handle->org_power_uw);
  fields["supplies"] = supplies_json(*handle->lib);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fields["refs"] = Json(static_cast<std::int64_t>(handle->refs));
  }
  return fields;
}

Json::Object DesignRegistry::edit(const EditRequest& request) {
  std::shared_ptr<Handle> handle = acquire(request.design);
  std::lock_guard<std::mutex> lock(handle->mutex);
  if (!handle->design)  // raced a failed open
    throw ProtocolError("unknown design handle '" + request.design + "'");
  bool structural = false;
  int applied = 0;
  try {
    for (const DesignEdit& e : request.edits) {
      apply_edit(*handle, e, &structural);
      ++applied;
    }
  } catch (const ProtocolError& e) {
    // Edits before the failing one stay applied (README.md documents
    // the partial-application contract); the index pinpoints the rest.
    throw ProtocolError("edit " + std::to_string(applied) + ": " +
                        e.what());
  }
  const std::size_t bytes = estimate_bytes(*handle);
  {
    std::lock_guard<std::mutex> registry_lock(mutex_);
    stats_.edits += static_cast<std::uint64_t>(applied);
    stats_.resident_bytes += bytes - handle->bytes;
    handle->bytes = bytes;
    handle->edits += static_cast<std::uint64_t>(applied);
  }
  Json::Object fields;
  fields["design"] = Json(handle->name);
  fields["applied"] = Json(applied);
  fields["structural"] = Json(handle->structural_dirty);
  fields["structural_version"] =
      Json(handle->design->network().structural_version());
  fields["gates"] = Json(handle->design->network().num_gates());
  return fields;
}

DesignReoptimizeResult DesignRegistry::reoptimize(
    const ReoptimizeRequest& request, RequestTrace* trace) {
  std::shared_ptr<Handle> handle = acquire(request.design);
  std::lock_guard<std::mutex> lock(handle->mutex);
  if (!handle->design)  // raced a failed open
    throw ProtocolError("unknown design handle '" + request.design + "'");
  Design& design = *handle->design;
  const Network& net = design.network();

  const bool pipeline_mode =
      request.has_algos || !request.pipeline.is_null();
  DesignReoptimizeResult out;

  if (!pipeline_mode) {
    // Evaluate mode: the ECO hot path.  Incremental reads the
    // maintained timer; full rebuilds a fresh Design from the current
    // network — i.e. exactly the stateless computation — and then
    // re-arms the timer for the next incremental round.
    bool full = false;
    if (request.mode == "incremental") {
      if (handle->structural_dirty)
        throw ProtocolError(
            "cannot reoptimize '" + handle->name +
            "' incrementally: structural edits require a full recompile "
            "(mode 'full' or 'auto')");
    } else if (request.mode == "full") {
      full = true;
    } else {
      full = handle->structural_dirty;
    }

    const Clock::time_point mark = Clock::now();
    double power = 0.0;
    double arrival = 0.0;
    if (full) {
      Design fresh(net, *handle->lib, handle->tspec);
      fresh.set_activity_options(handle->base_flow.activity);
      fresh.set_freq_mhz(handle->base_flow.freq_mhz);
      for (NodeId id = 0; id < static_cast<NodeId>(net.size()); ++id)
        if (net.is_valid(id) && design.level(id) != fresh.level(id))
          fresh.set_level(id, design.level(id));
      power = fresh.run_power().total();
      arrival = fresh.run_timing().worst_arrival;
      // Re-arm the session: timer rebuilt over the session design (same
      // state the fresh evaluation just measured), structural debt paid.
      handle->ista = std::make_unique<IncrementalSta>(
          design.timing_context(), handle->tspec);
      handle->structural_dirty = false;
    } else {
      if (!handle->ista)
        handle->ista = std::make_unique<IncrementalSta>(
            design.timing_context(), handle->tspec);
      power = design.run_power().total();
      arrival = handle->ista->result().worst_arrival;
    }
    if (trace) trace->add("evaluate", mark, Clock::now());

    out.fields["design"] = Json(handle->name);
    out.fields["mode"] = Json(full ? "full" : "incremental");
    out.fields["structural_version"] = Json(net.structural_version());
    out.fields["tspec_ns"] = Json(handle->tspec);
    out.fields["power_uw"] = Json(power);
    out.fields["arrival_ns"] = Json(arrival);
    out.fields["slack_ns"] = Json(handle->tspec - arrival);
    out.fields["meets_tspec"] = Json(arrival <= handle->tspec + 1e-9);
    out.fields["area_um2"] = Json(design.total_area());
    out.fields["low"] = Json(design.count_low());
    out.fields["level_converters"] = Json(design.count_lcs());
    out.fields["resized"] = Json(handle->count_resized());
    out.fields["org_power_uw"] = Json(handle->org_power_uw);
    out.fields["improve_pct"] =
        Json(improvement_pct(handle->org_power_uw, power));
    std::lock_guard<std::mutex> registry_lock(mutex_);
    if (full)
      ++stats_.reoptimize_full;
    else
      ++stats_.reoptimize_incremental;
    return out;
  }

  // Pipeline mode: re-run the named passes from scratch on the edited
  // netlist, through the same job machinery (and the same result cache)
  // as a stateless optimize of this exact network.
  OptimizeRequest synth;
  synth.options = handle->options;
  if (request.has_algos) {
    synth.run_cvs = request.run_cvs;
    synth.run_dscale = request.run_dscale;
    synth.run_gscale = request.run_gscale;
  } else {
    synth.run_cvs = synth.run_dscale = synth.run_gscale = false;
    synth.pipeline = request.pipeline;
  }
  Clock::time_point mark = Clock::now();
  CacheKey key;
  // Content-addressed, not handle-addressed: the key hashes what the
  // network IS (topology + mapping), not which handle or how many edits
  // produced it, so identical states share cache entries across
  // handles, daemon restarts, and the stateless optimize path
  // (DESIGN.md).  Mapping is rehashed every time — set_cell edits move
  // it without bumping the structural version.
  key.topology = topology_hash(net);
  key.mapping = mapping_fingerprint(net);
  key.library = handle->lib_fp;
  key.options = fnv1a64(canonical_job_json(synth, handle->circuit_seed,
                                           lib_->supplies()));
  {
    // Pipeline reoptimizes are from-scratch runs; count them as full.
    std::lock_guard<std::mutex> registry_lock(mutex_);
    ++stats_.reoptimize_full;
  }
  out.fields["design"] = Json(handle->name);
  out.fields["mode"] = Json("pipeline");
  out.fields["structural_version"] = Json(net.structural_version());
  out.cache = "miss";
  if (request.use_cache && cache_) {
    ResultCache::Payload payload = cache_->get(key);
    if (payload) {
      if (trace) trace->add("cache_lookup", mark, Clock::now());
      out.body = std::move(payload);
      out.cache = "hit";
      return out;
    }
    if (disk_) {
      payload = disk_->load(key);
      if (payload) {
        cache_->put(key, payload);
        if (trace) trace->add("cache_lookup", mark, Clock::now());
        out.body = std::move(payload);
        out.cache = "disk";
        return out;
      }
    }
    if (trace) trace->add("cache_lookup", mark, Clock::now());
  }
  mark = Clock::now();
  Json::Object body = pipeline_body_object(
      net, *handle->lib, handle->base_flow,
      build_job_cells(synth, handle->circuit_seed), trace);
  out.body =
      std::make_shared<const std::string>(Json(std::move(body)).dump());
  if (trace) trace->add("execute", mark, Clock::now());
  if (cache_) cache_->put(key, out.body);
  if (disk_) disk_->store(key, out.body);
  return out;
}

Json::Object DesignRegistry::sweep(const SweepRequest& request) {
  std::shared_ptr<Handle> handle = acquire(request.design);
  // Snapshot under the handle lock, compute outside it: a long sweep
  // must not block edits (or the GC's try_lock probe) on this design.
  Network snapshot;
  SweepMatrixSpec spec;
  const Library* lib = nullptr;
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(handle->mutex);
    if (!handle->design)  // raced a failed open
      throw ProtocolError("unknown design handle '" + request.design +
                          "'");
    snapshot = handle->design->network();
    version = snapshot.structural_version();
    spec.base = handle->options.to_flow_options();
    spec.circuit_seed = handle->circuit_seed;
    lib = handle->lib;  // outlives the sweep via the shared_ptr
  }
  spec.ladders = request.ladders;
  for (double v : request.vlow)
    spec.ladders.push_back({lib->supplies().top(), v});
  spec.area_budgets = request.area_budgets;
  spec.run_cvs = request.run_cvs;
  spec.run_dscale = request.run_dscale;
  spec.run_gscale = request.run_gscale;

  const std::function<Network(const Library&)> source =
      [&snapshot](const Library&) { return snapshot; };
  SweepMatrixResult result =
      run_sweep_matrix(source, *lib, spec, pool_);
  {
    std::lock_guard<std::mutex> registry_lock(mutex_);
    ++stats_.sweeps;
    stats_.sweep_cells += static_cast<std::uint64_t>(result.cells.size());
  }
  Json grid = sweep_matrix_json(result);
  Json::Object fields = std::move(grid.as_object());
  fields["design"] = Json(handle->name);
  fields["structural_version"] = Json(version);
  return fields;
}

Json::Object DesignRegistry::close(const CloseDesignRequest& request) {
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  gc_locked(now);
  auto it = handles_.find(request.design);
  if (it == handles_.end()) {
    auto tomb = tombstones_.find(request.design);
    if (tomb != tombstones_.end()) {
      switch (static_cast<Tombstone>(tomb->second)) {
        case kClosed:
          throw ProtocolError("design '" + request.design + "' is closed");
        case kExpired:
          throw ProtocolError("design '" + request.design +
                              "' expired after idle timeout");
        case kEvicted:
          throw ProtocolError("design '" + request.design +
                              "' was evicted under the design byte budget");
      }
    }
    throw ProtocolError("unknown design handle '" + request.design + "'");
  }
  std::shared_ptr<Handle> handle = it->second;
  handle->refs -= 1;
  const int refs = handle->refs;
  if (refs == 0) retire_locked(request.design, kClosed);
  Json::Object fields;
  fields["design"] = Json(request.design);
  fields["refs"] = Json(static_cast<std::int64_t>(refs));
  return fields;
}

void DesignRegistry::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

void DesignRegistry::close_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(handles_.size());
  for (const auto& [name, handle] : handles_) names.push_back(name);
  for (const std::string& name : names) retire_locked(name, kClosed);
}

std::size_t DesignRegistry::open_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return handles_.size();
}

DesignRegistryStats DesignRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dvs
