#include "service/cache.hpp"

#include "support/contracts.hpp"

namespace dvs {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  DVS_EXPECTS(capacity >= 1);
}

ResultCache::Payload ResultCache::get(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  return it->second->second;
}

void ResultCache::put(const CacheKey& key, Payload payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace dvs
