#include "service/cache.hpp"

#include "support/contracts.hpp"

namespace dvs {

ResultCache::ResultCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  DVS_EXPECTS(capacity_bytes >= 1);
}

ResultCache::Payload ResultCache::get(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  return it->second->second;
}

void ResultCache::erase_locked(LruList::iterator it) {
  bytes_ -= it->second ? it->second->size() : 0;
  index_.erase(it->first);
  lru_.erase(it);
}

bool ResultCache::put(const CacheKey& key, Payload payload) {
  const std::size_t size = payload ? payload->size() : 0;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (size > capacity_bytes_) {
    // Too big to ever be resident.  If the key held a (necessarily
    // different, therefore stale) smaller payload, drop it rather than
    // keep serving it against fresher data.
    ++rejected_;
    if (it != index_.end()) erase_locked(it->second);
    return false;
  }
  if (it != index_.end()) {
    bytes_ -= it->second->second ? it->second->second->size() : 0;
    bytes_ += size;
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.emplace_front(key, std::move(payload));
    index_.emplace(key, lru_.begin());
    bytes_ += size;
  }
  // The just-touched entry sits at the front and alone fits the budget,
  // so eviction from the back always terminates before reaching it.
  while (bytes_ > capacity_bytes_) {
    erase_locked(std::prev(lru_.end()));
    ++evictions_;
  }
  return true;
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.rejected = rejected_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.capacity_bytes = capacity_bytes_;
  return s;
}

}  // namespace dvs
