// dvsd: the dual-Vdd optimization service.  A persistent daemon that
// accepts NDJSON optimization jobs over a loopback-TCP or Unix-domain
// socket, schedules them on the work-stealing ThreadPool, and answers
// from a content-addressed LRU result cache whenever the (netlist
// topology, sizing, options, library) key has been computed before.
//
// Concurrency model (yadcc-shaped, scaled to one process):
//   - one accept thread, one lightweight thread per connection doing
//     only I/O and dispatch;
//   - all flow computation runs as ThreadPool tasks, so N connections
//     share the worker budget instead of each grabbing a core;
//   - `batch` fans its circuits across the pool and streams each row
//     back the moment it completes (out-of-order by design — items
//     carry `index`).
// Determinism: every job derives its seeds through the suite engine's
// (seed, circuit, algorithm) mixing, so a daemon answer is bit-identical
// to the same cell of a serial suite_bench run — cached or not.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "library/library.hpp"
#include "service/cache.hpp"
#include "service/design_session.hpp"
#include "service/disk_cache.hpp"
#include "support/metrics.hpp"
#include "support/socket.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace dvs {

class Session;
class Scheduler;
class WorkerAgent;

struct ServiceConfig {
  /// >= 0 binds 127.0.0.1:tcp_port (0 = kernel-assigned, see port()).
  /// Ignored when unix_path is set.
  int tcp_port = 0;
  std::string unix_path;
  /// Flow workers (0 = hardware concurrency).
  int num_threads = 0;
  /// In-memory result-cache budget in bytes of resident payload.
  std::size_t cache_bytes = 256u << 20;
  /// Disk tier directory (empty = in-memory only).  Entries written
  /// here survive daemon restarts: the same --cache-dir warm-hits.
  std::string cache_dir;
  /// NDJSON line cap — a frame bigger than this is rejected with a
  /// "line too long" error and the connection closes.
  std::size_t max_line_bytes = 64u << 20;
  /// Admission watermark: when this many jobs are already queued or
  /// running, new optimize/batch requests are rejected with a
  /// structured "overloaded" error (0 = 8x worker threads).
  std::size_t max_backlog = 0;
  /// Per-connection cap on concurrently in-flight jobs: a batch submits
  /// at most this many items at once and feeds the rest in as they
  /// complete, so one client cannot monopolize the pool queue.
  std::size_t max_inflight_per_connection = 64;
  /// Graceful-drain budget for stop(): sessions get this long to finish
  /// their in-flight request before their sockets are shut down.
  int drain_timeout_ms = 30'000;
  /// Prometheus scrape endpoint: binds 127.0.0.1:metrics_port and serves
  /// the registry's text exposition over HTTP (-1 = disabled, 0 =
  /// kernel-assigned; see Service::metrics_port()).
  int metrics_port = -1;
  /// NDJSON trace sink: every optimize/batch_item appends one record
  /// (id, circuit, cache tier, wall_ms, spans).  Empty = disabled.
  std::string trace_log_path;
  /// Log requests slower than this to stderr (0 = disabled).  Implies
  /// span collection, so the log line can say *where* the time went.
  double slow_ms = 0.0;
  bool verbose = false;

  // ---- ECO design sessions (see service/design_session.hpp) ----
  /// Idle expiry for open design handles (0 = never).
  std::uint64_t session_idle_ms = 600'000;
  /// Resident-byte budget across open designs (0 = unlimited).
  std::size_t design_bytes = 1u << 30;
  /// Cap on simultaneously open design handles.
  std::size_t max_open_designs = 256;

  // ---- fleet (see service/scheduler.hpp, service/worker.hpp) ----
  /// Accept register_worker connections and dispatch cache misses to
  /// the fleet (falling back to local execution whenever it cannot).
  bool scheduler = false;
  /// Per-job lease deadline: a worker that has not answered within this
  /// budget forfeits the job (retried elsewhere or computed locally).
  int lease_ms = 10'000;
  /// A worker whose channel is silent this long is expired and its
  /// leases requeued.  Workers heartbeat at heartbeat_ms.
  int heartbeat_timeout_ms = 3'000;
  /// Dispatch retry budget after the first attempt; each retry prefers
  /// a different worker and backs off exponentially from
  /// dispatch_backoff_ms with jitter.
  int dispatch_retries = 2;
  int dispatch_backoff_ms = 50;
  /// Non-empty = also join this scheduler address as a worker (the
  /// daemon lends its pool to a fleet while serving its own clients).
  std::string join;
  std::string worker_name;      // identity announced on --join
  int worker_capacity = 0;      // 0 = num_threads
  int heartbeat_ms = 500;       // worker heartbeat cadence on --join
  /// Deterministic fault-injection spec for the --join worker side
  /// (see support/fault_inject.hpp); empty = DVS_FAULT_INJECT env.
  std::string fault_spec;
};

/// Handles into the registry for the service's registry-native
/// instruments — the hot-path counters whose only authority IS the
/// registry (the migrated ServiceCore atomics).  Subsystems with their
/// own counters (ResultCache, DiskCacheEngine, ThreadPool) are instead
/// mirrored in by a collector; see ServiceCore::init_metrics.
struct ServiceMetrics {
  Counter* requests_total = nullptr;
  Counter* connections_total = nullptr;
  Counter* jobs_completed = nullptr;
  Counter* jobs_failed = nullptr;
  Counter* overload_rejections = nullptr;
  Counter* deadline_expired = nullptr;
  Counter* line_too_long = nullptr;
  Gauge* sessions_active = nullptr;
  Gauge* inflight_jobs = nullptr;
  Gauge* backlog_watermark = nullptr;
  Histogram* queue_wait_ms = nullptr;
  Histogram* service_ms_optimize = nullptr;
  Histogram* service_ms_batch_item = nullptr;
  Histogram* service_ms_design = nullptr;
  Histogram* cache_lookup_memory_ms = nullptr;
  Histogram* cache_lookup_disk_ms = nullptr;
};

/// State shared between the server and its sessions.
struct ServiceCore {
  ServiceConfig config;
  const Library* lib = nullptr;
  std::optional<Library> owned_lib;  // when no library was injected

  /// The observability substrate.  `metrics` holds the registry-native
  /// handles (request/job/session counters the service increments
  /// directly); everything with an external authority is mirrored into
  /// `registry` by the collector that init_metrics registers.  The
  /// `stats` reply, the `metrics` reply, and the scrape endpoint all
  /// read through the same registry, so they can never disagree.
  /// Declared BEFORE the pool: members destroy in reverse order, and
  /// pool tasks touch these instruments until the pool's destructor has
  /// joined its workers.
  MetricsRegistry registry;
  ServiceMetrics metrics;
  std::optional<TraceLog> trace_log;  // set when config.trace_log_path

  std::optional<ThreadPool> pool;
  std::optional<ResultCache> cache;
  std::optional<DiskCacheEngine> disk;  // set when config.cache_dir is
  /// ECO design sessions (open_design/edit/reoptimize/sweep/close).
  /// Declared after the subsystems it borrows (pool, caches) so it is
  /// destroyed before them.
  std::optional<DesignRegistry> designs;
  /// Fleet dispatch (set when config.scheduler).  shared_ptr so the
  /// header can stay ignorant of the Scheduler definition; constructed
  /// by init() where it is complete.
  std::shared_ptr<Scheduler> scheduler;
  std::atomic<bool> stopping{false};
  std::chrono::steady_clock::time_point started;
  std::function<void()> request_stop;  // set by Service

  std::size_t backlog_watermark = 0;

  /// Builds the core's subsystems from its config: library, pool,
  /// cache tiers, watermark, fingerprint, instruments, trace log, and
  /// (when config.scheduler) the fleet scheduler.  Shared by Service
  /// and the standalone worker, which runs a core with no listener.
  /// `lib` null = build and own the compass library.
  void init(const Library* lib);

  /// Creates the native instruments and registers the mirror collector.
  /// Must run after pool/cache/disk exist and the watermark is resolved.
  void init_metrics();

  /// True when the request wants spans collected: explicitly via the
  /// request's "trace" flag, or implicitly because every request feeds
  /// the trace log / slow-request log.
  bool want_trace(bool requested) const {
    return requested || trace_log.has_value() || config.slow_ms > 0;
  }

  /// Admission gate for new optimize/batch requests.  A saturated pool
  /// answers `false` immediately — callers reply with a structured
  /// "overloaded" error instead of queuing unboundedly.
  bool admit() const {
    return metrics.inflight_jobs->value() <
           static_cast<double>(backlog_watermark);
  }

  /// Library::fingerprint is a pure function of the (immutable) library;
  /// computed once at startup instead of per request.
  std::uint64_t lib_fingerprint = 0;

  /// (topology_hash, mapping_fingerprint) memo keyed by
  /// "<circuit>@<library fingerprint>": for named circuits those are
  /// pure functions of (descriptor, effective library), so the
  /// cache-hit path skips rebuilding the circuit entirely — including
  /// jobs at custom supply ladders, which memoize under their
  /// ladder-adjusted fingerprint.
  std::mutex named_hash_mutex;
  std::unordered_map<std::string, std::pair<std::uint64_t, std::uint64_t>>
      named_hashes;

  /// Ladder-adjusted Library::fingerprint per SupplyLadder::fingerprint:
  /// custom-supplies requests need the effective fingerprint for the
  /// cache key before the lookup, and the memo keeps the hit path free
  /// of per-request Library copies.
  std::mutex ladder_fp_mutex;
  std::unordered_map<std::uint64_t, std::uint64_t> ladder_fps;
};

class Service {
 public:
  /// `lib` defaults to the compass library when null (built once,
  /// owned by the service).
  explicit Service(ServiceConfig config, const Library* lib = nullptr);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Binds the socket and spawns the accept thread.  Throws SocketError.
  void start();

  /// Bound TCP port (after start(); 0 for Unix-domain sockets).
  int port() const { return listener_.port(); }

  /// Bound metrics-endpoint port (after start(); 0 when disabled).
  int metrics_port() const { return metrics_listener_.port(); }

  /// Blocks until request_stop() (from a signal handler, a `shutdown`
  /// request, or another thread).
  void wait();

  /// Idempotent, thread- and signal-safe stop trigger.
  void request_stop();

  /// Graceful drain, then teardown: stops accepting, lets every session
  /// finish (and answer) its in-flight request within
  /// config.drain_timeout_ms, force-closes stragglers, joins all
  /// threads, and flushes the disk cache.  Called by the destructor if
  /// needed.
  void stop();

  CacheStats cache_stats() const { return core_.cache->stats(); }
  /// Zeroed stats when no disk tier is configured.
  DiskCacheStats disk_stats() const {
    return core_.disk ? core_.disk->stats() : DiskCacheStats{};
  }
  const ServiceCore& core() const { return core_; }
  ServiceCore& core() { return core_; }

 private:
  void accept_loop();
  void metrics_loop();
  void reap_finished_locked();

  ServiceCore core_;
  ListenSocket listener_;
  std::thread accept_thread_;
  ListenSocket metrics_listener_;
  std::thread metrics_thread_;
  /// Set when config.join is non-empty: this daemon also serves a fleet
  /// as a worker, sharing core_'s pool and cache.
  std::shared_ptr<WorkerAgent> agent_;

  struct Connection {
    std::unique_ptr<Session> session;
    std::thread thread;
  };
  std::mutex connections_mutex_;
  std::vector<Connection> connections_;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopped_ = false;
};

}  // namespace dvs
