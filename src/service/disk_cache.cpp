#include "service/disk_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "support/json.hpp"

namespace dvs {

namespace {

void append_hex16(std::string* out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out->append(buf, 16);
}

constexpr char kHeaderMagic[] = "dvsr1 ";

std::string entry_header(const std::string& payload) {
  std::string header(kHeaderMagic);
  append_hex16(&header, fnv1a64(payload));
  header += ' ';
  header += std::to_string(payload.size());
  header += '\n';
  return header;
}

/// Validates `file` (header + payload) in place: on success erases the
/// header, leaving `file` holding exactly the payload.
bool check_and_strip_header(std::string* file) {
  const std::size_t magic_len = sizeof kHeaderMagic - 1;
  if (file->compare(0, magic_len, kHeaderMagic) != 0) return false;
  const std::size_t newline = file->find('\n', magic_len);
  if (newline == std::string::npos) return false;
  const std::size_t space = magic_len + 16;
  if (space >= newline || (*file)[space] != ' ') return false;
  std::uint64_t checksum = 0;
  for (std::size_t i = magic_len; i < space; ++i) {
    const char c = (*file)[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else return false;
    checksum = (checksum << 4) | static_cast<std::uint64_t>(digit);
  }
  std::uint64_t size = 0;
  for (std::size_t i = space + 1; i < newline; ++i) {
    const char c = (*file)[i];
    if (c < '0' || c > '9') return false;
    size = size * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (file->size() - (newline + 1) != size) return false;
  file->erase(0, newline + 1);
  if (fnv1a64(*file) != checksum) return false;
  return true;
}

}  // namespace

std::string DiskCacheEngine::file_name(const CacheKey& key) {
  std::string name;
  name.reserve(4 * 16 + 3 + 4);
  append_hex16(&name, key.topology);
  name += '-';
  append_hex16(&name, key.mapping);
  name += '-';
  append_hex16(&name, key.options);
  name += '-';
  append_hex16(&name, key.library);
  name += ".res";
  return name;
}

DiskCacheEngine::DiskCacheEngine(std::string dir) : dir_(std::move(dir)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("cache-dir: cannot create directory '" +
                             dir_ + "'" + (ec ? ": " + ec.message() : ""));
  // The scratch name carries the pid so two daemons pointed at one
  // directory never interleave partial writes into the same temp file.
  tmp_path_ = dir_ + "/.write-" + std::to_string(::getpid()) + ".tmp";
  {
    // Probe writability now so a read-only directory fails at startup
    // with a clear message, not as silent write_errors under load.
    std::ofstream probe(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!probe)
      throw std::runtime_error("cache-dir: '" + dir_ +
                               "' is not writable");
  }
  std::remove(tmp_path_.c_str());
  writer_ = std::thread([this] { writer_loop(); });
}

DiskCacheEngine::~DiskCacheEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

DiskCacheEngine::Payload DiskCacheEngine::load(const CacheKey& key) {
  const std::string path = dir_ + "/" + file_name(key);
  std::ifstream in(path, std::ios::binary);
  Payload payload;
  bool corrupt = false;
  if (in) {
    auto body = std::make_shared<std::string>();
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size >= 0) {
      body->resize(static_cast<std::size_t>(size));
      in.seekg(0);
      in.read(body->data(), size);
      if (in) {
        if (check_and_strip_header(body.get()))
          payload = std::move(body);
        else
          corrupt = true;
      }
    }
    if (corrupt) ::unlink(path.c_str());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (payload) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
    if (corrupt) ++stats_.corrupt;
  }
  return payload;
}

void DiskCacheEngine::store(const CacheKey& key, Payload payload) {
  if (!payload) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(key, std::move(payload));
  }
  work_cv_.notify_one();
}

void DiskCacheEngine::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && !write_in_progress_; });
}

DiskCacheStats DiskCacheEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DiskCacheEngine::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ and drained
    auto [key, payload] = std::move(queue_.front());
    queue_.pop_front();
    write_in_progress_ = true;
    lock.unlock();

    // Temp-file + rename: the final name only ever points at a complete
    // payload, so a concurrent load() (or a post-crash restart) never
    // reads a torn entry.  fsync is deliberately skipped — this is a
    // cache, and losing the newest entries on power loss is fine.
    bool ok = false;
    {
      std::ofstream out(tmp_path_, std::ios::binary | std::ios::trunc);
      const std::string header = entry_header(*payload);
      out.write(header.data(), static_cast<std::streamsize>(header.size()));
      out.write(payload->data(),
                static_cast<std::streamsize>(payload->size()));
      ok = static_cast<bool>(out);
    }
    const std::string path = dir_ + "/" + file_name(key);
    if (ok) ok = std::rename(tmp_path_.c_str(), path.c_str()) == 0;
    if (!ok) std::remove(tmp_path_.c_str());

    lock.lock();
    write_in_progress_ = false;
    if (ok) {
      ++stats_.writes;
      stats_.bytes_written += payload->size();
    } else {
      ++stats_.write_errors;
    }
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace dvs
