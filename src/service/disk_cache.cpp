#include "service/disk_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace dvs {

namespace {

void append_hex16(std::string* out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  out->append(buf, 16);
}

}  // namespace

std::string DiskCacheEngine::file_name(const CacheKey& key) {
  std::string name;
  name.reserve(4 * 16 + 3 + 4);
  append_hex16(&name, key.topology);
  name += '-';
  append_hex16(&name, key.mapping);
  name += '-';
  append_hex16(&name, key.options);
  name += '-';
  append_hex16(&name, key.library);
  name += ".res";
  return name;
}

DiskCacheEngine::DiskCacheEngine(std::string dir) : dir_(std::move(dir)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("cache-dir: cannot create directory '" +
                             dir_ + "'" + (ec ? ": " + ec.message() : ""));
  // The scratch name carries the pid so two daemons pointed at one
  // directory never interleave partial writes into the same temp file.
  tmp_path_ = dir_ + "/.write-" + std::to_string(::getpid()) + ".tmp";
  {
    // Probe writability now so a read-only directory fails at startup
    // with a clear message, not as silent write_errors under load.
    std::ofstream probe(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!probe)
      throw std::runtime_error("cache-dir: '" + dir_ +
                               "' is not writable");
  }
  std::remove(tmp_path_.c_str());
  writer_ = std::thread([this] { writer_loop(); });
}

DiskCacheEngine::~DiskCacheEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

DiskCacheEngine::Payload DiskCacheEngine::load(const CacheKey& key) {
  const std::string path = dir_ + "/" + file_name(key);
  std::ifstream in(path, std::ios::binary);
  Payload payload;
  if (in) {
    auto body = std::make_shared<std::string>();
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size >= 0) {
      body->resize(static_cast<std::size_t>(size));
      in.seekg(0);
      in.read(body->data(), size);
      if (in) payload = std::move(body);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (payload)
    ++stats_.hits;
  else
    ++stats_.misses;
  return payload;
}

void DiskCacheEngine::store(const CacheKey& key, Payload payload) {
  if (!payload) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(key, std::move(payload));
  }
  work_cv_.notify_one();
}

void DiskCacheEngine::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock,
                [this] { return queue_.empty() && !write_in_progress_; });
}

DiskCacheStats DiskCacheEngine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void DiskCacheEngine::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ and drained
    auto [key, payload] = std::move(queue_.front());
    queue_.pop_front();
    write_in_progress_ = true;
    lock.unlock();

    // Temp-file + rename: the final name only ever points at a complete
    // payload, so a concurrent load() (or a post-crash restart) never
    // reads a torn entry.  fsync is deliberately skipped — this is a
    // cache, and losing the newest entries on power loss is fine.
    bool ok = false;
    {
      std::ofstream out(tmp_path_, std::ios::binary | std::ios::trunc);
      out.write(payload->data(),
                static_cast<std::streamsize>(payload->size()));
      ok = static_cast<bool>(out);
    }
    const std::string path = dir_ + "/" + file_name(key);
    if (ok) ok = std::rename(tmp_path_.c_str(), path.c_str()) == 0;
    if (!ok) std::remove(tmp_path_.c_str());

    lock.lock();
    write_in_progress_ = false;
    if (ok) {
      ++stats_.writes;
      stats_.bytes_written += payload->size();
    } else {
      ++stats_.write_errors;
    }
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

}  // namespace dvs
